"""Shim so `pip install -e .` works on environments without the `wheel`
package (no network access for build isolation)."""

from setuptools import setup

setup()
