#!/usr/bin/env python
"""Beyond the mean: response-time percentiles from the CTMC.

The paper evaluates TAGS by mean response time (Little's law).  Tagging an
arriving job and following it to absorption gives the whole sojourn
distribution -- and shows why means mislead for TAGS: the kill-and-restart
mechanism makes the sojourn bimodal (fast node-1 completions vs slow
restarted jobs).

Run:  python examples/tagged_job_percentiles.py
"""

import numpy as np

from repro.models import TagsExponential
from repro.models.tagged import TaggedJobAnalysis


def percentile(tagged, q: float, hi: float = 50.0) -> float:
    """Invert the response CDF by bisection."""
    lo = 0.0
    for _ in range(40):
        mid = (lo + hi) / 2
        if tagged.response_cdf([mid])[0] < q:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def main() -> None:
    model = TagsExponential(lam=5.0, mu=10.0, t=51.0, n=6, K1=10, K2=10)
    tagged = TaggedJobAnalysis(model)

    probs = tagged.outcome_probabilities()
    means = tagged.mean_response_by_outcome()
    print("Outcome split for an accepted job (lam=5, optimal t=51):")
    for k in ("done1", "done2", "dropped"):
        if probs.get(k, 0) > 0:
            print(f"  {k:>8}: p = {probs[k]:.4f},  E[T | {k}] = {means[k]:.4f}")

    W = model.metrics().response_time
    print(f"\nLittle's-law mean (what the paper reports): W = {W:.4f}")
    print(f"Tagged-job mean over completions:            {tagged.mean_response_completed():.4f}")

    print("\nPercentiles of the completed-job sojourn:")
    for q in (0.5, 0.9, 0.95, 0.99):
        print(f"  p{int(q * 100):>2}: {percentile(tagged, q):.4f}")
    print(
        "\nThe p99 sits ~4x above the mean: the 34% of jobs that restart at"
        "\nnode 2 pay the repeat penalty the Section 1 example describes."
    )


if __name__ == "__main__":
    main()
