#!/usr/bin/env python
"""Quickstart: model a TAGS system, solve it, compare policies.

Reproduces the headline comparison of the paper in ~20 lines of API use:
build the Figure 3 PEPA model, derive its CTMC (4331 states), solve for
steady state and compare TAGS with random and shortest-queue allocation.

Run:  python examples/quickstart.py
"""

from repro.models import RandomAllocation, ShortestQueue, TagsExponential
from repro.models.tags_pepa import TagsParameters, build_tags_model, tags_pepa_metrics
from repro.pepa import check_model, explore

LAM, MU, T, N, K = 5.0, 10.0, 51.0, 6, 10


def main() -> None:
    # --- the paper's Figure 3 model, via the PEPA pipeline --------------
    params = TagsParameters(lam=LAM, mu=MU, t=T, n=N, K1=K, K2=K)
    model = build_tags_model(params)
    report = check_model(model)
    assert not report.warnings, report.warnings
    space = explore(model)
    print(f"Figure 3 PEPA model: {space.n_states} states "
          f"({space.n_transitions} transitions); paper reports 4331.")

    metrics = tags_pepa_metrics(params)
    print(f"TAGS (t={T:g}): mean jobs {metrics.mean_jobs:.4f}, "
          f"response time {metrics.response_time:.4f}, "
          f"throughput {metrics.throughput:.4f}")

    # --- the same chain via the fast direct construction ----------------
    direct = TagsExponential(lam=LAM, mu=MU, t=T, n=N, K1=K, K2=K).metrics()
    assert abs(direct.mean_jobs - metrics.mean_jobs) < 1e-9
    print("Direct CTMC construction agrees to 1e-9.")

    # --- baselines -------------------------------------------------------
    rnd = RandomAllocation(lam=LAM, service=MU, K=K).metrics()
    jsq = ShortestQueue(lam=LAM, service=MU, K=K).metrics()
    print("\nPolicy comparison (exponential demand, lam=5, mu=10):")
    for name, m in [("TAGS", metrics), ("random", rnd), ("shortest queue", jsq)]:
        print(f"  {name:>15}: W = {m.response_time:.4f}  "
              f"X = {m.throughput:.4f}  loss = {m.loss_rate:.2e}")
    print("\nWith exponential demand, shortest queue wins -- exactly the "
          "paper's Figure 7.\nSee tags_vs_shortest_queue_hyperexp.py for "
          "where TAGS takes over.")


if __name__ == "__main__":
    main()
