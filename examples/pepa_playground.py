#!/usr/bin/env python
"""Using the PEPA toolkit directly: parse, check, derive, solve.

The reproduction's PEPA engine is a general-purpose Markovian process
algebra implementation, not TAGS-specific.  This example models a small
fault-tolerant service in textual PEPA, statically checks it, derives the
CTMC, and computes steady-state rewards, transient availability and the
fluid approximation of a scaled-up population.

Run:  python examples/pepa_playground.py
"""

import numpy as np

from repro.ctmc import (
    action_throughput,
    steady_state,
    transient_distribution,
)
from repro.pepa import (
    FluidGroup,
    FluidModel,
    check_model,
    explore,
    parse_model,
    to_generator,
)

SOURCE = """
// a worker that fails and gets repaired by a shared repairman
work_rate = 4.0;  fail_rate = 0.1;  fix_rate = 1.0;

Worker  = (work, work_rate).Worker + (fail, fail_rate).Broken;
Broken  = (repair, infty).Worker;
Repair  = (repair, fix_rate).Repair;

(Worker || Worker || Worker) <repair> Repair;
"""


def main() -> None:
    model = parse_model(SOURCE)
    report = check_model(model)
    print(f"static checks: {len(report.warnings)} warning(s)")

    space = explore(model)
    gen = to_generator(space)
    print(f"state space: {space.n_states} states, "
          f"{space.n_transitions} transitions")

    pi = steady_state(gen)
    broken = space.state_reward(lambda names: names.count("Broken"))
    print(f"mean broken workers: {float(pi @ broken):.4f}")
    print(f"work throughput:     {action_throughput(gen, pi, 'work'):.4f}")
    print(f"repair throughput:   {action_throughput(gen, pi, 'repair'):.4f}")

    # transient: availability over time from the all-up state
    p0 = np.zeros(space.n_states)
    p0[space.initial] = 1.0
    for t in (0.5, 2.0, 10.0):
        pt = transient_distribution(gen, p0, t)
        print(f"E[broken at t={t:>4}]: {float(pt @ broken):.4f}")

    # fluid: the same system with 10,000 workers and 100 repairmen
    fm = FluidModel(
        model,
        [
            FluidGroup("workers", {"Worker": 10_000.0}),
            FluidGroup("repair", {"Repair": 100.0}),
        ],
        synced={"repair"},
    )
    eq = fm.equilibrium(t_end=500.0)
    print(f"\nfluid limit (10k workers, 100 repairmen): "
          f"{eq['workers.Broken']:.1f} broken in equilibrium")


if __name__ == "__main__":
    main()
