#!/usr/bin/env python
"""Bursty arrivals: settling the paper's closing conjecture exactly.

Section 7 predicts that "TAG would perform less well if the arrival
process was bursty ... TAG would direct all traffic to node 1" while the
shortest queue shares each burst between the nodes.  We fold a two-state
MMPP (on/off bursts at equal mean rate) into the TAGS and JSQ chains and
solve both exactly at increasing burstiness.

Run:  python examples/bursty_arrivals.py
"""

from repro.models import MMPP2, ShortestQueueMMPP, TagsMMPP

LAM = 9.0  # mean arrival rate; both nodes mu = 10


def arrivals(peak_to_mean: float) -> MMPP2:
    if peak_to_mean == 1.0:
        return MMPP2.poisson(LAM)
    burst = MMPP2(
        peak_to_mean * LAM, 0.0, switch01=1.0,
        switch10=1.0 / (peak_to_mean - 1.0),
    )
    return burst.scaled_to_mean(LAM)


def main() -> None:
    print(f"{'peak/mean':>10} {'TAGS loss%':>11} {'JSQ loss%':>10} "
          f"{'TAGS W':>8} {'JSQ W':>8}")
    for b in (1.0, 1.5, 2.0, 3.0, 5.0):
        arr = arrivals(b)
        tags = TagsMMPP(arrivals=arr, mu=10, t=45, n=6, K1=10, K2=10).metrics()
        jsq = ShortestQueueMMPP(arrivals=arr, mu=10, K=10).metrics()
        print(f"{b:>10.1f} {100 * tags.loss_probability:>11.3f} "
              f"{100 * jsq.loss_probability:>10.3f} "
              f"{tags.response_time:>8.4f} {jsq.response_time:>8.4f}")
    print(
        "\nThe conjecture holds exactly: every burst lands on TAGS's node 1"
        "\n(its only entry point), while JSQ splits it across both buffers --"
        "\nat twice-mean peaks TAGS already drops ~50x more jobs than JSQ."
    )


if __name__ == "__main__":
    main()
