#!/usr/bin/env python
"""Online TAGS with closed-loop timeout control: the paper, live.

The offline story (``timeout_tuning.py``) assumes someone knows lambda
and mu.  An operator running a real dispatcher doesn't -- arrival rate
drifts and the demand mix is only revealed as jobs complete.  This
walkthrough runs ``repro.serve``'s event-driven dispatcher under a
virtual clock and shows the control loop absorbing a load shift:

1. start a two-node TAGS system at lam = 6 with a deliberately mistuned
   timeout (rate t = 5, i.e. a mean timeout of 1.2 -- twelve mean
   service times, so long jobs squat on node 1);
2. let the :class:`repro.serve.TimeoutController` estimate (lam, mu)
   from its sliding window and re-optimise t through the Section 4
   fixed point;
3. double the arrival rate mid-run (lam 6 -> 12, past the mu = 10
   single-node capacity) and watch the controller chase the new optimum;
4. compare each phase against the offline optimum computed with the
   true parameters, and validate the final stretch against the exact
   Figure 3 chain;
5. record the whole run with ``repro.obs`` and print the trace summary.

Everything below is deterministic: the virtual clock makes the run a
pure function of the seed.

Run:  python examples/online_tags.py
"""

from repro import obs
from repro.approx import TagsFixedPoint, optimise_timeout
from repro.dists import Exponential
from repro.models import TagsExponential
from repro.serve import (
    DispatchRuntime,
    PoissonLoad,
    TimeoutController,
    validate_against_model,
)
from repro.sim import ErlangTimeout, TagsPolicy

MU, N, CAPS = 10.0, 6, (10, 10)
LAM_LOW, LAM_HIGH = 6.0, 12.0
T_START = 5.0
SHIFT_AT, T_END = 3000.0, 6000.0


def offline_optimum(lam):
    """What the paper's Section 4 machinery recommends with the *true*
    parameters -- the controller has to get here from measurements."""
    return optimise_timeout(
        lambda t: TagsFixedPoint(lam=lam, mu=MU, t=t, n=N,
                                 K1=CAPS[0], K2=CAPS[1]),
        "throughput",
        t_min=0.5,
        t_max=500.0,
        grid_points=40,
    ).t_opt


def main() -> None:
    print("Offline optima (true parameters, Section 4 fixed point):")
    t_low, t_high = offline_optimum(LAM_LOW), offline_optimum(LAM_HIGH)
    print(f"  lam = {LAM_LOW:>4.0f}: t* = {t_low:6.2f}")
    print(f"  lam = {LAM_HIGH:>4.0f}: t* = {t_high:6.2f}")
    print(f"  starting (mistuned) rate: t = {T_START:.1f}\n")

    load = PoissonLoad(LAM_LOW, Exponential(MU))
    controller = TimeoutController(
        interval=150.0,     # re-tune every 150 model-seconds
        window=300.0,       # ... from the trailing 300 seconds
        metric="throughput",
        deadband=0.05,      # ignore optimum moves under 5%
    )
    runtime = DispatchRuntime(
        load,
        TagsPolicy(timeouts=(ErlangTimeout(N, T_START),)),
        CAPS,
        seed=0,
        controller=controller,
    )

    def double_the_load():
        load.rate = LAM_HIGH

    runtime.schedule(SHIFT_AT, double_the_load)

    with obs.use(obs.Recorder()) as rec:
        result = runtime.run(T_END, warmup=200.0)

    print("Controller trajectory (lam doubles at t = "
          f"{SHIFT_AT:.0f}):")
    print(f"{'time':>7} {'lam^':>6} {'mu^':>6} {'t_opt':>7} decision")
    for d in controller.history:
        lam_hat = "-" if d.lam_hat is None else f"{d.lam_hat:6.2f}"
        mu_hat = "-" if d.mu_hat is None else f"{d.mu_hat:6.2f}"
        t_opt = "-" if d.t_opt is None else f"{d.t_opt:7.1f}"
        mark = " <-- applied" if d.applied else ""
        print(f"{d.time:7.0f} {lam_hat:>6} {mu_hat:>6} {t_opt:>7} "
              f"{d.reason}{mark}")

    t_final = runtime.current_timeout(0).t
    print(f"\nFinal timeout rate: t = {t_final:.2f} "
          f"(offline optimum at lam = {LAM_HIGH:.0f}: {t_high:.2f}, "
          f"error {abs(t_final - t_high) / t_high:.1%})")
    print(f"Run totals: offered {result.offered}, "
          f"completed {result.completed}, killed {result.killed}, "
          f"dropped {result.dropped_arrival + result.dropped_forward}")

    # validate the post-shift stretch against the exact chain at the
    # controller's operating point.  Re-run just that regime so the
    # measurement window is stationary.  In overload the paper's node-2
    # Markovian approximation (the repeat period is resampled as a
    # fresh Erlang rather than the shorter draw that actually fired)
    # overestimates downstream population by ~25-30%, dragging the
    # system rows with it -- the bands below are widened for exactly
    # that, and the raw errors stay visible (see docs/serving.md).
    print("\nValidation of the post-shift regime vs the exact CTMC:")
    steady = DispatchRuntime(
        PoissonLoad(LAM_HIGH, Exponential(MU)),
        TagsPolicy(timeouts=(ErlangTimeout(N, t_final),)),
        CAPS,
        seed=1,
    ).run(8000.0, warmup=500.0)
    model = TagsExponential(lam=LAM_HIGH, mu=MU, t=t_final, n=N,
                            K1=CAPS[0], K2=CAPS[1])
    report = validate_against_model(
        steady, model, rel_tol=0.20, node_tol=0.35
    )
    print(report.format())
    assert report["throughput"].ok and report["mean_jobs_node1"].ok

    print("\nWhat the obs recorder saw (first run):")
    print(f"  serve.job spans:    {len(rec.find_spans('serve.job')):>6}")
    print(f"  serve.retune ticks: {int(rec.counter_total('serve.retune')):>6}"
          f" ({int(rec.counter('serve.retune', applied=True))} applied)")
    kills = sum(
        1 for s in rec.find_spans("serve.job")
        if s.attrs.get("kills", 0) > 0
    )
    print(f"  jobs with kills:   {kills:>6}")
    print("\nEvery span carries virtual timestamps; pipe them out with "
          "obs.write_jsonl(rec, path)\nor run any experiment with "
          "`python -m repro.experiments serve --obs-summary`.")


if __name__ == "__main__":
    main()
