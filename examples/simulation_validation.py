#!/usr/bin/env python
"""Cross-validating the Markovian models against a faithful simulator.

The paper's CTMC makes two approximations the real TAGS system does not:
the deterministic timeout becomes an Erlang clock, and a restarted job's
repeat period is resampled instead of replaying the actual lost work.
This example measures both gaps by simulation, then runs the workload
PEPA cannot express at all -- Harchol-Balter's bounded-Pareto demand with
a deterministic timeout.

Run:  python examples/simulation_validation.py
"""

from repro.dists import BoundedPareto, Exponential
from repro.experiments.config import h2_service_fig9
from repro.models import TagsExponential, TagsHyperExponential
from repro.sim import (
    DeterministicTimeout,
    ErlangTimeout,
    PoissonArrivals,
    Simulation,
    TagsPolicy,
)

T_END, WARMUP = 60_000.0, 3_000.0


def run(demand, timeout, lam, seed=0):
    sim = Simulation(
        PoissonArrivals(lam), demand,
        TagsPolicy(timeouts=(timeout,)), (10, 10), seed=seed,
    )
    return sim.run(t_end=T_END, warmup=WARMUP)


def main() -> None:
    # 1. exact correspondence: Erlang timeout + exponential demand
    lam, mu, t, n = 5.0, 10.0, 51.0, 6
    exact = TagsExponential(lam=lam, mu=mu, t=t, n=n).metrics()
    sim = run(Exponential(mu), ErlangTimeout(n, t), lam)
    print("Erlang timeout + exponential demand (the Figure 3 chain):")
    print(f"  CTMC:       L = {exact.mean_jobs:.4f},  W = {exact.response_time:.4f}")
    print(f"  simulation: L = {sim.mean_jobs:.4f},  W = {sim.mean_response_time:.4f}")

    # 2. the same mean timeout, but deterministic (the real mechanism)
    det = run(Exponential(mu), DeterministicTimeout(n / t), lam, seed=1)
    print("\nDeterministic timeout, same mean (what TAGS really does):")
    print(f"  simulation: L = {det.mean_jobs:.4f},  W = {det.mean_response_time:.4f}")
    print("  -> the Erlang(6) clock is already a close stand-in.")

    # 3. H2 demand: the alpha' repeat-resampling approximation
    service = h2_service_fig9()
    mu1, mu2 = service.rates
    h2_exact = TagsHyperExponential(
        lam=11.0, alpha=0.99, mu1=float(mu1), mu2=float(mu2), t=15.0, n=6
    ).metrics()
    h2_sim = run(service, ErlangTimeout(6, 15.0), 11.0, seed=2)
    print("\nH2 demand (Figure 9 point t=15):")
    print(f"  CTMC:       W = {h2_exact.response_time:.4f},  X = {h2_exact.throughput:.4f}")
    print(f"  simulation: W = {h2_sim.mean_response_time:.4f},  X = {h2_sim.throughput:.4f}")

    # 4. beyond PEPA: bounded-Pareto demand
    bp = BoundedPareto(0.0325, 100.0, 1.1)
    bp_sim = run(bp, DeterministicTimeout(0.3), 8.0, seed=3)
    print(f"\nBounded-Pareto demand (mean {bp.mean:.3f}, SCV {bp.scv:.0f}), "
          "deterministic timeout 0.3:")
    print(f"  simulation: W = {bp_sim.mean_response_time:.4f}, "
          f"mean slowdown = {bp_sim.mean_slowdown:.2f}, "
          f"loss = {bp_sim.loss_probability:.3%}")


if __name__ == "__main__":
    main()
