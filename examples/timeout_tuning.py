#!/usr/bin/env python
"""Tuning the TAGS timeout: Section 4's approximations in practice.

The timeout is TAGS's only knob and the paper shows it is sensitive: this
example walks the three estimation tools in increasing cost order --

1. the unbounded balance equations (closed form / 1-D root),
2. the bounded-queue M/M/1/K fixed point (microseconds per evaluation),
3. exact CTMC optimisation (one sparse solve per candidate t),

and compares what each recommends for the Figure 8 load points.

Run:  python examples/timeout_tuning.py
"""

from repro.approx import (
    TagsFixedPoint,
    erlang_balance_rate,
    exponential_balance_rate,
    optimise_timeout,
)
from repro.models import TagsExponential

MU, N = 10.0, 6


def main() -> None:
    print("Step 1 -- balance equations (load-independent):")
    print(f"  exponential clock: T = {exponential_balance_rate(MU):.3f} "
          "(paper: ~6.17)")
    t_bal = erlang_balance_rate(MU, N)
    print(f"  Erlang({N}) clock:  t = {t_bal:.3f} "
          f"(mean timeout {N / t_bal:.4f})")

    print("\nStep 2+3 -- per-load tuning (minimise mean queue length):")
    print(f"{'lambda':>7} {'fixed point':>12} {'exact CTMC':>11} {'paper':>6}")
    paper = {5.0: 51, 7.0: 49, 9.0: 45, 11.0: 42}
    for lam in (5.0, 7.0, 9.0, 11.0):
        fp = optimise_timeout(
            lambda t: TagsFixedPoint(lam=lam, mu=MU, t=t, n=N),
            "throughput", t_min=5.0, t_max=200.0,
        )
        exact_t = min(
            range(30, 65),
            key=lambda t: TagsExponential(
                lam=lam, mu=MU, t=float(t), n=N
            ).metrics().mean_jobs,
        )
        print(f"{lam:>7.0f} {fp.t_opt:>12.1f} {exact_t:>11d} {paper[lam]:>6d}")

    print("\nThe cost of mistuning (lam = 11):")
    for t in (5.0, 42.0, 300.0):
        m = TagsExponential(lam=11.0, mu=MU, t=t, n=N).metrics()
        print(f"  t = {t:>5.0f}: throughput {m.throughput:.3f}, "
              f"loss {m.loss_rate:.3f}/s")


if __name__ == "__main__":
    main()
