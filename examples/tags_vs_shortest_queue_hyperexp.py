#!/usr/bin/env python
"""Heavy-tailed service: where TAGS earns its keep (Figures 9-10).

Sweeps the timeout rate for the H2 workload of the paper's Figure 9
(1% of jobs are 100x longer than the rest; mean demand 0.1; lam = 11,
so the two-node system runs at 55% nominal load) and prints response
time and throughput against the shortest-queue and random baselines.

Run:  python examples/tags_vs_shortest_queue_hyperexp.py
"""

import numpy as np

from repro.dists import h2_balanced_means
from repro.models import RandomAllocation, ShortestQueue, TagsHyperExponential

LAM = 11.0
SERVICE = h2_balanced_means(mean=0.1, alpha=0.99, ratio=100.0)


def main() -> None:
    mu1, mu2 = SERVICE.rates
    print(f"H2 demand: 99% short (mean {1/mu1:.4f}), "
          f"1% long (mean {1/mu2:.4f}), SCV = {SERVICE.scv:.1f}\n")

    jsq = ShortestQueue(lam=LAM, service=SERVICE, K=10).metrics()
    rnd = RandomAllocation(lam=LAM, service=SERVICE, K=10).metrics()

    print(f"{'t':>6} {'W(TAGS)':>9} {'X(TAGS)':>9}   vs JSQ "
          f"W={jsq.response_time:.4f} X={jsq.throughput:.4f}")
    best = (None, np.inf)
    for t in (4, 8, 10, 12, 15, 20, 30, 40, 60, 90):
        m = TagsHyperExponential(
            lam=LAM, alpha=0.99, mu1=float(mu1), mu2=float(mu2),
            t=float(t), n=6, K1=10, K2=10,
        ).metrics()
        marker = " <- beats JSQ" if m.response_time < jsq.response_time else ""
        print(f"{t:>6} {m.response_time:>9.4f} {m.throughput:>9.4f}{marker}")
        if m.response_time < best[1]:
            best = (t, m.response_time)

    print(f"\nTAGS optimum: t = {best[0]} -> W = {best[1]:.4f} "
          f"({jsq.response_time / best[1]:.2f}x better than JSQ)")
    print(f"Random allocation: W = {rnd.response_time:.4f}, "
          f"loss = {rnd.loss_rate:.3f}/s "
          "(the paper drops it from Figure 9 as 'works poorly').")
    print("\nNote the optimal mean timeout 6/t is several mean service "
          "times long:\nnode 1 should finish as many short jobs as "
          "possible and leave node 2 to the 1% of long ones.")


if __name__ == "__main__":
    main()
