"""Tracing a figure-9 sweep end to end with `repro.obs`.

Demonstrates the three observability primitives on real work:

1. run a (reduced-grid) Figure 9 sweep under a recording
   ``obs.Recorder`` -- every state-space build, steady-state solve and
   cache decision files spans/counters, including anything solved in
   pool workers;
2. re-run the sweep to show cache hits in the counters;
3. re-solve one grid point with the GMRES solver to capture a
   per-iteration residual trace, and export everything: a JSONL event
   log, a CSV of the iteration trace, and the console summary table.

Run:  PYTHONPATH=src python examples/tracing_a_solve.py
"""

import json
import pathlib
import tempfile

from repro import obs
from repro.ctmc.steady import steady_state
from repro.experiments.config import FIG9_PARAMS, h2_service_fig9
from repro.experiments.figures import figure9
from repro.models import TagsHyperExponential

T_GRID = [2.0, 6.0, 10.0, 14.0, 18.0]  # reduced from the paper's 39 points

out_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-obs-"))
trace_file = out_dir / "figure9.jsonl"
csv_file = out_dir / "gmres_residuals.csv"

rec = obs.Recorder()
with obs.use(rec):
    # -- 1. the traced sweep ------------------------------------------
    fig = figure9(t_grid=T_GRID)

    # -- 2. the same sweep again: answered from the cache -------------
    figure9(t_grid=T_GRID)

    # -- 3. one solve with an iterative method, for its residual trace
    service = h2_service_fig9()
    mu1, mu2 = service.rates
    model = TagsHyperExponential(
        lam=FIG9_PARAMS["lam"], alpha=float(service.probs[0]),
        mu1=float(mu1), mu2=float(mu2), t=T_GRID[2],
        n=FIG9_PARAMS["n"], K1=FIG9_PARAMS["K1"], K2=FIG9_PARAMS["K2"],
    )
    steady_state(model.generator, method="gmres")

print(f"figure 9 (reduced grid): TAG response times "
      f"{[round(float(v), 3) for v in fig.series['TAG']]}")
print()

n_events = obs.write_jsonl(rec, trace_file)
n_rows = obs.traces_to_csv(rec, csv_file)
print(f"JSONL event log : {trace_file} ({n_events} events)")
print(f"iteration traces: {csv_file} ({n_rows} rows)")
print()

# the JSONL log is one JSON object per line -- show the span tree roots
roots = [
    e for e in map(json.loads, trace_file.read_text().splitlines())
    if e["type"] == "span" and e["parent"] is None
]
print(f"root spans in the trace: {[r['name'] for r in roots]}")
print(f"span tree covers {rec.coverage():.1%} of recorded wall time")
print()

print(obs.format_summary(rec))
