"""Section 4 of the paper: simple approximations for good timeout values.

* :mod:`~repro.approx.balance` -- the demand-balance equations for
  unbounded queues: exponential timeout (``mu^2 = T^2 + T mu``) and the
  Erlang-timeout generalisation, solved by bracketed root finding.
* :mod:`~repro.approx.fixed_point` -- the bounded-queue decomposition:
  node 1 and node 2 approximated as M/M/1/K queues whose parameters are
  derived from the timeout race, yielding cheap estimates of loss,
  population and throughput as functions of ``t``.
* :mod:`~repro.approx.optimizer` -- timeout optimisation against a chosen
  metric, either on the cheap fixed-point model or on the exact CTMC.
"""

from repro.approx.balance import (
    exponential_balance_rate,
    erlang_balance_rate,
    erlang_balance_residual,
    expected_race_duration,
    timeout_win_probability,
)
from repro.approx.fixed_point import TagsFixedPoint
from repro.approx.optimizer import optimise_timeout, OptimisationResult
from repro.approx.sensitivity import (
    metric_derivative,
    metric_elasticity,
    tuning_tolerance,
)

__all__ = [
    "exponential_balance_rate",
    "erlang_balance_rate",
    "erlang_balance_residual",
    "expected_race_duration",
    "timeout_win_probability",
    "TagsFixedPoint",
    "optimise_timeout",
    "OptimisationResult",
    "metric_derivative",
    "metric_elasticity",
    "tuning_tolerance",
]
