"""Bounded-queue decomposition approximation of TAGS (paper Section 4).

Each node is approximated by an independent M/M/1/K queue whose parameters
come from the timeout race:

* **Node 1**: every head-of-queue attempt occupies the server for
  ``E[min(Erlang(n,t), Exp(mu))] = (1 - p) / mu`` with
  ``p = (t/(t+mu))^n``, so the effective service rate is
  ``mu1_eff = mu / (1 - p)``.  Loss ``l = lam * B(K1)``.
* **Node 2**: sees the timed-out stream ``lam2 = (lam - l) * p`` (the
  paper's formula), and serves each job for a repeat period plus a
  residual: ``E[S2] = n/t + 1/mu`` (the paper prints the reciprocal
  ``(t + s n)/(s t)`` but calls it a rate; we use the duration).

The resulting metric estimates are closed-form in ``t``, so scanning or
optimising over ``t`` costs microseconds -- this is the whole point of
Section 4, versus the ~5k-state CTMC solve per point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.approx.balance import timeout_win_probability
from repro.models.metrics import QueueMetrics, from_population_and_throughput
from repro.models.mm1k import MM1K

__all__ = ["TagsFixedPoint"]


@dataclass(frozen=True)
class TagsFixedPoint:
    """Decomposition estimate of the two-node TAGS system."""

    lam: float = 5.0
    mu: float = 10.0
    t: float = 51.0
    n: int = 6
    K1: int = 10
    K2: int = 10

    def __post_init__(self) -> None:
        if min(self.lam, self.mu, self.t) <= 0:
            raise ValueError("rates must be positive")
        if self.n < 1 or self.K1 < 1 or self.K2 < 1:
            raise ValueError("n, K1, K2 must be >= 1")

    # ------------------------------------------------------------------
    @property
    def timeout_probability(self) -> float:
        """p = P[the head job times out rather than completes]."""
        return timeout_win_probability(self.t, self.mu, self.n)

    def node1(self) -> MM1K:
        p = self.timeout_probability
        mu1_eff = self.mu / (1.0 - p)
        return MM1K(self.lam, mu1_eff, self.K1)

    def node2(self) -> MM1K:
        node1 = self.node1()
        p = self.timeout_probability
        lam2 = node1.throughput * p  # (lam - l) * p
        mean_s2 = self.n / self.t + 1.0 / self.mu  # repeat + residual
        return MM1K(max(lam2, 1e-300), 1.0 / mean_s2, self.K2)

    # ------------------------------------------------------------------
    def metrics(self) -> QueueMetrics:
        """Approximate system metrics (same record as the exact models)."""
        n1 = self.node1()
        n2 = self.node2()
        p = self.timeout_probability
        loss1 = n1.loss_rate
        loss2 = n2.loss_rate
        # successful completions: node-1 services that won the race, plus
        # node-2 completions.  The decomposition is approximate, so the
        # per-node loss estimates need not sum exactly to lam - throughput;
        # they are reported in ``extra`` rather than ``loss_per_node``.
        x1 = n1.throughput * (1.0 - p)
        x2 = n2.throughput
        return from_population_and_throughput(
            mean_jobs_per_node=(n1.mean_jobs, n2.mean_jobs),
            throughput=min(x1 + x2, self.lam),
            offered_load=self.lam,
            utilisation=(n1.utilisation, n2.utilisation),
            extra={
                "timeout_probability": p,
                "lam2": n2.lam,
                "loss1_estimate": loss1,
                "loss2_estimate": loss2,
                "node1_effective_rate": n1.mu,
                "node2_effective_rate": n2.mu,
            },
        )
