"""Timeout optimisation (the practical payoff of Section 4).

``optimise_timeout`` minimises/maximises a metric over the timeout rate
``t`` for any model factory -- the cheap fixed-point approximation, the
exact exponential CTMC, or the H2 CTMC.  A coarse geometric grid brackets
the optimum, golden-section search refines it; the objective is noisy-free
(deterministic solves), so this converges reliably for the unimodal
metrics the paper optimises (queue length, response time, throughput).

Passing a :class:`repro.sweep.ModelSpec` instead of a bare factory routes
every probe through the sweep engine: the bracketing grid is evaluated as
one (optionally parallel) sweep, and all evaluations land in the
content-addressed cache, so repeated optimisations -- and any figure that
later touches the same points -- re-solve nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.optimize import minimize_scalar

from repro.sweep import ModelSpec, SweepEngine, default_engine

__all__ = ["OptimisationResult", "optimise_timeout"]

_METRIC_GETTERS = {
    "mean_jobs": (lambda m: m.mean_jobs, +1),
    "response_time": (lambda m: m.response_time, +1),
    "throughput": (lambda m: m.throughput, -1),  # maximise
    "loss_rate": (lambda m: m.loss_rate, +1),
}


@dataclass(frozen=True)
class OptimisationResult:
    """Outcome of a timeout search."""

    t_opt: float
    value: float
    metric: str
    grid_t: np.ndarray
    grid_values: np.ndarray

    @property
    def mean_timeout(self) -> float | None:
        """n/t when the caller records n in ``extra``; None otherwise."""
        return None


def optimise_timeout(
    model_factory: "Callable | ModelSpec",
    metric: str = "mean_jobs",
    *,
    t_min: float = 0.5,
    t_max: float = 500.0,
    grid_points: int = 40,
    refine: bool = True,
    engine: "SweepEngine | None" = None,
    workers: "int | None" = None,
) -> OptimisationResult:
    """Optimise the timeout rate ``t``.

    Parameters
    ----------
    model_factory :
        ``t -> object with .metrics()`` (e.g. ``lambda t:
        TagsExponential(lam=5, mu=10, t=t)``), or a
        :class:`~repro.sweep.ModelSpec` to evaluate through the sweep
        engine (cached, optionally parallel).
    metric :
        ``"mean_jobs"``, ``"response_time"``, ``"loss_rate"`` (minimised)
        or ``"throughput"`` (maximised).
    t_min, t_max, grid_points :
        Geometric bracketing grid.
    refine :
        Golden-section refinement of the best bracket (exact optimum); when
        False the best grid point is returned (the paper reports *integer*
        optimal t values, so benchmarks use ``refine=False`` on an integer
        grid).
    engine, workers :
        Only used with a ``ModelSpec``: the engine to probe through
        (default: the shared :func:`~repro.sweep.default_engine`) and the
        worker count for the bracketing sweep.
    """
    try:
        getter, sign = _METRIC_GETTERS[metric]
    except KeyError:
        raise ValueError(
            f"unknown metric {metric!r}; choose from {sorted(_METRIC_GETTERS)}"
        )
    if not (0 < t_min < t_max):
        raise ValueError("need 0 < t_min < t_max")

    ts = np.geomspace(t_min, t_max, grid_points)
    if isinstance(model_factory, ModelSpec):
        spec = model_factory
        eng = engine if engine is not None else default_engine()
        sweep = eng.sweep(spec.model_cls, spec.grid(ts), workers=workers)
        vals = np.array([sign * getter(m) for m in sweep.metrics])

        def evaluate(t: float) -> float:
            m, _ = eng.solve(spec.model_cls, spec.params_at(t))
            return sign * getter(m)

    else:
        def evaluate(t: float) -> float:
            return sign * getter(model_factory(t).metrics())

        vals = np.array([evaluate(t) for t in ts])
    k = int(np.argmin(vals))

    if not refine:
        return OptimisationResult(
            float(ts[k]), float(sign * vals[k]), metric, ts, sign * vals
        )

    lo = ts[max(k - 1, 0)]
    hi = ts[min(k + 1, len(ts) - 1)]
    if lo == hi:
        t_opt, v_opt = float(ts[k]), float(vals[k])
    else:
        res = minimize_scalar(
            evaluate,
            bounds=(lo, hi),
            method="bounded",
            options={"xatol": 1e-4 * hi},
        )
        t_opt, v_opt = float(res.x), float(res.fun)
        if vals[k] < v_opt:  # guard: grid point was better
            t_opt, v_opt = float(ts[k]), float(vals[k])
    return OptimisationResult(t_opt, float(sign * v_opt), metric, ts, sign * vals)
