"""Sensitivity of TAGS metrics to the timeout (and other parameters).

The paper warns that TAGS "is also quite sensitive to t, and when poorly
tuned ... the throughput falls significantly", and that the optimum moves
with the demand distribution and arrival rate.  This module quantifies
that: central finite-difference derivatives and elasticities of any metric
with respect to any scalar model parameter, plus a robustness summary
(how far can t drift before the metric degrades by x%?).

Derivatives are computed on the exact CTMC (each evaluation is a sparse
solve), so they are noise-free and a simple central difference with a
relative step is accurate to ~1e-6.

Every function accepts either a bare factory (``x -> model``) or a
:class:`repro.sweep.ModelSpec`; with a spec the evaluations route through
the sweep engine's content-addressed cache, so e.g. a tolerance-band
bisection that re-visits the optimum, or a derivative at a point a figure
already solved, costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sweep import ModelSpec, SweepEngine, default_engine

__all__ = ["metric_derivative", "metric_elasticity", "tuning_tolerance"]


def _metric_value(
    model_factory: "Callable | ModelSpec",
    x: float,
    metric: str,
    engine: "SweepEngine | None" = None,
) -> float:
    if isinstance(model_factory, ModelSpec):
        eng = engine if engine is not None else default_engine()
        m, _ = eng.solve(model_factory.model_cls, model_factory.params_at(x))
        return float(getattr(m, metric))
    return float(getattr(model_factory(x).metrics(), metric))


def metric_derivative(
    model_factory: "Callable | ModelSpec",
    x: float,
    metric: str = "response_time",
    *,
    rel_step: float = 1e-4,
    engine: "SweepEngine | None" = None,
) -> float:
    """Central-difference ``d metric / d x`` at ``x``.

    ``model_factory(x)`` must return an object with ``.metrics()`` (or be
    a :class:`~repro.sweep.ModelSpec`, evaluated through ``engine``).
    """
    if x <= 0:
        raise ValueError("x must be positive")
    h = x * rel_step
    up = _metric_value(model_factory, x + h, metric, engine)
    dn = _metric_value(model_factory, x - h, metric, engine)
    return (up - dn) / (2 * h)


def metric_elasticity(
    model_factory: "Callable | ModelSpec",
    x: float,
    metric: str = "response_time",
    *,
    engine: "SweepEngine | None" = None,
    **kw,
) -> float:
    """Dimensionless elasticity ``(x / m) * dm/dx``: the % change in the
    metric per % change in the parameter."""
    m = _metric_value(model_factory, x, metric, engine)
    if m == 0:
        raise ZeroDivisionError("metric is zero at x")
    return metric_derivative(model_factory, x, metric, engine=engine, **kw) * x / m


@dataclass(frozen=True)
class ToleranceBand:
    """How far the parameter may drift from ``x_opt`` before the metric
    degrades by the given fraction."""

    x_opt: float
    value_opt: float
    lo: float
    hi: float
    degradation: float

    @property
    def relative_width(self) -> float:
        return (self.hi - self.lo) / self.x_opt


def tuning_tolerance(
    model_factory: "Callable | ModelSpec",
    x_opt: float,
    metric: str = "response_time",
    *,
    degradation: float = 0.10,
    maximise: bool = False,
    x_min: float = 1e-3,
    x_max: float = 1e6,
    engine: "SweepEngine | None" = None,
) -> ToleranceBand:
    """Width of the parameter band within which ``metric`` stays within
    ``degradation`` of its value at ``x_opt`` (bisection on both sides).

    ``maximise=True`` treats larger metric values as better (throughput).
    """
    if not (0 < degradation < 1):
        raise ValueError("degradation must be in (0, 1)")
    v_opt = _metric_value(model_factory, x_opt, metric, engine)
    if maximise:
        threshold = v_opt * (1 - degradation)
        bad = lambda v: v < threshold
    else:
        threshold = v_opt * (1 + degradation)
        bad = lambda v: v > threshold

    def find_edge(direction: int) -> float:
        """Bisect for the threshold crossing on one side of x_opt."""
        x_far = x_max if direction > 0 else x_min
        if not bad(_metric_value(model_factory, x_far, metric, engine)):
            return x_far  # never degrades within the search range
        lo, hi = (x_opt, x_far) if direction > 0 else (x_far, x_opt)
        # invariant: metric acceptable at the x_opt side, bad at the far side
        for _ in range(60):
            mid = np.sqrt(lo * hi)  # geometric bisection (scale-free)
            if bad(_metric_value(model_factory, mid, metric, engine)) == (
                direction > 0
            ):
                hi = mid
            else:
                lo = mid
            if hi / lo < 1 + 1e-6:
                break
        return np.sqrt(lo * hi)

    return ToleranceBand(
        x_opt=x_opt,
        value_opt=v_opt,
        lo=find_edge(-1),
        hi=find_edge(+1),
        degradation=degradation,
    )
