"""Demand-balance equations for the TAGS timeout (paper Section 4).

The heuristic: a good timeout equalises the expected *useful* service
demand at the two nodes.  Restricting (as the paper argues) to the
successfully-completing services at node 1 versus the residual services at
node 2:

* **Exponential timeout** at rate ``T`` racing Exponential(mu) service::

      P[timeout] * E[residual]  =  P[service] * E[race | service wins]
      T/(T+mu) * 1/mu           =  mu/(T+mu) * 1/(T+mu)

  which reduces to ``mu^2 = T^2 + T mu`` with positive root
  ``T = mu (sqrt(5) - 1) / 2 ~= 0.618 mu`` (~6.18 for mu = 10; the paper
  quotes "approximately 6.17").

* **Erlang(n, t) timeout** (the model's actual clock)::

      (t/(t+mu))^n / mu  =  mu/(t(t+mu)) * sum_{i=1..n} i (t/(t+mu))^i

  solved numerically for ``t``.  As ``n`` grows the clock becomes
  deterministic and the balance rate per phase grows so that the paper
  reports the *total* timeout rate ``t/n`` tending to roughly 0.9 mu
  (about 9 for mu = 10) -- matching the upper bound of the numerically
  optimal timeout at low arrival rates.

Both sides of the Erlang equation are evaluated in the raw probabilistic
form above; the paper's polynomial simplification
``t^n (t+mu) = (t+mu)^{n+1} - t(mu(n+1) + t)`` is provided for
cross-checking in :func:`erlang_balance_polynomial_residual`.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import brentq

__all__ = [
    "timeout_win_probability",
    "expected_race_duration",
    "exponential_balance_rate",
    "erlang_balance_residual",
    "erlang_balance_polynomial_residual",
    "erlang_balance_rate",
]


def timeout_win_probability(t: float, mu: float, n: int) -> float:
    """P[Erlang(n, t) timeout fires before Exponential(mu) service]."""
    if t <= 0 or mu <= 0 or n < 1:
        raise ValueError("need positive rates and n >= 1")
    return (t / (t + mu)) ** n


def expected_race_duration(t: float, mu: float, n: int) -> float:
    """E[min(Erlang(n, t), Exponential(mu))] -- how long the head job
    occupies node 1's server per attempt.

    Closed form ``(1 - (t/(t+mu))^n) / mu`` (integrate the product of the
    survival functions).
    """
    return (1.0 - timeout_win_probability(t, mu, n)) / mu


def exponential_balance_rate(mu: float) -> float:
    """Balance timeout rate for an exponential clock:
    the positive root of ``mu^2 = T^2 + T mu``."""
    if mu <= 0:
        raise ValueError("mu must be positive")
    return mu * (np.sqrt(5.0) - 1.0) / 2.0


def erlang_balance_residual(t: float, mu: float, n: int) -> float:
    """LHS - RHS of the Erlang balance equation (zero at balance).

    LHS: P[timeout] x mean residual served at node 2.
    RHS: P[service wins at phase i] x conditional mean duration, summed.
    """
    p = t / (t + mu)
    lhs = p**n / mu
    i = np.arange(1, n + 1)
    rhs = (mu / (t * (t + mu))) * float(np.sum(i * p**i))
    return lhs - rhs


def erlang_balance_polynomial_residual(t: float, mu: float, n: int) -> float:
    """The paper's polynomial form ``t^n (t+mu) - [(t+mu)^{n+1} -
    t(mu(n+1) + t)]`` (normalised by ``(t+mu)^{n+1}`` to keep magnitudes
    sane).  Kept for cross-checking the printed algebra."""
    lhs = t**n * (t + mu)
    rhs = (t + mu) ** (n + 1) - t * (mu * (n + 1) + t)
    return (lhs - rhs) / (t + mu) ** (n + 1)


def erlang_balance_rate(mu: float, n: int, *, bracket_hi: float = None) -> float:
    """Solve the Erlang balance equation for the per-phase rate ``t``."""
    if mu <= 0 or n < 1:
        raise ValueError("need positive mu and n >= 1")
    lo = 1e-9 * mu
    hi = bracket_hi if bracket_hi is not None else 100.0 * mu * n
    f = lambda t: erlang_balance_residual(t, mu, n)
    flo, fhi = f(lo), f(hi)
    if flo * fhi > 0:
        raise ValueError(
            f"balance equation not bracketed on [{lo:g}, {hi:g}] "
            f"(f={flo:g}, {fhi:g})"
        )
    return float(brentq(f, lo, hi, xtol=1e-12, rtol=1e-12))
