"""`repro.obs` -- zero-overhead tracing and metrics for the whole library.

A process-global recorder receives **spans** (timed, nestable regions),
**counters/gauges** (event counts and sampled values) and **iteration
traces** (per-iteration residual/step series) from every hot subsystem:
the ``ctmc.steady`` solvers, PEPA state-space exploration, the tuple-BFS
builder, the discrete-event simulator, the sweep engine (including its
``ProcessPoolExecutor`` workers, whose events are shipped back and merged
into the parent recorder) and the ``python -m repro.experiments`` CLI.

The default recorder is a :class:`NullRecorder` whose disabled path is a
single attribute lookup -- with recording off the library runs at full
speed (<2% on ``benchmarks/bench_solvers.py``; ``bench_obs_overhead.py``
and the CI ``obs-overhead`` job enforce this).

Enable recording either in code::

    from repro import obs

    with obs.use(obs.Recorder()) as rec:
        figure9()
    print(obs.format_summary(rec))
    obs.write_jsonl(rec, "trace.jsonl")

or from the environment (consistent with ``REPRO_SWEEP_WORKERS``)::

    REPRO_OBS=record        # in-memory recorder (read back in-process)
    REPRO_OBS=summary       # print a console summary at exit (stderr)
    REPRO_OBS=jsonl:PATH    # append a JSONL event log to PATH at exit

See ``docs/observability.md`` for the recorder API, exporter formats and
the instrumentation map.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager

from repro.obs.export import events, format_summary, traces_to_csv, write_jsonl
from repro.obs.recorder import (
    GaugeStats,
    IterationTrace,
    NullRecorder,
    Recorder,
    Span,
    SpanRecord,
)

__all__ = [
    "OBS_ENV_VAR",
    "GaugeStats",
    "IterationTrace",
    "NullRecorder",
    "Recorder",
    "Span",
    "SpanRecord",
    "recorder",
    "install",
    "use",
    "events",
    "format_summary",
    "traces_to_csv",
    "write_jsonl",
]

OBS_ENV_VAR = "REPRO_OBS"
"""Environment variable enabling recording process-wide."""

_recorder: Recorder = NullRecorder()


def recorder() -> Recorder:
    """The process-global recorder (a :class:`NullRecorder` by default).

    Instrumentation sites call this once per region and gate everything
    on ``rec.enabled`` -- the whole cost of disabled observability.
    """
    return _recorder


def install(rec: "Recorder | None") -> Recorder:
    """Swap the process-global recorder (``None`` restores the null one).
    Returns the recorder now in place."""
    global _recorder
    _recorder = rec if rec is not None else NullRecorder()
    return _recorder


@contextmanager
def use(rec: Recorder):
    """Temporarily install ``rec`` as the process-global recorder::

        with obs.use(obs.Recorder()) as rec:
            ...instrumented work...
        rec.spans, rec.counters, ...   # inspect afterwards
    """
    global _recorder
    prev = _recorder
    _recorder = rec
    try:
        yield rec
    finally:
        _recorder = prev


def _configure_from_env() -> None:
    """Install a recorder according to ``REPRO_OBS`` (no-op when unset).

    Exit hooks only fire when something was recorded, so forked pool
    workers -- which route their events through drained payloads instead
    of their inherited global recorder -- do not write empty exports.
    """
    spec = os.environ.get(OBS_ENV_VAR, "").strip()
    if not spec or spec.lower() in {"0", "off", "none", "null"}:
        return
    kind, _, arg = spec.partition(":")
    kind = kind.lower()
    if kind in {"1", "on", "record", "mem"}:
        install(Recorder())
        return
    if kind in {"summary", "jsonl"}:
        import atexit

        rec = install(Recorder())
        if kind == "jsonl":
            if not arg:
                raise ValueError(f"{OBS_ENV_VAR}=jsonl needs a path: jsonl:PATH")
            atexit.register(lambda: rec.n_events and write_jsonl(rec, arg))
        else:
            atexit.register(
                lambda: rec.n_events
                and print(format_summary(rec), file=sys.stderr)
            )
        return
    raise ValueError(
        f"{OBS_ENV_VAR}={spec!r} not understood; use 'record', 'summary' "
        "or 'jsonl:PATH'"
    )


_configure_from_env()
