"""The recording substrate: spans, counters, gauges, iteration traces.

One process-global recorder (default: :class:`NullRecorder`) receives
every event the instrumented subsystems emit.  The design constraint is
that **disabled observability must cost nothing**: every instrumentation
site first reads the global (:func:`recorder`, a module-global load) and
then checks a single class attribute (``rec.enabled``) before touching
any event machinery, so hot loops pay one attribute lookup when nothing
is recording.  ``benchmarks/bench_obs_overhead.py`` pins this.

Event kinds
-----------

**Spans** are timed, nestable regions with free-form attributes::

    with rec.span("steady_state", method="gmres", n=4200) as sp:
        ...
        sp.set(iterations=37)       # attributes discovered mid-region

Nesting is tracked with an explicit stack: a span entered while another
is open becomes its child (``parent_id``).  Code that already measured a
region by hand can file it with :meth:`Recorder.record_span` instead of
restructuring around a ``with`` block.

**Counters** are monotonic sums keyed by name plus optional attributes
(``rec.add("sim.killed", 3, node=0)``); **gauges** record sampled values
and keep ``count/total/min/max/last``; **iteration traces** store a
``(step, value)`` series from an iterative algorithm (solver residuals,
BFS frontier sizes) as one event rather than thousands of counters.

Cross-process aggregation
-------------------------

A worker in a :class:`~concurrent.futures.ProcessPoolExecutor` installs
its own :class:`Recorder`, does its chunk of work, then ships
:meth:`Recorder.drain` -- a plain picklable payload -- back with its
results; the parent calls :meth:`Recorder.merge`, which re-ids the
child's spans and attaches the child's root spans to whatever span the
parent currently has open.  The sweep engine does exactly this (see
``repro/sweep/engine.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "IterationTrace",
    "GaugeStats",
    "Span",
    "Recorder",
    "NullRecorder",
]


def _attr_key(attrs: dict) -> tuple:
    """Deterministic hashable key for a counter/gauge attribute set."""
    return tuple(sorted(attrs.items())) if attrs else ()


@dataclass(slots=True)
class SpanRecord:
    """One completed timed region."""

    name: str
    t0: float  # perf_counter at entry (absolute, monotonic clock)
    duration: float
    attrs: dict = field(default_factory=dict)
    span_id: int = 0
    parent_id: "int | None" = None

    @property
    def end(self) -> float:
        return self.t0 + self.duration


@dataclass(slots=True)
class IterationTrace:
    """A per-iteration series from one run of an iterative algorithm."""

    name: str
    series: list  # [(step, value), ...]
    attrs: dict = field(default_factory=dict)

    @property
    def n_points(self) -> int:
        return len(self.series)


@dataclass(slots=True)
class GaugeStats:
    """Aggregate of all samples seen for one gauge key."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    last: float = 0.0

    def sample(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Span:
    """Open timed region handed out by :meth:`Recorder.span`.

    Context-manager protocol; :meth:`set` attaches attributes discovered
    while the region runs (iteration counts, result sizes, ...).
    """

    __slots__ = ("_rec", "name", "attrs", "span_id", "parent_id", "t0")

    def __init__(self, rec: "Recorder", name: str, attrs: dict) -> None:
        self._rec = rec
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = None
        self.t0 = 0.0

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        rec = self._rec
        self.span_id = rec._new_id()
        self.parent_id = rec._stack[-1] if rec._stack else None
        rec._stack.append(self.span_id)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self.t0
        rec = self._rec
        if rec._stack and rec._stack[-1] == self.span_id:
            rec._stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        rec.spans.append(
            SpanRecord(
                name=self.name,
                t0=self.t0,
                duration=dur,
                attrs=self.attrs,
                span_id=self.span_id,
                parent_id=self.parent_id,
            )
        )
        return False


class _NullSpan:
    """Reusable no-op stand-in for :class:`Span` (one shared instance)."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """In-memory event store.  ``enabled`` is a *class* attribute so the
    hot-path check compiles to one attribute load on the instance."""

    enabled = True

    def __init__(self) -> None:
        self.spans: "list[SpanRecord]" = []
        self.counters: dict = {}  # (name, attr_key) -> float
        self.gauges: dict = {}  # (name, attr_key) -> GaugeStats
        self.traces: "list[IterationTrace]" = []
        self._stack: "list[int]" = []
        self._next_id = 1
        self.t_origin = time.perf_counter()

    def _new_id(self) -> int:
        sid = self._next_id
        self._next_id += 1
        return sid

    # -- emission ------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        """Open a timed region (use as a context manager)."""
        return Span(self, name, attrs)

    def record_span(self, name: str, t0: float, duration: float, **attrs) -> SpanRecord:
        """File an already-measured region (``t0`` from ``perf_counter``).

        The span is parented to whatever span is currently open, exactly
        as if it had been entered through :meth:`span`.

        This is the per-event hot path for already-timed regions (the
        serve dispatcher files one span per job through it), so it stays
        lean: positional construction, inlined id bump.
        """
        sid = self._next_id
        self._next_id = sid + 1
        stack = self._stack
        rec = SpanRecord(
            name, t0, duration, attrs, sid, stack[-1] if stack else None
        )
        self.spans.append(rec)
        return rec

    def adopt(self, span: SpanRecord) -> SpanRecord:
        """File a caller-constructed :class:`SpanRecord`, assigning it a
        fresh id and the currently open span as parent."""
        span.span_id = self._new_id()
        span.parent_id = self._stack[-1] if self._stack else None
        self.spans.append(span)
        return span

    def add(self, name: str, value: float = 1, **attrs) -> None:
        """Increment a monotonic counter."""
        key = (name, _attr_key(attrs))
        self.counters[key] = self.counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **attrs) -> None:
        """Record one sample of a gauge."""
        key = (name, _attr_key(attrs))
        stats = self.gauges.get(key)
        if stats is None:
            stats = self.gauges[key] = GaugeStats()
        stats.sample(float(value))

    def trace(self, name: str, series, **attrs) -> None:
        """Record one iteration trace (a ``[(step, value), ...]`` series)."""
        self.traces.append(
            IterationTrace(name=name, series=list(series), attrs=attrs)
        )

    # -- read-back -----------------------------------------------------
    def counter(self, name: str, **attrs) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self.counters.get((name, _attr_key(attrs)), 0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter over all attribute sets."""
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def find_spans(self, name: str) -> "list[SpanRecord]":
        return [s for s in self.spans if s.name == name]

    @property
    def n_events(self) -> int:
        return len(self.spans) + len(self.counters) + len(self.gauges) + len(self.traces)

    def wall_time(self) -> float:
        """Span of the monotonic clock covered by recorded spans (first
        entry to last exit); 0 when no spans were recorded."""
        if not self.spans:
            return 0.0
        start = min(s.t0 for s in self.spans)
        end = max(s.end for s in self.spans)
        return end - start

    def coverage(self) -> float:
        """Fraction of :meth:`wall_time` covered by *root* spans.

        Root spans in this library do not overlap (one process-global
        recorder, sequential top-level regions), so the sum of their
        durations over the first-to-last window is the fraction of wall
        time the span tree explains.  The sweep acceptance bar is >= 0.95.
        """
        wall = self.wall_time()
        if wall <= 0:
            return 0.0
        covered = sum(s.duration for s in self.spans if s.parent_id is None)
        return min(covered / wall, 1.0)

    # -- cross-process aggregation -------------------------------------
    def drain(self) -> dict:
        """Detach all buffered events as a plain picklable payload (the
        recorder is left empty).  Ship this from a pool worker back to
        the parent and feed it to :meth:`merge`."""
        payload = {
            "spans": [
                (s.name, s.t0, s.duration, s.attrs, s.span_id, s.parent_id)
                for s in self.spans
            ],
            "counters": dict(self.counters),
            "gauges": {
                k: (g.count, g.total, g.min, g.max, g.last)
                for k, g in self.gauges.items()
            },
            "traces": [(t.name, t.series, t.attrs) for t in self.traces],
            "next_id": self._next_id,
        }
        self.spans = []
        self.counters = {}
        self.gauges = {}
        self.traces = []
        return payload

    def merge(self, payload: "dict | None") -> None:
        """Fold a :meth:`drain` payload (typically from a worker process)
        into this recorder.

        Span ids are offset into this recorder's id space; the payload's
        root spans are re-parented under the currently open span, so a
        sweep's worker solves appear as children of the parent's sweep
        span.  Counters and gauges aggregate; traces append.
        """
        if not payload:
            return
        offset = self._next_id
        attach_to = self._stack[-1] if self._stack else None
        for name, t0, dur, attrs, sid, parent in payload["spans"]:
            self.spans.append(
                SpanRecord(
                    name=name,
                    t0=t0,
                    duration=dur,
                    attrs=attrs,
                    span_id=sid + offset,
                    parent_id=attach_to if parent is None else parent + offset,
                )
            )
        self._next_id += payload["next_id"]
        for key, value in payload["counters"].items():
            self.counters[key] = self.counters.get(key, 0) + value
        for key, (count, total, mn, mx, last) in payload["gauges"].items():
            stats = self.gauges.get(key)
            if stats is None:
                stats = self.gauges[key] = GaugeStats()
            stats.count += count
            stats.total += total
            stats.min = min(stats.min, mn)
            stats.max = max(stats.max, mx)
            stats.last = last
        for name, series, attrs in payload["traces"]:
            self.traces.append(IterationTrace(name=name, series=series, attrs=attrs))

    def clear(self) -> None:
        """Drop all buffered events (ids and origin are kept)."""
        self.spans = []
        self.counters = {}
        self.gauges = {}
        self.traces = []


class NullRecorder(Recorder):
    """The default recorder: every operation is a no-op.

    ``enabled`` is False, so gated instrumentation sites never construct
    events; the unconditional sites (``with rec.span(...)`` in cool code
    paths) get a shared no-op span object.
    """

    enabled = False

    def __init__(self) -> None:  # skip buffer allocation
        self.spans = []
        self.counters = {}
        self.gauges = {}
        self.traces = []
        self._stack = []
        self._next_id = 1
        self.t_origin = 0.0

    def span(self, name: str, **attrs) -> "_NullSpan":  # type: ignore[override]
        return _NULL_SPAN

    def record_span(self, name, t0, duration, **attrs):
        return None

    def adopt(self, span: SpanRecord) -> SpanRecord:
        return span

    def add(self, name, value=1, **attrs) -> None:
        pass

    def gauge(self, name, value, **attrs) -> None:
        pass

    def trace(self, name, series, **attrs) -> None:
        pass
