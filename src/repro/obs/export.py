"""Exporters for recorded observability data.

Three output shapes, matching three consumers:

* :func:`write_jsonl` -- the machine-readable event log.  One JSON object
  per line; the whole export is a **single atomic append** (one
  ``O_APPEND`` write), so concurrent exporters -- e.g. several benchmark
  processes sharing a trace file -- never interleave half-written lines.
* :func:`format_summary` -- the human-readable console table (rendered
  with :func:`repro.experiments.report.render_table`, the same engine
  the figure tables use).
* :func:`traces_to_csv` -- iteration traces (solver residual series, BFS
  frontier series) as a flat CSV for external plotting.
"""

from __future__ import annotations

import json
import os

from repro.obs.recorder import Recorder

__all__ = ["events", "write_jsonl", "traces_to_csv", "format_summary"]


def events(rec: Recorder) -> "list[dict]":
    """Flatten a recorder's buffers into JSON-ready event dicts.

    Span times are reported relative to the recorder's origin so traces
    start near ``t=0`` regardless of process uptime.
    """
    out: "list[dict]" = []
    origin = rec.t_origin
    for s in rec.spans:
        out.append(
            {
                "type": "span",
                "name": s.name,
                "t0": s.t0 - origin,
                "dur": s.duration,
                "id": s.span_id,
                "parent": s.parent_id,
                "attrs": s.attrs,
            }
        )
    for (name, attrs), value in rec.counters.items():
        out.append(
            {"type": "counter", "name": name, "attrs": dict(attrs), "value": value}
        )
    for (name, attrs), g in rec.gauges.items():
        out.append(
            {
                "type": "gauge",
                "name": name,
                "attrs": dict(attrs),
                "count": g.count,
                "mean": g.mean,
                "min": g.min,
                "max": g.max,
                "last": g.last,
            }
        )
    for t in rec.traces:
        out.append(
            {
                "type": "trace",
                "name": t.name,
                "attrs": t.attrs,
                "series": [[step, value] for step, value in t.series],
            }
        )
    return out


def write_jsonl(rec: Recorder, path) -> int:
    """Append the recorder's events to ``path`` as JSON lines.

    The serialised block is written with a single ``write`` on an
    ``O_APPEND`` descriptor, so parallel writers append whole blocks, not
    interleaved fragments.  Returns the number of events written.
    """
    evs = events(rec)
    if not evs:
        return 0
    payload = "".join(
        json.dumps(e, default=str, separators=(",", ":")) + "\n" for e in evs
    ).encode()
    fd = os.open(os.fspath(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, payload)
    finally:
        os.close(fd)
    return len(evs)


def traces_to_csv(rec: Recorder, path) -> int:
    """Write every iteration trace as ``trace, attrs, step, value`` rows.

    Returns the number of data rows written.
    """
    import csv

    rows = 0
    with open(os.fspath(path), "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["trace", "attrs", "step", "value"])
        for t in rec.traces:
            attrs = json.dumps(t.attrs, default=str, sort_keys=True)
            for step, value in t.series:
                writer.writerow([t.name, attrs, step, repr(float(value))])
                rows += 1
    return rows


def format_summary(rec: Recorder) -> str:
    """Aggregate console summary: spans by name, counters, gauges, traces."""
    # deferred: report -> figures -> models is a heavy import chain, and
    # importing it at module load would cycle (figures' solvers import obs)
    from repro.experiments.report import render_table

    lines = [
        f"obs summary: {len(rec.spans)} spans, {len(rec.counters)} counters, "
        f"{len(rec.gauges)} gauges, {len(rec.traces)} traces; "
        f"wall {rec.wall_time():.3f} s, span coverage {rec.coverage():.1%}"
    ]

    by_name: dict = {}
    for s in rec.spans:
        agg = by_name.setdefault(s.name, [0, 0.0, 0.0])
        agg[0] += 1
        agg[1] += s.duration
        agg[2] = max(agg[2], s.duration)
    if by_name:
        rows = [
            [name, n, total, total / n, mx]
            for name, (n, total, mx) in sorted(
                by_name.items(), key=lambda kv: -kv[1][1]
            )
        ]
        lines += [
            "",
            render_table(
                ["span", "count", "total s", "mean s", "max s"], rows
            ),
        ]

    if rec.counters:
        rows = [
            [_key_label(name, attrs), value]
            for (name, attrs), value in sorted(rec.counters.items())
        ]
        lines += ["", render_table(["counter", "value"], rows, float_fmt="{:g}")]

    if rec.gauges:
        rows = [
            [_key_label(name, attrs), g.count, g.min, g.mean, g.max, g.last]
            for (name, attrs), g in sorted(rec.gauges.items())
        ]
        lines += [
            "",
            render_table(["gauge", "n", "min", "mean", "max", "last"], rows),
        ]

    if rec.traces:
        rows = [
            [
                _key_label(t.name, tuple(sorted(t.attrs.items()))),
                t.n_points,
                t.series[-1][0] if t.series else "",
                f"{t.series[-1][1]:.3e}" if t.series else "",
            ]
            for t in rec.traces
        ]
        lines += [
            "",
            render_table(["trace", "points", "last step", "last value"], rows),
        ]
    return "\n".join(lines)


def _key_label(name: str, attrs: tuple) -> str:
    if not attrs:
        return name
    inner = ",".join(f"{k}={v}" for k, v in attrs)
    return f"{name}{{{inner}}}"
