"""Structure-level cache for compile-once / evaluate-many sweeps.

The solve cache (:mod:`repro.sweep.cache`) keys on the *full* parameter
point, so a 16-point lambda grid is 16 misses -- each of which used to
re-explore an identical state space.  This cache keys on the **structure
parameters only** (queue capacities, phase counts, topology flags --
whatever the model class declares shapes its reachability graph) and
stores the expensive frozen artefact: a
:class:`~repro.ctmc.bfs.ChainTemplate` for direct successor-function
models, a :class:`~repro.pepa.compiled.CompiledSpace` for PEPA models.
Rate-only parameters (lambda, mu, t) never enter the key, so the whole
grid shares one entry and exploration happens exactly once per
structure -- the property ``tests/sweep/test_structure_cache.py`` pins
via the ``ctmc.bfs`` / ``pepa.explore.fast`` span counts.

In-memory only, deliberately: the artefacts hold live numpy arrays and
component expressions, rebuilding one takes milliseconds-to-a-second,
and pickling them to disk would dwarf the solve records.  Hits and
misses are counted on the instance and as ``sweep.structure.hit`` /
``sweep.structure.miss`` obs counters; each miss's build runs inside a
``sweep.structure.build`` span.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

from repro import obs

__all__ = ["StructureCache", "structure_cache"]


class StructureCache:
    """Keyed LRU of frozen model structures (templates, compiled spaces).

    Keys must be hashable and should contain *only* structure-shaping
    parameters; including a rate parameter silently degrades the cache
    to one entry per point (correct, just slow).  ``maxsize`` bounds the
    number of live artefacts; least-recently-used entries are evicted.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get_or_build(self, key, builder: Callable[[], object]):
        """Return the cached structure for ``key``, building on miss.

        ``builder`` runs outside the lock (explorations can take
        seconds); two threads racing on the same key may both build, and
        the first store wins -- both get a usable artefact either way.
        """
        rec = obs.recorder()
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if value is not None:
            if rec.enabled:
                rec.add("sweep.structure.hit")
            return value
        with self._lock:
            self.misses += 1
        if rec.enabled:
            rec.add("sweep.structure.miss")
        with rec.span("sweep.structure.build") as sp:
            value = builder()
            sp.set(key=repr(key))
        with self._lock:
            if key not in self._entries:
                self._entries[key] = value
                self._entries.move_to_end(key)
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
            value = self._entries[key]
        return value

    def drop(self, key) -> None:
        """Forget one entry (e.g. after a refill structure mismatch)."""
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


_global = StructureCache()


def structure_cache() -> StructureCache:
    """The process-global structure cache used by the model builders."""
    return _global
