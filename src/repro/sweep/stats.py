"""Per-point observability for sweep runs.

Every sweep returns, alongside the metrics, one :class:`PointStats` per
grid point: which solver ran, whether the point came out of the cache,
whether it was warm-started, the iteration count (iterative methods only),
the verified residual and the wall time.  :class:`SweepResult.summary`
aggregates these so benchmarks can report "N solves, M cache hits, X s"
without re-deriving anything.

Since the :mod:`repro.obs` layer, ``PointStats`` is no longer assembled
by hand: the engine files one ``sweep.point`` span per grid point (into
the process-global recorder when one is enabled) and each ``PointStats``
is *derived from that span* via :meth:`PointStats.from_span` -- the
sweep's own statistics and an exported trace can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PointStats", "SweepResult", "format_sweep_stats"]


@dataclass(frozen=True)
class PointStats:
    """Diagnostics for one grid point of a sweep."""

    index: int
    key: "str | None"
    method: str
    cache_hit: bool
    warm_started: bool
    iterations: "int | None"
    residual: float
    wall_time: float

    @classmethod
    def from_span(cls, span) -> "PointStats":
        """Build the stats record from a ``sweep.point`` span.

        ``span`` is anything with ``.attrs`` and ``.duration`` (a
        :class:`repro.obs.SpanRecord`); the engine constructs these spans
        whether or not a recorder is installed, so stats and trace are
        two views of the same object.
        """
        a = span.attrs
        return cls(
            index=a["index"],
            key=a.get("key"),
            method=a["method"],
            cache_hit=a["cache_hit"],
            warm_started=a["warm_started"],
            iterations=a.get("iterations"),
            residual=a["residual"],
            wall_time=span.duration,
        )


@dataclass
class SweepResult:
    """Outcome of one sweep: per-point metrics plus solver statistics.

    ``metrics[i]`` and ``stats[i]`` describe grid point ``i`` in the order
    the grid was given, regardless of worker scheduling.
    """

    metrics: list
    stats: "list[PointStats]"
    wall_time: float
    workers: int
    params: list = field(default_factory=list)

    @property
    def n_points(self) -> int:
        return len(self.metrics)

    @property
    def n_hits(self) -> int:
        """Points answered from the cache."""
        return sum(1 for s in self.stats if s.cache_hit)

    @property
    def n_solves(self) -> int:
        """Points that actually invoked a steady-state solver."""
        return sum(1 for s in self.stats if not s.cache_hit)

    @property
    def n_warm_started(self) -> int:
        return sum(1 for s in self.stats if s.warm_started)

    def values(self, metric: str):
        """Extract one metric attribute across all points as a list."""
        return [getattr(m, metric) for m in self.metrics]

    def summary(self) -> dict:
        """Aggregate counters for logging/benchmark reports."""
        return {
            "points": self.n_points,
            "solves": self.n_solves,
            "cache_hits": self.n_hits,
            "warm_started": self.n_warm_started,
            "workers": self.workers,
            "wall_time": self.wall_time,
            "solve_time": sum(s.wall_time for s in self.stats if not s.cache_hit),
            "max_residual": max((s.residual for s in self.stats), default=0.0),
        }


def format_sweep_stats(result: SweepResult, label: str = "sweep") -> str:
    """One-line human-readable summary of a sweep (for benchmark output)."""
    s = result.summary()
    return (
        f"{label}: {s['points']} points, {s['solves']} solves, "
        f"{s['cache_hits']} cache hits, {s['warm_started']} warm-started, "
        f"{s['workers']} worker(s), {s['wall_time']:.3f} s wall "
        f"(residual <= {s['max_residual']:.2e})"
    )
