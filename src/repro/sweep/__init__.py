"""Parallel, cached, warm-started parameter sweeps.

Every paper figure is 30-60 independent steady-state solves; threshold-
and timeout-tuning studies need the same shape of dense grid.  This
package makes those sweeps cheap three ways:

* :class:`SweepEngine` fans independent points out over a process pool
  (``REPRO_SWEEP_WORKERS`` or ``workers=`` to configure; serial
  fallback), preserving grid order and determinism;
* :class:`SolveCache` memoizes solves content-addressed by
  ``(model class, params, method, tol)`` -- in-memory LRU plus an
  optional on-disk layer -- so repeated figures and optimiser probes hit
  the cache instead of re-solving;
* consecutive cache misses warm-start the iterative solvers with the
  previous point's stationary vector (``pi0``);
* :class:`StructureCache` memoizes the *reachability structure*
  (compiled PEPA spaces, chain templates) keyed by the structure-shaping
  parameters only, so a rate grid explores each state space exactly once
  and re-evaluates only the generator's rate column per point.

See ``docs/performance.md`` for the full story and
``benchmarks/bench_sweep_engine.py`` for measured speedups.
"""

from repro.sweep.cache import SolveCache, SolveRecord, UncacheableParams, cache_key
from repro.sweep.engine import (
    WORKERS_ENV_VAR,
    ModelSpec,
    SweepEngine,
    default_engine,
    solve_point,
)
from repro.sweep.stats import PointStats, SweepResult, format_sweep_stats
from repro.sweep.structure import StructureCache, structure_cache

__all__ = [
    "StructureCache",
    "structure_cache",
    "SolveCache",
    "SolveRecord",
    "UncacheableParams",
    "cache_key",
    "WORKERS_ENV_VAR",
    "ModelSpec",
    "SweepEngine",
    "default_engine",
    "solve_point",
    "PointStats",
    "SweepResult",
    "format_sweep_stats",
]
