"""Content-addressed caching of steady-state solves.

A solve is identified by a **stable hash** of ``(model class, constructor
parameters, solver method, tolerance)`` -- not by object identity -- so the
same parameter point is recognised across figure functions, optimiser
probes, processes and (with the disk layer) interpreter runs.  The cached
value is a :class:`SolveRecord`: the stationary vector (for warm-starting
neighbouring solves) plus the derived :class:`~repro.models.metrics.
QueueMetrics` and solver diagnostics.

Two layers:

* an in-memory LRU (``maxsize`` records, oldest-used evicted), and
* an optional on-disk layer (``disk_dir``): one pickle file per key,
  written atomically (tmp file + rename).  A corrupt or unreadable file is
  treated as a miss -- the solve is simply recomputed and the file
  rewritten -- so a killed run can never poison future runs.  A file
  that *exists but fails to load* is additionally **quarantined**: moved
  aside to ``<key>.corrupt`` (counted in :attr:`SolveCache.corrupt` and
  as a ``cache.corrupt`` obs event) so the evidence survives for
  debugging instead of being silently overwritten by the recompute.

Parameters that cannot be canonicalised (callables such as
``TagsExponential.t_of_q1``) raise :class:`UncacheableParams`; the sweep
engine catches this and solves the point without caching.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro import obs

__all__ = ["UncacheableParams", "SolveRecord", "SolveCache", "cache_key"]


class UncacheableParams(TypeError):
    """Raised when a parameter value has no stable canonical form."""


def _canon(value):
    """Reduce ``value`` to a deterministic, hashable representation."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips doubles exactly; canonicalise -0.0 and strip
        # numpy scalar types (np.float64 subclasses float but reprs
        # differently under numpy >= 2)
        return repr(float(value) + 0.0)
    if isinstance(value, (np.bool_, np.integer)):
        return _canon(value.item())
    if isinstance(value, np.floating):
        return _canon(float(value))
    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, tuple(_canon(v) for v in value.ravel()))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_canon(v) for v in value))
    if isinstance(value, dict):
        return (
            "map",
            tuple(sorted((str(k), _canon(v)) for k, v in value.items())),
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__qualname__, _canon(dataclasses.asdict(value)))
    # plain objects (e.g. PhaseType distributions): canonicalise their
    # attribute dict -- recursion raises UncacheableParams on anything odd
    attrs = getattr(value, "__dict__", None)
    if attrs:
        return (type(value).__qualname__, _canon(attrs))
    raise UncacheableParams(
        f"parameter of type {type(value).__qualname__} has no stable "
        f"canonical form: {value!r}"
    )


def cache_key(
    model_cls: type,
    params: dict,
    method: str,
    tol: float,
    engine: "str | None" = None,
) -> str:
    """Stable content hash identifying one steady-state solve.

    Any change to the model class, any constructor parameter, the solver
    method or the tolerance yields a different key.  ``engine`` is the
    model's solve-engine tag (``SOLVE_ENGINE`` class attribute, e.g.
    ``"pepa-compiled-v1"``): bumping it when an engine's numerics change
    retires every stale disk entry instead of silently mixing results
    computed by different code paths.
    """
    token = (
        f"{model_cls.__module__}.{model_cls.__qualname__}",
        _canon(dict(params)),
        str(method),
        repr(float(tol)),
        None if engine is None else str(engine),
    )
    return hashlib.sha256(repr(token).encode()).hexdigest()


@dataclass(frozen=True)
class SolveRecord:
    """One cached solve: stationary vector, metrics and diagnostics."""

    pi: "np.ndarray | None"
    metrics: object
    method: str
    iterations: "int | None"
    residual: float
    wall_time: float
    warm_started: bool = False


@dataclass
class SolveCache:
    """Two-layer (memory LRU + optional disk) content-addressed cache.

    Parameters
    ----------
    maxsize :
        Maximum number of records kept in memory; least-recently-used
        records are evicted first.  Evicted records remain on disk when a
        ``disk_dir`` is configured.
    disk_dir :
        Optional directory for the persistent layer.  Created on first
        write.  Corrupt entries are quarantined to ``<key>.corrupt`` and
        recomputed.
    """

    maxsize: int = 1024
    disk_dir: "str | os.PathLike | None" = None
    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    _mem: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self) -> None:
        if self.maxsize < 1:
            raise ValueError("maxsize must be >= 1")

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(os.fspath(self.disk_dir), f"{key}.pkl")

    def get(self, key: str) -> "SolveRecord | None":
        """Return the cached record for ``key``, or None (counted as a
        miss).  Disk hits are promoted into the memory layer."""
        rec = self._mem.get(key)
        if rec is not None:
            self._mem.move_to_end(key)
            self.hits += 1
            return rec
        if self.disk_dir is not None:
            path = self._path(key)
            try:
                with open(path, "rb") as fh:
                    rec = pickle.load(fh)
                if not isinstance(rec, SolveRecord):
                    raise pickle.UnpicklingError("not a SolveRecord")
            except FileNotFoundError:
                rec = None  # plain miss
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                    ImportError, IndexError, ValueError):
                rec = None  # corrupt: quarantine the file, then recompute
                self._quarantine(path)
            if rec is not None:
                self._remember(key, rec)
                self.hits += 1
                return rec
        self.misses += 1
        return None

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside (``<key>.corrupt``) and count it.

        The quarantined copy preserves the bad bytes for post-mortems; a
        later :meth:`put` of the same key recomputes and rewrites the
        live ``.pkl`` untouched by the quarantine.  Failing to move the
        file (e.g. a read-only cache dir) degrades to the old
        treat-as-miss behaviour.
        """
        self.corrupt += 1
        rec = obs.recorder()
        if rec.enabled:
            rec.add("cache.corrupt")
        try:
            os.replace(path, path[: -len(".pkl")] + ".corrupt")
        except OSError:
            pass

    def put(self, key: str, record: SolveRecord) -> None:
        """Store ``record`` in memory (and on disk, when configured)."""
        self._remember(key, record)
        if self.disk_dir is not None:
            os.makedirs(self.disk_dir, exist_ok=True)
            # atomic write: a reader never sees a half-written pickle
            fd, tmp = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(record, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def _remember(self, key: str, record: SolveRecord) -> None:
        self._mem[key] = record
        self._mem.move_to_end(key)
        while len(self._mem) > self.maxsize:
            self._mem.popitem(last=False)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._mem)

    def __contains__(self, key: str) -> bool:
        return key in self._mem

    def clear(self, disk: bool = False) -> None:
        """Drop the memory layer (and the disk layer if ``disk=True``);
        resets the hit/miss counters."""
        self._mem.clear()
        self.hits = self.misses = 0
        if disk and self.disk_dir is not None and os.path.isdir(self.disk_dir):
            for name in os.listdir(self.disk_dir):
                if name.endswith((".pkl", ".corrupt")):
                    try:
                        os.unlink(os.path.join(self.disk_dir, name))
                    except OSError:
                        pass
