"""The parallel sweep engine.

Paper figures and tuning studies are *sweeps*: 30-60 independent
steady-state solves over a parameter grid.  The engine runs such sweeps

* **in parallel** -- independent points fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (serial fallback when
  one worker is enough or multiprocessing is unavailable).  The worker
  count comes from, in order: the ``workers=`` call argument, the
  engine's ``workers`` attribute, the ``REPRO_SWEEP_WORKERS`` environment
  variable, ``os.cpu_count()``;
* **cached** -- every point is first looked up in a content-addressed
  :class:`~repro.sweep.cache.SolveCache`, so re-running a figure, a
  second figure over the same grid, or an optimiser re-probing a point
  costs a dict lookup instead of a solve;
* **warm-started** -- adjacent grid points have nearly identical
  stationary vectors, so consecutive cache misses thread the previous
  point's ``pi`` into the iterative solvers as ``pi0`` (chunk-local in
  the parallel path).  Direct solvers (``gth``/``direct``) ignore the
  hint, which keeps parallel and serial results bit-identical.

The grid order is always preserved in the results, regardless of worker
scheduling, and every point carries a :class:`~repro.sweep.stats.
PointStats` record for observability.

Observability is native, not bolted on: every ``sweep()`` runs inside a
``sweep`` span, every grid point files a ``sweep.point`` span (from
which its :class:`PointStats` is *derived* -- the two can never
disagree), cache traffic increments the ``sweep.cache.hit`` /
``sweep.cache.miss`` counters, and pool workers record into their own
:class:`repro.obs.Recorder` whose drained buffer rides back with each
chunk result and is merged into the parent recorder.  All of it
vanishes behind a single attribute check when the process-global
recorder is the default :class:`~repro.obs.NullRecorder`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro import obs
from repro.ctmc.steady import ITERATIVE_METHODS, steady_state
from repro.obs import SpanRecord
from repro.sweep.cache import SolveCache, SolveRecord, UncacheableParams, cache_key
from repro.sweep.stats import PointStats, SweepResult

__all__ = [
    "WORKERS_ENV_VAR",
    "ModelSpec",
    "SweepEngine",
    "solve_point",
    "default_engine",
]

WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"
"""Environment variable overriding the default worker count."""


def solve_point(
    model_cls: type,
    params: Mapping,
    method: str = "auto",
    tol: float = 1e-8,
    pi0=None,
) -> SolveRecord:
    """Solve one parameter point and return a cacheable record.

    ``model_cls(**params)`` must yield an object with ``.metrics()``.
    Models exposing a ``generator`` (the direct CTMC constructions) are
    solved through :func:`~repro.ctmc.steady.steady_state` with the given
    method/tolerance and optional warm start; closed-form models (e.g.
    :class:`~repro.models.random_alloc.RandomAllocation`) simply have
    their metrics evaluated.

    A ``pi0`` whose length does not match the chain is dropped rather
    than raised: grid neighbours can legitimately have different state
    spaces (e.g. a swept buffer size), and a stale hint must not poison
    the sweep.
    """
    start = time.perf_counter()
    model = model_cls(**params)
    gen = getattr(model, "generator", None)
    if gen is None:
        metrics = model.metrics()
        return SolveRecord(
            pi=None,
            metrics=metrics,
            method="closed_form",
            iterations=None,
            residual=0.0,
            wall_time=time.perf_counter() - start,
        )
    if pi0 is not None and len(pi0) != gen.Q.shape[0]:
        pi0 = None
    info: dict = {}
    pi = steady_state(gen, method=method, tol=tol, pi0=pi0, info=info)
    model._pi = pi  # models lazily solve via .pi; hand them ours
    metrics = model.metrics()
    return SolveRecord(
        pi=pi,
        metrics=metrics,
        method=info.get("method", method),
        iterations=info.get("iterations"),
        residual=float(np.abs(pi @ gen.Q).max()),
        wall_time=time.perf_counter() - start,
        warm_started=bool(info.get("warm_started")),
    )


def _solve_chunk(
    model_cls: type,
    param_list: Sequence[Mapping],
    method: str,
    tol: float,
    warm_start: bool,
    record: bool = False,
) -> "tuple[list[SolveRecord], dict | None]":
    """Worker entry point: solve a contiguous chunk, warm-starting each
    point from its predecessor.  Top-level so it pickles.

    Returns ``(records, obs_payload)``.  With ``record=True`` (the parent
    process has a live recorder) the chunk runs under a private
    :class:`repro.obs.Recorder` and ships its drained buffer back for the
    parent to merge; otherwise the payload is ``None`` and events flow to
    whatever recorder is globally installed (the in-process serial case).
    """
    if record:
        child = obs.Recorder()
        with obs.use(child):
            records, _ = _solve_chunk(model_cls, param_list, method, tol, warm_start)
        return records, child.drain()
    records = []
    pi_prev = None
    for params in param_list:
        rec = solve_point(model_cls, params, method, tol, pi_prev)
        records.append(rec)
        pi_prev = rec.pi if warm_start else None
    return records, None


def _point_span(
    index: int, key: "str | None", rec: SolveRecord, hit: bool, end: float
) -> SpanRecord:
    """The ``sweep.point`` span for one grid point.

    Built unconditionally (30-60 per sweep -- nowhere near a hot loop) so
    :meth:`PointStats.from_span` always has a span to derive from; only
    *filing* it with the recorder is gated on recording being enabled.
    Cache hits carry zero duration: no solver ran.
    """
    wall = 0.0 if hit else rec.wall_time
    return SpanRecord(
        name="sweep.point",
        t0=end - wall,
        duration=wall,
        attrs=dict(
            index=index,
            key=key,
            method=rec.method,
            cache_hit=hit,
            warm_started=rec.warm_started and not hit,
            iterations=rec.iterations,
            residual=rec.residual,
        ),
    )


@dataclass(frozen=True)
class ModelSpec:
    """A cacheable one-parameter model family for optimisers.

    Where the legacy ``model_factory`` closures (``t -> model``) are
    opaque -- nothing outside the closure knows which parameters it
    captured -- a ``ModelSpec`` names the model class, the fixed
    parameters and the swept parameter explicitly, which is exactly what
    the content-addressed cache needs.
    """

    model_cls: type
    params: tuple  # canonical ((name, value), ...) form
    param_name: str = "t"

    @classmethod
    def of(cls, model_cls: type, param_name: str = "t", **params) -> "ModelSpec":
        """Build a spec from keyword parameters."""
        return cls(model_cls, tuple(sorted(params.items())), param_name)

    def params_at(self, x: float) -> dict:
        """Full constructor kwargs with the swept parameter set to ``x``."""
        d = dict(self.params)
        d[self.param_name] = float(x)
        return d

    def grid(self, xs) -> "list[dict]":
        """Constructor kwargs for every point of ``xs``."""
        return [self.params_at(x) for x in xs]

    def __call__(self, x: float):
        """Factory compatibility: ``spec(x)`` builds the model instance."""
        return self.model_cls(**self.params_at(x))


@dataclass
class SweepEngine:
    """Cached, warm-started, optionally parallel sweep executor.

    Parameters
    ----------
    workers :
        Default worker count for :meth:`sweep`.  ``None`` defers to the
        ``REPRO_SWEEP_WORKERS`` environment variable, then
        ``os.cpu_count()``.  ``1`` forces the serial path.
    cache :
        A :class:`~repro.sweep.cache.SolveCache` to share with other
        engines, ``None`` for a private cache, or ``False`` to disable
        caching entirely (every point solves).
    method, tol :
        Defaults forwarded to :func:`~repro.ctmc.steady.steady_state`.
    warm_start :
        Thread each solved point's ``pi`` into the next point's solver as
        ``pi0``.  Only the iterative methods consume the hint.
    """

    workers: "int | None" = None
    cache: "SolveCache | bool | None" = None
    method: str = "auto"
    tol: float = 1e-8
    warm_start: bool = True

    def __post_init__(self) -> None:
        if self.cache is None:
            self.cache = SolveCache()
        elif self.cache is False:
            self.cache = None
        if self.tol <= 0:
            raise ValueError("tol must be positive")

    # ------------------------------------------------------------------
    def resolve_workers(self, workers: "int | None", n_tasks: int) -> int:
        """Effective worker count: argument > engine attribute > env var >
        cpu count, clamped to ``[1, n_tasks]``."""
        if workers is None:
            workers = self.workers
        if workers is None:
            env = os.environ.get(WORKERS_ENV_VAR, "").strip()
            if env:
                try:
                    workers = int(env)
                except ValueError:
                    raise ValueError(
                        f"{WORKERS_ENV_VAR}={env!r} is not an integer"
                    ) from None
        if workers is None:
            workers = os.cpu_count() or 1
        return max(1, min(int(workers), max(n_tasks, 1)))

    def _key(self, model_cls: type, params: Mapping) -> "str | None":
        if self.cache is None:
            return None
        try:
            return cache_key(
                model_cls,
                dict(params),
                self.method,
                self.tol,
                # models solved by a non-reference engine carry a tag so
                # their records never collide with stale disk entries
                # written by another engine version
                engine=getattr(model_cls, "SOLVE_ENGINE", None),
            )
        except UncacheableParams:
            return None

    # ------------------------------------------------------------------
    def solve(self, model_cls: type, params: Mapping, pi0=None):
        """Cache-aware single-point solve.

        Returns ``(metrics, PointStats)``.  Useful for optimiser probes
        and one-off reference points that should share the sweep cache.
        """
        recorder = obs.recorder()
        key = self._key(model_cls, params)
        rec = self.cache.get(key) if key is not None else None
        hit = rec is not None
        if rec is None:
            rec = solve_point(model_cls, params, self.method, self.tol, pi0)
            if key is not None:
                self.cache.put(key, rec)
        recorder.add("sweep.cache.hit" if hit else "sweep.cache.miss")
        span = _point_span(0, key, rec, hit, time.perf_counter())
        recorder.adopt(span)
        return rec.metrics, PointStats.from_span(span)

    def sweep(
        self,
        model_cls: type,
        grid: Sequence[Mapping],
        workers: "int | None" = None,
        warm_start: "bool | None" = None,
    ) -> SweepResult:
        """Solve every parameter point of ``grid`` (a sequence of
        constructor-kwarg mappings) and return a :class:`SweepResult`
        in grid order.

        Cache hits never reach a worker; only the misses are distributed.
        With ``workers > 1`` the misses are split into contiguous chunks
        (one per worker) so warm-start locality survives the fan-out; if
        the pool cannot be used (unpicklable model, restricted platform)
        the engine falls back to the serial path.
        """
        recorder = obs.recorder()
        t_start = time.perf_counter()
        grid = [dict(p) for p in grid]
        warm = self.warm_start if warm_start is None else bool(warm_start)

        with recorder.span(
            "sweep", model=model_cls.__name__, points=len(grid)
        ) as sweep_span:
            keys = [self._key(model_cls, p) for p in grid]
            records: dict[int, SolveRecord] = {}
            hit_flags = [False] * len(grid)
            for i, key in enumerate(keys):
                if key is None:
                    continue
                rec = self.cache.get(key)
                if rec is not None:
                    records[i] = rec
                    hit_flags[i] = True

            misses = [i for i in range(len(grid)) if i not in records]
            n_hits = len(grid) - len(misses)
            recorder.add("sweep.cache.hit", n_hits)
            recorder.add("sweep.cache.miss", len(misses))
            n_workers = self.resolve_workers(workers, len(misses))
            if misses:
                solved = None
                if n_workers > 1 and len(misses) > 1:
                    solved = self._run_parallel(
                        model_cls, grid, misses, n_workers, warm
                    )
                if solved is None:  # serial path (or parallel fallback)
                    n_workers = 1
                    solved = self._run_serial(model_cls, grid, misses, warm)
                for i, rec in zip(misses, solved):
                    records[i] = rec
                    if keys[i] is not None:
                        self.cache.put(keys[i], rec)

            end = time.perf_counter()
            metrics, stats = [], []
            for i in range(len(grid)):
                rec = records[i]
                metrics.append(rec.metrics)
                span = _point_span(i, keys[i], rec, hit_flags[i], end)
                recorder.adopt(span)
                stats.append(PointStats.from_span(span))
            sweep_span.set(
                workers=n_workers, cache_hits=n_hits, solves=len(misses)
            )
            return SweepResult(
                metrics=metrics,
                stats=stats,
                wall_time=time.perf_counter() - t_start,
                workers=n_workers,
                params=grid,
            )

    # ------------------------------------------------------------------
    def _run_serial(self, model_cls, grid, misses, warm) -> "list[SolveRecord]":
        # in-process: solver/BFS events land in the global recorder directly
        records, _ = _solve_chunk(
            model_cls, [grid[i] for i in misses], self.method, self.tol, warm
        )
        return records

    def _run_parallel(
        self, model_cls, grid, misses, n_workers, warm
    ) -> "list[SolveRecord] | None":
        """Fan the misses out over a process pool; None on failure (the
        caller then falls back to the serial path).

        When the parent is recording, each worker records into a private
        recorder and returns its drained buffer with the chunk; the
        buffers are merged here, inside the open ``sweep`` span, so
        worker-side solver spans appear as its children in the export.
        """
        recorder = obs.recorder()
        chunks = [
            [int(i) for i in c] for c in np.array_split(misses, n_workers) if len(c)
        ]
        try:
            with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
                futures = [
                    pool.submit(
                        _solve_chunk,
                        model_cls,
                        [grid[i] for i in chunk],
                        self.method,
                        self.tol,
                        warm,
                        recorder.enabled,
                    )
                    for chunk in chunks
                ]
                per_chunk = [f.result() for f in futures]
        except Exception:  # unpicklable model, no fork support, ...
            return None
        by_index = {}
        for chunk, (recs, payload) in zip(chunks, per_chunk):
            recorder.merge(payload)
            for i, rec in zip(chunk, recs):
                by_index[i] = rec
        return [by_index[i] for i in misses]


_DEFAULT_ENGINE: "SweepEngine | None" = None


def default_engine() -> SweepEngine:
    """The process-wide shared engine (lazily created).

    All figure functions route through this engine, so e.g.
    :func:`~repro.experiments.figures.figure6` and ``figure7`` -- which
    sweep the same grid -- share one solve pass via its cache.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = SweepEngine(cache=SolveCache(maxsize=4096))
    return _DEFAULT_ENGINE
