"""Weighted random allocation (paper Appendix A, Figure 13).

Jobs are split probabilistically between two independent finite queues; for
the homogeneous systems of the paper's figures the split is 50/50, making
each node an M/M/1/K (exponential service) or M/H2/1/K (hyper-exponential)
queue with arrival rate ``lam / 2``.  Because the queues never interact,
the system metrics are sums/combinations of the per-node closed forms --
the Appendix A PEPA model is the parallel composition ``Queue1 || Queue2``
with no shared actions, and the test suite verifies the product-form
shortcut against that PEPA model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dists.phase_type import PhaseType
from repro.models.metrics import QueueMetrics, from_population_and_throughput
from repro.models.mm1k import MM1K
from repro.models.mph1k import MPH1K

__all__ = ["RandomAllocation", "build_random_pepa_model"]


@dataclass
class RandomAllocation:
    """Random split of a Poisson(lam) stream over two finite nodes.

    ``service`` is either a float (exponential rate ``mu``, the Appendix A
    model) or a :class:`~repro.dists.phase_type.PhaseType` service
    distribution (used for the H2 experiments of Figures 9-12).
    ``split`` is the probability of routing to node 1.
    """

    lam: float
    service: "float | PhaseType"
    K: int = 10
    split: float = 0.5

    def __post_init__(self) -> None:
        if not (0 < self.split < 1):
            raise ValueError("split must be in (0, 1)")
        if self.lam <= 0:
            raise ValueError("lam must be positive")
        lam1 = self.lam * self.split
        lam2 = self.lam * (1.0 - self.split)
        if isinstance(self.service, PhaseType):
            self._nodes = (
                MPH1K(lam1, self.service, self.K),
                MPH1K(lam2, self.service, self.K),
            )
        else:
            mu = float(self.service)
            self._nodes = (MM1K(lam1, mu, self.K), MM1K(lam2, mu, self.K))

    @property
    def nodes(self):
        return self._nodes

    def metrics(self) -> QueueMetrics:
        n1, n2 = self._nodes
        return from_population_and_throughput(
            mean_jobs_per_node=(n1.mean_jobs, n2.mean_jobs),
            throughput=n1.throughput + n2.throughput,
            offered_load=self.lam,
            loss_per_node=(n1.loss_rate, n2.loss_rate),
            utilisation=(n1.utilisation, n2.utilisation),
        )


def build_random_pepa_model(lam1: float, lam2: float, mu1: float, mu2: float, N: int):
    """The Appendix A (Figure 13) PEPA model: ``Queue1_0 || Queue2_0``,
    two independent M/M/1/N queues with their own arrival streams."""
    from repro.pepa import (
        Activity,
        Choice,
        Constant,
        Cooperation,
        Model,
        Prefix,
        Rate,
    )

    if min(lam1, lam2, mu1, mu2) <= 0:
        raise ValueError("rates must be positive")
    if N < 1:
        raise ValueError("N must be >= 1")

    def _p(action, rate, target):
        return Prefix(Activity(action, Rate(rate)), Constant(target))

    defs: dict = {}
    for q, lam, mu in ((1, lam1, mu1), (2, lam2, mu2)):
        defs[f"Queue{q}_0"] = _p(f"arrival{q}", lam, f"Queue{q}_1")
        for j in range(1, N):
            defs[f"Queue{q}_{j}"] = Choice(
                _p(f"arrival{q}", lam, f"Queue{q}_{j + 1}"),
                _p(f"service{q}", mu, f"Queue{q}_{j - 1}"),
            )
        defs[f"Queue{q}_{N}"] = _p(f"service{q}", mu, f"Queue{q}_{N - 1}")
    system = Cooperation(Constant("Queue1_0"), Constant("Queue2_0"), frozenset())
    return Model(defs, system)
