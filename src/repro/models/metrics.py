"""The metric record shared by all model solvers.

The paper's finite-queue evaluation revolves around three quantities
(Section 1): **throughput**, **average queue length** and **average
response time** via Little's law on the *successful* throughput.  Loss
splits into drops on arrival at node 1 and drops of timed-out jobs at
node 2 (the latter represent wasted work, Section 1's key observation).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class QueueMetrics:
    """Steady-state performance measures of one system configuration.

    Attributes
    ----------
    mean_jobs :
        Expected total number of jobs in the system, ``E[N]``.
    mean_jobs_per_node :
        Per-queue expectations, ``(E[N1], E[N2], ...)``.
    throughput :
        Rate of *successfully completing* jobs.
    offered_load :
        Raw arrival rate lambda.
    loss_rate :
        ``offered_load - throughput``; further split below when the model
        can distinguish drop points.
    loss_per_node :
        Per-drop-point loss rates (``(arrival drops, node-2 drops, ...)``);
        empty when not distinguishable.
    response_time :
        Little's law: ``mean_jobs / throughput``.
    utilisation :
        Per-server busy probability; empty when not computed.
    extra :
        Model-specific diagnostics (state-space size, timeout throughput,
        ...).
    """

    mean_jobs: float
    mean_jobs_per_node: tuple
    throughput: float
    offered_load: float
    response_time: float
    loss_rate: float
    loss_per_node: tuple = ()
    utilisation: tuple = ()
    extra: dict = field(default_factory=dict)

    @property
    def loss_probability(self) -> float:
        """Fraction of offered jobs that are lost."""
        return self.loss_rate / self.offered_load if self.offered_load else 0.0

    def validate(self, atol: float = 1e-8) -> None:
        """Internal-consistency checks (flow balance, non-negativity)."""
        if self.mean_jobs < -atol:
            raise ValueError(f"negative mean population {self.mean_jobs}")
        if self.throughput < -atol or self.throughput - self.offered_load > 1e-6:
            raise ValueError(
                f"throughput {self.throughput} outside [0, lambda={self.offered_load}]"
            )
        if self.loss_per_node and abs(sum(self.loss_per_node) - self.loss_rate) > max(
            1e-6, atol * self.offered_load
        ):
            raise ValueError(
                f"per-node losses {self.loss_per_node} do not sum to "
                f"{self.loss_rate}"
            )


def from_population_and_throughput(
    *,
    mean_jobs_per_node,
    throughput: float,
    offered_load: float,
    loss_per_node: tuple = (),
    utilisation: tuple = (),
    extra: dict | None = None,
) -> QueueMetrics:
    """Assemble a :class:`QueueMetrics`, deriving the dependent fields."""
    per_node = tuple(float(x) for x in mean_jobs_per_node)
    mean_jobs = float(sum(per_node))
    m = QueueMetrics(
        mean_jobs=mean_jobs,
        mean_jobs_per_node=per_node,
        throughput=float(throughput),
        offered_load=float(offered_load),
        response_time=mean_jobs / throughput if throughput > 0 else float("inf"),
        loss_rate=float(offered_load - throughput),
        loss_per_node=tuple(float(x) for x in loss_per_node),
        utilisation=tuple(float(x) for x in utilisation),
        extra=dict(extra or {}),
    )
    m.validate()
    return m
