"""Classic unbounded-queue closed forms.

Used to interpret the bounded-queue results (and the paper's "W > 1"
aside for random allocation, which matches the *unbounded* M/G/1 value at
the Figure 9 parameters -- see EXPERIMENTS.md):

* Pollaczek-Khinchine mean response time for M/G/1;
* M/M/1 response time;
* mean slowdown of M/G/1 under FCFS (E[W_q]/E[. per-size] + 1 form).
"""

from __future__ import annotations

__all__ = ["mm1_response_time", "mg1_response_time", "mg1_waiting_time"]


def mm1_response_time(lam: float, mu: float) -> float:
    """Unbounded M/M/1: ``1 / (mu - lam)``; requires ``lam < mu``."""
    if lam <= 0 or mu <= 0:
        raise ValueError("rates must be positive")
    if lam >= mu:
        raise ValueError(f"unstable queue: lam={lam} >= mu={mu}")
    return 1.0 / (mu - lam)


def mg1_waiting_time(lam: float, service) -> float:
    """Pollaczek-Khinchine mean waiting time ``lam E[S^2] / (2(1 - rho))``.

    ``service`` needs ``mean`` and ``moment(2)`` (all our distribution
    classes do).
    """
    if lam <= 0:
        raise ValueError("lam must be positive")
    es = service.mean
    es2 = service.moment(2)
    rho = lam * es
    if rho >= 1:
        raise ValueError(f"unstable queue: rho={rho:.3f} >= 1")
    return lam * es2 / (2.0 * (1.0 - rho))


def mg1_response_time(lam: float, service) -> float:
    """Unbounded M/G/1 mean response time, ``E[S] + W_q``."""
    return service.mean + mg1_waiting_time(lam, service)
