"""The paper's queueing models.

Every allocation strategy the paper evaluates is available in two forms
where feasible:

* a **PEPA model** faithful to the figures/appendices (built
  programmatically, analysable with :mod:`repro.pepa`);
* a **direct CTMC** construction (vectorised state enumeration), used for
  the parameter sweeps because it is orders of magnitude faster and is
  cross-validated against the PEPA form in the test suite.

Modules
-------
``tags_pepa``      Figure 3 (exponential TAGS) and Figure 4 (per-place
                   alternative) PEPA builders.
``tags_hyper``     Figure 5 (H2-service TAGS) PEPA builder.
``tags_direct``    direct CTMCs for TAGS with exponential or H2 service,
                   two nodes or the N-node extension.
``random_alloc``   Appendix A weighted random allocation (exp analytic,
                   H2 via M/PH/1/K).
``shortest_queue`` Appendix B shortest-queue strategy (PEPA + direct,
                   exp and H2 service).
``tags_breakdown`` breakdown/repair-extended TAGS (node-2 failure), the
                   CTMC ground truth for ``repro.faults`` injection.
``mm1k``           analytic M/M/1/K formulas.
``mph1k``          M/PH/1/K matrix model.
``metrics``        the shared metric record all solvers return.
"""

from repro.models.metrics import QueueMetrics
from repro.models.mm1k import MM1K
from repro.models.mmck import MMcK, erlang_b, erlang_c
from repro.models.mph1k import MPH1K
from repro.models.tags_breakdown import TagsBreakdown, build_tags_breakdown_model
from repro.models.tags_pepa import TagsPepa, build_tags_model, tags_pepa_metrics
from repro.models.tags_hyper import build_tags_h2_model, tags_h2_pepa_metrics
from repro.models.tags_direct import (
    TagsExponential,
    TagsHyperExponential,
    TagsMultiNode,
)
from repro.models.random_alloc import RandomAllocation
from repro.models.round_robin import RoundRobin
from repro.models.tags_figure4 import Figure4Model
from repro.models.bursty import MMPP2, ShortestQueueMMPP, TagsMMPP
from repro.models.tagged import TaggedJobAnalysis, TaggedJobAnalysisH2
from repro.models.analytic import (
    mg1_response_time,
    mg1_waiting_time,
    mm1_response_time,
)
from repro.models.shortest_queue import ShortestQueue, build_jsq_pepa_model

__all__ = [
    "QueueMetrics",
    "MM1K",
    "MMcK",
    "erlang_b",
    "erlang_c",
    "MPH1K",
    "build_tags_model",
    "tags_pepa_metrics",
    "TagsPepa",
    "TagsBreakdown",
    "build_tags_breakdown_model",
    "build_tags_h2_model",
    "tags_h2_pepa_metrics",
    "TagsExponential",
    "TagsHyperExponential",
    "TagsMultiNode",
    "Figure4Model",
    "MMPP2",
    "ShortestQueueMMPP",
    "TagsMMPP",
    "TaggedJobAnalysis",
    "TaggedJobAnalysisH2",
    "mg1_response_time",
    "mg1_waiting_time",
    "mm1_response_time",
    "RandomAllocation",
    "RoundRobin",
    "ShortestQueue",
    "build_jsq_pepa_model",
]
