"""Shortest-queue (join-the-shortest-queue) allocation, paper Appendix B.

The incoming Poisson stream joins the queue with fewer jobs; ties are split
(50/50 in the homogeneous case, matching Appendix B's ``S_0`` switch with
``lam1 = lam2 = lam / 2``).  A job is lost only when *both* queues are full
-- the structural reason the paper gives for TAGS beating JSQ under
heavy-tailed demand (Section 5).

``ShortestQueue`` builds the chain directly for exponential or H2 service;
:func:`build_jsq_pepa_model` emits the Appendix B PEPA model (switch
component tracking the queue-length difference), cross-validated in the
tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ctmc import action_throughput, steady_state
from repro.dists.families import HyperExponential
from repro.models._bfs import bfs_generator
from repro.models.metrics import QueueMetrics, from_population_and_throughput
from repro.pepa import (
    Activity,
    Choice,
    Constant,
    Cooperation,
    Model,
    Prefix,
    Rate,
    top,
)

__all__ = ["ShortestQueue", "build_jsq_pepa_model"]


@dataclass
class ShortestQueue:
    """JSQ over two finite homogeneous queues.

    ``service`` is a float (exponential rate) or a two-phase
    :class:`~repro.dists.families.HyperExponential`; with H2 service each
    busy queue's head carries its phase (drawn Bernoulli(alpha) whenever a
    new job reaches the server), the same head-phase encoding as the TAGS
    H2 model.
    """

    lam: float
    service: "float | HyperExponential"
    K: int = 10

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise ValueError("lam must be positive")
        if self.K < 1:
            raise ValueError("K must be >= 1")
        if isinstance(self.service, HyperExponential):
            if len(self.service.probs) != 2:
                raise ValueError("only H2 (two-phase) service is supported")
            self._h2 = True
        else:
            self._h2 = False
            if float(self.service) <= 0:
                raise ValueError("service rate must be positive")

    # ------------------------------------------------------------------
    def _successors_exp(self, s):
        n1, n2 = s
        lam, mu, K = self.lam, float(self.service), self.K
        out = []
        # arrival routing
        if n1 < n2:
            dest = [(1.0, 0)]
        elif n2 < n1:
            dest = [(1.0, 1)]
        else:
            dest = [(0.5, 0), (0.5, 1)]
        for w, d in dest:
            n = (n1, n2)[d]
            if n < K:
                nxt = (n1 + 1, n2) if d == 0 else (n1, n2 + 1)
                out.append(("arrival", lam * w, nxt))
            else:
                out.append(("arrloss", lam * w, s))
        if n1 >= 1:
            out.append(("service", mu, (n1 - 1, n2)))
        if n2 >= 1:
            out.append(("service", mu, (n1, n2 - 1)))
        return out

    def _successors_h2(self, s):
        # state: (n1, ph1, n2, ph2); ph in {0 short, 1 long}, 0 when idle
        n1, ph1, n2, ph2 = s
        lam, K = self.lam, self.K
        a = float(self.service.probs[0])
        mu = (float(self.service.rates[0]), float(self.service.rates[1]))
        out = []
        if n1 < n2:
            dest = [(1.0, 0)]
        elif n2 < n1:
            dest = [(1.0, 1)]
        else:
            dest = [(0.5, 0), (0.5, 1)]
        for w, d in dest:
            n = (n1, n2)[d]
            if n >= K:
                out.append(("arrloss", lam * w, s))
            elif n == 0:
                # job starts service immediately: draw its phase
                for phase, p in ((0, a), (1, 1 - a)):
                    if d == 0:
                        out.append(("arrival", lam * w * p, (1, phase, n2, ph2)))
                    else:
                        out.append(("arrival", lam * w * p, (n1, ph1, 1, phase)))
            else:
                if d == 0:
                    out.append(("arrival", lam * w, (n1 + 1, ph1, n2, ph2)))
                else:
                    out.append(("arrival", lam * w, (n1, ph1, n2 + 1, ph2)))

        def depart(which: int):
            if which == 0:
                if n1 == 1:
                    out.append(("service", mu[ph1], (0, 0, n2, ph2)))
                else:
                    out.append(("service", mu[ph1] * a, (n1 - 1, 0, n2, ph2)))
                    out.append(
                        ("service", mu[ph1] * (1 - a), (n1 - 1, 1, n2, ph2))
                    )
            else:
                if n2 == 1:
                    out.append(("service", mu[ph2], (n1, ph1, 0, 0)))
                else:
                    out.append(("service", mu[ph2] * a, (n1, ph1, n2 - 1, 0)))
                    out.append(
                        ("service", mu[ph2] * (1 - a), (n1, ph1, n2 - 1, 1))
                    )

        if n1 >= 1:
            depart(0)
        if n2 >= 1:
            depart(1)
        return out

    # ------------------------------------------------------------------
    @property
    def generator(self):
        if not hasattr(self, "_gen"):
            if self._h2:
                self._gen, self._states, self._index = bfs_generator(
                    (0, 0, 0, 0), self._successors_h2
                )
            else:
                self._gen, self._states, self._index = bfs_generator(
                    (0, 0), self._successors_exp
                )
            self._pi = None
        return self._gen

    @property
    def states(self):
        _ = self.generator
        return self._states

    @property
    def n_states(self) -> int:
        return self.generator.n_states

    @property
    def pi(self) -> np.ndarray:
        _ = self.generator
        if self._pi is None:
            self._pi = steady_state(self._gen)
        return self._pi

    def metrics(self) -> QueueMetrics:
        pi = self.pi
        if self._h2:
            q1 = np.array([s[0] for s in self.states], dtype=float)
            q2 = np.array([s[2] for s in self.states], dtype=float)
        else:
            q1 = np.array([s[0] for s in self.states], dtype=float)
            q2 = np.array([s[1] for s in self.states], dtype=float)
        x = action_throughput(self._gen, pi, "service")
        try:
            loss = action_throughput(self._gen, pi, "arrloss")
        except KeyError:
            loss = 0.0
        return from_population_and_throughput(
            mean_jobs_per_node=(float(pi @ q1), float(pi @ q2)),
            throughput=x,
            offered_load=self.lam,
            loss_per_node=(loss,),
            extra={"n_states": self.n_states},
        )


# ----------------------------------------------------------------------
# Appendix B PEPA model
# ----------------------------------------------------------------------

def _p(action, rate, target):
    r = rate if isinstance(rate, Rate) else Rate(rate)
    return Prefix(Activity(action, r), Constant(target))


def _choice(*terms):
    comp = terms[0]
    for t in terms[1:]:
        comp = Choice(comp, t)
    return comp


def build_jsq_pepa_model(lam: float, mu: float, K: int) -> Model:
    """The Appendix B (Figure 14) PEPA model of two balanced M/M/1/K
    queues under shortest-queue routing.

    The switch component ``S_j`` tracks ``len(queue1) - len(queue2)``
    (j in -K..K): positive difference routes arrivals to queue 2, negative
    to queue 1, zero splits ``lam/2`` each.  A blocked arrival (both
    queues full) is modelled by the queues refusing ``arr``; to keep the
    loss observable an ``arrloss`` self-loop fires while both are full
    (encoded in the full-full switch refinement below is unnecessary --
    loss is computed as ``lam - throughput`` by the caller).
    """
    if lam <= 0 or mu <= 0:
        raise ValueError("rates must be positive")
    if K < 1:
        raise ValueError("K must be >= 1")
    defs: dict = {}
    half = lam / 2.0

    for q in (1, 2):
        arr, serv = f"arr{q}", f"serv{q}"
        defs[f"Queue{q}_0"] = _p(arr, top(), f"Queue{q}_1")
        for j in range(1, K):
            defs[f"Queue{q}_{j}"] = _choice(
                _p(arr, top(), f"Queue{q}_{j + 1}"),
                _p(serv, top(), f"Queue{q}_{j - 1}"),
            )
        defs[f"Queue{q}_{K}"] = _p(serv, top(), f"Queue{q}_{K - 1}")

    # switch: S_j for j = -K .. K (names Sm{k} for negatives)
    def sname(j: int) -> str:
        return f"S_m{-j}" if j < 0 else f"S_{j}"

    for j in range(-K, K + 1):
        terms = []
        if j == 0:
            terms.append(_p("arr1", half, sname(1)))
            terms.append(_p("arr2", half, sname(-1)))
        elif j > 0:  # queue 1 longer: route to queue 2
            terms.append(_p("arr2", lam, sname(j - 1)))
        else:  # queue 2 longer: route to queue 1
            terms.append(_p("arr1", lam, sname(j + 1)))
        if j > -K:
            terms.append(_p("serv1", mu, sname(j - 1)))
        if j < K:
            terms.append(_p("serv2", mu, sname(j + 1)))
        defs[sname(j)] = _choice(*terms)

    queues = Cooperation(Constant("Queue1_0"), Constant("Queue2_0"), frozenset())
    system = Cooperation(
        queues,
        Constant(sname(0)),
        frozenset({"arr1", "arr2", "serv1", "serv2"}),
    )
    return Model(defs, system)
