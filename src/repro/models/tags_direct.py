"""Direct CTMC constructions of the TAGS system.

These build exactly the chains induced by the paper's PEPA models (the test
suite pins PEPA-vs-direct steady-state metrics to ~1e-9), but enumerate
tuple states directly, which makes the Figure 6-12 sweeps fast.

State encodings
---------------
Exponential service (Figure 3)::

    (q1, r1, q2, ph2, r2)

* ``q1``: jobs at node 1 (0..K1); ``r1``: timeout phases remaining
  (n-1..0; the ``timeout`` action fires at 0, so the full clock is
  Erlang(n, t)); invariant ``q1 == 0 -> r1 == n - 1``.
* ``q2``: jobs at node 2; ``ph2``: 0 = head in repeat phase, 1 = head in
  residual service; ``r2``: repeat-timer ticks remaining.

H2 service (Figure 5) adds the head-of-queue phase at node 1 (``ph1``: 0
short / 1 long) and splits node 2's residual into short/long::

    (q1, ph1, r1, q2, ph2, r2)   ph2 in {0 repeat, 1 short, 2 long}

The N-node extension (``TagsMultiNode``) chains the paper's node-2 pattern:
every node ``i >= 2`` gives a timed-out arrival one full repeat cycle
followed by an exponential residual, racing node ``i``'s own timeout
(except the last node, which serves to exhaustion).  For ``i >= 3`` this
under-counts the repeated work (a job restarting at node 3 should repeat
its node-1 *and* node-2 time); the exact multi-repeat encoding is
configurable via ``repeat_cycles`` and defaults to ``i - 1`` cycles, the
faithful kill-and-restart accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ctmc import action_throughput, steady_state
from repro.dists.residual import h2_residual_mixing
from repro.models._bfs import ChainTemplate, StructureMismatch, bfs_generator
from repro.models.metrics import QueueMetrics, from_population_and_throughput
from repro.sweep.structure import structure_cache

__all__ = ["TagsExponential", "TagsHyperExponential", "TagsMultiNode"]


def _templated_build(model):
    """Build ``(generator, states, index)`` through the structure cache.

    Models report the parameters that shape their reachability graph via
    ``_structure_key()`` (``None`` opts out, e.g. unhashable custom
    callables); rate-only parameters stay out of the key, so a sweep
    grid explores each structure once and every further point only
    recomputes the rate column -- vectorised when the class provides
    ``_template_rates``, otherwise by re-enumerating ``_successors``
    over the frozen state list.  A refill whose transition structure
    disagrees with the template (a parameter combination the key failed
    to anticipate) drops the entry and rebuilds from scratch.
    """
    key = model._structure_key()
    initial = model._initial()
    if key is None:
        return bfs_generator(initial, model._successors)

    def build() -> ChainTemplate:
        return ChainTemplate.explore(initial, model._successors)

    cache = structure_cache()
    tpl = cache.get_or_build(key, build)
    rate = model._template_rates(tpl)
    if rate is None:
        try:
            rate = tpl.refill(model._successors)
        except StructureMismatch:
            cache.drop(key)
            tpl = cache.get_or_build(key, build)
            rate = tpl.rate
    return tpl.generator(rate), tpl.states, tpl.index


class _TagsBase:
    """Shared solve/metrics plumbing for the direct TAGS chains."""

    lam: float
    SOLVE_ENGINE = "chain-template-v1"

    def _q1_of(self, state) -> int:
        raise NotImplementedError

    def _q2_of(self, state) -> int:
        raise NotImplementedError

    def _initial(self):
        raise NotImplementedError

    def _structure_key(self):
        """Hashable key of the structure-shaping parameters (or None)."""
        return None

    def _template_rates(self, tpl: ChainTemplate):
        """Vectorised rate column for ``tpl``, or None for generic refill."""
        return None

    def _build(self):
        return _templated_build(self)

    def __init_solver(self) -> None:
        self._gen, self._states, self._index = self._build()
        self._pi = None

    @property
    def generator(self):
        if not hasattr(self, "_gen"):
            self.__init_solver()
        return self._gen

    @property
    def states(self):
        if not hasattr(self, "_gen"):
            self.__init_solver()
        return self._states

    @property
    def n_states(self) -> int:
        return self.generator.n_states

    @property
    def pi(self) -> np.ndarray:
        if getattr(self, "_pi", None) is None:
            _ = self.generator
            self._pi = steady_state(self._gen)
        return self._pi

    def metrics(self) -> QueueMetrics:
        pi = self.pi
        q1 = np.array([self._q1_of(s) for s in self.states], dtype=float)
        q2 = np.array([self._q2_of(s) for s in self.states], dtype=float)
        x_s1 = action_throughput(self._gen, pi, "service1")
        x_s2 = action_throughput(self._gen, pi, "service2")
        x_to = action_throughput(self._gen, pi, "timeout")
        try:
            loss1 = action_throughput(self._gen, pi, "arrloss")
        except KeyError:
            loss1 = 0.0
        loss2 = x_to - x_s2
        return from_population_and_throughput(
            mean_jobs_per_node=(float(pi @ q1), float(pi @ q2)),
            throughput=x_s1 + x_s2,
            offered_load=self.lam,
            loss_per_node=(loss1, loss2),
            extra={
                "n_states": self.n_states,
                "timeout_throughput": x_to,
                "service1_throughput": x_s1,
                "service2_throughput": x_s2,
            },
        )


@dataclass
class TagsExponential(_TagsBase):
    """Two-node TAGS, exponential service (the Figure 3 chain).

    Extensions beyond the paper's homogeneous model (both default off):

    * **heterogeneous nodes** (Section 3: "if the system is heterogeneous
      ... new rates for the ticks of the repeated service and for
      service2"): ``mu2_service`` sets node 2's service rate and
      ``t2`` the repeat-clock rate; both default to ``mu`` / ``t``.
    * **dynamic timeout** (Section 7 future work: "a dynamic timeout
      duration that adapts to queue length"): ``t_of_q1`` maps the
      node-1 queue length to the clock rate used for ticks and the
      timeout; overrides ``t`` at node 1 when given.
    * **resume instead of restart** (the open problem of Section 6:
      "nobody has yet studied the costs and benefits of resume against
      restart"): with ``restart_work=False`` a timed-out job *migrates*
      -- no repeat service at node 2, just its (memoryless) residual --
      turning the system into the multi-level-feedback variant the
      paper's introduction contrasts TAGS with.
    """

    lam: float = 5.0
    mu: float = 10.0
    t: float = 51.0
    n: int = 6
    K1: int = 10
    K2: int = 10
    tick_during_residual: bool = False
    mu2_service: float | None = None
    t2: float | None = None
    t_of_q1: "callable | None" = None
    restart_work: bool = True

    def __post_init__(self) -> None:
        if min(self.lam, self.mu, self.t) <= 0:
            raise ValueError("rates must be positive")
        if self.n < 1 or self.K1 < 1 or self.K2 < 1:
            raise ValueError("n, K1, K2 must be >= 1")
        if self.mu2_service is not None and self.mu2_service <= 0:
            raise ValueError("mu2_service must be positive")
        if self.t2 is not None and self.t2 <= 0:
            raise ValueError("t2 must be positive")
        if self.t_of_q1 is not None:
            for q in range(1, self.K1 + 1):
                if self.t_of_q1(q) <= 0:
                    raise ValueError(f"t_of_q1({q}) must be positive")

    def _q1_of(self, s) -> int:
        return s[0]

    def _q2_of(self, s) -> int:
        return s[2]

    def _successors(self, s):
        q1, r1, q2, ph2, r2 = s
        lam, mu, n = self.lam, self.mu, self.n
        t1 = self.t if self.t_of_q1 is None else float(self.t_of_q1(q1))
        t2 = self.t if self.t2 is None else self.t2
        mu2 = self.mu if self.mu2_service is None else self.mu2_service
        out = []
        # node 1
        if q1 < self.K1:
            out.append(("arrival", lam, (q1 + 1, r1, q2, ph2, r2)))
        else:
            out.append(("arrloss", lam, s))
        top = n - 1  # timer reset value (n Erlang phases: n-1 .. 0)
        if q1 >= 1:
            out.append(("service1", mu, (q1 - 1, top, q2, ph2, r2)))
            if r1 >= 1:
                out.append(("tick1", t1, (q1, r1 - 1, q2, ph2, r2)))
            else:  # r1 == 0: the timeout fires
                if q2 < self.K2:
                    out.append(("timeout", t1, (q1 - 1, top, q2 + 1, ph2, r2)))
                else:
                    out.append(("timeout", t1, (q1 - 1, top, q2, ph2, r2)))
        # node 2
        if q2 >= 1:
            if not self.restart_work:
                # resume/migrate semantics: no repeat phase -- the job's
                # memoryless residual is served directly (state keeps
                # ph2 = 1, r2 = top so the encoding stays uniform)
                out.append(("service2", mu2, (q1, r1, q2 - 1, 1, top)))
            elif ph2 == 0:  # repeat phase
                if r2 >= 1:
                    out.append(("tick2", t2, (q1, r1, q2, 0, r2 - 1)))
                else:
                    out.append(("repeatservice", t2, (q1, r1, q2, 1, top)))
            else:  # residual service
                if self.tick_during_residual and r2 >= 1:
                    out.append(("tick2", t2, (q1, r1, q2, 1, r2 - 1)))
                new_r2 = top if not self.tick_during_residual else r2
                out.append(("service2", mu2, (q1, r1, q2 - 1, 0, new_r2)))
        return out

    def _initial(self):
        ph0 = 0 if self.restart_work else 1
        return (0, self.n - 1, 0, ph0, self.n - 1)

    def _structure_key(self):
        # lam / mu / t / mu2_service / t2 / t_of_q1 scale rates only (all
        # validated positive, so no transition ever drops to rate 0);
        # everything here changes which transitions exist
        return (
            type(self).__qualname__,
            self.n,
            self.K1,
            self.K2,
            self.tick_during_residual,
            self.restart_work,
        )

    def _template_rates(self, tpl: ChainTemplate) -> np.ndarray:
        # every transition's rate is one of a handful of scalars (or a
        # t_of_q1 lookup on the source queue length): identical floats to
        # what _successors emits, so refilled generators are bit-equal
        rate = np.empty(tpl.n_transitions, dtype=np.float64)
        lam = float(self.lam)
        mu = float(self.mu)
        t2 = float(self.t if self.t2 is None else self.t2)
        mu2 = float(self.mu if self.mu2_service is None else self.mu2_service)
        for action, value in (
            ("arrival", lam),
            ("arrloss", lam),
            ("service1", mu),
            ("tick2", t2),
            ("repeatservice", t2),
            ("service2", mu2),
        ):
            rate[tpl.action_mask(action)] = value
        clock = tpl.action_mask("tick1") | tpl.action_mask("timeout")
        if self.t_of_q1 is None:
            rate[clock] = float(self.t)
        else:
            # sources of tick1/timeout always have q1 >= 1 (the clock
            # only runs while node 1 is busy), so index by q1 - 1
            lookup = np.array(
                [float(self.t_of_q1(q)) for q in range(1, self.K1 + 1)]
            )
            q1 = tpl.state_array()[tpl.src[clock], 0]
            rate[clock] = lookup[q1 - 1]
        return rate


@dataclass
class TagsHyperExponential(_TagsBase):
    """Two-node TAGS, H2 service (the Figure 5 chain).

    ``alpha_prime=None`` computes the exact residual-mixing probability
    from the Erlang(n, t) timeout race.
    """

    lam: float = 11.0
    alpha: float = 0.99
    mu1: float = 100.0
    mu2: float = 1.0
    t: float = 51.0
    n: int = 6
    K1: int = 10
    K2: int = 10
    alpha_prime: float | None = None
    tick_during_residual: bool = False

    def __post_init__(self) -> None:
        if min(self.lam, self.mu1, self.mu2, self.t) <= 0:
            raise ValueError("rates must be positive")
        if not (0 < self.alpha < 1):
            raise ValueError("alpha must be in (0, 1)")
        if self.n < 1 or self.K1 < 1 or self.K2 < 1:
            raise ValueError("n, K1, K2 must be >= 1")

    @property
    def resolved_alpha_prime(self) -> float:
        if self.alpha_prime is not None:
            return self.alpha_prime
        return h2_residual_mixing(self.t, self.alpha, self.mu1, self.mu2, self.n)

    @property
    def mean_service(self) -> float:
        return self.alpha / self.mu1 + (1 - self.alpha) / self.mu2

    def _q1_of(self, s) -> int:
        return s[0]

    def _q2_of(self, s) -> int:
        return s[3]

    def _successors(self, s):
        q1, ph1, r1, q2, ph2, r2 = s
        lam, t, n = self.lam, self.t, self.n
        a, ap = self.alpha, self.resolved_alpha_prime
        mu_head = self.mu1 if ph1 == 0 else self.mu2
        out = []

        top = n - 1  # timer reset value (n Erlang phases: n-1 .. 0)

        def node1_departure(action: str, rate: float, q2_next, ph2_next, r2_next):
            """Head leaves node 1; draw the next head's phase if any."""
            if q1 == 1:
                out.append((action, rate, (0, 0, top, q2_next, ph2_next, r2_next)))
            else:
                out.append(
                    (action, rate * a, (q1 - 1, 0, top, q2_next, ph2_next, r2_next))
                )
                out.append(
                    (
                        action,
                        rate * (1 - a),
                        (q1 - 1, 1, top, q2_next, ph2_next, r2_next),
                    )
                )

        # node 1
        if q1 == 0:
            out.append(("arrival", lam * a, (1, 0, top, q2, ph2, r2)))
            out.append(("arrival", lam * (1 - a), (1, 1, top, q2, ph2, r2)))
        elif q1 < self.K1:
            out.append(("arrival", lam, (q1 + 1, ph1, r1, q2, ph2, r2)))
        else:
            out.append(("arrloss", lam, s))
        if q1 >= 1:
            node1_departure("service1", mu_head, q2, ph2, r2)
            if r1 >= 1:
                out.append(("tick1", t, (q1, ph1, r1 - 1, q2, ph2, r2)))
            else:
                if q2 < self.K2:
                    node1_departure("timeout", t, q2 + 1, ph2, r2)
                else:
                    node1_departure("timeout", t, q2, ph2, r2)
        # node 2
        if q2 >= 1:
            if ph2 == 0:  # repeat phase
                if r2 >= 1:
                    out.append(("tick2", t, (q1, ph1, r1, q2, 0, r2 - 1)))
                else:
                    out.append(("repeatservice", t * ap, (q1, ph1, r1, q2, 1, top)))
                    out.append(
                        ("repeatservice", t * (1 - ap), (q1, ph1, r1, q2, 2, top))
                    )
            else:
                mu_res = self.mu1 if ph2 == 1 else self.mu2
                if self.tick_during_residual and r2 >= 1:
                    out.append(("tick2", t, (q1, ph1, r1, q2, ph2, r2 - 1)))
                new_r2 = top if not self.tick_during_residual else r2
                out.append(
                    ("service2", mu_res, (q1, ph1, r1, q2 - 1, 0, new_r2))
                )
        return out

    def _initial(self):
        return (0, 0, self.n - 1, 0, 0, self.n - 1)

    def _structure_key(self):
        # alpha is validated inside (0, 1) so its splits never vanish,
        # but alpha_prime is free: a degenerate value (0 or 1) zeroes one
        # repeatservice branch and drops those transitions, which is a
        # different structure
        ap = self.resolved_alpha_prime
        return (
            type(self).__qualname__,
            self.n,
            self.K1,
            self.K2,
            self.tick_during_residual,
            ap == 0.0,
            ap == 1.0,
        )

    def _template_rates(self, tpl: ChainTemplate) -> np.ndarray:
        S = tpl.state_array()
        src, dst = tpl.src, tpl.dst
        rate = np.empty(tpl.n_transitions, dtype=np.float64)
        lam, t = float(self.lam), float(self.t)
        a = float(self.alpha)
        ap = float(self.resolved_alpha_prime)
        mu1, mu2 = float(self.mu1), float(self.mu2)

        m = tpl.action_mask("arrival")
        # from an empty node 1 the stream splits by the entering head's
        # phase; otherwise the head is unchanged and the full lam flows
        rate[m] = np.where(
            S[src[m], 0] == 0,
            np.where(S[dst[m], 1] == 0, lam * a, lam * (1 - a)),
            lam,
        )
        rate[tpl.action_mask("arrloss")] = lam
        # node-1 departures: head-phase rate times the next head's
        # phase draw (no draw when the queue empties: q1 == 1)
        for action, clock in (("service1", False), ("timeout", True)):
            m = tpl.action_mask(action)
            if not m.any():
                continue
            base = t if clock else np.where(S[src[m], 1] == 0, mu1, mu2)
            branch = np.where(
                S[src[m], 0] == 1,
                1.0,
                np.where(S[dst[m], 1] == 0, a, 1 - a),
            )
            rate[m] = base * branch
        rate[tpl.action_mask("tick1")] = t
        rate[tpl.action_mask("tick2")] = t
        m = tpl.action_mask("repeatservice")
        rate[m] = np.where(S[dst[m], 4] == 1, t * ap, t * (1 - ap))
        m = tpl.action_mask("service2")
        rate[m] = np.where(S[src[m], 4] == 1, mu1, mu2)
        return rate


@dataclass
class TagsMultiNode:
    """N-node TAGS chain with exponential service (paper Section 3: "a
    simple matter to add more nodes").

    Node 1 receives the Poisson stream; every node ``i < N`` races its
    Erlang(n+1, t_i) timeout against the head job's processing; node ``N``
    serves to exhaustion.  A job arriving at node ``i >= 2`` first performs
    ``repeat_cycles(i)`` full repeat cycles (defaults to ``i - 1``:
    kill-and-restart repeats *all* earlier timeout periods) and then its
    exponential residual.

    State: per node ``(q_i, r_i, c_i)`` with ``r_i`` ticks remaining and
    ``c_i`` the head's remaining repeat cycles (``0`` = in residual
    service).  The last node has no timer (``r_N`` fixed at 0).
    """

    lam: float = 5.0
    mu: float = 10.0
    timeouts: tuple = (51.0,)
    n: int = 2
    capacities: tuple = (5, 5)
    repeat_cycles: "callable | None" = None

    def __post_init__(self) -> None:
        self.N = len(self.capacities)
        if self.N < 2:
            raise ValueError("need at least two nodes")
        if len(self.timeouts) != self.N - 1:
            raise ValueError("need one timeout rate per non-final node")
        if min(self.lam, self.mu) <= 0 or min(self.timeouts) <= 0:
            raise ValueError("rates must be positive")
        # remember whether the cycle policy was customised before
        # defaulting it: a custom callable has no hashable identity, so
        # such instances opt out of the structure cache
        self._custom_cycles = self.repeat_cycles is not None
        if self.repeat_cycles is None:
            self.repeat_cycles = lambda i: i - 1  # node index is 1-based

    # ------------------------------------------------------------------
    def _initial(self):
        parts = []
        for i in range(self.N):
            has_timer = i < self.N - 1
            parts.append((0, self.n - 1 if has_timer else 0, 0))
        return tuple(parts)

    def _successors(self, s):
        lam, mu, n = self.lam, self.mu, self.n
        out = []
        state = list(s)

        def with_node(i, node):
            new = state.copy()
            new[i] = node
            return tuple(new)

        def push(i, updates: dict):
            """Apply updates to several nodes at once."""
            new = state.copy()
            for j, node in updates.items():
                new[j] = node
            return tuple(new)

        # arrivals at node 1
        q1, r1, c1 = s[0]
        if q1 < self.capacities[0]:
            out.append(("arrival", lam, with_node(0, (q1 + 1, r1, c1))))
        else:
            out.append(("arrloss", lam, s))

        for i in range(self.N):
            q, r, c = s[i]
            if q == 0:
                continue
            has_timer = i < self.N - 1
            t = self.timeouts[i] if has_timer else None

            def next_head(i=i):
                """Node i after the head departs: reset timer and set the
                repeat count for the next head."""
                cycles = self.repeat_cycles(i + 1) if i >= 1 else 0
                remaining = s[i][0] - 1
                cycles = cycles if remaining >= 1 else 0
                if i < self.N - 1:
                    r_new = self.n - 1
                else:  # last node: r is the repeat countdown
                    r_new = self.n - 1 if cycles >= 1 else 0
                return (remaining, r_new, cycles)

            # processing: repeat cycles then residual
            if c >= 1:
                # repeat cycle driven by a dedicated Erlang(n+1, t_rep);
                # reuse the node's own timer rate (last node uses the
                # previous node's rate, the period it must repeat)
                t_rep = self.timeouts[min(i, self.N - 2)]
                # the repeat cycle shares the countdown r of the node timer
                # only on nodes with a timer; the final node tracks the
                # repeat countdown in r directly.
                if has_timer:
                    # race: timeout (node timer) vs nothing else during
                    # repeat -- both countdowns run on the same Erlang clock
                    # approximation: one clock, timeout wins if it fires
                    # before the repeats finish.  We model the repeat with
                    # its own countdown in c as whole cycles of the shared
                    # clock: each time the clock completes, one repeat cycle
                    # finishes instead of a timeout.
                    if r >= 1:
                        out.append(("tick", t, with_node(i, (q, r - 1, c))))
                    else:
                        out.append(
                            ("repeatservice", t, with_node(i, (q, n - 1, c - 1)))
                        )
                else:
                    if r >= 1:
                        out.append(("tick", t_rep, with_node(i, (q, r - 1, c))))
                    else:
                        out.append(
                            (
                                "repeatservice",
                                t_rep,
                                with_node(i, (q, n - 1 if c > 1 else 0, c - 1)),
                            )
                        )
            else:
                # residual service races the timeout (if any)
                action = "service1" if i == 0 else "service2"
                out.append((action, mu, with_node(i, next_head())))
                if has_timer:
                    if r >= 1:
                        out.append(("tick", t, with_node(i, (q, r - 1, c))))
                    else:
                        # timeout: head moves to node i+1 (or is dropped)
                        qn, rn, cn = s[i + 1]
                        if qn < self.capacities[i + 1]:
                            if qn == 0:
                                cyc = self.repeat_cycles(i + 2)
                                if i + 1 < self.N - 1:
                                    rn2 = self.n - 1
                                else:
                                    rn2 = self.n - 1 if cyc >= 1 else 0
                                node_next = (1, rn2, cyc)
                            else:
                                node_next = (qn + 1, rn, cn)
                            out.append(
                                (
                                    "timeout",
                                    t,
                                    push(i, {i: next_head(), i + 1: node_next}),
                                )
                            )
                        else:
                            out.append(("timeout", t, with_node(i, next_head())))
        return out

    def _structure_key(self):
        if self._custom_cycles:
            return None
        # lam / mu / timeouts are rate-only (validated positive); the
        # node count, capacities, phase count and the default cycle
        # policy determine reachability
        return (type(self).__qualname__, self.n, self.capacities)

    def _template_rates(self, tpl):
        # rates mix per-node timeout indices; the generic successor
        # re-enumeration refill is fast enough for this model
        return None

    SOLVE_ENGINE = "chain-template-v1"

    def _build(self):
        return _templated_build(self)

    @property
    def generator(self):
        if not hasattr(self, "_gen"):
            self._gen, self._states, self._index = self._build()
            self._pi = None
        return self._gen

    @property
    def states(self):
        _ = self.generator
        return self._states

    @property
    def n_states(self) -> int:
        return self.generator.n_states

    @property
    def pi(self) -> np.ndarray:
        _ = self.generator
        if self._pi is None:
            self._pi = steady_state(self._gen)
        return self._pi

    def metrics(self) -> QueueMetrics:
        pi = self.pi
        per_node = []
        for i in range(self.N):
            q = np.array([s[i][0] for s in self.states], dtype=float)
            per_node.append(float(pi @ q))
        x_s1 = action_throughput(self._gen, pi, "service1")
        try:
            x_s2 = action_throughput(self._gen, pi, "service2")
        except KeyError:
            x_s2 = 0.0
        try:
            loss1 = action_throughput(self._gen, pi, "arrloss")
        except KeyError:
            loss1 = 0.0
        throughput = x_s1 + x_s2
        return from_population_and_throughput(
            mean_jobs_per_node=tuple(per_node),
            throughput=throughput,
            offered_load=self.lam,
            extra={"n_states": self.n_states, "arrival_loss": loss1},
        )
