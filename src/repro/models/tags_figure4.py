"""The paper's Figure 4 "alternative model": one component per queue place.

Section 3.1 re-encodes each queue place as its own two-state component so
the model can be analysed by *counting* components per derivative.  We
build exactly that model and analyse it two ways:

* **exact** -- :class:`~repro.pepa.counted.CountedModel` explores the
  identity-free quotient CTMC (the paper's "count the number of
  components behaving as derivative Q1_0");
* **fluid** -- :class:`~repro.pepa.fluid.FluidModel` integrates the ODE
  limit (the paper's Dizzy analysis).

Semantic differences from Figure 3, faithfully preserved (the paper calls
the encodings alternatives but they are *not* bisimilar):

1. **Blocking, not dropping, at node 2.** A ``timeout`` needs a free Q2
   place; when queue 2 is full the clock stalls instead of discarding the
   job.  (Figure 3 self-loops, i.e. drops.)
2. **Pipelined repeat clock.** Waiting Q2 places keep ``tick2`` enabled
   while a residual service is in progress, so the next job's repeat
   period overlaps the current residual -- the "ticking" variant of the
   Figure 3 ambiguity, and more than one place can sit in the residual
   derivative at once.

At the paper's operating points the node-2 loss is tiny, so the encodings
agree closely on queue lengths and throughput; the tests quantify the gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ctmc import action_throughput, steady_state
from repro.models.metrics import QueueMetrics, from_population_and_throughput
from repro.pepa import (
    Activity,
    Choice,
    Constant,
    FluidGroup,
    Model,
    Prefix,
    Rate,
    top,
)
from repro.pepa.counted import CountedModel
from repro.pepa.fluid import FluidModel

__all__ = ["Figure4Model"]


def _p(action, rate, target):
    r = rate if isinstance(rate, Rate) else Rate(rate)
    return Prefix(Activity(action, r), Constant(target))


def _choice(*terms):
    comp = terms[0]
    for t in terms[1:]:
        comp = Choice(comp, t)
    return comp


@dataclass
class Figure4Model:
    """Per-place encoding of the two-node TAGS system."""

    lam: float = 5.0
    mu: float = 10.0
    t: float = 51.0
    n: int = 6
    K1: int = 10
    K2: int = 10

    def __post_init__(self) -> None:
        if min(self.lam, self.mu, self.t) <= 0:
            raise ValueError("rates must be positive")
        if self.n < 1 or self.K1 < 1 or self.K2 < 1:
            raise ValueError("n, K1, K2 must be >= 1")

    # ------------------------------------------------------------------
    def pepa_model(self) -> Model:
        """The sequential definitions of Figure 4 (n-phase timers as in
        ``tags_pepa``)."""
        lam, mu, t, n = self.lam, self.mu, self.t, self.n
        defs: dict = {}
        # queue-1 places
        defs["Q1_0"] = _p("arrival", top(), "Q1_1")
        defs["Q1_1"] = _choice(
            _p("timeout", top(), "Q1_0"),
            _p("service1", top(), "Q1_0"),
            _p("tick1", top(), "Q1_1"),
        )
        # queue-2 places (explicit residual constant instead of the
        # paper's anonymous derivative)
        defs["Q2_0"] = _p("timeout", top(), "Q2_1")
        defs["Q2_1"] = _choice(
            _p("repeatservice", top(), "Q2r"),
            _p("tick2", top(), "Q2_1"),
        )
        defs["Q2r"] = _p("service2", top(), "Q2_0")
        # servers
        defs["S1"] = _choice(
            _p("arrival", lam, "S1"), _p("service1", mu, "S1")
        )
        defs["S2"] = _p("service2", mu, "S2")
        # timers (n Erlang phases)
        top_ref1 = f"Timer1_{n - 1}" if n > 1 else "Timer1_0"
        defs["Timer1_0"] = _choice(
            _p("timeout", t, top_ref1),
            _p("service1", top(), top_ref1),
        )
        for i in range(1, n):
            defs[f"Timer1_{i}"] = _choice(
                _p("tick1", t, f"Timer1_{i - 1}"),
                _p("service1", top(), top_ref1),
            )
        defs["Timer2_0"] = _p(
            "repeatservice", t, f"Timer2_{n - 1}" if n > 1 else "Timer2_0"
        )
        for i in range(1, n):
            defs[f"Timer2_{i}"] = _p("tick2", t, f"Timer2_{i - 1}")
        return Model(defs, Constant("S1"))  # system equation unused here

    def _groups(self, counts_as_float: bool = False):
        n = self.n
        cast = float if counts_as_float else int
        return [
            FluidGroup("q1_places", {"Q1_0": cast(self.K1)}),
            FluidGroup("q2_places", {"Q2_0": cast(self.K2)}),
            FluidGroup("s1", {"S1": cast(1)}),
            FluidGroup("s2", {"S2": cast(1)}),
            FluidGroup("timer1", {f"Timer1_{n - 1}" if n > 1 else "Timer1_0": cast(1)}),
            FluidGroup("timer2", {f"Timer2_{n - 1}" if n > 1 else "Timer2_0": cast(1)}),
        ]

    _SYNCED = {
        "arrival",
        "service1",
        "service2",
        "timeout",
        "tick1",
        "tick2",
        "repeatservice",
    }

    # ------------------------------------------------------------------
    def counted(self) -> CountedModel:
        return CountedModel(self.pepa_model(), self._groups(), self._SYNCED)

    def metrics(self) -> QueueMetrics:
        """Exact metrics of the counted quotient CTMC."""
        cm = self.counted()
        gen, states, _ = cm.explore()
        pi = steady_state(gen)
        q1 = cm.count_reward("q1_places", "Q1_1")
        q2a = cm.count_reward("q2_places", "Q2_1")
        q2b = cm.count_reward("q2_places", "Q2r")
        L1 = float(pi @ np.array([q1(s) for s in states]))
        L2 = float(pi @ np.array([q2a(s) + q2b(s) for s in states]))
        x1 = action_throughput(gen, pi, "service1")
        x2 = action_throughput(gen, pi, "service2")
        x_arr = action_throughput(gen, pi, "arrival")
        return from_population_and_throughput(
            mean_jobs_per_node=(L1, L2),
            throughput=x1 + x2,
            offered_load=self.lam,
            extra={
                "n_states": gen.n_states,
                "accepted_rate": x_arr,
                "timeout_throughput": action_throughput(gen, pi, "timeout"),
            },
        )

    def fluid(self) -> FluidModel:
        """The Dizzy-style ODE limit of the same model."""
        return FluidModel(self.pepa_model(), self._groups(True), self._SYNCED)
