"""Round-robin allocation over two finite queues.

The paper's introduction lists round robin among the obvious
no-size-information strategies ("Assign jobs to service centres on a round
robin basis") but evaluates only random and shortest-queue; we include it
so the benchmarks can report the full strategy set.  The router alternates
deterministically, so the CTMC state carries one extra bit; with
homogeneous nodes round robin interleaves the Poisson stream into two
Erlang-2-ish arrival processes per node, which beats random splitting
(lower arrival variability) but cannot react to queue state like JSQ.

Exponential or two-phase hyper-exponential service, mirroring
:class:`~repro.models.shortest_queue.ShortestQueue`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ctmc import action_throughput, steady_state
from repro.dists.families import HyperExponential
from repro.models._bfs import bfs_generator
from repro.models.metrics import QueueMetrics, from_population_and_throughput

__all__ = ["RoundRobin"]


@dataclass
class RoundRobin:
    """Round-robin dispatch to two bounded homogeneous queues.

    A job routed to a full queue is dropped (the router still advances, as
    a real cyclic dispatcher would).
    """

    lam: float
    service: "float | HyperExponential"
    K: int = 10

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise ValueError("lam must be positive")
        if self.K < 1:
            raise ValueError("K must be >= 1")
        if isinstance(self.service, HyperExponential):
            if len(self.service.probs) != 2:
                raise ValueError("only H2 (two-phase) service is supported")
            self._h2 = True
        else:
            self._h2 = False
            if float(self.service) <= 0:
                raise ValueError("service rate must be positive")

    # ------------------------------------------------------------------
    def _successors_exp(self, s):
        rr, n1, n2 = s
        lam, mu, K = self.lam, float(self.service), self.K
        out = []
        target_len = n1 if rr == 0 else n2
        if target_len < K:
            nxt = (1 - rr, n1 + 1, n2) if rr == 0 else (1 - rr, n1, n2 + 1)
            out.append(("arrival", lam, nxt))
        else:
            out.append(("arrloss", lam, (1 - rr, n1, n2)))
        if n1 >= 1:
            out.append(("service", mu, (rr, n1 - 1, n2)))
        if n2 >= 1:
            out.append(("service", mu, (rr, n1, n2 - 1)))
        return out

    def _successors_h2(self, s):
        rr, n1, ph1, n2, ph2 = s
        lam, K = self.lam, self.K
        a = float(self.service.probs[0])
        mu = (float(self.service.rates[0]), float(self.service.rates[1]))
        out = []
        target_len = n1 if rr == 0 else n2
        if target_len >= K:
            out.append(("arrloss", lam, (1 - rr, n1, ph1, n2, ph2)))
        elif target_len == 0:
            for phase, p in ((0, a), (1, 1 - a)):
                if rr == 0:
                    out.append(("arrival", lam * p, (1, 1, phase, n2, ph2)))
                else:
                    out.append(("arrival", lam * p, (0, n1, ph1, 1, phase)))
        else:
            if rr == 0:
                out.append(("arrival", lam, (1, n1 + 1, ph1, n2, ph2)))
            else:
                out.append(("arrival", lam, (0, n1, ph1, n2 + 1, ph2)))

        def depart(which: int):
            if which == 0:
                rate = mu[ph1]
                if n1 == 1:
                    out.append(("service", rate, (rr, 0, 0, n2, ph2)))
                else:
                    out.append(("service", rate * a, (rr, n1 - 1, 0, n2, ph2)))
                    out.append(
                        ("service", rate * (1 - a), (rr, n1 - 1, 1, n2, ph2))
                    )
            else:
                rate = mu[ph2]
                if n2 == 1:
                    out.append(("service", rate, (rr, n1, ph1, 0, 0)))
                else:
                    out.append(("service", rate * a, (rr, n1, ph1, n2 - 1, 0)))
                    out.append(
                        ("service", rate * (1 - a), (rr, n1, ph1, n2 - 1, 1))
                    )

        if n1 >= 1:
            depart(0)
        if n2 >= 1:
            depart(1)
        return out

    # ------------------------------------------------------------------
    @property
    def generator(self):
        if not hasattr(self, "_gen"):
            if self._h2:
                self._gen, self._states, self._index = bfs_generator(
                    (0, 0, 0, 0, 0), self._successors_h2
                )
            else:
                self._gen, self._states, self._index = bfs_generator(
                    (0, 0, 0), self._successors_exp
                )
            self._pi = None
        return self._gen

    @property
    def states(self):
        _ = self.generator
        return self._states

    @property
    def n_states(self) -> int:
        return self.generator.n_states

    @property
    def pi(self) -> np.ndarray:
        _ = self.generator
        if self._pi is None:
            self._pi = steady_state(self._gen)
        return self._pi

    def metrics(self) -> QueueMetrics:
        pi = self.pi
        if self._h2:
            q1 = np.array([s[1] for s in self.states], dtype=float)
            q2 = np.array([s[3] for s in self.states], dtype=float)
        else:
            q1 = np.array([s[1] for s in self.states], dtype=float)
            q2 = np.array([s[2] for s in self.states], dtype=float)
        x = action_throughput(self._gen, pi, "service")
        try:
            loss = action_throughput(self._gen, pi, "arrloss")
        except KeyError:
            loss = 0.0
        return from_population_and_throughput(
            mean_jobs_per_node=(float(pi @ q1), float(pi @ q2)),
            throughput=x,
            offered_load=self.lam,
            loss_per_node=(loss,),
            extra={"n_states": self.n_states},
        )
