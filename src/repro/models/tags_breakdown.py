"""Breakdown/repair-extended TAGS CTMC (ground truth for fault injection).

Extends the Figure 3 PEPA model (:mod:`repro.models.tags_pepa`) with the
classic machine-breakdown pattern: a two-state *breaker* component

.. code-block:: text

    Avail = (fail2, f).Down
    Down  = (repair2, r).Avail

cooperates with the TAGS system on ``{timeout, service2}``.  While
``Down`` it offers neither action, so node 2 is frozen (no residual
service) **and** node-1 timeouts are blocked -- node 1 serves every job
to exhaustion.  That is exactly the runtime's ``degraded="single_node"``
policy (:class:`repro.faults.FaultInjector`), so this CTMC is the
analytic counterpart of a fault-injected run with node-2 crashes.

Because ``fail2``/``repeat2`` are autonomous (no other component joins
them), the breaker's marginal is exact: availability
``r / (f + r)`` independent of the queueing dynamics -- the first thing
``tests/models/test_tags_breakdown.py`` pins.

The second exact reduction is the *permanently down* regime
(``TagsBreakdown(..., permanently_down=True)``): the breaker starts
``Down`` and never repairs, timeouts never fire, and node 1 becomes a
plain M/M/1/K1 birth-death chain.  :meth:`TagsBreakdown.node1_marginal`
aggregates the stationary vector by queue-1 length and must equal
:meth:`repro.models.mm1k.MM1K.distribution` to solver precision -- the
same target ``serve/validate.py`` holds a degraded *live* runtime to
(there via batch-means confidence intervals, since the runtime decides
the timeout race at service start rather than blocking it continuously).

The blocking-vs-race distinction is the one knowing semantic gap between
this CTMC and the discrete-event hosts: the CTMC suppresses a timeout
the instant the breaker is down, while the hosts suppress it only at
service start.  In the permanently-down regime the two coincide exactly
(no race is ever armed); under intermittent failure they differ by
O(one service time) per transition, which the CI-based validation
absorbs.  See ``docs/robustness.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ctmc import action_throughput, steady_state
from repro.models.metrics import QueueMetrics, from_population_and_throughput
from repro.models.tags_pepa import TagsParameters, build_tags_model
from repro.pepa import (
    Activity,
    Choice,
    Constant,
    Cooperation,
    Model,
    Prefix,
    Rate,
    explore,
    to_generator,
    top,
)

__all__ = ["TagsBreakdown", "build_tags_breakdown_model"]


def build_tags_breakdown_model(
    params: TagsParameters,
    fail: float,
    repair: float,
    *,
    permanently_down: bool = False,
) -> Model:
    """Attach the breakdown breaker to the Figure 3 system.

    The base model's definitions are reused verbatim; only the system
    equation changes: ``(Node1 <timeout> Node2) <timeout, service2>
    Breaker``.  With ``permanently_down`` the breaker is the single
    ``Down`` derivative (kept live by a rate-1 self-loop, which does not
    alter the CTMC) and ``fail``/``repair`` are ignored.
    """
    base = build_tags_model(params)
    defs = dict(base.definitions)
    if permanently_down:
        defs["Down"] = Prefix(
            Activity("breakdown_idle", Rate(1.0)), Constant("Down")
        )
        breaker = Constant("Down")
    else:
        if fail <= 0 or repair <= 0:
            raise ValueError("fail and repair rates must be positive")
        defs["Avail"] = Choice(
            Prefix(Activity("fail2", Rate(fail)), Constant("Down")),
            Choice(
                Prefix(Activity("timeout", top()), Constant("Avail")),
                Prefix(Activity("service2", top()), Constant("Avail")),
            ),
        )
        defs["Down"] = Prefix(
            Activity("repair2", Rate(repair)), Constant("Avail")
        )
        breaker = Constant("Avail")
    system = Cooperation(
        base.system, breaker, frozenset({"timeout", "service2"})
    )
    return Model(defs, system)


@dataclass(frozen=True)
class TagsBreakdown:
    """Two-node exponential TAGS with node-2 breakdown/repair.

    ``fail`` / ``repair`` are the node-2 crash and repair rates (their
    ratio sets availability ``repair / (fail + repair)``);
    ``permanently_down`` pins the breaker down from time zero, the
    regime whose node-1 marginal is exactly M/M/1/K1.  The queueing
    parameters mirror :class:`~repro.models.tags_pepa.TagsParameters`.
    """

    lam: float = 5.0
    mu: float = 10.0
    t: float = 51.0
    n: int = 6
    K1: int = 10
    K2: int = 10
    fail: float = 0.01
    repair: float = 0.05
    permanently_down: bool = False
    tick_during_residual: bool = False

    def params(self) -> TagsParameters:
        return TagsParameters(
            lam=self.lam,
            mu=self.mu,
            t=self.t,
            n=self.n,
            K1=self.K1,
            K2=self.K2,
            tick_during_residual=self.tick_during_residual,
        )

    def build(self) -> Model:
        return build_tags_breakdown_model(
            self.params(),
            self.fail,
            self.repair,
            permanently_down=self.permanently_down,
        )

    @property
    def availability(self) -> float:
        """Analytic node-2 availability (1 when never failing is not an
        option here: the breaker always exists)."""
        if self.permanently_down:
            return 0.0
        return self.repair / (self.fail + self.repair)

    # ------------------------------------------------------------------
    def _solve(self):
        model = self.build()
        space = explore(model)
        gen = to_generator(space)
        pi = steady_state(gen)
        return space, gen, pi

    def metrics(self) -> QueueMetrics:
        """Solve and extract the paper's metrics plus failure extras.

        ``extra`` carries ``availability`` (stationary probability of
        the breaker being up -- equal to the analytic ratio), the usual
        throughput decomposition, and the state count.
        """
        space, gen, pi = self._solve()

        def q1_len(names) -> float:
            for nm in names:
                if nm.startswith("Q1_"):
                    return float(nm[3:])
            raise AssertionError("no Q1 component in state")

        def q2_len(names) -> float:
            for nm in names:
                if nm.startswith("Q2_"):
                    return float(nm[3:])
                if nm.startswith("Q2r_"):
                    return float(nm[4:])
            raise AssertionError("no Q2 component in state")

        def up(names) -> float:
            return 1.0 if "Avail" in names else 0.0

        def throughput_of(action: str) -> float:
            # permanently down, service2/timeout are unreachable and the
            # generator holds no rate matrix for them: throughput is 0
            if action not in gen.action_rates:
                return 0.0
            return action_throughput(gen, pi, action)

        L1 = float(pi @ space.state_reward(q1_len))
        L2 = float(pi @ space.state_reward(q2_len))
        avail = float(pi @ space.state_reward(up))
        x_s1 = throughput_of("service1")
        x_s2 = throughput_of("service2")
        x_to = throughput_of("timeout")
        loss1 = throughput_of("arrloss")
        loss2 = x_to - x_s2
        return from_population_and_throughput(
            mean_jobs_per_node=(L1, L2),
            throughput=x_s1 + x_s2,
            offered_load=self.lam,
            loss_per_node=(loss1, loss2),
            extra={
                "n_states": space.n_states,
                "availability": avail,
                "timeout_throughput": x_to,
                "service1_throughput": x_s1,
                "service2_throughput": x_s2,
            },
        )

    def node1_marginal(self) -> np.ndarray:
        """Stationary distribution of the queue-1 length.

        With ``permanently_down=True`` this must equal
        ``MM1K(lam, mu, K1).distribution()`` exactly (to solver
        tolerance): blocked timeouts make node 1 a birth-death chain.
        """
        space, _, pi = self._solve()
        marginal = np.zeros(self.K1 + 1)

        def add(names, p):
            for nm in names:
                if nm.startswith("Q1_"):
                    marginal[int(nm[3:])] += p
                    return
            raise AssertionError("no Q1 component in state")

        for idx in range(space.n_states):
            add(space.local_names(idx), float(pi[idx]))
        return marginal
