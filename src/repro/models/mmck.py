"""Analytic M/M/c/K: multi-server finite queues, with the Erlang B/C
special cases.

The paper's nodes are single servers, but the natural capacity-planning
question ("would one fast node beat TAGS's two slow ones?") needs the
multi-server closed forms.  Used by the pooled-reference comparisons in
the benchmarks and available as a general building block.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.models.metrics import QueueMetrics, from_population_and_throughput

__all__ = ["MMcK", "erlang_b", "erlang_c"]


@dataclass(frozen=True)
class MMcK:
    """M/M/c/K queue: ``c`` servers, ``K >= c`` total places."""

    lam: float
    mu: float
    c: int
    K: int

    def __post_init__(self) -> None:
        if self.lam <= 0 or self.mu <= 0:
            raise ValueError("rates must be positive")
        if self.c < 1:
            raise ValueError("need at least one server")
        if self.K < self.c:
            raise ValueError("K must be >= c (servers occupy places)")

    # ------------------------------------------------------------------
    def distribution(self) -> np.ndarray:
        """Stationary probabilities of 0..K jobs (birth-death closed
        form, computed in log space for numerical safety)."""
        lam, mu, c, K = self.lam, self.mu, self.c, self.K
        logs = np.zeros(K + 1)
        for n in range(1, K + 1):
            service = mu * min(n, c)
            logs[n] = logs[n - 1] + math.log(lam) - math.log(service)
        logs -= logs.max()
        p = np.exp(logs)
        return p / p.sum()

    @property
    def blocking_probability(self) -> float:
        return float(self.distribution()[self.K])

    @property
    def mean_jobs(self) -> float:
        p = self.distribution()
        return float(np.arange(self.K + 1) @ p)

    @property
    def throughput(self) -> float:
        return self.lam * (1.0 - self.blocking_probability)

    @property
    def utilisation(self) -> float:
        """Mean fraction of busy servers."""
        p = self.distribution()
        busy = np.minimum(np.arange(self.K + 1), self.c)
        return float(busy @ p) / self.c

    @property
    def response_time(self) -> float:
        return self.mean_jobs / self.throughput

    def metrics(self) -> QueueMetrics:
        return from_population_and_throughput(
            mean_jobs_per_node=(self.mean_jobs,),
            throughput=self.throughput,
            offered_load=self.lam,
            loss_per_node=(self.lam * self.blocking_probability,),
            utilisation=(self.utilisation,),
            extra={"blocking_probability": self.blocking_probability},
        )


def erlang_b(offered: float, c: int) -> float:
    """Erlang-B blocking probability (M/M/c/c) via the stable recursion
    ``B_0 = 1, B_c = a B_{c-1} / (c + a B_{c-1})``."""
    if offered <= 0:
        raise ValueError("offered load must be positive")
    if c < 1:
        raise ValueError("need at least one server")
    b = 1.0
    for k in range(1, c + 1):
        b = offered * b / (k + offered * b)
    return b


def erlang_c(offered: float, c: int) -> float:
    """Erlang-C probability of waiting (M/M/c with infinite room);
    requires ``offered < c``."""
    if offered >= c:
        raise ValueError(f"unstable: offered={offered} >= c={c}")
    b = erlang_b(offered, c)
    rho = offered / c
    return b / (1.0 - rho + rho * b)
