"""PEPA model of two-node TAGS with exponential service (paper Figure 3).

The model is generated programmatically (queue sizes are parameters), with
component names matching the paper: ``Q1_i``, ``Timer1_i``, ``Q2_i`` /
``Q2r_i`` (the paper's primed ``Q2'_i``), ``Timer2_i``.

Structure (see DESIGN.md interpretation notes)::

    Node1  =  Q1_0  <service1, tick1, timeout>   Timer1_{n-1}
    Node2  =  Q2_0  <repeatservice, tick2>       Timer2_{n-1}
    System =  Node1 <timeout> Node2

``timeout`` is therefore a three-way synchronisation: Timer1 supplies rate
``t``, Q1 passively sheds the head job, Q2 passively admits it (or drops it
via a self-loop when full).  ``service2`` is *not* in Node2's cooperation
set: Timer2 never performs it (unlike Timer1, which resets on
``service1``), so including it -- as the paper's Figure 4 appears to --
would block queue 2 for ever.  Our well-formedness checker flags exactly
this mistake.

**Timer convention.** The paper is internally inconsistent about ``n``: the
printed component definitions give the timer ``n`` ticks plus the timeout
action (Erlang(n+1, t)), but the prose ("the average total timeout duration
... is simply n/t"), the Section 4 algebra (``(t/(t+mu))^n``) and the
reported state count (4331 at n=6, K1=K2=10) all treat ``n`` as the total
number of Erlang *phases*.  We follow the numerical results: the timer has
derivatives ``Timer_{n-1} .. Timer_0`` (``n-1`` ticks, then ``timeout``),
mean timeout ``n / t``.  With this convention the reachable state space at
n=6, K=10 is exactly ``(K1 n + 1)(K2 (n+1) + 1) = 61 * 71 = 4331``,
matching the paper.

Two encodings of the node-2 timer during the residual service are offered
(``tick_during_residual``): the paper's Figure 3 text includes a
``(tick2, T)`` self-loop in ``Q2'_i`` (the timer keeps running), while the
paper's own state-count formula ``K2 (n+2) + 1`` matches the timer being
frozen until the next repeat phase.  Both are built; metrics differ only
marginally (see ``benchmarks/bench_ablation_tick2.py``).

Loss accounting: a self-loop ``(arrloss, lam)`` is attached to the full
``Q1_K1`` derivative.  Self-loops do not alter the CTMC, but give the
node-1 drop rate directly as an action throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ctmc import (
    action_throughput,
    steady_state,
)
from repro.pepa import (
    Activity,
    Choice,
    Constant,
    Cooperation,
    Model,
    Prefix,
    Rate,
    explore,
    to_generator,
    top,
)
from repro.models.metrics import QueueMetrics, from_population_and_throughput
from repro.sweep.structure import structure_cache

__all__ = [
    "TagsParameters",
    "TagsPepa",
    "build_tags_model",
    "tags_pepa_metrics",
]


@dataclass(frozen=True)
class TagsParameters:
    """Parameters of the Figure 3 model.

    ``n`` is the total number of Erlang phases in the timeout clock
    (``n - 1`` ticks followed by the ``timeout`` action), so the timeout
    duration is Erlang(n, t) with mean ``n / t`` -- the convention of the
    paper's prose and numerical results (see the module docstring).
    """

    lam: float = 5.0
    mu: float = 10.0
    t: float = 51.0
    n: int = 6
    K1: int = 10
    K2: int = 10
    tick_during_residual: bool = False

    def __post_init__(self) -> None:
        if min(self.lam, self.mu, self.t) <= 0:
            raise ValueError("rates must be positive")
        if self.n < 1 or self.K1 < 1 or self.K2 < 1:
            raise ValueError("n, K1, K2 must be >= 1")

    @property
    def mean_timeout(self) -> float:
        """Mean total timeout duration (n Erlang phases at rate t)."""
        return self.n / self.t


def _choice(*terms):
    comp = terms[0]
    for t in terms[1:]:
        comp = Choice(comp, t)
    return comp


def _p(action, rate, target):
    r = rate if isinstance(rate, Rate) else Rate(rate)
    return Prefix(Activity(action, r), Constant(target))


def build_tags_model(params: TagsParameters) -> Model:
    """Construct the Figure 3 PEPA model."""
    lam, mu, t = params.lam, params.mu, params.t
    n, K1, K2 = params.n, params.K1, params.K2
    defs: dict = {}

    # ------------------------------------------------------ queue 1
    defs["Q1_0"] = _p("arrival", lam, "Q1_1")
    for i in range(1, K1):
        defs[f"Q1_{i}"] = _choice(
            _p("arrival", lam, f"Q1_{i + 1}"),
            _p("service1", mu, f"Q1_{i - 1}"),
            _p("timeout", top(), f"Q1_{i - 1}"),
            _p("tick1", top(), f"Q1_{i}"),
        )
    defs[f"Q1_{K1}"] = _choice(
        _p("timeout", top(), f"Q1_{K1 - 1}"),
        _p("tick1", top(), f"Q1_{K1}"),
        _p("service1", mu, f"Q1_{K1 - 1}"),
        _p("arrloss", lam, f"Q1_{K1}"),
    )

    # ------------------------------------------------------ timer 1
    # n Erlang phases: Timer1_{n-1} .. Timer1_1 tick, Timer1_0 fires
    defs["Timer1_0"] = _choice(
        _p("timeout", t, f"Timer1_{n - 1}"),
        _p("service1", top(), f"Timer1_{n - 1}"),
    ) if n > 1 else _choice(
        _p("timeout", t, "Timer1_0"),
        _p("service1", top(), "Timer1_0"),
    )
    for i in range(1, n):
        defs[f"Timer1_{i}"] = _choice(
            _p("tick1", t, f"Timer1_{i - 1}"),
            _p("service1", top(), f"Timer1_{n - 1}"),
        )

    # ------------------------------------------------------ queue 2
    defs["Q2_0"] = _p("timeout", top(), "Q2_1")
    for i in range(1, K2):
        defs[f"Q2_{i}"] = _choice(
            _p("timeout", top(), f"Q2_{i + 1}"),
            _p("tick2", top(), f"Q2_{i}"),
            _p("repeatservice", top(), f"Q2r_{i}"),
        )
        residual_terms = [
            _p("timeout", top(), f"Q2r_{i + 1}"),
            _p("service2", mu, f"Q2_{i - 1}"),
        ]
        if params.tick_during_residual:
            residual_terms.insert(1, _p("tick2", top(), f"Q2r_{i}"))
        defs[f"Q2r_{i}"] = _choice(*residual_terms)
    defs[f"Q2_{K2}"] = _choice(
        _p("timeout", top(), f"Q2_{K2}"),
        _p("tick2", top(), f"Q2_{K2}"),
        _p("repeatservice", top(), f"Q2r_{K2}"),
    )
    residual_terms = [
        _p("timeout", top(), f"Q2r_{K2}"),
        _p("service2", mu, f"Q2_{K2 - 1}"),
    ]
    if params.tick_during_residual:
        residual_terms.insert(1, _p("tick2", top(), f"Q2r_{K2}"))
    defs[f"Q2r_{K2}"] = _choice(*residual_terms)

    # ------------------------------------------------------ timer 2
    defs["Timer2_0"] = _p(
        "repeatservice", t, f"Timer2_{n - 1}" if n > 1 else "Timer2_0"
    )
    for i in range(1, n):
        defs[f"Timer2_{i}"] = _p("tick2", t, f"Timer2_{i - 1}")

    node1 = Cooperation(
        Constant("Q1_0"),
        Constant(f"Timer1_{n - 1}"),
        frozenset({"service1", "tick1", "timeout"}),
    )
    node2 = Cooperation(
        Constant("Q2_0"),
        Constant(f"Timer2_{n - 1}"),
        frozenset({"repeatservice", "tick2"}),
    )
    system = Cooperation(node1, node2, frozenset({"timeout"}))
    return Model(defs, system)


def _q1_len(names) -> float:
    for nm in names:
        if nm.startswith("Q1_"):
            return float(nm[3:])
    raise AssertionError("no Q1 component in state")


def _q2_len(names) -> float:
    for nm in names:
        if nm.startswith("Q2_"):
            return float(nm[3:])
        if nm.startswith("Q2r_"):
            return float(nm[4:])
    raise AssertionError("no Q2 component in state")


def tags_pepa_metrics(params: TagsParameters) -> QueueMetrics:
    """Explore, solve and extract the paper's metrics from the Figure 3
    model."""
    model = build_tags_model(params)
    space = explore(model)
    gen = to_generator(space)
    pi = steady_state(gen)

    q1_len, q2_len = _q1_len, _q2_len

    L1 = float(pi @ space.state_reward(q1_len))
    L2 = float(pi @ space.state_reward(q2_len))
    x_s1 = action_throughput(gen, pi, "service1")
    x_s2 = action_throughput(gen, pi, "service2")
    x_to = action_throughput(gen, pi, "timeout")
    loss1 = action_throughput(gen, pi, "arrloss")
    # flow balance at node 2: entries = timeouts that found space = service2
    loss2 = x_to - x_s2
    return from_population_and_throughput(
        mean_jobs_per_node=(L1, L2),
        throughput=x_s1 + x_s2,
        offered_load=params.lam,
        loss_per_node=(loss1, loss2),
        extra={
            "n_states": space.n_states,
            "timeout_throughput": x_to,
            "service1_throughput": x_s1,
            "service2_throughput": x_s2,
        },
    )


@dataclass
class TagsPepa:
    """Sweepable Figure 3 PEPA model on the compiled engine.

    Same parameters and metrics as :func:`tags_pepa_metrics`, packaged
    as a model class the sweep engine can drive -- and wired to the
    structure cache: the first instance of an ``(n, K1, K2,
    tick_during_residual)`` shape pays one compile + vectorized
    exploration (:mod:`repro.pepa.compiled`); every further rate point
    (lambda, mu, t) refills the cached
    :class:`~repro.pepa.compiled.CompiledSpace`'s rate column in ~a
    millisecond.  Rates are validated positive, so rate changes can
    never alter reachability and the refill's structural congruence
    check always passes for a correct key.

    ``SOLVE_ENGINE`` tags the sweep solve cache (satellite of the same
    PR): entries computed here never collide with interpreter-path
    records from earlier releases.
    """

    lam: float = 5.0
    mu: float = 10.0
    t: float = 51.0
    n: int = 6
    K1: int = 10
    K2: int = 10
    tick_during_residual: bool = False

    SOLVE_ENGINE = "pepa-compiled-v1"

    def __post_init__(self) -> None:
        self.params()  # TagsParameters validates ranges

    def params(self) -> TagsParameters:
        return TagsParameters(
            lam=self.lam,
            mu=self.mu,
            t=self.t,
            n=self.n,
            K1=self.K1,
            K2=self.K2,
            tick_during_residual=self.tick_during_residual,
        )

    def build(self) -> Model:
        return build_tags_model(self.params())

    # ------------------------------------------------------------------
    def _space(self):
        """Structure-cached compiled space, refilled with *this* model's
        rates.  The cache entry is shared; callers must assemble what
        they need (generator, rewards) before the next refill."""
        if getattr(self, "_space_memo", None) is not None:
            return self._space_memo
        from repro.pepa.compiled import TemplateMismatch, compile_model

        key = (
            type(self).__qualname__,
            self.n,
            self.K1,
            self.K2,
            self.tick_during_residual,
        )
        model = self.build()
        cache = structure_cache()

        def build_space():
            return compile_model(model).explore()

        space = cache.get_or_build(key, build_space)
        if space.model is not model:
            try:
                space.refill(model)
            except TemplateMismatch:
                cache.drop(key)
                space = cache.get_or_build(key, build_space)
        self._space_memo = space
        return space

    @property
    def generator(self):
        if getattr(self, "_gen", None) is None:
            self._gen = self._space().generator()
        return self._gen

    @property
    def n_states(self) -> int:
        return self.generator.n_states

    @property
    def pi(self) -> np.ndarray:
        if getattr(self, "_pi", None) is None:
            self._pi = steady_state(self.generator)
        return self._pi

    def metrics(self) -> QueueMetrics:
        gen = self.generator
        pi = self.pi
        space = self._space()
        L1 = float(pi @ space.state_reward(_q1_len))
        L2 = float(pi @ space.state_reward(_q2_len))
        x_s1 = action_throughput(gen, pi, "service1")
        x_s2 = action_throughput(gen, pi, "service2")
        x_to = action_throughput(gen, pi, "timeout")
        loss1 = action_throughput(gen, pi, "arrloss")
        loss2 = x_to - x_s2
        return from_population_and_throughput(
            mean_jobs_per_node=(L1, L2),
            throughput=x_s1 + x_s2,
            offered_load=self.lam,
            loss_per_node=(loss1, loss2),
            extra={
                "n_states": space.n_states,
                "timeout_throughput": x_to,
                "service1_throughput": x_s1,
                "service2_throughput": x_s2,
            },
        )
