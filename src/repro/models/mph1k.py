"""M/PH/1/K: Poisson arrivals, phase-type service, finite room.

Used by the random-allocation baseline with H2 service (each node of
Appendix A's system becomes an independent M/H2/1/K queue) and as a
general-purpose substrate.  The CTMC state is ``(n, phase)`` with ``n`` the
number of jobs (0..K) and ``phase`` the service phase of the job in service
(absent when idle); the generator is assembled from transition triples and
solved with the shared CTMC machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ctmc import Generator, action_throughput, expected_reward, steady_state
from repro.ctmc.generator import TransitionBatch
from repro.dists.phase_type import PhaseType
from repro.models.metrics import QueueMetrics, from_population_and_throughput

__all__ = ["MPH1K"]


class MPH1K:
    """M/PH/1/K queue solved via its CTMC.

    Parameters
    ----------
    lam :
        Poisson arrival rate.
    service :
        Phase-type service distribution (atoms at zero are rejected: a job
        must occupy the server for a positive time).
    K :
        Total capacity (queue + server).
    """

    def __init__(self, lam: float, service: PhaseType, K: int) -> None:
        if lam <= 0:
            raise ValueError("lam must be positive")
        if K < 1:
            raise ValueError("K must be >= 1")
        if service.atom_at_zero > 1e-12:
            raise ValueError("service distribution must not have an atom at zero")
        self.lam = float(lam)
        self.service = service
        self.K = int(K)
        self._build()
        self._pi: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _state_id(self, n: int, phase: int) -> int:
        """0 is the empty state; busy states are 1 + (n-1)*m + phase."""
        if n == 0:
            return 0
        return 1 + (n - 1) * self.m + phase

    def _build(self) -> None:
        m = self.service.n_phases
        self.m = m
        alpha = self.service.alpha / self.service.alpha.sum()
        T = self.service.T
        exit_vec = self.service.exit
        batch = TransitionBatch()
        lam = self.lam
        for n in range(self.K + 1):
            if n == 0:
                # arrival starts service in phase drawn from alpha
                for ph in range(m):
                    if alpha[ph] > 0:
                        batch.add(0, self._state_id(1, ph), lam * alpha[ph], "arrival")
                continue
            for ph in range(m):
                sid = self._state_id(n, ph)
                if n < self.K:
                    batch.add(sid, self._state_id(n + 1, ph), lam, "arrival")
                else:
                    batch.add(sid, sid, lam, "loss")
                # internal phase changes
                for ph2 in range(m):
                    if ph2 != ph and T[ph, ph2] > 0:
                        batch.add(sid, self._state_id(n, ph2), T[ph, ph2], "phase")
                # completion
                if exit_vec[ph] > 0:
                    if n == 1:
                        batch.add(sid, 0, exit_vec[ph], "service")
                    else:
                        for ph2 in range(m):
                            if alpha[ph2] > 0:
                                batch.add(
                                    sid,
                                    self._state_id(n - 1, ph2),
                                    exit_vec[ph] * alpha[ph2],
                                    "service",
                                )
        self.generator: Generator = batch.to_generator(1 + self.K * m)
        # reward vectors
        counts = np.zeros(self.generator.n_states)
        for n in range(1, self.K + 1):
            for ph in range(m):
                counts[self._state_id(n, ph)] = n
        self._count_reward = counts

    # ------------------------------------------------------------------
    @property
    def pi(self) -> np.ndarray:
        if self._pi is None:
            self._pi = steady_state(self.generator)
        return self._pi

    def queue_length_distribution(self) -> np.ndarray:
        """P[N = n] for n = 0..K."""
        out = np.zeros(self.K + 1)
        for n in range(self.K + 1):
            if n == 0:
                out[0] = self.pi[0]
            else:
                ids = [self._state_id(n, ph) for ph in range(self.m)]
                out[n] = self.pi[ids].sum()
        return out

    @property
    def mean_jobs(self) -> float:
        return expected_reward(self.pi, self._count_reward)

    @property
    def throughput(self) -> float:
        return action_throughput(self.generator, self.pi, "service")

    @property
    def loss_rate(self) -> float:
        try:
            return action_throughput(self.generator, self.pi, "loss")
        except KeyError:  # K unreachable? cannot happen, but be safe
            return 0.0

    @property
    def utilisation(self) -> float:
        return 1.0 - float(self.pi[0])

    def metrics(self) -> QueueMetrics:
        return from_population_and_throughput(
            mean_jobs_per_node=(self.mean_jobs,),
            throughput=self.throughput,
            offered_load=self.lam,
            loss_per_node=(self.loss_rate,),
            utilisation=(self.utilisation,),
            extra={"n_states": self.generator.n_states},
        )
