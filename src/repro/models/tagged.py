"""Tagged-job analysis: response-time *distributions* from the CTMC.

The paper reports mean response times via Little's law.  Tagging a single
arriving job and following it through the system turns its sojourn into
the absorption time of an auxiliary Markov chain, giving the full
response-time distribution, per-outcome conditional means (completed at
node 1 / restarted and completed at node 2 / dropped at node 2), and an
exact decomposition that cross-validates Little's law:

    L  =  lam_accepted * sum_outcomes P[outcome] * E[T | outcome]

Tagged chain for the two-node system (FCFS means only the jobs *ahead*
of the tagged one matter):

* **phase A** (tagged waiting/serving at node 1): jobs ahead at node 1
  plus the node-1 timer, *and* the full node-2 state -- jobs timing out
  ahead of the tagged job land in front of it in queue 2;
* **phase B** (tagged at node 2): jobs ahead at node 2 only; node-1
  dynamics and arrivals behind no longer matter;
* absorbing states ``done1``, ``done2``, ``dropped``.

By PASTA, the tagged job's initial state is the stationary system state
seen at an (accepted) arrival instant.

Both the exponential (Figure 3) and H2 (Figure 5) chains are supported.
In the H2 *model* a job's service phase is drawn when it reaches a head
position (that is how Figure 5 encodes the hyper-exponential), so tagged
jobs remain exchangeable with untagged ones and outcome probabilities
match the steady-state flow ratios -- asserted in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ctmc import Generator, transient_distribution
from repro.ctmc.bfs import bfs_generator
from repro.ctmc.passage import conditional_absorption_times
from repro.models.tags_direct import TagsExponential, TagsHyperExponential

__all__ = ["TaggedJobAnalysis", "TaggedJobAnalysisH2"]

_DONE1 = ("done1",)
_DONE2 = ("done2",)
_DROPPED = ("dropped",)
_ABSORBING = {_DONE1: "done1", _DONE2: "done2", _DROPPED: "dropped"}


class _TaggedBase:
    """Shared exploration + analysis machinery.

    Subclasses supply ``_successors(state)`` and ``_initial_weights()``
    (a dict ``state -> probability`` by PASTA, conditioned on acceptance).
    """

    def _setup(self) -> None:
        self._initial = self._initial_weights()
        seeds = sorted(self._initial, key=self._initial.get, reverse=True)
        gen, states, index = bfs_generator(seeds[0], self._successors)
        if any(s not in index for s in seeds):
            # rare disconnected starting pockets: rebuild over the union
            all_states = list(states)
            seen = set(index)
            for s in seeds:
                if s in seen:
                    continue
                _, extra, _ = bfs_generator(s, self._successors)
                for e in extra:
                    if e not in seen:
                        seen.add(e)
                        all_states.append(e)
            idx = {s: i for i, s in enumerate(all_states)}
            src, dst, rate = [], [], []
            for s in all_states:
                for _a, r, nxt in self._successors(s):
                    src.append(idx[s])
                    dst.append(idx[nxt])
                    rate.append(r)
            gen = Generator.from_triples(len(all_states), src, dst, rate)
            states, index = all_states, idx
        self.generator = gen
        self.states = states
        self.index = index
        self.p0 = np.zeros(gen.n_states)
        for s, w in self._initial.items():
            self.p0[index[s]] = w
        self._absorb_ids = {
            name: index[st] for st, name in _ABSORBING.items() if st in index
        }
        self._B = None

    # ------------------------------------------------------------------
    def _conditional(self):
        if self._B is None:
            names = [k for k in ("done1", "done2", "dropped")
                     if k in self._absorb_ids]
            classes = [[self._absorb_ids[k]] for k in names]
            B, M = conditional_absorption_times(self.generator, classes)
            self._B, self._M, self._names = B, M, names
        return self._B, self._M, self._names

    def outcome_probabilities(self) -> dict:
        """P[tagged job completes at node 1 / node 2 / is dropped]."""
        B, _, names = self._conditional()
        probs = self.p0 @ B
        return dict(zip(names, (float(p) for p in probs)))

    def mean_response_by_outcome(self) -> dict:
        """E[sojourn | outcome] for each reachable outcome."""
        B, M, names = self._conditional()
        out = {}
        for c, name in enumerate(names):
            pc = float(self.p0 @ B[:, c])
            out[name] = (
                float(self.p0 @ (B[:, c] * np.nan_to_num(M[:, c]))) / pc
                if pc > 0
                else float("nan")
            )
        return out

    def mean_response_completed(self) -> float:
        """E[sojourn | job eventually completes] (either node)."""
        probs = self.outcome_probabilities()
        means = self.mean_response_by_outcome()
        pc = probs.get("done1", 0.0) + probs.get("done2", 0.0)
        acc = sum(
            probs[k] * means[k]
            for k in ("done1", "done2")
            if probs.get(k, 0.0) > 0
        )
        return acc / pc

    def response_cdf(self, xs) -> np.ndarray:
        """P[T <= x | job completes] for each x."""
        ids = [v for k, v in self._absorb_ids.items() if k != "dropped"]
        probs = self.outcome_probabilities()
        pc = probs.get("done1", 0.0) + probs.get("done2", 0.0)
        out = np.empty(len(xs))
        for i, x in enumerate(np.asarray(xs, dtype=float)):
            pt = transient_distribution(self.generator, self.p0, float(x))
            out[i] = float(pt[ids].sum()) / pc
        return out


@dataclass
class TaggedJobAnalysis(_TaggedBase):
    """Follow one accepted job through a :class:`TagsExponential` system.

    Phase-A states: ``("n1", k, r1, q2, ph2, r2)`` (``k`` jobs ahead at
    node 1); phase-B states: ``("n2", l, ph2, r2)``.
    """

    model: TagsExponential

    def __post_init__(self) -> None:
        if self.model.t_of_q1 is not None:
            raise NotImplementedError(
                "tagged analysis is implemented for static timeouts"
            )
        m = self.model
        self._mu2 = m.mu if m.mu2_service is None else m.mu2_service
        self._t2 = m.t if m.t2 is None else m.t2
        self._setup()

    # ------------------------------------------------------------------
    def _node2_transitions(self, q2, ph2, r2):
        """Node-2 head dynamics (used for queue 2 in phase A and for the
        ahead-jobs in phase B)."""
        t2, mu2, top = self._t2, self._mu2, self.model.n - 1
        out = []
        if q2 >= 1:
            if ph2 == 0:
                if r2 >= 1:
                    out.append(("tick2", t2, (q2, 0, r2 - 1)))
                else:
                    out.append(("repeatservice", t2, (q2, 1, top)))
            else:
                out.append(("service2", mu2, (q2 - 1, 0, top)))
        return out

    def _successors(self, s):
        m = self.model
        mu, t, n = m.mu, m.t, m.n
        top = n - 1
        if s in _ABSORBING:
            return []
        if s[0] == "n1":
            _, k, r1, q2, ph2, r2 = s
            out = []
            if k == 0:  # tagged job at the head
                out.append(("service1", mu, _DONE1))
                if r1 >= 1:
                    out.append(("tick1", t, ("n1", 0, r1 - 1, q2, ph2, r2)))
                else:
                    if q2 < m.K2:
                        out.append(("timeout", t, ("n2", q2, ph2, r2)))
                    else:
                        out.append(("timeout", t, _DROPPED))
            else:
                out.append(("service1", mu, ("n1", k - 1, top, q2, ph2, r2)))
                if r1 >= 1:
                    out.append(("tick1", t, ("n1", k, r1 - 1, q2, ph2, r2)))
                else:
                    q2_next = min(q2 + 1, m.K2)  # full queue 2 drops it
                    out.append(
                        ("timeout", t, ("n1", k - 1, top, q2_next, ph2, r2))
                    )
            for action, rate, (q2n, ph2n, r2n) in self._node2_transitions(
                q2, ph2, r2
            ):
                out.append((action, rate, ("n1", k, r1, q2n, ph2n, r2n)))
            return out
        # phase B
        _, l, ph2, r2 = s
        out = []
        if l == 0:  # tagged at node-2 head
            if ph2 == 0:
                if r2 >= 1:
                    out.append(("tick2", self._t2, ("n2", 0, 0, r2 - 1)))
                else:
                    out.append(("repeatservice", self._t2, ("n2", 0, 1, top)))
            else:
                out.append(("service2", self._mu2, _DONE2))
        else:
            for action, rate, (ln, ph2n, r2n) in self._node2_transitions(
                l, ph2, r2
            ):
                out.append((action, rate, ("n2", ln, ph2n, r2n)))
        return out

    def _initial_weights(self) -> dict:
        m = self.model
        weights: dict = {}
        total = 0.0
        for p, s in zip(m.pi, m.states):
            q1, r1, q2, ph2, r2 = s
            if q1 >= m.K1:
                continue
            key = ("n1", q1, r1, q2, ph2, r2)
            weights[key] = weights.get(key, 0.0) + p
            total += p
        if total <= 0:
            raise RuntimeError("no accepting states")
        return {k: v / total for k, v in weights.items()}


@dataclass
class TaggedJobAnalysisH2(_TaggedBase):
    """Tagged-job analysis of the Figure 5 (H2-service) chain.

    In the Markovian model a job's phase is drawn when it reaches a head
    position, so phase-A states carry the *current head's* phase:
    ``("n1", k, hp, r1, q2, ph2, r2)`` with ``hp`` in {0 short, 1 long}
    (the tagged job's own phase once ``k == 0``); node 2 uses
    ``ph2`` in {0 repeat, 1 short residual, 2 long residual}.  Phase-B
    states: ``("n2", l, ph2, r2)``.
    """

    model: TagsHyperExponential

    def __post_init__(self) -> None:
        self._setup()

    # ------------------------------------------------------------------
    def _node2_transitions(self, q2, ph2, r2):
        m = self.model
        t, top = m.t, m.n - 1
        ap = m.resolved_alpha_prime
        out = []
        if q2 >= 1:
            if ph2 == 0:
                if r2 >= 1:
                    out.append(("tick2", t, (q2, 0, r2 - 1)))
                else:
                    out.append(("repeatservice", t * ap, (q2, 1, top)))
                    out.append(("repeatservice", t * (1 - ap), (q2, 2, top)))
            else:
                mu = m.mu1 if ph2 == 1 else m.mu2
                out.append(("service2", mu, (q2 - 1, 0, top)))
        return out

    def _successors(self, s):
        m = self.model
        t, n, a = m.t, m.n, m.alpha
        top = n - 1
        if s in _ABSORBING:
            return []
        if s[0] == "n1":
            _, k, hp, r1, q2, ph2, r2 = s
            mu_head = m.mu1 if hp == 0 else m.mu2
            out = []

            def head_departs(action, rate, q2n, ph2n, r2n):
                """An ahead-job leaves node 1: draw the next head's phase
                (the tagged job's own when k - 1 == 0)."""
                out.append(
                    (action, rate * a, ("n1", k - 1, 0, top, q2n, ph2n, r2n))
                )
                out.append(
                    (
                        action,
                        rate * (1 - a),
                        ("n1", k - 1, 1, top, q2n, ph2n, r2n),
                    )
                )

            if k == 0:  # tagged at the head, phase hp
                out.append(("service1", mu_head, _DONE1))
                if r1 >= 1:
                    out.append(("tick1", t, ("n1", 0, hp, r1 - 1, q2, ph2, r2)))
                else:
                    if q2 < m.K2:
                        out.append(("timeout", t, ("n2", q2, ph2, r2)))
                    else:
                        out.append(("timeout", t, _DROPPED))
            else:
                head_departs("service1", mu_head, q2, ph2, r2)
                if r1 >= 1:
                    out.append(("tick1", t, ("n1", k, hp, r1 - 1, q2, ph2, r2)))
                else:
                    q2_next = min(q2 + 1, m.K2)
                    head_departs("timeout", t, q2_next, ph2, r2)
            for action, rate, (q2n, ph2n, r2n) in self._node2_transitions(
                q2, ph2, r2
            ):
                out.append((action, rate, ("n1", k, hp, r1, q2n, ph2n, r2n)))
            return out
        # phase B
        _, l, ph2, r2 = s
        out = []
        if l == 0:
            if ph2 == 0:
                ap = m.resolved_alpha_prime
                if r2 >= 1:
                    out.append(("tick2", t, ("n2", 0, 0, r2 - 1)))
                else:
                    out.append(("repeatservice", t * ap, ("n2", 0, 1, top)))
                    out.append(
                        ("repeatservice", t * (1 - ap), ("n2", 0, 2, top))
                    )
            else:
                mu = m.mu1 if ph2 == 1 else m.mu2
                out.append(("service2", mu, _DONE2))
        else:
            for action, rate, (ln, ph2n, r2n) in self._node2_transitions(
                l, ph2, r2
            ):
                out.append((action, rate, ("n2", ln, ph2n, r2n)))
        return out

    def _initial_weights(self) -> dict:
        m = self.model
        a = m.alpha
        weights: dict = {}
        total = 0.0
        for p, s in zip(m.pi, m.states):
            q1, ph1, r1, q2, ph2, r2 = s
            if q1 >= m.K1:
                continue
            total += p
            if q1 == 0:
                # the tagged job starts service immediately; draw its phase
                for phase, w in ((0, a), (1, 1 - a)):
                    key = ("n1", 0, phase, m.n - 1, q2, ph2, r2)
                    weights[key] = weights.get(key, 0.0) + p * w
            else:
                key = ("n1", q1, ph1, r1, q2, ph2, r2)
                weights[key] = weights.get(key, 0.0) + p
        if total <= 0:
            raise RuntimeError("no accepting states")
        return {k: v / total for k, v in weights.items()}
