"""Analytic M/M/1/K queue.

Closed forms used both as a baseline component (random allocation sends an
independent Poisson stream to each M/M/1/K node) and inside the Section 4
fixed-point approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.metrics import QueueMetrics, from_population_and_throughput

__all__ = ["MM1K"]


@dataclass(frozen=True)
class MM1K:
    """M/M/1/K: Poisson(lam) arrivals, Exponential(mu) service, K places
    total (queue + server)."""

    lam: float
    mu: float
    K: int

    def __post_init__(self) -> None:
        if self.lam <= 0 or self.mu <= 0:
            raise ValueError("rates must be positive")
        if self.K < 1:
            raise ValueError("K must be >= 1")

    @property
    def rho(self) -> float:
        return self.lam / self.mu

    def distribution(self) -> np.ndarray:
        """Stationary probabilities of 0..K jobs (truncated geometric)."""
        rho = self.rho
        if abs(rho - 1.0) < 1e-12:
            return np.full(self.K + 1, 1.0 / (self.K + 1))
        p = rho ** np.arange(self.K + 1)
        return p / p.sum()

    @property
    def blocking_probability(self) -> float:
        return float(self.distribution()[self.K])

    @property
    def mean_jobs(self) -> float:
        p = self.distribution()
        return float(np.arange(self.K + 1) @ p)

    @property
    def throughput(self) -> float:
        return self.lam * (1.0 - self.blocking_probability)

    @property
    def utilisation(self) -> float:
        return 1.0 - float(self.distribution()[0])

    @property
    def loss_rate(self) -> float:
        return self.lam * self.blocking_probability

    @property
    def response_time(self) -> float:
        """Mean response time of accepted jobs (Little's law)."""
        return self.mean_jobs / self.throughput

    def metrics(self) -> QueueMetrics:
        return from_population_and_throughput(
            mean_jobs_per_node=(self.mean_jobs,),
            throughput=self.throughput,
            offered_load=self.lam,
            loss_per_node=(self.loss_rate,),
            utilisation=(self.utilisation,),
            extra={"blocking_probability": self.blocking_probability},
        )
