"""Compatibility shim: the BFS CTMC builder lives in
:mod:`repro.ctmc.bfs` (it is generic CTMC machinery, not model
specific).  Model modules import it from here to keep call sites
short.

Builds routed through this shim are observable like any other:
``bfs_generator`` files a ``ctmc.bfs`` span and state/transition
counters with the :mod:`repro.obs` recorder (no-ops by default)."""

from repro.ctmc.bfs import (
    ChainTemplate,
    StructureMismatch,
    assemble_generator,
    bfs_arrays,
    bfs_generator,
)

__all__ = [
    "bfs_generator",
    "bfs_arrays",
    "assemble_generator",
    "ChainTemplate",
    "StructureMismatch",
]
