"""Compatibility shim: the BFS CTMC builder lives in
:mod:`repro.ctmc.bfs` (it is generic CTMC machinery, not model
specific).  Model modules import it from here to keep call sites
short."""

from repro.ctmc.bfs import bfs_generator

__all__ = ["bfs_generator"]
