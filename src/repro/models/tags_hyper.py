"""PEPA model of two-node TAGS with hyper-exponential (H2) service
(paper Figure 5).

The head-of-queue job's phase is tracked by the queue derivative: ``Q1_i``
has a *short* head (service rate ``mu1``), ``Q1p_i`` (the paper's primed
``Q1'_i``) a *long* head (rate ``mu2``).  On every completion that leaves
the queue non-empty the next head's phase is drawn Bernoulli(alpha); a job
arriving at an empty queue draws its phase on arrival.

At node 2 the ``repeatservice`` action branches with probability
``alpha'`` (the residual-mixing probability of Section 3.2) into
``Q2s_i`` (short residual, rate ``mu1``) or ``Q2l_i`` (long residual,
``mu2``).

Typo corrections applied to the printed Figure 5 (DESIGN.md note 4):
the ``timeout`` rates in ``Q1_i`` read ``alpha mu2 / (1-alpha) mu2`` in the
paper but must be ``alpha t / (1-alpha) t`` (the timeout race does not
depend on the head's phase), and ``(arrival, (1-alpha) lam).Q1_1'`` targets
``Q1'_1``.

Note on the ``t``-rates in the queue: Figure 5 attaches rate ``t`` (split
``alpha t`` / ``(1-alpha) t``) to the queue's ``timeout``/``repeatservice``
activities instead of the passive ``T`` used in Figure 3.  Under PEPA's
apparent-rate rule the synchronised rate is ``min(t, t) = t`` split in the
same proportions, so the two encodings yield the same CTMC; we keep the
paper's active-rate style here and the passive style in Figure 3, and the
test suite checks the exponential degenerate cases coincide.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ctmc import action_throughput, steady_state
from repro.dists.residual import h2_residual_mixing
from repro.models.metrics import QueueMetrics, from_population_and_throughput
from repro.pepa import (
    Activity,
    Choice,
    Constant,
    Cooperation,
    Model,
    Prefix,
    Rate,
    explore,
    to_generator,
    top,
)

__all__ = ["TagsH2Parameters", "build_tags_h2_model", "tags_h2_pepa_metrics"]


@dataclass(frozen=True)
class TagsH2Parameters:
    """Parameters of the Figure 5 model.

    ``alpha_prime`` defaults to the exact residual-mixing probability
    computed from the Erlang(n, t) timeout race (Section 3.2).  ``n`` is
    the total number of Erlang phases in the timeout clock (see
    ``tags_pepa`` for the convention).
    """

    lam: float = 11.0
    alpha: float = 0.99
    mu1: float = 100.0
    mu2: float = 1.0
    t: float = 51.0
    n: int = 6
    K1: int = 10
    K2: int = 10
    alpha_prime: float | None = None
    tick_during_residual: bool = False

    def __post_init__(self) -> None:
        if min(self.lam, self.mu1, self.mu2, self.t) <= 0:
            raise ValueError("rates must be positive")
        if not (0 < self.alpha < 1):
            raise ValueError("alpha must be in (0, 1)")
        if self.n < 1 or self.K1 < 1 or self.K2 < 1:
            raise ValueError("n, K1, K2 must be >= 1")
        if self.alpha_prime is not None and not (0 <= self.alpha_prime <= 1):
            raise ValueError("alpha_prime must be in [0, 1]")

    @property
    def resolved_alpha_prime(self) -> float:
        if self.alpha_prime is not None:
            return self.alpha_prime
        return h2_residual_mixing(self.t, self.alpha, self.mu1, self.mu2, self.n)

    @property
    def mean_service(self) -> float:
        return self.alpha / self.mu1 + (1 - self.alpha) / self.mu2


def _choice(*terms):
    comp = terms[0]
    for t in terms[1:]:
        comp = Choice(comp, t)
    return comp


def _p(action, rate, target):
    r = rate if isinstance(rate, Rate) else Rate(rate)
    return Prefix(Activity(action, r), Constant(target))


def build_tags_h2_model(params: TagsH2Parameters) -> Model:
    """Construct the Figure 5 PEPA model."""
    lam, t, n = params.lam, params.t, params.n
    a, m1, m2 = params.alpha, params.mu1, params.mu2
    ap = params.resolved_alpha_prime
    K1, K2 = params.K1, params.K2
    defs: dict = {}

    # ------------------------------------------------------ queue 1
    defs["Q1_0"] = _choice(
        _p("arrival", a * lam, "Q1_1"),
        _p("arrival", (1 - a) * lam, "Q1p_1"),
    )
    # head short (Q1) / head long (Q1p); i = 1 empties without branching
    defs["Q1_1"] = _choice(
        _p("arrival", lam, "Q1_2") if K1 > 1 else _p("arrloss", lam, "Q1_1"),
        _p("tick1", top(), "Q1_1"),
        _p("service1", m1, "Q1_0"),
        _p("timeout", t, "Q1_0"),
    )
    defs["Q1p_1"] = _choice(
        _p("arrival", lam, "Q1p_2") if K1 > 1 else _p("arrloss", lam, "Q1p_1"),
        _p("tick1", top(), "Q1p_1"),
        _p("service1", m2, "Q1_0"),
        _p("timeout", t, "Q1_0"),
    )
    for i in range(2, K1):
        defs[f"Q1_{i}"] = _choice(
            _p("arrival", lam, f"Q1_{i + 1}"),
            _p("tick1", top(), f"Q1_{i}"),
            _p("service1", (1 - a) * m1, f"Q1p_{i - 1}"),
            _p("service1", a * m1, f"Q1_{i - 1}"),
            _p("timeout", (1 - a) * t, f"Q1p_{i - 1}"),
            _p("timeout", a * t, f"Q1_{i - 1}"),
        )
        defs[f"Q1p_{i}"] = _choice(
            _p("arrival", lam, f"Q1p_{i + 1}"),
            _p("tick1", top(), f"Q1p_{i}"),
            _p("service1", (1 - a) * m2, f"Q1p_{i - 1}"),
            _p("service1", a * m2, f"Q1_{i - 1}"),
            _p("timeout", (1 - a) * t, f"Q1p_{i - 1}"),
            _p("timeout", a * t, f"Q1_{i - 1}"),
        )
    if K1 > 1:
        defs[f"Q1_{K1}"] = _choice(
            _p("tick1", top(), f"Q1_{K1}"),
            _p("timeout", a * t, f"Q1_{K1 - 1}"),
            _p("timeout", (1 - a) * t, f"Q1p_{K1 - 1}"),
            _p("service1", (1 - a) * m1, f"Q1p_{K1 - 1}"),
            _p("service1", a * m1, f"Q1_{K1 - 1}"),
            _p("arrloss", lam, f"Q1_{K1}"),
        )
        defs[f"Q1p_{K1}"] = _choice(
            _p("tick1", top(), f"Q1p_{K1}"),
            _p("timeout", a * t, f"Q1_{K1 - 1}"),
            _p("timeout", (1 - a) * t, f"Q1p_{K1 - 1}"),
            _p("service1", (1 - a) * m2, f"Q1p_{K1 - 1}"),
            _p("service1", a * m2, f"Q1_{K1 - 1}"),
            _p("arrloss", lam, f"Q1p_{K1}"),
        )

    # ------------------------------------------------------ timer 1
    # n Erlang phases: Timer1_{n-1} .. Timer1_1 tick, Timer1_0 enables
    # the (queue-driven) timeout
    top_ref = f"Timer1_{n - 1}" if n > 1 else "Timer1_0"
    defs["Timer1_0"] = _choice(
        _p("timeout", top(), top_ref),
        _p("service1", top(), top_ref),
    )
    for i in range(1, n):
        defs[f"Timer1_{i}"] = _choice(
            _p("tick1", t, f"Timer1_{i - 1}"),
            _p("service1", top(), top_ref),
        )

    # ------------------------------------------------------ queue 2
    # Q2_i: head in repeat phase; Q2s_i / Q2l_i: short / long residual.
    defs["Q2_0"] = _p("timeout", top(), "Q2_1")

    def residual(name: str, i: int, rate: float, kind: str):
        terms = [
            _p("timeout", top(), f"Q2{kind}_{min(i + 1, K2)}"),
            _p("service2", rate, f"Q2_{i - 1}"),
        ]
        if params.tick_during_residual:
            terms.insert(1, _p("tick2", top(), name))
        return _choice(*terms)

    for i in range(1, K2):
        defs[f"Q2_{i}"] = _choice(
            _p("timeout", top(), f"Q2_{i + 1}"),
            _p("tick2", top(), f"Q2_{i}"),
            _p("repeatservice", ap * t, f"Q2s_{i}"),
            _p("repeatservice", (1 - ap) * t, f"Q2l_{i}"),
        )
        defs[f"Q2s_{i}"] = residual(f"Q2s_{i}", i, m1, "s")
        defs[f"Q2l_{i}"] = residual(f"Q2l_{i}", i, m2, "l")
    defs[f"Q2_{K2}"] = _choice(
        _p("timeout", top(), f"Q2_{K2}"),
        _p("tick2", top(), f"Q2_{K2}"),
        _p("repeatservice", ap * t, f"Q2s_{K2}"),
        _p("repeatservice", (1 - ap) * t, f"Q2l_{K2}"),
    )
    defs[f"Q2s_{K2}"] = residual(f"Q2s_{K2}", K2, m1, "s")
    defs[f"Q2l_{K2}"] = residual(f"Q2l_{K2}", K2, m2, "l")

    # ------------------------------------------------------ timer 2
    defs["Timer2_0"] = _p(
        "repeatservice", top(), f"Timer2_{n - 1}" if n > 1 else "Timer2_0"
    )
    for i in range(1, n):
        defs[f"Timer2_{i}"] = _p("tick2", t, f"Timer2_{i - 1}")

    node1 = Cooperation(
        Constant("Q1_0"),
        Constant(f"Timer1_{n - 1}"),
        frozenset({"service1", "tick1", "timeout"}),
    )
    node2 = Cooperation(
        Constant("Q2_0"),
        Constant(f"Timer2_{n - 1}"),
        frozenset({"repeatservice", "tick2"}),
    )
    system = Cooperation(node1, node2, frozenset({"timeout"}))
    return Model(defs, system)


def tags_h2_pepa_metrics(params: TagsH2Parameters) -> QueueMetrics:
    """Explore, solve and extract metrics from the Figure 5 model."""
    model = build_tags_h2_model(params)
    space = explore(model)
    gen = to_generator(space)
    pi = steady_state(gen)

    def q1_len(names) -> float:
        for nm in names:
            if nm.startswith("Q1_") or nm.startswith("Q1p_"):
                return float(nm.split("_", 1)[1])
        raise AssertionError("no Q1 component in state")

    def q2_len(names) -> float:
        for nm in names:
            if nm.startswith(("Q2_", "Q2s_", "Q2l_")):
                return float(nm.split("_", 1)[1])
        raise AssertionError("no Q2 component in state")

    L1 = float(pi @ space.state_reward(q1_len))
    L2 = float(pi @ space.state_reward(q2_len))
    x_s1 = action_throughput(gen, pi, "service1")
    x_s2 = action_throughput(gen, pi, "service2")
    x_to = action_throughput(gen, pi, "timeout")
    try:
        loss1 = action_throughput(gen, pi, "arrloss")
    except KeyError:
        loss1 = 0.0
    loss2 = x_to - x_s2
    return from_population_and_throughput(
        mean_jobs_per_node=(L1, L2),
        throughput=x_s1 + x_s2,
        offered_load=params.lam,
        loss_per_node=(loss1, loss2),
        extra={
            "n_states": space.n_states,
            "timeout_throughput": x_to,
            "alpha_prime": params.resolved_alpha_prime,
        },
    )
