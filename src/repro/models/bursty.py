"""MMPP-modulated arrivals: the exact-CTMC side of Section 7.

The paper closes with a conjecture: "It is expected that TAG would perform
less well if the arrival process was bursty ... TAG would direct all
traffic to node 1" while shortest queue shares the burst.  The simulator
probes this empirically (``bench_bursty.py``); these models settle it
*exactly* by folding a two-state Markov-modulated Poisson arrival process
into the TAGS and JSQ chains -- the modulating phase becomes one extra
state component, everything else is unchanged.

An Interrupted Poisson Process (on/off bursts) is ``rate1 = 0``; use
:meth:`MMPP2.scaled_to_mean` to compare burstiness levels at equal offered
load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ctmc import action_throughput, steady_state
from repro.models._bfs import bfs_generator
from repro.models.metrics import QueueMetrics, from_population_and_throughput

__all__ = ["MMPP2", "TagsMMPP", "ShortestQueueMMPP"]


@dataclass(frozen=True)
class MMPP2:
    """Two-state MMPP: arrival rate ``rates[phase]``, switching rates
    ``switch01`` / ``switch10``."""

    rate0: float
    rate1: float
    switch01: float
    switch10: float

    def __post_init__(self) -> None:
        if self.rate0 < 0 or self.rate1 < 0 or self.rate0 + self.rate1 == 0:
            raise ValueError("need non-negative rates, at least one positive")
        if self.switch01 <= 0 or self.switch10 <= 0:
            raise ValueError("switching rates must be positive")

    @property
    def mean_rate(self) -> float:
        p0 = self.switch10 / (self.switch01 + self.switch10)
        return p0 * self.rate0 + (1 - p0) * self.rate1

    @property
    def burstiness(self) -> float:
        """Peak-to-mean rate ratio (1 = Poisson)."""
        return max(self.rate0, self.rate1) / self.mean_rate

    def scaled_to_mean(self, mean: float) -> "MMPP2":
        """Same shape, rescaled arrival rates to hit ``mean``."""
        c = mean / self.mean_rate
        return MMPP2(self.rate0 * c, self.rate1 * c, self.switch01, self.switch10)

    @classmethod
    def poisson(cls, rate: float) -> "MMPP2":
        """Degenerate MMPP equal to a Poisson process (for regression
        checks)."""
        return cls(rate, rate, 1.0, 1.0)

    def rate(self, phase: int) -> float:
        return self.rate0 if phase == 0 else self.rate1

    def switch(self, phase: int) -> float:
        return self.switch01 if phase == 0 else self.switch10


class _MMPPBase:
    """Shared plumbing: the arrival phase is state component 0."""

    arrivals: MMPP2

    def _build(self):
        raise NotImplementedError

    @property
    def generator(self):
        if not hasattr(self, "_gen"):
            self._gen, self._states, self._index = self._build()
            self._pi = None
        return self._gen

    @property
    def states(self):
        _ = self.generator
        return self._states

    @property
    def n_states(self) -> int:
        return self.generator.n_states

    @property
    def pi(self) -> np.ndarray:
        _ = self.generator
        if self._pi is None:
            self._pi = steady_state(self._gen)
        return self._pi


@dataclass
class TagsMMPP(_MMPPBase):
    """Two-node TAGS (exponential service) under MMPP arrivals.

    State: ``(phase, q1, r1, q2, ph2, r2)`` -- the Figure 3 chain with the
    modulating phase prepended.
    """

    arrivals: MMPP2 = None
    mu: float = 10.0
    t: float = 51.0
    n: int = 6
    K1: int = 10
    K2: int = 10

    def __post_init__(self) -> None:
        if self.arrivals is None:
            raise ValueError("arrivals (an MMPP2) is required")
        if min(self.mu, self.t) <= 0:
            raise ValueError("rates must be positive")
        if self.n < 1 or self.K1 < 1 or self.K2 < 1:
            raise ValueError("n, K1, K2 must be >= 1")

    def _successors(self, s):
        phase, q1, r1, q2, ph2, r2 = s
        mu, t, n = self.mu, self.t, self.n
        lam = self.arrivals.rate(phase)
        out = [("switch", self.arrivals.switch(phase),
                (1 - phase, q1, r1, q2, ph2, r2))]
        top = n - 1
        if lam > 0:
            if q1 < self.K1:
                out.append(("arrival", lam, (phase, q1 + 1, r1, q2, ph2, r2)))
            else:
                out.append(("arrloss", lam, s))
        if q1 >= 1:
            out.append(("service1", mu, (phase, q1 - 1, top, q2, ph2, r2)))
            if r1 >= 1:
                out.append(("tick1", t, (phase, q1, r1 - 1, q2, ph2, r2)))
            else:
                if q2 < self.K2:
                    out.append(
                        ("timeout", t, (phase, q1 - 1, top, q2 + 1, ph2, r2))
                    )
                else:
                    out.append(("timeout", t, (phase, q1 - 1, top, q2, ph2, r2)))
        if q2 >= 1:
            if ph2 == 0:
                if r2 >= 1:
                    out.append(("tick2", t, (phase, q1, r1, q2, 0, r2 - 1)))
                else:
                    out.append(("repeatservice", t, (phase, q1, r1, q2, 1, top)))
            else:
                out.append(("service2", mu, (phase, q1, r1, q2 - 1, 0, top)))
        return out

    def _build(self):
        initial = (0, 0, self.n - 1, 0, 0, self.n - 1)
        return bfs_generator(initial, self._successors)

    def metrics(self) -> QueueMetrics:
        pi = self.pi
        q1 = np.array([s[1] for s in self.states], dtype=float)
        q2 = np.array([s[3] for s in self.states], dtype=float)
        x1 = action_throughput(self._gen, pi, "service1")
        x2 = action_throughput(self._gen, pi, "service2")
        x_to = action_throughput(self._gen, pi, "timeout")
        try:
            loss1 = action_throughput(self._gen, pi, "arrloss")
        except KeyError:
            loss1 = 0.0
        return from_population_and_throughput(
            mean_jobs_per_node=(float(pi @ q1), float(pi @ q2)),
            throughput=x1 + x2,
            offered_load=self.arrivals.mean_rate,
            loss_per_node=(loss1, x_to - x2),
            extra={"n_states": self.n_states, "burstiness": self.arrivals.burstiness},
        )


@dataclass
class ShortestQueueMMPP(_MMPPBase):
    """JSQ over two finite queues under MMPP arrivals.

    State: ``(phase, n1, n2)``.
    """

    arrivals: MMPP2 = None
    mu: float = 10.0
    K: int = 10

    def __post_init__(self) -> None:
        if self.arrivals is None:
            raise ValueError("arrivals (an MMPP2) is required")
        if self.mu <= 0 or self.K < 1:
            raise ValueError("bad mu or K")

    def _successors(self, s):
        phase, n1, n2 = s
        lam = self.arrivals.rate(phase)
        out = [("switch", self.arrivals.switch(phase), (1 - phase, n1, n2))]
        if lam > 0:
            if n1 < n2:
                dest = [(1.0, 0)]
            elif n2 < n1:
                dest = [(1.0, 1)]
            else:
                dest = [(0.5, 0), (0.5, 1)]
            for w, d in dest:
                nq = (n1, n2)[d]
                if nq < self.K:
                    nxt = (
                        (phase, n1 + 1, n2) if d == 0 else (phase, n1, n2 + 1)
                    )
                    out.append(("arrival", lam * w, nxt))
                else:
                    out.append(("arrloss", lam * w, s))
        if n1 >= 1:
            out.append(("service", self.mu, (phase, n1 - 1, n2)))
        if n2 >= 1:
            out.append(("service", self.mu, (phase, n1, n2 - 1)))
        return out

    def _build(self):
        return bfs_generator((0, 0, 0), self._successors)

    def metrics(self) -> QueueMetrics:
        pi = self.pi
        q1 = np.array([s[1] for s in self.states], dtype=float)
        q2 = np.array([s[2] for s in self.states], dtype=float)
        x = action_throughput(self._gen, pi, "service")
        try:
            loss = action_throughput(self._gen, pi, "arrloss")
        except KeyError:
            loss = 0.0
        return from_population_and_throughput(
            mean_jobs_per_node=(float(pi @ q1), float(pi @ q2)),
            throughput=x,
            offered_load=self.arrivals.mean_rate,
            loss_per_node=(loss,),
            extra={"n_states": self.n_states, "burstiness": self.arrivals.burstiness},
        )
