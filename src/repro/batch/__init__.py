"""Deterministic batch analysis of TAGS (the paper's Section 1 worked
example)."""

from repro.batch.deterministic import (
    tags_batch_completion_times,
    tags_batch_mean_response,
    optimal_batch_timeout,
)

__all__ = [
    "tags_batch_completion_times",
    "tags_batch_mean_response",
    "optimal_batch_timeout",
]
