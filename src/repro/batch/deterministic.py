"""Deterministic TAGS on a fixed backlog (paper Section 1).

The paper motivates TAGS with six jobs of known sizes, all present at time
zero, two unit-rate nodes and a deterministic timeout: depending on the
timeout the mean response time ranges from 18.5 (everything times out)
down to 15.67 (timeout fractionally above 3).  These functions reproduce
that arithmetic for arbitrary backlogs, timeouts and node counts, and
search for the optimal timeout vector.

Semantics: node 1 serves the backlog FCFS; a job whose demand exceeds the
node's timeout is killed *at* the timeout and restarts from scratch at the
next node (jobs arrive there in kill order); the final node has no
timeout.  A job's response time is its completion instant (all jobs arrive
at time zero).
"""

from __future__ import annotations

import itertools

import numpy as np

__all__ = [
    "tags_batch_completion_times",
    "tags_batch_mean_response",
    "optimal_batch_timeout",
]


def tags_batch_completion_times(demands, timeouts=()) -> np.ndarray:
    """Completion time of each job (indexed as in ``demands``).

    ``timeouts`` has one entry per non-final node; ``()`` is a single
    plain FCFS queue.  Timeouts must be positive; a timeout of ``inf``
    makes that node serve everything.
    """
    demands = np.asarray(demands, dtype=float)
    if demands.ndim != 1 or demands.size == 0:
        raise ValueError("demands must be a non-empty 1-D sequence")
    if demands.min() <= 0:
        raise ValueError("demands must be positive")
    timeouts = tuple(float(t) for t in timeouts)
    if any(t <= 0 for t in timeouts):
        raise ValueError("timeouts must be positive")

    completion = np.full(demands.size, np.nan)
    # jobs at the current node: (arrival_time, original_index)
    current = [(0.0, i) for i in range(demands.size)]
    for node in range(len(timeouts) + 1):
        tau = timeouts[node] if node < len(timeouts) else np.inf
        busy_until = 0.0
        forwarded = []
        # FCFS in arrival order (stable for ties: earlier kill first)
        for arrival, idx in sorted(current, key=lambda p: p[0]):
            start = max(busy_until, arrival)
            if demands[idx] <= tau:
                busy_until = start + demands[idx]
                completion[idx] = busy_until
            else:
                busy_until = start + tau
                forwarded.append((busy_until, idx))
        current = forwarded
    if current:
        raise AssertionError("final node must have no timeout")
    return completion


def tags_batch_mean_response(demands, timeouts=()) -> float:
    """Mean response time of the backlog under the given timeouts."""
    return float(tags_batch_completion_times(demands, timeouts).mean())


def optimal_batch_timeout(demands, n_nodes: int = 2, eps: float = 1e-6):
    """Optimal deterministic timeouts for a known backlog.

    The mean response is piecewise constant in each timeout with
    breakpoints at the job sizes, so it suffices to try timeouts
    fractionally above each distinct demand (and ``inf``).  Returns
    ``(timeouts, mean_response)``.

    Exhaustive over the (small) breakpoint grid -- intended for worked
    examples, not large backlogs with many nodes.
    """
    demands = np.asarray(demands, dtype=float)
    if n_nodes < 1:
        raise ValueError("need at least one node")
    if n_nodes == 1:
        return (), tags_batch_mean_response(demands, ())
    candidates = sorted(set(demands)) + [np.inf]
    options = [c + (eps if np.isfinite(c) else 0.0) for c in candidates]
    best = (None, np.inf)
    for combo in itertools.product(options, repeat=n_nodes - 1):
        val = tags_batch_mean_response(demands, combo)
        if val < best[1]:
            best = (combo, val)
    return best
