"""repro -- reproduction of "Modelling job allocation where service
duration is unknown" (N. Thomas, IPPS 2006).

Subpackages
-----------
``repro.core``
    Facade over the paper's primary contribution: the TAGS models and the
    figure-regeneration entry points.
``repro.pepa``
    The PEPA Markovian process algebra (syntax, parser, semantics, state
    space, CTMC mapping, fluid approximation).
``repro.ctmc``
    CTMC numerics: generators, steady-state and transient solvers,
    rewards, structural analysis.
``repro.dists``
    Phase-type distributions, residual-life computations, EM fitting,
    bounded Pareto.
``repro.models``
    The paper's queueing systems (TAGS exp/H2, random, shortest queue,
    M/M/1/K, M/PH/1/K), each as PEPA and as a direct CTMC.
``repro.approx``
    Section 4's timeout approximations and the optimiser.
``repro.sim``
    Discrete-event simulation with true kill-and-restart semantics.
``repro.batch``
    The Section 1 deterministic worked-example calculator.
``repro.experiments``
    One function per paper figure, plus report rendering.
``repro.sweep``
    Parallel, cached, warm-started parameter-sweep engine (what the
    figure regenerations and optimisers solve through).
``repro.serve``
    Online dispatcher runtime: the simulator's policies as live asyncio
    services with a closed-loop timeout controller.
``repro.faults``
    Fault injection and failure reporting: deterministic crash/repair
    plans replayed identically by ``sim`` and ``serve``, crash
    semantics, circuit breaker, degradation tables.
``repro.obs``
    Zero-overhead observability: spans, counters/gauges and iteration
    traces recorded through the solvers, state-space builders, the
    simulator, the sweep engine and the CLI (``REPRO_OBS`` to enable).
"""

__version__ = "1.1.0"

__all__ = [
    "pepa",
    "ctmc",
    "dists",
    "models",
    "approx",
    "sim",
    "batch",
    "experiments",
    "sweep",
    "serve",
    "faults",
    "obs",
    "core",
]
