"""Parameter sets of the paper's evaluation (Section 5).

Everything the paper pins down, in one place:

* Figures 6-7: lam = 5, mu = 10, n = 6, K1 = K2 = 10, timeout rate swept.
* Figure 8: lam in {5, 7, 9, 11}, TAGS at the queue-length-optimal integer
  t (the paper quotes 51, 49, 45, 42).
* Figures 9-10: H2 service, alpha = 0.99, mean demand 0.1,
  mu1 = 100 mu2 (=> mu1 = 19.9, mu2 = 0.199), lam = 11.
* Figures 11-12: mu1 = 10 mu2, alpha swept over [0.89, 0.99], lam = 11,
  TAGS at its optimal t per alpha.
"""

from __future__ import annotations

import numpy as np

from repro.dists.families import HyperExponential, h2_balanced_means

__all__ = [
    "FIG6_PARAMS",
    "FIG6_T_GRID",
    "FIG8_LAMBDAS",
    "FIG8_PAPER_OPTIMAL_T",
    "FIG9_PARAMS",
    "FIG9_T_GRID",
    "FIG11_ALPHAS",
    "MEAN_SERVICE",
    "h2_service_fig9",
    "h2_service_fig11",
]

MEAN_SERVICE = 0.1
"""All service-demand distributions in the paper have mean 1/mu = 0.1."""

FIG6_PARAMS = dict(lam=5.0, mu=10.0, n=6, K1=10, K2=10)
FIG6_T_GRID = np.arange(4.0, 121.0, 4.0)

FIG8_LAMBDAS = (5.0, 7.0, 9.0, 11.0)
FIG8_PAPER_OPTIMAL_T = {5.0: 51, 7.0: 49, 9.0: 45, 11.0: 42}
"""The paper's quoted queue-length-optimal integer timeout rates."""

FIG9_PARAMS = dict(lam=11.0, alpha=0.99, ratio=100.0, n=6, K1=10, K2=10)
FIG9_T_GRID = np.arange(2.0, 101.0, 2.0)

FIG11_ALPHAS = np.round(np.arange(0.89, 0.9999, 0.01), 4)
"""Figure 11-12 sweep: proportion of short jobs, 0.89 .. 0.99."""


def h2_service_fig9() -> HyperExponential:
    """H2 of Figures 9-10: mean 0.1, alpha 0.99, mu1 = 100 mu2."""
    return h2_balanced_means(MEAN_SERVICE, 0.99, 100.0)


def h2_service_fig11(alpha: float) -> HyperExponential:
    """H2 of Figures 11-12: mean 0.1, mu1 = 10 mu2, given alpha."""
    return h2_balanced_means(MEAN_SERVICE, alpha, 10.0)
