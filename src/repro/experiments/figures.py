"""Series generators: one function per paper figure.

All sweeps use the direct CTMC constructions (pinned to the PEPA models by
the test suite) because a figure is 30-60 steady-state solves.

Every solve routes through the shared :func:`repro.sweep.default_engine`,
so figures over the same grid share one solve pass: ``figure6``/``figure7``
(and ``figure9``/``figure10``) differ only in which metric they read, and
the second call is answered entirely from the content-addressed cache.
Set ``REPRO_SWEEP_WORKERS`` to fan the underlying solves out over a
process pool (see ``docs/performance.md``).

Within one solve pass the state space is explored exactly once per
*structure*: every grid point of a figure 6/7 or 9/10 sweep varies only
rate values, so the model builders pull the frozen reachability
template from :func:`repro.sweep.structure_cache` and refill its rate
column (``sweep.structure.hit``/``template.refill.points`` counters
record this when an :mod:`repro.obs` recorder is enabled).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.approx.balance import erlang_balance_rate, exponential_balance_rate
from repro.approx.fixed_point import TagsFixedPoint
from repro.batch import tags_batch_mean_response
from repro.experiments.config import (
    FIG6_PARAMS,
    FIG6_T_GRID,
    FIG8_LAMBDAS,
    FIG9_PARAMS,
    FIG9_T_GRID,
    FIG11_ALPHAS,
    h2_service_fig9,
    h2_service_fig11,
)
from repro.models import (
    RandomAllocation,
    ShortestQueue,
    TagsExponential,
    TagsHyperExponential,
)
from repro.sweep import default_engine

__all__ = [
    "FigureData",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "state_space_table",
    "section1_example",
    "section4_approximations",
    "optimal_integer_t",
    "optimal_integer_t_h2",
]


@dataclass
class FigureData:
    """One paper figure: an x-grid and named y-series."""

    name: str
    xlabel: str
    ylabel: str
    x: np.ndarray
    series: dict = field(default_factory=dict)

    def add(self, label: str, values) -> None:
        values = np.asarray(values, dtype=float)
        if values.shape != self.x.shape:
            raise ValueError(
                f"series {label!r} has shape {values.shape}, x has {self.x.shape}"
            )
        self.series[label] = values


# ----------------------------------------------------------------------
# Figures 6-7: exponential service, sweep timeout rate
# ----------------------------------------------------------------------

def _solve(model_cls, **params):
    """One reference point through the shared engine (cached)."""
    metrics, _ = default_engine().solve(model_cls, params)
    return metrics


def _tags_exp_sweep(t_grid=FIG6_T_GRID, **overrides):
    params = {**FIG6_PARAMS, **overrides}
    grid = [dict(params, t=float(t)) for t in t_grid]
    return default_engine().sweep(TagsExponential, grid).metrics


def figure6(t_grid=FIG6_T_GRID) -> FigureData:
    """Average queue length vs timeout rate (lam=5, mu=10): TAG total and
    per-queue, with random and shortest-queue reference lines."""
    fig = FigureData(
        "Figure 6",
        "timeout rate t",
        "average queue length",
        np.asarray(t_grid, dtype=float),
    )
    ms = _tags_exp_sweep(t_grid)
    fig.add("TAG total", [m.mean_jobs for m in ms])
    fig.add("TAG queue 1", [m.mean_jobs_per_node[0] for m in ms])
    fig.add("TAG queue 2", [m.mean_jobs_per_node[1] for m in ms])
    rnd = _solve(
        RandomAllocation,
        lam=FIG6_PARAMS["lam"], service=FIG6_PARAMS["mu"], K=FIG6_PARAMS["K1"],
    )
    jsq = _solve(
        ShortestQueue,
        lam=FIG6_PARAMS["lam"], service=FIG6_PARAMS["mu"], K=FIG6_PARAMS["K1"],
    )
    fig.add("random", np.full_like(fig.x, rnd.mean_jobs))
    fig.add("shortest queue", np.full_like(fig.x, jsq.mean_jobs))
    return fig


def figure7(t_grid=FIG6_T_GRID) -> FigureData:
    """Average response time vs timeout rate (same systems as Fig 6)."""
    fig = FigureData(
        "Figure 7",
        "timeout rate t",
        "average response time",
        np.asarray(t_grid, dtype=float),
    )
    ms = _tags_exp_sweep(t_grid)
    fig.add("TAG", [m.response_time for m in ms])
    rnd = _solve(
        RandomAllocation,
        lam=FIG6_PARAMS["lam"], service=FIG6_PARAMS["mu"], K=FIG6_PARAMS["K1"],
    )
    jsq = _solve(
        ShortestQueue,
        lam=FIG6_PARAMS["lam"], service=FIG6_PARAMS["mu"], K=FIG6_PARAMS["K1"],
    )
    fig.add("random", np.full_like(fig.x, rnd.response_time))
    fig.add("shortest queue", np.full_like(fig.x, jsq.response_time))
    return fig


# ----------------------------------------------------------------------
# Figure 8: response time vs arrival rate, TAGS optimised per lambda
# ----------------------------------------------------------------------

def optimal_integer_t(
    lam: float, metric: str = "mean_jobs", t_range=range(25, 70), **overrides
) -> int:
    """Queue-length-optimal integer timeout rate (the paper's Fig 8
    procedure).  The integer grid is one engine sweep, so repeated calls
    (and the figure's re-solve at the optimum) hit the cache."""
    params = {**FIG6_PARAMS, **overrides}
    params["lam"] = float(lam)
    t_range = list(t_range)
    grid = [dict(params, t=float(t)) for t in t_range]
    res = default_engine().sweep(TagsExponential, grid)
    return t_range[int(np.argmin(res.values(metric)))]


def figure8(lambdas=FIG8_LAMBDAS) -> FigureData:
    """Average response time vs arrival rate; TAGS at its optimal integer
    t per lambda, vs random and shortest queue."""
    lams = np.asarray(lambdas, dtype=float)
    fig = FigureData(
        "Figure 8", "arrival rate lambda", "average response time", lams
    )
    tag, opt_ts = [], []
    for lam in lams:
        t_opt = optimal_integer_t(lam)
        opt_ts.append(t_opt)
        m = _solve(
            TagsExponential,
            t=float(t_opt), **{**FIG6_PARAMS, "lam": float(lam)},
        )
        tag.append(m.response_time)
    fig.add("TAG (optimal t)", tag)
    fig.add(
        "random",
        [
            _solve(RandomAllocation, lam=float(lam), service=10.0, K=10).response_time
            for lam in lams
        ],
    )
    fig.add(
        "shortest queue",
        [
            _solve(ShortestQueue, lam=float(lam), service=10.0, K=10).response_time
            for lam in lams
        ],
    )
    fig.series["optimal t"] = np.asarray(opt_ts, dtype=float)
    return fig


# ----------------------------------------------------------------------
# Figures 9-10: H2 service, sweep timeout rate
# ----------------------------------------------------------------------

def _tags_h2_sweep(t_grid, service, lam, **overrides):
    mu1, mu2 = service.rates
    alpha = float(service.probs[0])
    params = dict(
        lam=float(lam), alpha=alpha, mu1=float(mu1), mu2=float(mu2),
        n=FIG9_PARAMS["n"], K1=FIG9_PARAMS["K1"], K2=FIG9_PARAMS["K2"],
    )
    params.update(overrides)
    grid = [dict(params, t=float(t)) for t in t_grid]
    return default_engine().sweep(TagsHyperExponential, grid).metrics


def figure9(t_grid=FIG9_T_GRID) -> FigureData:
    """Average response time vs timeout rate with H2 service
    (lam=11, alpha=0.99, mu1=100 mu2): TAG vs shortest queue.  The random
    series is included for completeness (the paper drops it as
    'works poorly ... not shown')."""
    service = h2_service_fig9()
    fig = FigureData(
        "Figure 9",
        "timeout rate t",
        "average response time",
        np.asarray(t_grid, dtype=float),
    )
    ms = _tags_h2_sweep(t_grid, service, FIG9_PARAMS["lam"])
    fig.add("TAG", [m.response_time for m in ms])
    jsq = _solve(ShortestQueue, lam=FIG9_PARAMS["lam"], service=service, K=10)
    fig.add("shortest queue", np.full_like(fig.x, jsq.response_time))
    rnd = _solve(RandomAllocation, lam=FIG9_PARAMS["lam"], service=service, K=10)
    fig.add("random (not shown in paper)", np.full_like(fig.x, rnd.response_time))
    return fig


def figure10(t_grid=FIG9_T_GRID) -> FigureData:
    """Throughput vs timeout rate (same H2 system as Fig 9)."""
    service = h2_service_fig9()
    fig = FigureData(
        "Figure 10",
        "timeout rate t",
        "throughput",
        np.asarray(t_grid, dtype=float),
    )
    ms = _tags_h2_sweep(t_grid, service, FIG9_PARAMS["lam"])
    fig.add("TAG", [m.throughput for m in ms])
    jsq = _solve(ShortestQueue, lam=FIG9_PARAMS["lam"], service=service, K=10)
    fig.add("shortest queue", np.full_like(fig.x, jsq.throughput))
    rnd = _solve(RandomAllocation, lam=FIG9_PARAMS["lam"], service=service, K=10)
    fig.add("random (not shown in paper)", np.full_like(fig.x, rnd.throughput))
    return fig


# ----------------------------------------------------------------------
# Figures 11-12: sweep the proportion of short jobs (mu1 = 10 mu2)
# ----------------------------------------------------------------------

def optimal_integer_t_h2(
    service, lam: float, metric: str = "response_time", t_range=range(2, 80, 2)
) -> int:
    """Best integer timeout rate for an H2 system, as one engine sweep.

    Figures 11 and 12 call this per alpha with different metrics; the
    underlying solves are identical, so the second figure's searches are
    pure cache hits."""
    mu1, mu2 = service.rates
    alpha = float(service.probs[0])
    params = dict(
        lam=float(lam), alpha=alpha, mu1=float(mu1), mu2=float(mu2),
        n=6, K1=10, K2=10,
    )
    t_range = list(t_range)
    grid = [dict(params, t=float(t)) for t in t_range]
    res = default_engine().sweep(TagsHyperExponential, grid)
    vals = np.asarray(res.values(metric), dtype=float)
    if metric == "throughput":
        vals = -vals
    return t_range[int(np.argmin(vals))]


def _figure11_12(metric: str, name: str, ylabel: str, alphas) -> FigureData:
    alphas = np.asarray(alphas, dtype=float)
    fig = FigureData(name, "proportion of short jobs alpha", ylabel, alphas)
    lam = 11.0
    tag, jsq, rnd, opts = [], [], [], []
    for a in alphas:
        service = h2_service_fig11(float(a))
        mu1, mu2 = service.rates
        t_opt = optimal_integer_t_h2(service, lam, metric=metric)
        opts.append(t_opt)
        m = _solve(
            TagsHyperExponential,
            lam=lam, alpha=float(a), mu1=float(mu1), mu2=float(mu2),
            t=float(t_opt), n=6, K1=10, K2=10,
        )
        tag.append(getattr(m, metric))
        jsq.append(getattr(_solve(ShortestQueue, lam=lam, service=service, K=10), metric))
        rnd.append(getattr(_solve(RandomAllocation, lam=lam, service=service, K=10), metric))
    fig.add("TAG (optimal t)", tag)
    fig.add("shortest queue", jsq)
    fig.add("random", rnd)
    fig.series["optimal t"] = np.asarray(opts, dtype=float)
    return fig


def figure11(alphas=FIG11_ALPHAS) -> FigureData:
    """Average response time vs alpha (mu1 = 10 mu2, lam = 11)."""
    return _figure11_12(
        "response_time", "Figure 11", "average response time", alphas
    )


def figure12(alphas=FIG11_ALPHAS) -> FigureData:
    """Throughput vs alpha (same systems as Fig 11)."""
    return _figure11_12("throughput", "Figure 12", "throughput", alphas)


# ----------------------------------------------------------------------
# Non-figure quantitative claims
# ----------------------------------------------------------------------

def state_space_table() -> dict:
    """Section 5's state-space claim: 4331 states at n=6, K1=K2=10.

    ``explore`` dispatches to the compiled engine here (the Figure 3
    model sits inside the fragment); the interpreter would report the
    identical counts, which ``tests/pepa/test_compiled.py`` pins.
    """
    from repro.models.tags_pepa import TagsParameters, build_tags_model
    from repro.pepa import explore

    p = TagsParameters(**FIG6_PARAMS, t=51.0)
    space = explore(build_tags_model(p))
    return {
        "paper_states": 4331,
        "measured_states": space.n_states,
        "formula_states": (p.K1 * p.n + 1) * (p.K2 * (p.n + 1) + 1),
        "transitions": space.n_transitions,
    }


def section1_example() -> dict:
    """The worked example's quoted mean response times."""
    jobs = [4.0, 5.0, 6.0, 7.0, 3.0, 2.0]
    heavy = [99.0, 5.0, 6.0, 7.0, 3.0, 2.0]
    eps = 1e-9
    return {
        "no timeout": (17.0, tags_batch_mean_response(jobs, ())),
        "timeout 1.5": (18.5, tags_batch_mean_response(jobs, (1.5,))),
        "timeout 3.5": (16.67, tags_batch_mean_response(jobs, (3.5,))),
        "timeout 3+eps": (15.67, tags_batch_mean_response(jobs, (3.0 + eps,))),
        "heavy, timeout 7+eps": (36.5, tags_batch_mean_response(heavy, (7.0 + eps,))),
        "heavy, no timeout": (112.0, tags_batch_mean_response(heavy, ())),
    }


def section4_approximations() -> dict:
    """Section 4's quoted approximation outputs."""
    out = {
        "exponential balance T (paper ~6.17)": exponential_balance_rate(10.0),
        "erlang balance t at n=6": erlang_balance_rate(10.0, 6),
        "total rate t/n at n=400 (paper ~9)": erlang_balance_rate(10.0, 400) / 400,
    }
    fp = TagsFixedPoint(lam=11, mu=10, t=42, n=6)
    ex = TagsExponential(lam=11, mu=10, t=42.0, n=6)
    out["fixed-point throughput at lam=11, t=42"] = fp.metrics().throughput
    out["exact throughput at lam=11, t=42"] = ex.metrics().throughput
    return out
