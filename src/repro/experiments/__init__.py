"""Regeneration of every figure in the paper's evaluation (Section 5).

Each ``figureN()`` function returns a :class:`~repro.experiments.figures.
FigureData` with the x-grid and one series per curve the paper plots;
``repro.experiments.report`` renders them as aligned text tables (the
benchmarks print these, and EXPERIMENTS.md records them).

The paper's exact figure series are not tabulated in the text, so the
assertions in ``tests/experiments`` check the *quantitative statements the
text makes about each figure* (optimal t values, who wins where,
crossovers) rather than absolute curve values.
"""

from repro.experiments.config import (
    FIG6_PARAMS,
    FIG8_LAMBDAS,
    FIG9_PARAMS,
    FIG11_ALPHAS,
    h2_service_fig9,
    h2_service_fig11,
)
from repro.experiments.figures import (
    FigureData,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    state_space_table,
    section1_example,
    section4_approximations,
)
from repro.experiments.report import render_figure, render_table

__all__ = [
    "FIG6_PARAMS",
    "FIG8_LAMBDAS",
    "FIG9_PARAMS",
    "FIG11_ALPHAS",
    "h2_service_fig9",
    "h2_service_fig11",
    "FigureData",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "state_space_table",
    "section1_example",
    "section4_approximations",
    "render_figure",
    "render_table",
]
