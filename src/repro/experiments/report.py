"""Plain-text rendering of figure data (what the benchmarks print)."""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import FigureData

__all__ = ["render_figure", "render_table", "figure_to_csv"]


def render_table(headers, rows, *, float_fmt: str = "{:.4f}") -> str:
    """Align a list of rows under headers."""
    def fmt(v) -> str:
        if isinstance(v, float) or isinstance(v, np.floating):
            return float_fmt.format(v)
        return str(v)

    table = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in table)) if table else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in table:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def figure_to_csv(fig: FigureData, path) -> None:
    """Write a figure's series as CSV (x column first) for external
    plotting tools."""
    import csv

    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([fig.xlabel] + list(fig.series))
        for i in range(len(fig.x)):
            writer.writerow(
                [repr(float(fig.x[i]))]
                + [repr(float(fig.series[s][i])) for s in fig.series]
            )


def render_figure(fig: FigureData, *, max_rows: int | None = None) -> str:
    """Render a FigureData as the table of series the paper plots."""
    headers = [fig.xlabel] + list(fig.series)
    x = fig.x
    idx = np.arange(len(x))
    if max_rows is not None and len(x) > max_rows:
        idx = np.unique(np.linspace(0, len(x) - 1, max_rows).astype(int))
    rows = [
        [x[i]] + [fig.series[s][i] for s in fig.series] for i in idx
    ]
    title = f"{fig.name}: {fig.ylabel}"
    return title + "\n" + render_table(headers, rows)
