"""Command-line figure regeneration.

Usage::

    python -m repro.experiments                 # everything (slow)
    python -m repro.experiments 6 7 s1 t1       # selected experiments
    python -m repro.experiments 9 --csv out/    # also write out/figure9.csv

Experiment ids: ``6``-``12`` (figures), ``s1`` (Section 1 example),
``t1`` (state-space count), ``a`` (Section 4 approximations).
"""

from __future__ import annotations

import pathlib
import sys

from repro.experiments import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    render_figure,
    render_table,
    section1_example,
    section4_approximations,
    state_space_table,
)


def _print_s1() -> None:
    print("S1: Section 1 worked example")
    rows = [
        [label, paper, ours]
        for label, (paper, ours) in section1_example().items()
    ]
    print(render_table(["case", "paper", "ours"], rows))


def _print_t1() -> None:
    print("T1: Figure 3 state space")
    print(
        render_table(
            ["quantity", "value"],
            [[k, v] for k, v in state_space_table().items()],
            float_fmt="{:.0f}",
        )
    )


def _print_a() -> None:
    print("A: Section 4 approximations")
    print(
        render_table(
            ["quantity", "value"],
            [[k, v] for k, v in section4_approximations().items()],
        )
    )


FIGURES = {
    "6": figure6,
    "7": figure7,
    "8": figure8,
    "9": figure9,
    "10": figure10,
    "11": figure11,
    "12": figure12,
}
SPECIALS = {"s1": _print_s1, "t1": _print_t1, "a": _print_a}


def main(argv=None) -> int:
    args = [a.lower() for a in (sys.argv[1:] if argv is None else argv)]
    csv_dir = None
    if "--csv" in args:
        i = args.index("--csv")
        try:
            csv_dir = pathlib.Path(args[i + 1])
        except IndexError:
            print("--csv needs a directory argument", file=sys.stderr)
            return 2
        del args[i : i + 2]
        csv_dir.mkdir(parents=True, exist_ok=True)
    if not args:
        args = ["s1", "t1", "a"] + sorted(FIGURES, key=int)
    for arg in args:
        if arg in SPECIALS:
            SPECIALS[arg]()
        elif arg in FIGURES:
            fig = FIGURES[arg]()
            print(render_figure(fig, max_rows=20))
            if csv_dir is not None:
                from repro.experiments.report import figure_to_csv

                path = csv_dir / f"figure{arg}.csv"
                figure_to_csv(fig, path)
                print(f"(written to {path})")
        else:
            print(
                f"unknown experiment {arg!r}; choose from "
                f"{sorted(SPECIALS) + sorted(FIGURES, key=int)}",
                file=sys.stderr,
            )
            return 2
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
