"""Command-line figure regeneration.

Usage::

    python -m repro.experiments                 # everything (slow)
    python -m repro.experiments 6 7 s1 t1       # selected experiments
    python -m repro.experiments 9 --csv out/    # also write out/figure9.csv
    python -m repro.experiments 9 --trace t.jsonl --obs-summary

Experiment ids: ``6``-``12`` (figures), ``s1`` (Section 1 example),
``t1`` (state-space count), ``a`` (Section 4 approximations),
``serve`` (online dispatcher: controller trajectory + live-vs-CTMC
validation, virtual clock), ``faults`` (graceful degradation versus
node-2 crash rate, supervised failover on the virtual clock).

Observability flags (see ``docs/observability.md``):

``--trace FILE``
    Record the whole run (every solve, state-space build and sweep --
    including pool-worker events) and append the JSONL event log to
    FILE.
``--obs-summary``
    Print the aggregated span/counter/gauge/trace tables after the run.
"""

from __future__ import annotations

import contextlib
import pathlib
import sys

from repro import obs
from repro.experiments import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    render_figure,
    render_table,
    section1_example,
    section4_approximations,
    state_space_table,
)


def _print_s1() -> None:
    print("S1: Section 1 worked example")
    rows = [
        [label, paper, ours]
        for label, (paper, ours) in section1_example().items()
    ]
    print(render_table(["case", "paper", "ours"], rows))


def _print_t1() -> None:
    print("T1: Figure 3 state space")
    print(
        render_table(
            ["quantity", "value"],
            [[k, v] for k, v in state_space_table().items()],
            float_fmt="{:.0f}",
        )
    )


def _print_a() -> None:
    print("A: Section 4 approximations")
    print(
        render_table(
            ["quantity", "value"],
            [[k, v] for k, v in section4_approximations().items()],
        )
    )


def _print_serve() -> None:
    """Online TAGS under closed-loop timeout control (virtual clock).

    lam = 8 against mu = 10 with a deliberately mistuned timeout rate
    t = 5; the controller estimates (lam, mu) from the live window,
    re-optimises through the Section 4 fixed point, and the final system
    is validated against the exact Figure 3 chain at the operating
    point it steered to.
    """
    from repro.dists import Exponential
    from repro.models import TagsExponential
    from repro.serve import (
        DispatchRuntime,
        PoissonLoad,
        TimeoutController,
        validate_against_model,
    )
    from repro.sim import ErlangTimeout, TagsPolicy

    lam, mu, n = 8.0, 10.0, 6
    print("SERVE: online TAGS dispatcher, adaptive timeout "
          f"(lam={lam:g}, mu={mu:g}, start t=5)")
    ctrl = TimeoutController(
        interval=150.0, window=300.0, metric="throughput"
    )
    rt = DispatchRuntime(
        PoissonLoad(lam, Exponential(mu)),
        TagsPolicy(timeouts=(ErlangTimeout(n, 5.0),)),
        (10, 10),
        seed=0,
        controller=ctrl,
    )
    res = rt.run(2000.0, warmup=200.0)
    rows = [
        [
            d.time,
            "-" if d.lam_hat is None else f"{d.lam_hat:.2f}",
            "-" if d.mu_hat is None else f"{d.mu_hat:.2f}",
            "-" if d.t_opt is None else f"{d.t_opt:.1f}",
            d.reason,
        ]
        for d in ctrl.history
    ]
    print(render_table(
        ["time", "lam^", "mu^", "t_opt", "decision"], rows
    ))
    t_final = rt.current_timeout(0).t
    print(f"\nfinal timeout rate t = {t_final:.2f} "
          f"(offered {res.offered}, completed {res.completed}, "
          f"killed {res.killed})")
    print("\nlive metrics vs exact CTMC at the operating point "
          "(node band widened for the paper's node-2 approximation):")
    model = TagsExponential(lam=lam, mu=mu, t=t_final, n=n, K1=10, K2=10)
    print(validate_against_model(res, model, node_tol=0.25).format())


def _print_faults() -> None:
    """Graceful degradation of the online runtime versus node-2 crash rate.

    Each row replays online TAGS (virtual clock) against a seeded
    FaultPlan with the given node-2 crash rate; the supervisor restarts
    the node, and ``degraded="single_node"`` suppresses timeouts while
    node 2 is down so node 1 serves alone.  The interesting readout is
    how slowly throughput falls as availability erodes.
    """
    import os

    from repro.faults import degradation_table

    rates = [0.0, 0.002, 0.005, 0.01, 0.02]
    env = os.environ.get("REPRO_FAULTS_CRASH_RATES")
    if env:
        rates = [float(x) for x in env.split(",")]
    print("FAULTS: degradation vs node-2 crash rate "
          "(supervised, single-node fallback)")
    headers, rows = degradation_table(rates, supervised=True)
    print(render_table(headers, rows))


FIGURES = {
    "6": figure6,
    "7": figure7,
    "8": figure8,
    "9": figure9,
    "10": figure10,
    "11": figure11,
    "12": figure12,
}
SPECIALS = {
    "s1": _print_s1,
    "t1": _print_t1,
    "a": _print_a,
    "serve": _print_serve,
    "faults": _print_faults,
}


def _pop_path_flag(args: list, flag: str) -> "pathlib.Path | None":
    """Extract ``flag PATH`` from ``args`` (paths keep their case)."""
    if flag not in args:
        return None
    i = args.index(flag)
    try:
        path = pathlib.Path(args[i + 1])
    except IndexError:
        raise SystemExit(f"{flag} needs a path argument")
    del args[i : i + 2]
    return path


def main(argv=None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    try:
        csv_dir = _pop_path_flag(raw, "--csv")
        trace_path = _pop_path_flag(raw, "--trace")
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    obs_summary = "--obs-summary" in raw
    if obs_summary:
        raw.remove("--obs-summary")
    if csv_dir is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)
    args = [a.lower() for a in raw]
    if not args:
        args = ["s1", "t1", "a", "serve", "faults"] + sorted(FIGURES, key=int)

    # --trace/--obs-summary record the run even when REPRO_OBS is unset;
    # otherwise whatever recorder the env var installed keeps working
    rec = obs.recorder()
    if (trace_path is not None or obs_summary) and not rec.enabled:
        ctx = obs.use(obs.Recorder())
    else:
        ctx = contextlib.nullcontext(rec)
    with ctx as rec:
        for arg in args:
            if arg in SPECIALS:
                with rec.span("experiment", id=arg):
                    SPECIALS[arg]()
            elif arg in FIGURES:
                with rec.span("experiment", id=arg):
                    fig = FIGURES[arg]()
                print(render_figure(fig, max_rows=20))
                if csv_dir is not None:
                    from repro.experiments.report import figure_to_csv

                    path = csv_dir / f"figure{arg}.csv"
                    figure_to_csv(fig, path)
                    print(f"(written to {path})")
            else:
                print(
                    f"unknown experiment {arg!r}; choose from "
                    f"{sorted(SPECIALS) + sorted(FIGURES, key=int)}",
                    file=sys.stderr,
                )
                return 2
            print()
    if trace_path is not None:
        n = obs.write_jsonl(rec, trace_path)
        print(f"(obs trace: {n} events appended to {trace_path})")
    if obs_summary:
        print(obs.format_summary(rec))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
