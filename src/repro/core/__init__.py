"""The paper's primary contribution, in one import.

This facade gathers the PEPA models of the TAGS policy with bounded
queues, their fast direct-CTMC twins, the baseline strategies they are
compared against, the Section 4 timeout approximations, and the
figure-regeneration functions::

    from repro.core import TagsExponential, ShortestQueue, figure9

    print(TagsExponential(lam=5, mu=10, t=51).metrics().response_time)

Everything here is re-exported from the implementing subpackages; see
``repro.models``, ``repro.approx`` and ``repro.experiments`` for the full
APIs.
"""

from repro.approx import (
    TagsFixedPoint,
    erlang_balance_rate,
    exponential_balance_rate,
    optimise_timeout,
)
from repro.batch import tags_batch_mean_response
from repro.experiments import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    render_figure,
    state_space_table,
)
from repro.models import (
    QueueMetrics,
    RandomAllocation,
    ShortestQueue,
    TagsExponential,
    TagsHyperExponential,
    TagsMultiNode,
    build_tags_h2_model,
    build_tags_model,
    tags_h2_pepa_metrics,
    tags_pepa_metrics,
)
from repro.models.tags_hyper import TagsH2Parameters
from repro.models.tags_pepa import TagsParameters

__all__ = [
    "TagsParameters",
    "TagsH2Parameters",
    "build_tags_model",
    "build_tags_h2_model",
    "tags_pepa_metrics",
    "tags_h2_pepa_metrics",
    "TagsExponential",
    "TagsHyperExponential",
    "TagsMultiNode",
    "RandomAllocation",
    "ShortestQueue",
    "QueueMetrics",
    "TagsFixedPoint",
    "exponential_balance_rate",
    "erlang_balance_rate",
    "optimise_timeout",
    "tags_batch_mean_response",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "render_figure",
    "state_space_table",
]
