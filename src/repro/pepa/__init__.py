"""PEPA -- Performance Evaluation Process Algebra (Hillston 1996).

A from-scratch implementation of the Markovian process algebra used by the
paper, covering everything its models need:

* the component syntax ``(alpha, r).P``, ``P + Q``, ``P/L``,
  ``P <L> Q`` and named constants (:mod:`~repro.pepa.syntax`);
* active and weighted-passive rates with PEPA's apparent-rate cooperation
  semantics (:mod:`~repro.pepa.rates`, :mod:`~repro.pepa.semantics`);
* a textual parser for PEPA-Workbench-style source
  (:mod:`~repro.pepa.parser`);
* reachable-state-space derivation and CTMC generation
  (:mod:`~repro.pepa.statespace`, :mod:`~repro.pepa.ctmc_map`), with a
  compile-once / evaluate-many vectorized engine for the common
  fragment (:mod:`~repro.pepa.compiled`);
* static well-formedness checks (:mod:`~repro.pepa.wellformed`);
* the fluid-flow ODE approximation of Hillston (QEST 2005) used for the
  paper's Figure 4 "alternative model" (:mod:`~repro.pepa.fluid`).

Quick example::

    from repro.pepa import parse_model, explore, to_generator
    model = parse_model('''
        lam = 1.0; mu = 2.0;
        Idle = (arrive, lam).Busy;
        Busy = (serve, mu).Idle;
        System = Idle;
    ''')
    space = explore(model)
    gen = to_generator(space)
"""

from repro.pepa.rates import Rate, ACTIVE, PASSIVE, top
from repro.pepa.syntax import (
    Activity,
    Prefix,
    Choice,
    Cooperation,
    Hiding,
    Constant,
    Model,
    TAU,
    prefix_chain,
)
from repro.pepa.semantics import transitions, apparent_rate
from repro.pepa.statespace import StateSpace, explore, PassiveRateError
from repro.pepa.ctmc_map import to_generator
from repro.pepa.parser import parse_model, parse_component, PepaSyntaxError
from repro.pepa.wellformed import check_model, WellFormednessError, alphabet
from repro.pepa.fluid import FluidModel, FluidGroup
from repro.pepa.pretty import pretty_component, pretty_model
from repro.pepa.counted import CountedModel
from repro.pepa.kron import kron_generator
from repro.pepa.compiled import (
    CompileError,
    CompiledModel,
    CompiledSpace,
    compile_model,
)
from repro.pepa.dot import to_dot

__all__ = [
    "Rate",
    "ACTIVE",
    "PASSIVE",
    "top",
    "Activity",
    "Prefix",
    "Choice",
    "Cooperation",
    "Hiding",
    "Constant",
    "Model",
    "TAU",
    "prefix_chain",
    "transitions",
    "apparent_rate",
    "StateSpace",
    "explore",
    "PassiveRateError",
    "to_generator",
    "parse_model",
    "parse_component",
    "PepaSyntaxError",
    "check_model",
    "WellFormednessError",
    "alphabet",
    "FluidModel",
    "FluidGroup",
    "pretty_component",
    "pretty_model",
    "CountedModel",
    "kron_generator",
    "CompileError",
    "CompiledModel",
    "CompiledSpace",
    "compile_model",
    "to_dot",
]
