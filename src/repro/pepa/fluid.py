"""Fluid-flow (ODE) approximation of replicated-component PEPA models.

Implements the analysis of Hillston, *Fluid Flow Approximation of PEPA
models* (QEST 2005) -- the technique the paper's Section 3.1 proposes for
the Figure 4 "one component per queue place" model, supported there by the
Dizzy tool [9].  Instead of deriving the (large) CTMC, we track the
*expected count* of components in each local derivative and integrate::

    dx/dt = sum over activities (flow in - flow out)

For an action ``a`` shared between component groups, the fluid flow is the
minimum of the groups' capacities, mirroring PEPA's apparent-rate minimum:

* an **active** group's capacity is ``sum_d x_d * r_d(a)``;
* a **passive** group's capacity is its enabled weighted count times the
  active side's per-component rate (so a draining passive population really
  throttles the flow instead of being overdrawn).

Unshared actions flow at each group's own total rate.  Within a group the
flow is apportioned over the enabled derivatives proportionally to
``x_d * r_d(a)``, PEPA's branching rule in the large-population limit.

This module is deliberately restricted to the model shape the technique is
defined for: a cooperation of *groups*, each group a multiset of copies of
one sequential component.  That is exactly the Figure 4 structure (arrays
of queue places cooperating with server and timer processes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.integrate import solve_ivp

from repro.pepa.semantics import TransitionContext
from repro.pepa.syntax import Constant, Model

__all__ = ["FluidGroup", "FluidModel"]


@dataclass
class FluidGroup:
    """A replicated population of one sequential component.

    ``initial`` maps derivative names (constants in the model) to initial
    counts; e.g. ``{"Q1_0": 10.0}`` is ten empty queue-1 places.
    """

    name: str
    initial: dict

    def __post_init__(self) -> None:
        if not self.initial:
            raise ValueError(f"group {self.name!r} has no initial derivatives")
        for count in self.initial.values():
            if count < 0:
                raise ValueError(f"negative initial count in group {self.name!r}")


@dataclass
class _LocalTransition:
    src: int  # derivative index within the group
    dst: int
    action: str
    value: float  # rate (active) or weight (passive)
    passive: bool


class FluidModel:
    """Fluid interpretation of a PEPA model composed of component groups.

    Parameters
    ----------
    model :
        PEPA model supplying the sequential definitions.
    groups :
        The component populations.
    synced :
        Action types shared **between** groups (the cooperation sets of the
        group-level composition).  Actions not listed flow independently in
        every group that enables them.
    """

    def __init__(self, model: Model, groups: list, synced: set) -> None:
        self.model = model
        self.groups = list(groups)
        self.synced = frozenset(synced)
        names = [g.name for g in self.groups]
        if len(set(names)) != len(names):
            raise ValueError("duplicate group names")
        self._ctx = TransitionContext(model)
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        self._derivatives: list[list] = []  # per group: component exprs
        self._deriv_names: list[list[str]] = []
        self._deriv_index: list[dict] = []
        self._locals: list[list[_LocalTransition]] = []
        self._offsets: list[int] = []
        offset = 0
        for g in self.groups:
            derivs: list = []
            index: dict = {}
            todo = [Constant(d) for d in g.initial]
            transitions: list[_LocalTransition] = []
            while todo:
                comp = todo.pop()
                if comp in index:
                    continue
                index[comp] = len(derivs)
                derivs.append(comp)
                for action, rate, succ in self._ctx.transitions(comp):
                    if succ not in index and succ not in todo:
                        todo.append(succ)
            # second pass now that all derivatives are indexed
            for comp in derivs:
                for action, rate, succ in self._ctx.transitions(comp):
                    transitions.append(
                        _LocalTransition(
                            index[comp],
                            index[succ],
                            action,
                            rate.value,
                            rate.passive,
                        )
                    )
            self._derivatives.append(derivs)
            self._deriv_names.append(
                [c.name if isinstance(c, Constant) else repr(c) for c in derivs]
            )
            self._deriv_index.append(index)
            self._locals.append(transitions)
            self._offsets.append(offset)
            offset += len(derivs)
        self.n_vars = offset

        # initial state vector
        x0 = np.zeros(self.n_vars)
        for gi, g in enumerate(self.groups):
            for name, count in g.initial.items():
                comp = Constant(name)
                try:
                    di = self._deriv_index[gi][comp]
                except KeyError:
                    raise KeyError(
                        f"{name!r} is not a derivative of group {self.groups[gi].name!r}"
                    ) from None
                x0[self._offsets[gi] + di] = count
        self.x0 = x0

        # which groups participate in each synced action, and how
        self._participants: dict[str, list[int]] = {}
        for action in self.synced:
            parts = [
                gi
                for gi in range(len(self.groups))
                if any(t.action == action for t in self._locals[gi])
            ]
            if len(parts) < 2:
                raise ValueError(
                    f"synced action {action!r} is enabled by "
                    f"{len(parts)} group(s); cooperation needs at least two"
                )
            self._participants[action] = parts

    # ------------------------------------------------------------------
    def variable_names(self) -> list:
        """Flat ``group.derivative`` labels aligned with the state vector."""
        out = []
        for gi, g in enumerate(self.groups):
            out.extend(f"{g.name}.{d}" for d in self._deriv_names[gi])
        return out

    def _group_slice(self, gi: int) -> slice:
        start = self._offsets[gi]
        return slice(start, start + len(self._derivatives[gi]))

    # ------------------------------------------------------------------
    def _rhs(self, _t: float, x: np.ndarray) -> np.ndarray:
        dx = np.zeros_like(x)
        x = np.maximum(x, 0.0)

        # group/action totals
        def totals(gi: int, action: str):
            active = 0.0
            passive = 0.0
            for tr in self._locals[gi]:
                if tr.action != action:
                    continue
                amount = x[self._offsets[gi] + tr.src] * tr.value
                if tr.passive:
                    passive += amount
                else:
                    active += amount
            return active, passive

        flows: dict[str, float] = {}
        all_actions = {t.action for loc in self._locals for t in loc}
        for action in all_actions:
            if action not in self.synced:
                continue
            parts = self._participants[action]
            active_caps = []
            passive_weights = []
            per_unit = []
            for gi in parts:
                a, p = totals(gi, action)
                if a > 0 or not any(
                    t.passive for t in self._locals[gi] if t.action == action
                ):
                    active_caps.append(a)
                    enabled = sum(
                        x[self._offsets[gi] + t.src]
                        for t in self._locals[gi]
                        if t.action == action and not t.passive
                    )
                    if enabled > 0:
                        per_unit.append(a / enabled)
                else:
                    passive_weights.append(p)
            if not active_caps:
                raise ValueError(
                    f"synced action {action!r} has no active participant"
                )
            flow = min(active_caps)
            if passive_weights:
                unit = min(per_unit) if per_unit else 0.0
                flow = min([flow] + [w * unit for w in passive_weights])
            flows[action] = max(flow, 0.0)

        # apply transitions
        for gi in range(len(self.groups)):
            off = self._offsets[gi]
            for action in {t.action for t in self._locals[gi]}:
                trs = [t for t in self._locals[gi] if t.action == action]
                amounts = np.array(
                    [x[off + t.src] * t.value for t in trs], dtype=float
                )
                total = amounts.sum()
                if total <= 0:
                    continue
                if action in self.synced:
                    flow = flows[action]
                    shares = amounts / total * flow
                else:
                    shares = amounts  # independent: each fires at own rate
                for t, s in zip(trs, shares):
                    dx[off + t.src] -= s
                    dx[off + t.dst] += s
        return dx

    # ------------------------------------------------------------------
    def solve(self, t_end: float, n_points: int = 200, rtol: float = 1e-8):
        """Integrate the fluid ODEs to ``t_end``.

        Returns ``(times, trajectories)`` where ``trajectories`` maps
        ``group.derivative`` labels to count arrays.
        """
        ts = np.linspace(0.0, t_end, n_points)
        sol = solve_ivp(
            self._rhs,
            (0.0, t_end),
            self.x0,
            t_eval=ts,
            rtol=rtol,
            atol=1e-10,
            method="LSODA",
        )
        if not sol.success:  # pragma: no cover - solver failure is exceptional
            raise RuntimeError(f"fluid ODE integration failed: {sol.message}")
        traj = {
            name: sol.y[i] for i, name in enumerate(self.variable_names())
        }
        return sol.t, traj

    def equilibrium(self, t_end: float = 1000.0) -> dict:
        """Long-run counts: integrate far and report the final point."""
        _, traj = self.solve(t_end, n_points=2)
        return {name: float(vals[-1]) for name, vals in traj.items()}
