"""Mapping an explored PEPA state space to a CTMC generator.

The generator's off-diagonal entries sum the rates of all transitions
between each ordered state pair; per-action rate matrices are kept so
action throughputs (``service2`` completions, ``arrival`` losses, ...) can
be read from the steady-state vector.  Self-loop transitions (e.g. an
``arrival`` dropped by a full queue modelled as ``Q_K -> Q_K``) do not
affect the generator but are retained in the action matrices, so loss rates
remain observable.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ctmc.generator import Generator
from repro.pepa.statespace import StateSpace

__all__ = ["to_generator"]


def to_generator(space: StateSpace) -> Generator:
    """Build a :class:`~repro.ctmc.generator.Generator` from ``space``."""
    n = space.n_states
    action_arr = np.asarray(space.action, dtype=object)
    action_rates = {}
    for act in sorted(space.actions()):
        mask = action_arr == act
        action_rates[act] = sp.csr_matrix(
            (space.rate[mask], (space.src[mask], space.dst[mask])), shape=(n, n)
        )
    return Generator.from_triples(
        n, space.src, space.dst, space.rate, action_rates=action_rates
    )
