"""Compiled PEPA engine: vectorized exploration + generator templates.

The interpreter in :mod:`repro.pepa.statespace` pays Python-level AST
rewriting and component hashing for every transition of every state.
For the fragment all of this reproduction's models live in, none of that
work depends on the *rate values* -- only on the cooperation structure
and each sequential component's local derivative graph.  This module
exploits that in two steps:

**Compilation** (:func:`compile_model`) flattens the cooperation tree
into sequential *leaves*, explores each leaf's small local derivative
graph once through the shared :class:`~repro.pepa.semantics.
TransitionContext` (the same idea as ``kron.py``'s ``_leaf_block``), and
turns every global transition family into a *rule*: a flat cross-product
table of participating leaf moves with

* a packed mixed-radix state key (which local states enable the rule),
* an integer code delta (how the packed global state changes), and
* a symbolic rate: the product of the participating leaf entries' rate
  values, with passive factors row-normalised (PEPA's apparent-rate
  treatment of the active/passive synchronisation).

**Exploration** (:meth:`CompiledModel.explore`) packs global states into
an ``int64`` array and runs a level-synchronous BFS: per level, each
rule is matched against the whole frontier with ``searchsorted`` over
its sorted key table, successors come from adding code deltas, and the
frontier is deduplicated with ``np.unique`` -- no AST objects are
touched until :meth:`CompiledSpace.statespace` reconstructs the
expressions for presentation.

The supported fragment is exactly what the apparent-rate algebra keeps
*factorable*: every synchronised action must pair one active side with a
single passive term (arbitrary nesting and hiding of active actions is
fine).  Everything else -- both-active or both-passive synchronisation,
a shared action that is active in several parallel components, hiding a
passive action, mixed active/passive kinds on one side -- raises
:class:`CompileError` and :func:`~repro.pepa.statespace.explore` falls
back to the interpreter.  Reachability-dependent errors keep interpreter
semantics: a top-level passive transition raises
:class:`~repro.pepa.statespace.PassiveRateError` only when a reachable
state enables it ("poison rules" checked during the BFS, unlike
``kron.py``'s eager whole-product-space check), and ``max_states``
raises :class:`MemoryError`.

**Templates**: the CSR sparsity pattern of the generator depends only on
the structure, so :meth:`CompiledSpace.refill` re-evaluates nothing but
the rate vector for a new model of identical shape -- a parameter sweep
explores once and refills per (lambda, mu, t) point.  Spans
``pepa.compile``, ``pepa.explore.fast`` and ``template.refill`` make the
split visible in :mod:`repro.obs` traces.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.pepa.semantics import TransitionContext
from repro.pepa.statespace import PassiveRateError, StateSpace
from repro.pepa.syntax import TAU, Constant, Cooperation, Hiding, Model

__all__ = [
    "CompileError",
    "TemplateMismatch",
    "CompiledModel",
    "CompiledSpace",
    "compile_model",
]

_MAX_CODE = 2**62  # headroom below int64 so code deltas can never wrap
_MAX_RULE_ROWS = 5_000_000  # cross-product table guard (falls back)


class CompileError(ValueError):
    """The model falls outside the compiled fragment; callers fall back
    to the interpreter (:func:`repro.pepa.statespace.explore` does)."""


class TemplateMismatch(ValueError):
    """A refill model's structure differs from the compiled template."""


# ----------------------------------------------------------------------
# leaves: local derivative graphs, int-coded
# ----------------------------------------------------------------------


def _flat_names(comp) -> tuple:
    """Sequential-component names of ``comp``, flattened exactly like
    :meth:`StateSpace.local_names` (cooperation/hiding unwrapped)."""
    out: list = []

    def walk(c) -> None:
        if isinstance(c, Cooperation):
            walk(c.left)
            walk(c.right)
        elif isinstance(c, Hiding):
            walk(c.component)
        else:
            out.append(c.name if isinstance(c, Constant) else repr(c))

    walk(comp)
    return tuple(out)


class _LeafAction:
    """Aggregated local transitions of one action within one leaf."""

    __slots__ = ("src", "dst", "val", "passive")

    def __init__(self, src, dst, val, passive) -> None:
        self.src = src
        self.dst = dst
        self.val = val
        self.passive = passive


class _Leaf:
    """One sequential leaf: local states, their flattened names, and the
    per-action transition arrays."""

    __slots__ = ("comp", "states", "names", "mats", "n")

    def __init__(self, comp, states, names, mats) -> None:
        self.comp = comp
        self.states = states
        self.names = names
        self.mats = mats
        self.n = len(states)


def _leaf_table(comp, ctx: TransitionContext) -> _Leaf:
    """Explore a sequential component in isolation (BFS over its local
    derivatives) and aggregate multi-transitions per (src, dst)."""
    index = {comp: 0}
    states = [comp]
    raw: dict = {}  # action -> ([src], [dst], [val], passive)
    head = 0
    while head < len(states):
        s = states[head]
        head += 1
        for action, rate, succ in ctx.transitions(s):
            j = index.get(succ)
            if j is None:
                j = len(states)
                index[succ] = j
                states.append(succ)
            ent = raw.get(action)
            if ent is None:
                ent = raw[action] = ([], [], [], rate.passive)
            elif ent[3] != rate.passive:
                raise CompileError(
                    f"action {action!r} is both active and passive within "
                    "one sequential component"
                )
            ent[0].append(index[s])
            ent[1].append(j)
            ent[2].append(rate.value)
    n = len(states)
    mats = {}
    for action, (src, dst, val, passive) in raw.items():
        src_a = np.asarray(src, dtype=np.int64)
        dst_a = np.asarray(dst, dtype=np.int64)
        val_a = np.asarray(val, dtype=np.float64)
        # aggregate duplicate (src, dst) pairs: PEPA's multiset semantics
        # sums them, and a single entry per pair keeps the cross-product
        # tables minimal
        key = src_a * n + dst_a
        order = np.argsort(key, kind="stable")
        key = key[order]
        val_a = val_a[order]
        starts = np.flatnonzero(
            np.concatenate(([True], key[1:] != key[:-1]))
        )
        mats[action] = _LeafAction(
            key[starts] // n,
            key[starts] % n,
            np.add.reduceat(val_a, starts),
            passive,
        )
    names = [_flat_names(s) for s in states]
    return _Leaf(comp, states, names, mats)


# ----------------------------------------------------------------------
# symbolic combination of the cooperation tree
# ----------------------------------------------------------------------
#
# A *term* is one family of global transitions for one action: a tuple of
# factors (leaf_id, leaf_action, normalised) whose cross product, with
# rates multiplied (normalised factors contribute their row-normalised
# passive weights), enumerates the family.  The combination rules mirror
# kron.py's matrix algebra, kept symbolic so rates stay refillable.


class _Term:
    __slots__ = ("passive", "factors")

    def __init__(self, passive: bool, factors: tuple) -> None:
        self.passive = passive
        self.factors = factors  # ((leaf, action, normalised), ...) by leaf


def _combine(left: dict, right: dict, coop_actions) -> dict:
    out: dict = {}
    for table in (left, right):
        for action, terms in table.items():
            if action not in coop_actions:
                out.setdefault(action, []).extend(terms)
    # sorted iteration: frozenset order is hash-dependent across
    # processes, and rule order must be deterministic
    for action in sorted(coop_actions):
        lt = left.get(action)
        rt = right.get(action)
        if lt is None or rt is None:
            continue  # permanently blocked: contributes nothing
        lkinds = {t.passive for t in lt}
        rkinds = {t.passive for t in rt}
        if len(lkinds) > 1 or len(rkinds) > 1:
            raise CompileError(
                f"shared action {action!r} mixes active and passive terms "
                "on one side of a cooperation"
            )
        lp, rp = lkinds.pop(), rkinds.pop()
        if not lp and not rp:
            raise CompileError(
                f"synchronised action {action!r} is active on both sides; "
                "the min-rate semantics is not factorable"
            )
        if lp and rp:
            raise CompileError(
                f"synchronised action {action!r} is passive on both sides"
            )
        passive_terms, active_terms = (lt, rt) if lp else (rt, lt)
        if len(passive_terms) != 1:
            raise CompileError(
                f"passive side of synchronised action {action!r} has "
                "multiple parallel terms; its apparent rate is not "
                "factorable"
            )
        leaf, act, _ = passive_terms[0].factors[0]
        pfac = (leaf, act, True)
        new_terms = [
            _Term(
                False,
                tuple(sorted(t.factors + (pfac,))),
            )
            for t in active_terms
        ]
        out.setdefault(action, []).extend(new_terms)
    return out


def _hide(table: dict, hidden) -> dict:
    out: dict = {}
    for action, terms in table.items():
        if action in hidden:
            if any(t.passive for t in terms):
                raise CompileError(
                    f"hiding the passive action {action!r}"
                )
            out.setdefault(TAU, []).extend(terms)
        else:
            out.setdefault(action, []).extend(terms)
    return out


def _flatten(comp, ctx: TransitionContext, leaves: list):
    """Recursively flatten the system tree.  Returns ``(skeleton,
    table)`` where skeleton is a nested tuple mirroring the tree shape
    (for state reconstruction) and table maps action -> list of terms."""
    if isinstance(comp, Cooperation):
        lsk, lt = _flatten(comp.left, ctx, leaves)
        rsk, rt = _flatten(comp.right, ctx, leaves)
        return ("coop", lsk, rsk, comp.actions), _combine(lt, rt, comp.actions)
    if isinstance(comp, Hiding):
        sk, t = _flatten(comp.component, ctx, leaves)
        return ("hide", sk, comp.actions), _hide(t, comp.actions)
    i = len(leaves)
    leaves.append(_leaf_table(comp, ctx))
    table = {
        action: [_Term(mat.passive, ((i, action, False),))]
        for action, mat in leaves[i].mats.items()
    }
    return ("leaf", i), table


def _skeleton_leaf_order(skeleton, out: list) -> None:
    kind = skeleton[0]
    if kind == "coop":
        _skeleton_leaf_order(skeleton[1], out)
        _skeleton_leaf_order(skeleton[2], out)
    elif kind == "hide":
        _skeleton_leaf_order(skeleton[1], out)
    else:
        out.append(skeleton[1])


def _match_skeleton(comp, skeleton, out: list) -> None:
    """Collect the leaf expressions of ``comp`` along ``skeleton``,
    verifying the tree shape and cooperation/hiding sets match."""
    kind = skeleton[0]
    if kind == "coop":
        if not isinstance(comp, Cooperation) or comp.actions != skeleton[3]:
            raise TemplateMismatch("cooperation structure differs")
        _match_skeleton(comp.left, skeleton[1], out)
        _match_skeleton(comp.right, skeleton[2], out)
    elif kind == "hide":
        if not isinstance(comp, Hiding) or comp.actions != skeleton[2]:
            raise TemplateMismatch("hiding structure differs")
        _match_skeleton(comp.component, skeleton[1], out)
    else:
        if isinstance(comp, (Cooperation, Hiding)):
            raise TemplateMismatch("leaf position holds a composite")
        out.append(comp)


# ----------------------------------------------------------------------
# rules: flat cross-product transition tables
# ----------------------------------------------------------------------


class _Rule:
    """One transition family, ready for vectorized matching.

    ``idx`` holds, per table row and per factor, the row index into the
    factor's leaf-action entry arrays; everything else is precomputed
    from it.  Rate values live *outside* the rule (recomputed on refill).
    """

    __slots__ = (
        "action",
        "factors",
        "leaf_cols",
        "strides",
        "idx",
        "delta",
        "n_rows",
        "offset",
        "key_unique",
        "row_start",
        "row_count",
        "rows_sorted",
    )

    def __init__(self, action, term: _Term, leaves, mult) -> None:
        self.action = action
        self.factors = term.factors
        mats = [leaves[leaf].mats[act] for leaf, act, _ in term.factors]
        sizes = [m.src.size for m in mats]
        n_rows = 1
        for s in sizes:
            n_rows *= s
        if n_rows > _MAX_RULE_ROWS:
            raise CompileError(
                f"transition table for action {action!r} has {n_rows} "
                "rows; model too entangled for the compiled engine"
            )
        self.n_rows = n_rows
        self.offset = 0  # set by CompiledModel
        grids = np.meshgrid(
            *(np.arange(s, dtype=np.int64) for s in sizes), indexing="ij"
        )
        self.idx = np.stack([g.ravel() for g in grids], axis=1)
        leaf_ids = [leaf for leaf, _, _ in term.factors]
        self.leaf_cols = np.asarray(leaf_ids, dtype=np.intp)
        # rule-local mixed-radix strides over the participating leaves
        strides = np.empty(len(leaf_ids), dtype=np.int64)
        acc = 1
        for k in reversed(range(len(leaf_ids))):
            strides[k] = acc
            acc *= leaves[leaf_ids[k]].n
        self.strides = strides
        key = np.zeros(n_rows, dtype=np.int64)
        delta = np.zeros(n_rows, dtype=np.int64)
        for k, m in enumerate(mats):
            rows = self.idx[:, k]
            key += m.src[rows] * strides[k]
            delta += (m.dst[rows] - m.src[rows]) * mult[leaf_ids[k]]
        self.delta = delta
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        self.rows_sorted = order
        self.key_unique, counts = np.unique(key_sorted, return_counts=True)
        self.row_count = counts
        self.row_start = np.concatenate(([0], np.cumsum(counts)[:-1]))

    def match(self, locals_: np.ndarray):
        """Match the rule against a frontier's local-state matrix.

        Returns ``(frontier_rows, table_rows)``: parallel arrays with one
        entry per (state, enabled table row) pair.
        """
        keys = locals_[:, self.leaf_cols] @ self.strides
        pos = np.searchsorted(self.key_unique, keys)
        pos_c = np.minimum(pos, self.key_unique.size - 1)
        ok = self.key_unique[pos_c] == keys
        fi = np.flatnonzero(ok)
        if fi.size == 0:
            return fi, fi
        counts = self.row_count[pos[fi]]
        starts = self.row_start[pos[fi]]
        total = int(counts.sum())
        rep_fi = np.repeat(fi, counts)
        base = np.repeat(starts, counts)
        offs = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        rows = self.rows_sorted[base + offs]
        return rep_fi, rows


def _rule_values(rule: _Rule, leaves, norm_cache: dict) -> np.ndarray:
    """Evaluate a rule's rate column: product of its factors' current
    values (row-normalised for passive factors)."""
    v = None
    for k, (leaf, action, normalised) in enumerate(rule.factors):
        mat = leaves[leaf].mats[action]
        if normalised:
            col = norm_cache.get((leaf, action))
            if col is None:
                sums = np.bincount(
                    mat.src, weights=mat.val, minlength=leaves[leaf].n
                )
                col = norm_cache[(leaf, action)] = mat.val / sums[mat.src]
        else:
            col = mat.val
        vk = col[rule.idx[:, k]]
        v = vk if v is None else v * vk
    return v


# ----------------------------------------------------------------------
# the compiled model
# ----------------------------------------------------------------------


class CompiledModel:
    """Structure-compiled form of a PEPA model (rates still attached).

    Construction raises :class:`CompileError` when the model falls
    outside the supported fragment.  :meth:`explore` runs the vectorized
    BFS and returns a :class:`CompiledSpace`.
    """

    def __init__(self, model: Model) -> None:
        rec = obs.recorder()
        with rec.span("pepa.compile") as sp:
            self.model = model
            ctx = TransitionContext(model)
            self.leaves: list = []
            self.skeleton, table = _flatten(model.system, ctx, self.leaves)
            if not self.leaves:
                raise CompileError("model has no sequential leaves")
            total = 1
            for leaf in self.leaves:
                total *= leaf.n
            if total >= _MAX_CODE:
                raise CompileError(
                    f"product state space ({total} codes) overflows the "
                    "packed int64 encoding"
                )
            L = len(self.leaves)
            self.radices = np.array(
                [leaf.n for leaf in self.leaves], dtype=np.int64
            )
            mult = np.empty(L, dtype=np.int64)
            acc = 1
            for j in reversed(range(L)):
                mult[j] = acc
                acc *= self.leaves[j].n
            self.mult = mult
            self.rules: list = []
            self.poison: list = []  # top-level passive families
            for action in table:  # insertion order: deterministic
                for term in table[action]:
                    rule = _Rule(action, term, self.leaves, mult)
                    (self.poison if term.passive else self.rules).append(rule)
            offset = 0
            for rule in self.rules:
                rule.offset = offset
                offset += rule.n_rows
            self.n_table_rows = offset
            # canonical action ordering (independent of rule order)
            names = sorted({r.action for r in self.rules})
            self.action_names = names
            name_rank = {a: i for i, a in enumerate(names)}
            self.rule_action = np.array(
                [name_rank[r.action] for r in self.rules], dtype=np.int64
            )
            sp.set(
                leaves=L,
                rules=len(self.rules),
                table_rows=self.n_table_rows,
            )

    # ------------------------------------------------------------------
    def values(self) -> np.ndarray:
        """Current rate column over all rule table rows (concatenated in
        rule order)."""
        norm_cache: dict = {}
        if not self.rules:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(
            [_rule_values(r, self.leaves, norm_cache) for r in self.rules]
        )

    def rebind(self, model: Model) -> None:
        """Re-attach ``model``'s rates to the compiled structure.

        ``model`` must have the same shape: identical cooperation tree,
        and per leaf the same local derivative graph (state counts,
        actions, (src, dst) arrays and active/passive kinds).  Raises
        :class:`TemplateMismatch` otherwise.
        """
        exprs: list = []
        _match_skeleton(model.system, self.skeleton, exprs)
        if len(exprs) != len(self.leaves):
            raise TemplateMismatch("leaf count differs")
        ctx = TransitionContext(model)
        new_leaves = []
        for old, comp in zip(self.leaves, exprs):
            new = _leaf_table(comp, ctx)
            if new.n != old.n or set(new.mats) != set(old.mats):
                raise TemplateMismatch("local derivative graph differs")
            for action, mat in new.mats.items():
                ref = old.mats[action]
                if (
                    mat.passive != ref.passive
                    or mat.src.size != ref.src.size
                    or not np.array_equal(mat.src, ref.src)
                    or not np.array_equal(mat.dst, ref.dst)
                ):
                    raise TemplateMismatch(
                        f"local transitions of action {action!r} differ"
                    )
            new_leaves.append(new)
        self.leaves = new_leaves
        self.model = model

    # ------------------------------------------------------------------
    def explore(self, max_states: int = 2_000_000) -> "CompiledSpace":
        """Level-synchronous vectorized BFS from the initial packed state."""
        rec = obs.recorder()
        with rec.span("pepa.explore.fast") as sp:
            space = self._explore(max_states, rec)
            sp.set(
                states=space.n_states,
                transitions=space.n_transitions,
                depth=len(space.frontier_sizes),
            )
        return space

    def _explore(self, max_states: int, rec) -> "CompiledSpace":
        rec_on = rec.enabled
        level_codes = [np.zeros(1, dtype=np.int64)]  # all leaves start at 0
        sorted_codes = level_codes[0]
        sorted_ids = np.zeros(1, dtype=np.int64)
        n_total = 1
        frontier = level_codes[0]
        frontier_sizes: list = []
        m_src: list = []
        m_succ: list = []
        m_rule: list = []
        m_row: list = []
        while frontier.size:
            frontier_sizes.append((len(frontier_sizes), int(frontier.size)))
            if rec_on:
                rec.gauge("pepa.frontier", frontier.size)
            locals_ = (frontier[:, None] // self.mult[None, :]) % self.radices[
                None, :
            ]
            for prule in self.poison:
                fi, _rows = prule.match(locals_)
                if fi.size:
                    state = self._describe(frontier[int(fi[0])])
                    raise PassiveRateError(
                        f"passive rate for action {prule.action!r} reachable "
                        f"at the top level in state {state}; the model is "
                        "incomplete (a 'T' rate never synchronised with an "
                        "active partner)"
                    )
            succ_parts: list = []
            for ri, rule in enumerate(self.rules):
                fi, rows = rule.match(locals_)
                if fi.size == 0:
                    continue
                src_c = frontier[fi]
                succ_c = src_c + rule.delta[rows]
                m_src.append(src_c)
                m_succ.append(succ_c)
                m_rule.append(np.full(rows.size, ri, dtype=np.int64))
                m_row.append(rows + rule.offset)
                succ_parts.append(succ_c)
            if not succ_parts:
                break
            cand = np.unique(np.concatenate(succ_parts))
            pos = np.minimum(
                np.searchsorted(sorted_codes, cand), sorted_codes.size - 1
            )
            new_codes = cand[sorted_codes[pos] != cand]
            if not new_codes.size:
                break
            if n_total + new_codes.size > max_states:
                raise MemoryError(
                    f"state space exceeded max_states={max_states}"
                )
            level_codes.append(new_codes)
            n_total += new_codes.size
            all_codes = np.concatenate(level_codes)
            order = np.argsort(all_codes, kind="stable")
            sorted_codes = all_codes[order]
            sorted_ids = order
            frontier = new_codes

        codes = np.concatenate(level_codes)
        if m_src:
            src_codes = np.concatenate(m_src)
            succ_codes = np.concatenate(m_succ)
            rule_ids = np.concatenate(m_rule)
            table_rows = np.concatenate(m_row)
            src_ids = sorted_ids[np.searchsorted(sorted_codes, src_codes)]
            dst_ids = sorted_ids[np.searchsorted(sorted_codes, succ_codes)]
            act = self.rule_action[rule_ids]
            # canonical transition order: (src, action, dst); stable, so
            # equal-key match rows keep their deterministic BFS order and
            # the float aggregation below is reproducible
            perm = np.lexsort((dst_ids, act, src_ids))
            s, a, d = src_ids[perm], act[perm], dst_ids[perm]
            boundary = np.concatenate(
                ([True], (s[1:] != s[:-1]) | (a[1:] != a[:-1]) | (d[1:] != d[:-1]))
            )
            group = np.cumsum(boundary) - 1
            entry_src = s[boundary]
            entry_act = a[boundary]
            entry_dst = d[boundary]
            match_rows = table_rows[perm]
            match_group = group
        else:
            entry_src = entry_act = entry_dst = np.empty(0, dtype=np.int64)
            match_rows = match_group = np.empty(0, dtype=np.int64)
        space = CompiledSpace(
            self,
            codes,
            entry_src,
            entry_dst,
            entry_act,
            match_rows,
            match_group,
            frontier_sizes,
        )
        if rec_on:
            rec.trace("pepa.explore.frontier", frontier_sizes)
            rec.add("pepa.states", space.n_states)
            rec.add("pepa.transitions", space.n_transitions)
        return space

    # ------------------------------------------------------------------
    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Per-leaf local state indices of packed ``codes``."""
        return (np.asarray(codes).reshape(-1, 1) // self.mult) % self.radices

    def _describe(self, code: int) -> str:
        row = self.decode(np.array([code]))[0]
        parts = []
        for j, leaf in enumerate(self.leaves):
            parts.extend(leaf.names[int(row[j])])
        return "(" + ", ".join(parts) + ")"

    def rebuild_state(self, local_row) -> object:
        """Reconstruct the component expression for one local-state row."""

        def build(sk):
            kind = sk[0]
            if kind == "coop":
                return Cooperation(build(sk[1]), build(sk[2]), sk[3])
            if kind == "hide":
                return Hiding(build(sk[1]), sk[2])
            leaf = self.leaves[sk[1]]
            return leaf.states[int(local_row[sk[1]])]

        return build(self.skeleton)


class CompiledSpace:
    """Explored state space with a refillable rate vector.

    Duck-types the slice of :class:`StateSpace` that
    :func:`repro.pepa.ctmc_map.to_generator` needs (``n_states``,
    ``src``/``dst``/``rate``/``action``, ``actions()``), so a generator
    can be assembled without materialising component expressions;
    :meth:`statespace` builds the full interpreter-compatible object.
    """

    def __init__(
        self,
        compiled: CompiledModel,
        codes: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        act: np.ndarray,
        match_rows: np.ndarray,
        match_group: np.ndarray,
        frontier_sizes: list,
    ) -> None:
        self.compiled = compiled
        self.codes = codes
        self.locals = compiled.decode(codes)
        self.src = src
        self.dst = dst
        self._act = act
        self._match_rows = match_rows
        self._match_group = match_group
        self.frontier_sizes = frontier_sizes
        self._names: "list | None" = None
        self._reward_memo: dict = {}
        self._gen_template: "dict | None" = None
        self.rate = self._fill()

    # -- shape ---------------------------------------------------------
    @property
    def n_states(self) -> int:
        return int(self.codes.size)

    @property
    def n_transitions(self) -> int:
        return int(self.src.size)

    @property
    def action(self) -> list:
        names = self.compiled.action_names
        return [names[i] for i in self._act]

    def actions(self) -> set:
        return {self.compiled.action_names[i] for i in np.unique(self._act)}

    @property
    def model(self) -> Model:
        return self.compiled.model

    # -- rates ---------------------------------------------------------
    def _fill(self) -> np.ndarray:
        values = self.compiled.values()
        if not self._match_rows.size:
            return np.empty(0, dtype=np.float64)
        return np.bincount(
            self._match_group,
            weights=values[self._match_rows],
            minlength=self.n_transitions,
        )

    def refill(self, model: Model) -> "CompiledSpace":
        """Re-evaluate the rate vector for ``model`` (same structure,
        new rate values); the state space, sparsity pattern and action
        labels are reused unchanged.  Returns ``self``.
        """
        rec = obs.recorder()
        with rec.span("template.refill") as sp:
            old_names = [leaf.names for leaf in self.compiled.leaves]
            self.compiled.rebind(model)
            # local names usually survive a rate refill (same constants,
            # new rate values); only a renamed model invalidates the
            # name-derived caches, including memoised reward vectors
            if [leaf.names for leaf in self.compiled.leaves] != old_names:
                self._names = None
                self._reward_memo.clear()
            self.rate = self._fill()
            if rec.enabled:
                rec.add("template.refill.points")
            sp.set(transitions=self.n_transitions)
        return self

    # -- presentation --------------------------------------------------
    def names(self) -> list:
        """Flattened local names per state (no AST reconstruction)."""
        if self._names is None:
            leaves = self.compiled.leaves
            per_leaf = [leaf.names for leaf in leaves]
            self._names = [
                tuple(
                    name
                    for j in range(len(leaves))
                    for name in per_leaf[j][int(row[j])]
                )
                for row in self.locals
            ]
        return self._names

    def state_reward(self, fn) -> np.ndarray:
        """Vectorise ``fn(local_names) -> float`` over all states.

        Vectors are memoised by ``fn`` identity -- rewards depend only
        on state names, which survive rate refills -- so a sweep pays
        each reward once per structure.  Pass module-level functions
        (not fresh lambdas) to benefit.
        """
        out = self._reward_memo.get(fn)
        if out is None:
            out = self._reward_memo[fn] = np.fromiter(
                (fn(nm) for nm in self.names()), dtype=np.float64,
                count=self.n_states,
            )
        return out.copy()

    def generator(self):
        """Assemble the CTMC generator.

        The first call routes through the reference assembly
        (:func:`repro.pepa.ctmc_map.to_generator`) and records the CSR
        sparsity pattern -- entry positions for every transition, per
        action and for ``Q`` itself.  Later calls (i.e. after a rate
        refill) write only the data vectors into the frozen pattern,
        skipping all index sorting and duplicate bookkeeping.
        """
        from repro.pepa.ctmc_map import to_generator

        if self._gen_template not in (None, False):
            return self._generator_from_template()
        gen = to_generator(self)
        if self._gen_template is None:
            # False marks an unsupported pattern: keep using the
            # reference assembly instead of re-probing every call
            self._gen_template = self._build_gen_template(gen) or False
        return gen

    def _build_gen_template(self, gen) -> "dict | None":
        import scipy.sparse as sp_

        src, dst, rate = self.src, self.dst, self.rate
        n = self.n_states
        Q = gen.Q
        Q.sort_indices()
        qkey = (
            np.repeat(np.arange(n, dtype=np.int64), np.diff(Q.indptr)) * n
            + Q.indices
        )
        kf = np.flatnonzero(src != dst)
        order = np.lexsort((dst[kf], src[kf]))
        gather = kf[order]  # off-diag transitions in CSR (row, col) order
        ks, kd = src[gather], dst[gather]
        boundary = np.concatenate(
            ([True], (ks[1:] != ks[:-1]) | (kd[1:] != kd[:-1]))
        ) if ks.size else np.empty(0, dtype=bool)
        starts = np.flatnonzero(boundary)
        ukey = ks[starts] * n + kd[starts]
        pos = np.searchsorted(qkey, ukey)
        diag_pos = np.searchsorted(qkey, np.arange(n, dtype=np.int64) * (n + 1))
        # the pattern must hold every off-diagonal entry and a diagonal
        # slot per row; csr arithmetic can in principle prune explicit
        # zeros, in which case fall back to full assembly per call
        if (
            np.any(pos >= qkey.size)
            or np.any(qkey[np.minimum(pos, qkey.size - 1)] != ukey)
            or np.any(diag_pos >= qkey.size)
            or np.any(
                qkey[np.minimum(diag_pos, qkey.size - 1)]
                != np.arange(n, dtype=np.int64) * (n + 1)
            )
        ):
            return None
        row_boundary = np.concatenate(
            ([True], ks[1:] != ks[:-1])
        ) if ks.size else np.empty(0, dtype=bool)
        row_starts = np.flatnonzero(row_boundary)
        actions = {}
        for name in sorted(gen.action_rates):
            ma = np.flatnonzero(
                self._act == self.compiled.action_names.index(name)
            )
            aorder = ma[np.lexsort((dst[ma], src[ma]))]
            mat = gen.action_rates[name]
            mat.sort_indices()
            if mat.nnz != aorder.size:  # duplicate (src, dst) in action
                return None
            actions[name] = {
                "gather": aorder,
                "indices": mat.indices.copy(),
                "indptr": mat.indptr.copy(),
            }
        return {
            "indices": Q.indices.copy(),
            "indptr": Q.indptr.copy(),
            "nnz": Q.nnz,
            "gather": gather,
            "starts": starts,
            "pos": pos,
            "diag_pos": diag_pos,
            "row_starts": row_starts,
            "rows": ks[row_starts] if ks.size else np.empty(0, np.int64),
            "actions": actions,
            "csr": sp_.csr_matrix,
        }

    def _generator_from_template(self):
        from repro.ctmc import Generator

        t = self._gen_template
        n = self.n_states
        vals = self.rate[t["gather"]]
        data = np.zeros(t["nnz"], dtype=np.float64)
        if vals.size:
            data[t["pos"]] = np.add.reduceat(vals, t["starts"])
            exit_rates = np.add.reduceat(vals, t["row_starts"])
            data[t["diag_pos"][t["rows"]]] = -exit_rates
        Q = t["csr"](
            (data, t["indices"].copy(), t["indptr"].copy()), shape=(n, n)
        )
        action_rates = {}
        for name, at in t["actions"].items():
            action_rates[name] = t["csr"](
                (
                    self.rate[at["gather"]],
                    at["indices"].copy(),
                    at["indptr"].copy(),
                ),
                shape=(n, n),
            )
        return Generator(Q, action_rates=action_rates, validate=False)

    def statespace(self) -> StateSpace:
        """Materialise the interpreter-compatible :class:`StateSpace`
        (states in canonical order: BFS level, then packed code)."""
        cm = self.compiled
        states = [cm.rebuild_state(row) for row in self.locals]
        space = StateSpace(
            states=states,
            index={s: i for i, s in enumerate(states)},
            src=self.src.copy(),
            dst=self.dst.copy(),
            rate=self.rate.copy(),
            action=self.action,
            model=cm.model,
        )
        space._prime_names(self.names())
        return space


def compile_model(model: Model) -> CompiledModel:
    """Compile ``model`` for vectorized exploration and rate refills.

    Raises :class:`CompileError` when the model falls outside the
    supported fragment (see the module docstring for the boundary).
    """
    return CompiledModel(model)
