"""Pretty-printer (unparser) for PEPA models.

Produces source text that :func:`repro.pepa.parser.parse_model` reads back
into a structurally identical model (rate constants are inlined as
literals -- the AST does not retain their names).  Useful for inspecting
the generated TAGS models, diffing encodings, and feeding our models to
external PEPA tools.

Precedence handling matches the parser: cooperation is loosest, then
hiding, then choice, then prefix; parentheses are emitted only where
required.
"""

from __future__ import annotations

from repro.pepa.rates import Rate
from repro.pepa.syntax import (
    Choice,
    Component,
    Constant,
    Cooperation,
    Hiding,
    Model,
    Prefix,
)

__all__ = ["pretty_component", "pretty_model"]

_PREC_COOP = 0
_PREC_HIDE = 1
_PREC_CHOICE = 2
_PREC_PREFIX = 3


def _rate_text(rate: Rate) -> str:
    if rate.passive:
        return "infty" if rate.value == 1.0 else f"{rate.value!r} * infty"
    return repr(rate.value)


def pretty_component(comp: Component) -> str:
    """Render a component expression."""
    text, _ = _render(comp)
    return text


def _render(comp: Component) -> tuple[str, int]:
    """Return (text, precedence-of-top-operator)."""
    if isinstance(comp, Constant):
        return comp.name, _PREC_PREFIX
    if isinstance(comp, Prefix):
        inner, prec = _render(comp.continuation)
        if prec < _PREC_PREFIX:
            inner = f"({inner})"
        a = comp.activity
        return f"({a.action}, {_rate_text(a.rate)}).{inner}", _PREC_PREFIX
    if isinstance(comp, Choice):
        lt, lp = _render(comp.left)
        rt, rp = _render(comp.right)
        if lp < _PREC_CHOICE:
            lt = f"({lt})"
        # the parser is left-associative, so a right-nested choice needs
        # explicit parentheses to survive the round trip
        if rp < _PREC_CHOICE or isinstance(comp.right, Choice):
            rt = f"({rt})"
        return f"{lt} + {rt}", _PREC_CHOICE
    if isinstance(comp, Hiding):
        it, ip = _render(comp.component)
        if ip < _PREC_HIDE:
            it = f"({it})"
        acts = ", ".join(sorted(comp.actions))
        return f"{it} / {{{acts}}}", _PREC_HIDE
    if isinstance(comp, Cooperation):
        lt, lp = _render(comp.left)
        rt, rp = _render(comp.right)
        # cooperation is parsed left-associatively; parenthesise any
        # cooperation on the right and keep the left bare
        if lp < _PREC_HIDE and not isinstance(comp.left, Cooperation):
            lt = f"({lt})"
        if isinstance(comp.right, Cooperation) or rp < _PREC_HIDE:
            rt = f"({rt})"
        op = "||" if not comp.actions else f"<{', '.join(sorted(comp.actions))}>"
        return f"{lt} {op} {rt}", _PREC_COOP
    raise TypeError(f"not a PEPA component: {comp!r}")


def pretty_model(model: Model) -> str:
    """Render a whole model: definitions then the system equation."""
    lines = []
    for name, body in model.definitions.items():
        lines.append(f"{name} = {pretty_component(body)};")
    lines.append(f"{pretty_component(model.system)};")
    return "\n".join(lines)
