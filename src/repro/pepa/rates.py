"""PEPA activity rates: active reals and weighted passive rates.

PEPA rates are either a positive real (an *active* rate) or the distinguished
*unspecified* symbol ``T`` (here :data:`PASSIVE`/:func:`top`), optionally
weighted (``n T``) to bias probabilistic branching among passive activities.

The arithmetic needed by the semantics:

* addition (for apparent rates): actives add; passives add weights;
  ``active + passive`` is ill-formed in an apparent-rate computation for a
  single action type within one component (PEPA forbids mixing, we raise);
* ``min`` (for cooperation): any active < any passive; two passives compare
  by weight;
* division by an apparent rate of the same kind (for the cooperation rate
  formula).

These operations implement the ``T``-calculus of Hillston's definition
(1996, section 3.3.2 footnote): ``m T < n T`` iff ``m < n``,
``m T + n T = (m + n) T``, ``m T / (n T) = m / n`` and ``r < n T`` for any
real ``r``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Rate", "ACTIVE", "PASSIVE", "top", "MixedRateError"]


class MixedRateError(TypeError):
    """Raised when active and passive rates are mixed where PEPA forbids it."""


@dataclass(frozen=True, slots=True)
class Rate:
    """An activity rate: ``value`` is the rate (active) or weight (passive)."""

    value: float
    passive: bool = False

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError(
                f"{'weight' if self.passive else 'rate'} must be positive, "
                f"got {self.value}"
            )

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: "Rate") -> "Rate":
        if not isinstance(other, Rate):
            return NotImplemented
        if self.passive != other.passive:
            raise MixedRateError(
                "cannot mix active and passive rates for one action type "
                "within a single component (ill-formed PEPA)"
            )
        return Rate(self.value + other.value, self.passive)

    def __mul__(self, scalar: float) -> "Rate":
        return Rate(self.value * scalar, self.passive)

    __rmul__ = __mul__

    def min_with(self, other: "Rate") -> "Rate":
        """PEPA minimum: actives dominate passives."""
        if self.passive and not other.passive:
            return other
        if other.passive and not self.passive:
            return self
        return self if self.value <= other.value else other

    def ratio_to(self, apparent: "Rate") -> float:
        """``self / apparent`` -- the branching proportion used in the
        cooperation rate formula.  Both must be the same kind."""
        if self.passive != apparent.passive:
            raise MixedRateError("ratio of mixed rate kinds")
        return self.value / apparent.value

    # -- display -------------------------------------------------------
    def __repr__(self) -> str:
        if self.passive:
            return "T" if self.value == 1.0 else f"{self.value:g}*T"
        return f"{self.value:g}"


def top(weight: float = 1.0) -> Rate:
    """The passive rate ``weight * T``."""
    return Rate(weight, passive=True)


def ACTIVE(value: float) -> Rate:
    """An active rate (convenience constructor)."""
    return Rate(float(value), passive=False)


PASSIVE = top()
"""The unweighted passive rate ``T``."""
