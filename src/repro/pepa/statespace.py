"""Reachable state space of a PEPA model.

Breadth-first exploration from the system equation.  Every reachable
derivative becomes a CTMC state; the labelled multi-transitions are recorded
as flat arrays ready for sparse-matrix assembly.

:func:`explore` is an engine dispatcher: models inside the compiled
fragment (see :mod:`repro.pepa.compiled`) are explored by the vectorized
engine -- identical ``StateSpace`` output, states in canonical
(BFS-level, packed-code) order -- and everything else falls back to the
pure-Python interpreter below.

Passive rates must have been closed off by cooperation by the time they
reach the top level -- a reachable passive transition means the model is
incomplete (some ``T`` never met an active partner) and raises
:class:`PassiveRateError`, mirroring the PEPA Workbench's check.  Both
engines check this over *reachable* states only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.pepa.semantics import TransitionContext
from repro.pepa.syntax import Component, Constant, Cooperation, Hiding, Model

__all__ = ["StateSpace", "explore", "PassiveRateError"]


class PassiveRateError(RuntimeError):
    """A passive (unspecified) rate survived to the top level."""


@dataclass
class StateSpace:
    """Explored labelled transition system of a PEPA model.

    Attributes
    ----------
    states :
        List of component expressions; index = CTMC state id.
    index :
        Reverse map component -> id.
    src, dst, rate :
        Parallel arrays of transitions (multi-transitions already summed
        per (src, dst, action)).
    action :
        Python list of action names parallel to ``src``.
    initial :
        Id of the system equation's state (always 0).
    """

    states: list
    index: dict
    src: np.ndarray
    dst: np.ndarray
    rate: np.ndarray
    action: list
    model: Model
    initial: int = 0
    # lazily-built decomposition caches; reward helpers walk each state's
    # AST exactly once per space, not once per state per reward
    _names: "list | None" = field(default=None, repr=False, compare=False)
    _name_codes: "np.ndarray | None" = field(
        default=None, repr=False, compare=False
    )
    _name_vocab: "dict | None" = field(default=None, repr=False, compare=False)

    @property
    def n_states(self) -> int:
        return len(self.states)

    @property
    def n_transitions(self) -> int:
        return len(self.src)

    def actions(self) -> set:
        return set(self.action)

    # ------------------------------------------------------------------
    def local_states(self, state_id: int) -> tuple:
        """The sequential components of a state, left-to-right (flattening
        cooperation/hiding structure).  Useful for reward functions."""
        out: list = []

        def walk(c: Component) -> None:
            if isinstance(c, Cooperation):
                walk(c.left)
                walk(c.right)
            elif isinstance(c, Hiding):
                walk(c.component)
            else:
                out.append(c)

        walk(self.states[state_id])
        return tuple(out)

    def _prime_names(self, names: list) -> None:
        """Install a precomputed local-name decomposition (one tuple per
        state).  The compiled engine knows the names without rebuilding
        any component expression; everyone else gets them lazily."""
        if len(names) != self.n_states:
            raise ValueError("names cache length != state count")
        self._names = list(names)

    def _ensure_names(self) -> list:
        if self._names is None:
            self._names = [
                tuple(
                    c.name if isinstance(c, Constant) else repr(c)
                    for c in self.local_states(i)
                )
                for i in range(self.n_states)
            ]
        return self._names

    def local_names(self, state_id: int) -> tuple:
        """Names of the sequential components (Constants) of a state."""
        return self._ensure_names()[state_id]

    def state_reward(self, fn) -> np.ndarray:
        """Vectorise ``fn(local_names) -> float`` over all states."""
        names = self._ensure_names()
        return np.fromiter(
            (fn(nm) for nm in names), dtype=np.float64, count=self.n_states
        )

    def _coded_names(self):
        """Int-coded name matrix (n_states x n_leaves) + vocabulary, or
        ``(None, vocab)`` when states disagree on leaf count (possible
        only for pathological models whose leaves unfold into composites).
        """
        if self._name_vocab is None:
            names = self._ensure_names()
            vocab: dict = {}
            widths = {len(nm) for nm in names}
            if len(widths) == 1 and names:
                codes = np.empty((len(names), widths.pop()), dtype=np.int32)
                for i, nm in enumerate(names):
                    for j, name in enumerate(nm):
                        code = vocab.get(name)
                        if code is None:
                            code = vocab[name] = len(vocab)
                        codes[i, j] = code
                self._name_codes = codes
            else:
                for nm in names:
                    for name in nm:
                        vocab.setdefault(name, len(vocab))
                self._name_codes = None
            self._name_vocab = vocab
        return self._name_codes, self._name_vocab

    def derivative_count(self, name: str) -> np.ndarray:
        """Per-state count of sequential components equal to ``name``
        (the quantity fluid analysis approximates)."""
        codes, vocab = self._coded_names()
        code = vocab.get(name)
        if code is None:
            return np.zeros(self.n_states, dtype=np.float64)
        if codes is not None:
            return (codes == code).sum(axis=1).astype(np.float64)
        return self.state_reward(lambda names: names.count(name))

    def find_deadlocks(self) -> np.ndarray:
        """State ids with no outgoing transitions."""
        has_out = np.zeros(self.n_states, dtype=bool)
        has_out[self.src] = True
        return np.flatnonzero(~has_out)


def explore(
    model: Model,
    *,
    max_states: int = 2_000_000,
    engine: str = "auto",
) -> StateSpace:
    """Explore the reachable derivatives of ``model.system``.

    ``engine`` selects the implementation:

    * ``"auto"`` (default) -- compile for the vectorized engine; on
      :class:`~repro.pepa.compiled.CompileError` (model outside the
      supported fragment) fall back to the interpreter silently.
    * ``"compiled"`` -- vectorized engine only; ``CompileError``
      propagates.
    * ``"interpreter"`` -- the reference pure-Python BFS below.

    Both produce the same ``StateSpace`` contents; the compiled engine
    orders states canonically (BFS level, then packed local-state code)
    while the interpreter's order depends on hash-dependent transition
    enumeration.  Progress is reported through :mod:`repro.obs`: the
    interpreter emits a ``pepa.explore`` span, the fast path
    ``pepa.compile`` + ``pepa.explore.fast``; both emit the
    ``pepa.explore.frontier`` trace, ``pepa.frontier`` gauge and
    ``pepa.states``/``pepa.transitions`` counters.
    """
    if engine not in ("auto", "compiled", "interpreter"):
        raise ValueError(
            f"unknown engine {engine!r}: pick 'auto', 'compiled' or "
            "'interpreter'"
        )
    if engine != "interpreter":
        # lazy import: compiled.py imports this module for StateSpace
        from repro.pepa.compiled import CompileError, compile_model

        try:
            compiled = compile_model(model)
        except CompileError:
            if engine == "compiled":
                raise
        else:
            return compiled.explore(max_states=max_states).statespace()
    return _explore_interpreter(model, max_states=max_states)


def _explore_interpreter(
    model: Model,
    *,
    max_states: int = 2_000_000,
) -> StateSpace:
    """Reference BFS: pure-Python AST rewriting, one state at a time."""
    ctx = TransitionContext(model)
    rec = obs.recorder()
    rec_on = rec.enabled
    t0 = time.perf_counter() if rec_on else 0.0
    frontier_sizes: list = []
    index: dict = {model.system: 0}
    states: list = [model.system]
    src: list = []
    dst: list = []
    rates: list = []
    actions: list = []

    frontier = [0]
    while frontier:
        if rec_on:
            frontier_sizes.append((len(frontier_sizes), len(frontier)))
            rec.gauge("pepa.frontier", len(frontier))
        next_frontier: list = []
        for sid in frontier:
            state = states[sid]
            # sum multi-transitions per (action, successor)
            agg: dict = {}
            for action, rate, succ in ctx.transitions(state):
                if rate.passive:
                    raise PassiveRateError(
                        f"passive rate for action {action!r} reachable at the "
                        f"top level in state {state!r}; the model is "
                        "incomplete (a 'T' rate never synchronised with an "
                        "active partner)"
                    )
                key = (action, succ)
                agg[key] = agg.get(key, 0.0) + rate.value
            for (action, succ), total in agg.items():
                tid = index.get(succ)
                if tid is None:
                    tid = len(states)
                    if tid >= max_states:
                        raise MemoryError(
                            f"state space exceeded max_states={max_states}"
                        )
                    index[succ] = tid
                    states.append(succ)
                    next_frontier.append(tid)
                src.append(sid)
                dst.append(tid)
                rates.append(total)
                actions.append(action)
        frontier = next_frontier

    if rec_on:
        rec.record_span(
            "pepa.explore",
            t0,
            time.perf_counter() - t0,
            states=len(states),
            transitions=len(src),
            depth=len(frontier_sizes),
        )
        rec.trace("pepa.explore.frontier", frontier_sizes)
        rec.add("pepa.states", len(states))
        rec.add("pepa.transitions", len(src))
    return StateSpace(
        states=states,
        index=index,
        src=np.asarray(src, dtype=np.int64),
        dst=np.asarray(dst, dtype=np.int64),
        rate=np.asarray(rates, dtype=np.float64),
        action=actions,
        model=model,
    )
