"""Reachable state space of a PEPA model.

Breadth-first exploration from the system equation.  Every reachable
derivative becomes a CTMC state; the labelled multi-transitions are recorded
as flat arrays ready for sparse-matrix assembly.

Passive rates must have been closed off by cooperation by the time they
reach the top level -- a reachable passive transition means the model is
incomplete (some ``T`` never met an active partner) and raises
:class:`PassiveRateError`, mirroring the PEPA Workbench's check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.pepa.semantics import TransitionContext
from repro.pepa.syntax import Component, Constant, Cooperation, Hiding, Model

__all__ = ["StateSpace", "explore", "PassiveRateError"]


class PassiveRateError(RuntimeError):
    """A passive (unspecified) rate survived to the top level."""


@dataclass
class StateSpace:
    """Explored labelled transition system of a PEPA model.

    Attributes
    ----------
    states :
        List of component expressions; index = CTMC state id.
    index :
        Reverse map component -> id.
    src, dst, rate :
        Parallel arrays of transitions (multi-transitions already summed
        per (src, dst, action)).
    action :
        Python list of action names parallel to ``src``.
    initial :
        Id of the system equation's state (always 0).
    """

    states: list
    index: dict
    src: np.ndarray
    dst: np.ndarray
    rate: np.ndarray
    action: list
    model: Model
    initial: int = 0

    @property
    def n_states(self) -> int:
        return len(self.states)

    @property
    def n_transitions(self) -> int:
        return len(self.src)

    def actions(self) -> set:
        return set(self.action)

    # ------------------------------------------------------------------
    def local_states(self, state_id: int) -> tuple:
        """The sequential components of a state, left-to-right (flattening
        cooperation/hiding structure).  Useful for reward functions."""
        out: list = []

        def walk(c: Component) -> None:
            if isinstance(c, Cooperation):
                walk(c.left)
                walk(c.right)
            elif isinstance(c, Hiding):
                walk(c.component)
            else:
                out.append(c)

        walk(self.states[state_id])
        return tuple(out)

    def local_names(self, state_id: int) -> tuple:
        """Names of the sequential components (Constants) of a state."""
        return tuple(
            c.name if isinstance(c, Constant) else repr(c)
            for c in self.local_states(state_id)
        )

    def state_reward(self, fn) -> np.ndarray:
        """Vectorise ``fn(local_names) -> float`` over all states."""
        return np.array(
            [fn(self.local_names(i)) for i in range(self.n_states)], dtype=float
        )

    def derivative_count(self, name: str) -> np.ndarray:
        """Per-state count of sequential components equal to ``name``
        (the quantity fluid analysis approximates)."""
        return self.state_reward(lambda names: names.count(name))

    def find_deadlocks(self) -> np.ndarray:
        """State ids with no outgoing transitions."""
        has_out = np.zeros(self.n_states, dtype=bool)
        has_out[self.src] = True
        return np.flatnonzero(~has_out)


def explore(
    model: Model,
    *,
    max_states: int = 2_000_000,
) -> StateSpace:
    """BFS exploration of the reachable derivatives of ``model.system``.

    Progress and shape are reported through :mod:`repro.obs`: one
    ``pepa.explore`` span (state/transition counts, BFS depth), a
    ``pepa.explore.frontier`` iteration trace (frontier size per BFS
    level -- the chain's breadth profile) and a ``pepa.frontier`` gauge.
    """
    ctx = TransitionContext(model)
    rec = obs.recorder()
    rec_on = rec.enabled
    t0 = time.perf_counter() if rec_on else 0.0
    frontier_sizes: list = []
    index: dict = {model.system: 0}
    states: list = [model.system]
    src: list = []
    dst: list = []
    rates: list = []
    actions: list = []

    frontier = [0]
    while frontier:
        if rec_on:
            frontier_sizes.append((len(frontier_sizes), len(frontier)))
            rec.gauge("pepa.frontier", len(frontier))
        next_frontier: list = []
        for sid in frontier:
            state = states[sid]
            # sum multi-transitions per (action, successor)
            agg: dict = {}
            for action, rate, succ in ctx.transitions(state):
                if rate.passive:
                    raise PassiveRateError(
                        f"passive rate for action {action!r} reachable at the "
                        f"top level in state {state!r}; the model is "
                        "incomplete (a 'T' rate never synchronised with an "
                        "active partner)"
                    )
                key = (action, succ)
                agg[key] = agg.get(key, 0.0) + rate.value
            for (action, succ), total in agg.items():
                tid = index.get(succ)
                if tid is None:
                    tid = len(states)
                    if tid >= max_states:
                        raise MemoryError(
                            f"state space exceeded max_states={max_states}"
                        )
                    index[succ] = tid
                    states.append(succ)
                    next_frontier.append(tid)
                src.append(sid)
                dst.append(tid)
                rates.append(total)
                actions.append(action)
        frontier = next_frontier

    if rec_on:
        rec.record_span(
            "pepa.explore",
            t0,
            time.perf_counter() - t0,
            states=len(states),
            transitions=len(src),
            depth=len(frontier_sizes),
        )
        rec.trace("pepa.explore.frontier", frontier_sizes)
        rec.add("pepa.states", len(states))
        rec.add("pepa.transitions", len(src))
    return StateSpace(
        states=states,
        index=index,
        src=np.asarray(src, dtype=np.int64),
        dst=np.asarray(dst, dtype=np.int64),
        rate=np.asarray(rates, dtype=np.float64),
        action=actions,
        model=model,
    )
