"""Graphviz (DOT) export of PEPA derivation graphs.

Small models are best debugged visually; :func:`to_dot` renders an
explored state space as a labelled digraph (``dot -Tsvg model.dot``).
States are labelled by their sequential-component names, edges by
``action, rate``; parallel transitions between the same pair of states are
kept separate (they are distinct activities).
"""

from __future__ import annotations

from repro.pepa.statespace import StateSpace

__all__ = ["to_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(
    space: StateSpace,
    *,
    name: str = "pepa",
    max_states: int = 500,
    state_label=None,
) -> str:
    """Render the derivation graph as DOT source.

    Parameters
    ----------
    space :
        An explored state space.
    max_states :
        Guard against accidentally dumping a 10^5-node graph.
    state_label :
        Optional ``(state_id) -> str`` override for node labels; defaults
        to the comma-joined sequential component names.
    """
    if space.n_states > max_states:
        raise ValueError(
            f"state space has {space.n_states} states (> {max_states}); "
            "raise max_states explicitly if you really want this graph"
        )
    if state_label is None:
        state_label = lambda i: ", ".join(space.local_names(i))
    lines = [f'digraph "{_escape(name)}" {{', "  rankdir=LR;"]
    lines.append(
        '  node [shape=box, style=rounded, fontsize=10, fontname="Helvetica"];'
    )
    for i in range(space.n_states):
        shape = ' peripheries=2' if i == space.initial else ""
        lines.append(f'  s{i} [label="{_escape(state_label(i))}"{shape}];')
    for src, dst, rate, action in zip(
        space.src, space.dst, space.rate, space.action
    ):
        lines.append(
            f'  s{src} -> s{dst} [label="{_escape(action)}, {rate:g}", '
            "fontsize=9];"
        )
    lines.append("}")
    return "\n".join(lines)
