"""Static well-formedness checks on PEPA models.

Checks performed by :func:`check_model`:

* every constant used is defined;
* recursion is prefix-guarded (no ``A = A + ...`` style unguarded cycles);
* cooperation sets only mention actions that at least one side can ever
  perform (a warning-level finding: legal PEPA, but almost always a typo --
  e.g. misspelling ``service1`` would silently decouple the timer);
* no action type is enabled with mixed active/passive rates within a
  sequential component.

These mirror the checks the PEPA Workbench runs before derivation and would
have caught the Figure 3/Figure 4 cooperation-set discrepancy discussed in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pepa.syntax import (
    Choice,
    Component,
    Constant,
    Cooperation,
    Hiding,
    Model,
    Prefix,
)

__all__ = ["check_model", "WellFormednessError", "alphabet", "used_constants"]


class WellFormednessError(ValueError):
    """A hard well-formedness violation."""


@dataclass
class CheckReport:
    """Findings from :func:`check_model`."""

    warnings: list = field(default_factory=list)

    def warn(self, msg: str) -> None:
        self.warnings.append(msg)


def used_constants(comp: Component) -> set:
    """All constant names referenced in a component expression."""
    out: set = set()
    stack = [comp]
    while stack:
        c = stack.pop()
        if isinstance(c, Constant):
            out.add(c.name)
        elif isinstance(c, Prefix):
            stack.append(c.continuation)
        elif isinstance(c, Choice):
            stack.extend((c.left, c.right))
        elif isinstance(c, Cooperation):
            stack.extend((c.left, c.right))
        elif isinstance(c, Hiding):
            stack.append(c.component)
    return out


def alphabet(comp: Component, model: Model, _seen: set | None = None) -> set:
    """Action types a component could ever perform (syntactic closure over
    constants and derivative continuations; hiding masks its set)."""
    seen = set() if _seen is None else _seen
    out: set = set()
    stack = [comp]
    while stack:
        c = stack.pop()
        if isinstance(c, Constant):
            if c.name in seen:
                continue
            seen.add(c.name)
            stack.append(model.resolve(c.name))
        elif isinstance(c, Prefix):
            out.add(c.activity.action)
            stack.append(c.continuation)
        elif isinstance(c, Choice):
            stack.extend((c.left, c.right))
        elif isinstance(c, Cooperation):
            stack.extend((c.left, c.right))
        elif isinstance(c, Hiding):
            inner = alphabet(c.component, model, seen)
            out |= inner - c.actions
    return out


def _check_guarded(model: Model) -> None:
    """Unguarded recursion: a cycle through constants reachable without
    passing a prefix."""

    def immediate(comp: Component) -> set:
        """Constants reachable without crossing a prefix."""
        out: set = set()
        stack = [comp]
        while stack:
            c = stack.pop()
            if isinstance(c, Constant):
                out.add(c.name)
            elif isinstance(c, Choice):
                stack.extend((c.left, c.right))
            elif isinstance(c, Cooperation):
                stack.extend((c.left, c.right))
            elif isinstance(c, Hiding):
                stack.append(c.component)
            # Prefix: guarded -- stop
        return out

    graph = {name: immediate(body) for name, body in model.definitions.items()}
    # DFS cycle detection
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in graph}

    def visit(name: str, path: list) -> None:
        colour[name] = GREY
        path.append(name)
        for nxt in graph.get(name, ()):  # undefined names caught elsewhere
            if nxt not in colour:
                continue
            if colour[nxt] == GREY:
                cycle = " -> ".join(path[path.index(nxt):] + [nxt])
                raise WellFormednessError(f"unguarded recursion: {cycle}")
            if colour[nxt] == WHITE:
                visit(nxt, path)
        path.pop()
        colour[name] = BLACK

    for name in graph:
        if colour[name] == WHITE:
            visit(name, [])


def _check_mixed_rates(model: Model, report: CheckReport) -> None:
    """Within each definition body, one action type must not appear with
    both active and passive rates among the immediately enabled activities
    of any choice context."""

    def immediate_activities(comp: Component, acc: list) -> None:
        if isinstance(comp, Prefix):
            acc.append(comp.activity)
        elif isinstance(comp, Choice):
            immediate_activities(comp.left, acc)
            immediate_activities(comp.right, acc)
        # constants/cooperations have their own scopes

    for name, body in model.definitions.items():
        acts: list = []
        immediate_activities(body, acts)
        kinds: dict = {}
        for a in acts:
            prev = kinds.setdefault(a.action, a.rate.passive)
            if prev != a.rate.passive:
                raise WellFormednessError(
                    f"definition {name!r} enables action {a.action!r} with "
                    "both active and passive rates"
                )


def check_model(model: Model) -> CheckReport:
    """Run all checks; raises :class:`WellFormednessError` on hard errors
    and returns a report carrying warnings."""
    report = CheckReport()

    # undefined constants
    referenced: set = set(used_constants(model.system))
    for body in model.definitions.values():
        referenced |= used_constants(body)
    undefined = referenced - set(model.definitions)
    if undefined:
        raise WellFormednessError(
            f"undefined constant(s): {', '.join(sorted(undefined))}"
        )

    _check_guarded(model)
    _check_mixed_rates(model, report)

    # cooperation sets vs alphabets
    def walk(comp: Component) -> None:
        if isinstance(comp, Cooperation):
            left_alpha = alphabet(comp.left, model)
            right_alpha = alphabet(comp.right, model)
            for act in sorted(comp.actions):
                if act not in left_alpha and act not in right_alpha:
                    report.warn(
                        f"cooperation set mentions {act!r} but neither side "
                        "can ever perform it"
                    )
                elif act not in left_alpha or act not in right_alpha:
                    side = "left" if act not in left_alpha else "right"
                    report.warn(
                        f"cooperation on {act!r} permanently blocks: the "
                        f"{side} side never performs it"
                    )
            walk(comp.left)
            walk(comp.right)
        elif isinstance(comp, Hiding):
            walk(comp.component)
        elif isinstance(comp, Choice):
            walk(comp.left)
            walk(comp.right)
        elif isinstance(comp, Prefix):
            walk(comp.continuation)

    walk(model.system)
    for body in model.definitions.values():
        walk(body)
    return report
