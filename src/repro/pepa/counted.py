"""Count-based (aggregated) exploration of replicated-component models.

Section 3.1 of the paper proposes re-encoding each queue place as its own
component (Figure 4) and analysing the result by *counting* components per
local derivative instead of tracking their identities.  The identity-free
quotient is exact -- identical parallel components are ordinarily lumpable
-- and this module explores that quotient directly, so the Figure 4 model
costs O(queue length) states per group rather than O(2^K).

The model shape matches :class:`~repro.pepa.fluid.FluidModel`: a set of
*groups*, each a multiset of copies of one sequential component, plus the
set of action types synchronised *between* groups.  The CTMC semantics of
the quotient:

* unsynced action, local transition ``d -> d'`` at active rate ``r``:
  fires at ``count[d] * r`` and moves one component;
* synced action ``a``: every group enabling ``a`` participates.  Each
  group's apparent rate is the count-weighted sum of its enabled rates
  (passive rates sum weights); the combined rate is PEPA's
  ``prod(branch fractions) * min(active apparent rates)``, and the
  transition moves one component in *each* participating group.

This flattens the cooperation tree into one participant set per action
type, which is exact when each action's cooperation structure forms a
single clique -- true for Figure 4 and every model in this reproduction;
a :class:`ValueError` guards the unsynced-passive case that would violate
it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.ctmc import Generator
from repro.ctmc.bfs import bfs_generator
from repro.pepa.fluid import FluidGroup
from repro.pepa.semantics import TransitionContext
from repro.pepa.syntax import Constant, Model

__all__ = ["CountedModel"]


@dataclass
class _Local:
    group: int
    src: int
    dst: int
    value: float
    passive: bool


class CountedModel:
    """Aggregated CTMC of a replicated-component PEPA model.

    Parameters mirror :class:`~repro.pepa.fluid.FluidModel`; counts must be
    integers here (they are component multiplicities, not fluid masses).
    """

    def __init__(self, model: Model, groups: list, synced: set) -> None:
        self.model = model
        self.groups = list(groups)
        self.synced = frozenset(synced)
        for g in self.groups:
            for name, c in g.initial.items():
                if c != int(c) or c < 0:
                    raise ValueError(
                        f"count for {name!r} in group {g.name!r} must be a "
                        f"non-negative integer, got {c}"
                    )
        self._ctx = TransitionContext(model)
        self._build_locals()

    # ------------------------------------------------------------------
    def _build_locals(self) -> None:
        self._deriv_names: list[list[str]] = []
        self._deriv_index: list[dict] = []
        self._locals_by_action: dict[str, list[_Local]] = {}
        initial_counts = []
        for gi, g in enumerate(self.groups):
            derivs: list = []
            index: dict = {}
            todo = [Constant(d) for d in g.initial]
            while todo:
                comp = todo.pop()
                if comp in index:
                    continue
                index[comp] = len(derivs)
                derivs.append(comp)
                for _a, _r, succ in self._ctx.transitions(comp):
                    if succ not in index:
                        todo.append(succ)
            for comp in derivs:
                for action, rate, succ in self._ctx.transitions(comp):
                    self._locals_by_action.setdefault(action, []).append(
                        _Local(gi, index[comp], index[succ], rate.value, rate.passive)
                    )
            self._deriv_index.append(index)
            self._deriv_names.append(
                [c.name if isinstance(c, Constant) else repr(c) for c in derivs]
            )
            counts = [0] * len(derivs)
            for name, c in g.initial.items():
                counts[index[Constant(name)]] = int(c)
            initial_counts.append(tuple(counts))
        self.initial = tuple(initial_counts)

        # sanity: unsynced actions must be purely active
        for action, locs in self._locals_by_action.items():
            if action not in self.synced and any(l.passive for l in locs):
                raise ValueError(
                    f"action {action!r} has passive rates but is not in the "
                    "synced set; it could never fire"
                )

    # ------------------------------------------------------------------
    def _successors(self, state):
        out = []
        for action, locs in self._locals_by_action.items():
            by_group: dict[int, list] = {}
            for l in locs:
                if state[l.group][l.src] > 0:
                    by_group.setdefault(l.group, []).append(l)
            if not by_group:
                continue
            if action not in self.synced:
                for gi, ls in by_group.items():
                    for l in ls:
                        rate = state[gi][l.src] * l.value
                        out.append((action, rate, self._move(state, [l])))
                continue
            # synced: all groups that *could ever* perform the action must
            # currently enable it
            all_groups = {l.group for l in self._locals_by_action[action]}
            if set(by_group) != all_groups:
                continue  # someone is blocked
            apparent = {}
            for gi, ls in by_group.items():
                total = sum(state[gi][l.src] * l.value for l in ls)
                passive = ls[0].passive
                if any(l.passive != passive for l in ls):
                    raise ValueError(
                        f"group {gi} mixes active and passive rates for "
                        f"{action!r}"
                    )
                apparent[gi] = (total, passive)
            active_totals = [t for t, p in apparent.values() if not p]
            if not active_totals:
                raise ValueError(
                    f"synced action {action!r} has no active participant"
                )
            rate_total = min(active_totals)
            # branch over one local transition per group
            for combo in itertools.product(*by_group.values()):
                frac = 1.0
                for l in combo:
                    total, _p = apparent[l.group]
                    frac *= state[l.group][l.src] * l.value / total
                out.append((action, frac * rate_total, self._move(state, combo)))
        return out

    @staticmethod
    def _move(state, locals_):
        new = [list(g) for g in state]
        for l in locals_:
            new[l.group][l.src] -= 1
            new[l.group][l.dst] += 1
        return tuple(tuple(g) for g in new)

    # ------------------------------------------------------------------
    def explore(self):
        """Return ``(generator, states, index)`` of the counted quotient."""
        return bfs_generator(self.initial, self._successors)

    def count_reward(self, group_name: str, derivative: str):
        """Callable mapping a counted state to the number of ``derivative``
        components in ``group_name`` (for use as a state reward)."""
        gi = next(
            i for i, g in enumerate(self.groups) if g.name == group_name
        )
        di = self._deriv_names[gi].index(derivative)
        return lambda state: float(state[gi][di])
