"""Kronecker (compositional) CTMC assembly for PEPA models.

Instead of exploring the global state space breadth-first, the generator
of a cooperation can be assembled from the components' *local* matrices
with Kronecker algebra (Plateau's stochastic automata networks, applied
to PEPA by Hillston & Kloul):

* unsynchronised action ``a``: contributes ``R_a (x) I`` or ``I (x) R_a``;
* synchronised action with one active and one passive side: contributes
  ``R_a^{active} (x) rownorm(W_a^{passive})`` -- the passive side's
  branch-weight matrix is row-normalised, so each active transition is
  split across the passive branches, exactly PEPA's apparent-rate rule
  for the active/passive case.

The construction handles arbitrary nesting of cooperations and hiding
over sequential leaves.  Two PEPA features are *not* Kronecker-
representable and raise ``NotImplementedError``: a synchronised action
whose both sides are active (the ``min`` of state-dependent apparent
rates is not a product form) and a both-passive synchronisation.  Every
model in this reproduction -- and most queueing models -- fits the
supported fragment: queues are passive, clocks and servers are active.

The assembled generator lives on the full product space, which may
contain unreachable states (e.g. ``Q1_0`` with a mid-count timer); the
returned product is restricted to the states reachable from the initial
configuration, after which it matches the explicit exploration exactly
(asserted in the tests, state-for-state).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ctmc import Generator
from repro.ctmc.structure import reachable_from
from repro.pepa.semantics import TransitionContext
from repro.pepa.statespace import PassiveRateError
from repro.pepa.syntax import TAU, Cooperation, Hiding, Model

__all__ = ["kron_generator"]


class _Block:
    """Local states plus per-action (matrix, passive?) pairs."""

    def __init__(self, states, mats):
        self.states = states          # list of component expressions
        self.mats = mats              # action -> (csr_matrix, passive: bool)

    @property
    def n(self) -> int:
        return len(self.states)


def _leaf_block(comp, ctx: TransitionContext) -> _Block:
    """Explore a sequential component in isolation."""
    index = {comp: 0}
    states = [comp]
    triples: dict = {}
    head = 0
    while head < len(states):
        s = states[head]
        head += 1
        for action, rate, succ in ctx.transitions(s):
            j = index.get(succ)
            if j is None:
                j = len(states)
                index[succ] = j
                states.append(succ)
            key = action
            entry = triples.setdefault(key, ([], [], [], rate.passive))
            if entry[3] != rate.passive:
                raise PassiveRateError(
                    f"action {action!r} is both active and passive within "
                    f"one sequential component"
                )
            entry[0].append(index[s])
            entry[1].append(j)
            entry[2].append(rate.value)
    n = len(states)
    mats = {}
    for action, (src, dst, val, passive) in triples.items():
        mats[action] = (
            sp.csr_matrix((val, (src, dst)), shape=(n, n)),
            passive,
        )
    return _Block(states, mats)


def _rownorm(M: sp.csr_matrix) -> sp.csr_matrix:
    """Normalise each non-empty row to sum 1 (passive branch splitting)."""
    sums = np.asarray(M.sum(axis=1)).ravel()
    inv = np.where(sums > 0, 1.0 / np.where(sums > 0, sums, 1.0), 0.0)
    return sp.csr_matrix(sp.diags(inv) @ M)


def _combine(left: _Block, right: _Block, actions) -> _Block:
    IL = sp.identity(left.n, format="csr")
    IR = sp.identity(right.n, format="csr")
    mats: dict = {}

    def add(action, M, passive):
        if action in mats:
            M0, p0 = mats[action]
            if p0 != passive:
                raise PassiveRateError(
                    f"action {action!r} mixes active and passive across "
                    "cooperands outside a cooperation set"
                )
            M = M0 + M
        mats[action] = (sp.csr_matrix(M), passive)

    shared = set(actions)
    for action, (M, passive) in left.mats.items():
        if action not in shared:
            add(action, sp.kron(M, IR, format="csr"), passive)
    for action, (M, passive) in right.mats.items():
        if action not in shared:
            add(action, sp.kron(IL, M, format="csr"), passive)
    for action in shared:
        if action not in left.mats or action not in right.mats:
            continue  # permanently blocked: contributes nothing
        ML, pL = left.mats[action]
        MR, pR = right.mats[action]
        if not pL and not pR:
            raise NotImplementedError(
                f"synchronised action {action!r} is active on both sides; "
                "the min-rate semantics is not Kronecker-representable -- "
                "use repro.pepa.explore for this model"
            )
        if pL and pR:
            raise NotImplementedError(
                f"synchronised action {action!r} is passive on both sides; "
                "its weight algebra is not Kronecker-representable at this "
                "level -- restructure the cooperation or use explore()"
            )
        if pL:
            combined = sp.kron(_rownorm(ML), MR, format="csr")
        else:
            combined = sp.kron(ML, _rownorm(MR), format="csr")
        add(action, combined, passive=False)

    states = [(l, r) for l in left.states for r in right.states]
    return _Block(states, mats)


def _build(comp, ctx: TransitionContext) -> _Block:
    if isinstance(comp, Cooperation):
        left = _build(comp.left, ctx)
        right = _build(comp.right, ctx)
        return _combine(left, right, comp.actions)
    if isinstance(comp, Hiding):
        inner = _build(comp.component, ctx)
        mats: dict = {}
        for action, (M, passive) in inner.mats.items():
            name = TAU if action in comp.actions else action
            if name == TAU and passive:
                raise PassiveRateError(
                    f"hiding the passive action {action!r} leaves it with "
                    "no rate"
                )
            if name in mats:
                M0, p0 = mats[name]
                mats[name] = (sp.csr_matrix(M0 + M), p0 and passive)
            else:
                mats[name] = (M, passive)
        return _Block(inner.states, mats)
    return _leaf_block(comp, ctx)


def kron_generator(model: Model):
    """Assemble the model's CTMC compositionally.

    Returns ``(generator, states)`` where ``states`` are the reachable
    product states (tuples mirroring the cooperation structure, leaves
    being sequential component expressions), ``states[0]`` the initial
    configuration.
    """
    ctx = TransitionContext(model)
    block = _build(model.system, ctx)

    active = {
        a: M for a, (M, passive) in block.mats.items() if not passive
    }
    for a, (M, passive) in block.mats.items():
        if passive and M.nnz:
            raise PassiveRateError(
                f"passive rate for action {a!r} reachable at the top level; "
                "the model is incomplete"
            )
    n = block.n
    total = sp.csr_matrix((n, n))
    for M in active.values():
        total = total + M
    total = sp.csr_matrix(total)

    # restrict to the reachable part (the product space over-approximates)
    off = total.copy()
    off.setdiag(0.0)
    exit_rates = np.asarray(off.sum(axis=1)).ravel()
    probe = Generator(off - sp.diags(exit_rates), validate=False)
    keep = reachable_from(probe, 0)
    sub = {a: sp.csr_matrix(M[keep][:, keep]) for a, M in active.items()}
    R = off[keep][:, keep].tocoo()
    gen = Generator.from_triples(
        keep.size, R.row, R.col, R.data, action_rates=sub
    )
    states = [block.states[i] for i in keep]
    return gen, states
