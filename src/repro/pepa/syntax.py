"""PEPA abstract syntax.

Components are immutable, hashable trees so they can serve directly as CTMC
state descriptors during reachability exploration::

    P ::= (alpha, r).P  |  P + Q  |  P/L  |  P <L> Q  |  A

Design notes
------------
* ``Constant`` nodes are *not* unfolded structurally: a state keeps the name
  ``Q1_3`` rather than its (possibly huge) definition body, which keeps
  state hashing O(tree size) with small trees.
* Cooperation/hiding sets are ``frozenset`` of action names.
* ``TAU`` is the hidden action type; it can never appear in a cooperation
  set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Union

from repro.pepa.rates import Rate

__all__ = [
    "TAU",
    "Activity",
    "Component",
    "Prefix",
    "Choice",
    "Cooperation",
    "Hiding",
    "Constant",
    "Model",
    "prefix_chain",
]

TAU = "tau"
"""The silent action type produced by hiding."""


@dataclass(frozen=True, slots=True)
class Activity:
    """An activity ``(action, rate)``."""

    action: str
    rate: Rate

    def __repr__(self) -> str:
        return f"({self.action}, {self.rate!r})"


class Component:
    """Base class for PEPA component expressions (marker only)."""

    __slots__ = ()

    # operator sugar -----------------------------------------------------
    def __add__(self, other: "Component") -> "Choice":
        return Choice(self, other)

    def coop(self, other: "Component", actions: Iterable[str] = ()) -> "Cooperation":
        """``self <actions> other``; empty set is the parallel combinator."""
        return Cooperation(self, other, frozenset(actions))

    def __or__(self, other: "Component") -> "Cooperation":
        return self.coop(other)

    def hide(self, actions: Iterable[str]) -> "Hiding":
        return Hiding(self, frozenset(actions))


@dataclass(frozen=True, slots=True, repr=False)
class Prefix(Component):
    """``(alpha, r).P``"""

    activity: Activity
    continuation: "ComponentT"

    def __repr__(self) -> str:
        return f"{self.activity!r}.{self.continuation!r}"


@dataclass(frozen=True, slots=True, repr=False)
class Choice(Component):
    """``P + Q``"""

    left: "ComponentT"
    right: "ComponentT"

    def __repr__(self) -> str:
        return f"({self.left!r} + {self.right!r})"


@dataclass(frozen=True, slots=True, repr=False)
class Cooperation(Component):
    """``P <L> Q`` -- synchronise on the action types in ``L``."""

    left: "ComponentT"
    right: "ComponentT"
    actions: frozenset

    def __post_init__(self) -> None:
        if TAU in self.actions:
            raise ValueError("tau cannot appear in a cooperation set")

    def __repr__(self) -> str:
        acts = ",".join(sorted(self.actions))
        return f"({self.left!r} <{acts}> {self.right!r})"


@dataclass(frozen=True, slots=True, repr=False)
class Hiding(Component):
    """``P / L`` -- actions in ``L`` become ``tau``."""

    component: "ComponentT"
    actions: frozenset

    def __repr__(self) -> str:
        acts = ",".join(sorted(self.actions))
        return f"({self.component!r}/{{{acts}}})"


@dataclass(frozen=True, slots=True, repr=False)
class Constant(Component):
    """A named component ``A`` defined by ``A = P`` in the model."""

    name: str

    def __repr__(self) -> str:
        return self.name


ComponentT = Union[Prefix, Choice, Cooperation, Hiding, Constant]


@dataclass(frozen=True)
class Model:
    """A PEPA model: definitions plus the system equation.

    ``definitions`` maps constant names to component bodies; ``system`` is
    the model equation whose derivatives form the CTMC state space.
    """

    definitions: Mapping[str, ComponentT]
    system: ComponentT

    def __post_init__(self) -> None:
        object.__setattr__(self, "definitions", dict(self.definitions))

    def resolve(self, name: str) -> ComponentT:
        try:
            return self.definitions[name]
        except KeyError:
            raise KeyError(f"undefined PEPA constant {name!r}") from None


def prefix_chain(*activities: Activity, then: ComponentT) -> ComponentT:
    """Build ``(a1).(a2)...(ak).then`` from a list of activities."""
    comp = then
    for act in reversed(activities):
        comp = Prefix(act, comp)
    return comp
