"""Textual PEPA parser (PEPA-Workbench style syntax).

Grammar (``//`` and ``#`` start line comments)::

    model      := statement* ;
    statement  := ratedef | compdef | system ;
    ratedef    := lowerident '=' rateexpr ';'
    compdef    := UpperIdent '=' comp ';'
    system     := comp ';'                 // a bare expression; at most one

    comp       := hideterm (coopop hideterm)*        // left-associative
    coopop     := '<' names? '>' | '||'
    hideterm   := choice ('/' '{' names '}')*
    choice     := prefix ('+' prefix)*
    prefix     := '(' action ',' rateexpr ')' '.' prefix
                | UpperIdent
                | '(' comp ')'
    rateexpr   := arithmetic over numbers, rate names and 'infty'/'T'

Conventions (as in the PEPA Workbench):

* names beginning with a lower-case letter are **rate constants**, names
  beginning with an upper-case letter are **component constants**;
* the system equation is a bare (un-named) expression, or -- if absent --
  the last component definition;
* the passive rate is written ``infty`` or ``T`` and may be weighted
  (``2 * infty``).

Example::

    lam = 5.0;  mu = 10.0;
    Idle = (arrive, lam).Busy;
    Busy = (serve, mu).Idle + (fail, 0.01).Broken;
    Broken = (repair, 1.0).Idle;
    Idle;
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.pepa.rates import Rate
from repro.pepa.syntax import (
    Activity,
    Choice,
    Constant,
    Cooperation,
    Hiding,
    Model,
    Prefix,
)

__all__ = ["parse_model", "parse_component", "PepaSyntaxError"]


class PepaSyntaxError(SyntaxError):
    """Raised on malformed PEPA source."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*|\#[^\n]*)
  | (?P<num>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<op><>|\|\||[()<>{},.;+\-*/=])
    """,
    re.VERBOSE,
)

_PASSIVE_NAMES = {"infty", "T", "top", "_tt"}


@dataclass
class _Token:
    kind: str  # 'num' | 'name' | 'op' | 'eof'
    text: str
    pos: int


def _tokenize(src: str) -> list[_Token]:
    tokens = []
    i = 0
    while i < len(src):
        m = _TOKEN_RE.match(src, i)
        if m is None:
            raise PepaSyntaxError(f"unexpected character {src[i]!r} at offset {i}")
        i = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        tokens.append(_Token(kind, m.group(), m.start()))
    tokens.append(_Token("eof", "<eof>", len(src)))
    return tokens


class _RateValue:
    """Arithmetic domain for rate expressions: active floats or weighted
    passives."""

    __slots__ = ("value", "passive")

    def __init__(self, value: float, passive: bool = False) -> None:
        self.value = value
        self.passive = passive

    def to_rate(self) -> Rate:
        return Rate(self.value, self.passive)


def _rate_arith(op: str, a: _RateValue, b: _RateValue) -> _RateValue:
    if op == "+":
        if a.passive != b.passive:
            raise PepaSyntaxError("cannot add active and passive rates")
        return _RateValue(a.value + b.value, a.passive)
    if op == "-":
        if a.passive or b.passive:
            raise PepaSyntaxError("cannot subtract passive rates")
        return _RateValue(a.value - b.value)
    if op == "*":
        if a.passive and b.passive:
            raise PepaSyntaxError("cannot multiply two passive rates")
        return _RateValue(a.value * b.value, a.passive or b.passive)
    if op == "/":
        if b.passive:
            raise PepaSyntaxError("cannot divide by a passive rate")
        return _RateValue(a.value / b.value, a.passive)
    raise AssertionError(op)


class _Parser:
    def __init__(self, src: str) -> None:
        self.tokens = _tokenize(src)
        self.pos = 0
        self.rates: dict[str, _RateValue] = {}
        self.definitions: dict = {}
        self.system = None

    # -- token helpers --------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def next(self) -> _Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, text: str) -> _Token:
        tok = self.next()
        if tok.text != text:
            raise PepaSyntaxError(
                f"expected {text!r} but found {tok.text!r} at offset {tok.pos}"
            )
        return tok

    def at(self, text: str) -> bool:
        return self.peek().text == text

    # -- model level ----------------------------------------------------
    def parse_model(self) -> Model:
        while self.peek().kind != "eof":
            self._statement()
        if self.system is None:
            if not self.definitions:
                raise PepaSyntaxError("empty model")
            # convention: last definition is the system equation
            self.system = Constant(next(reversed(self.definitions)))
        return Model(self.definitions, self.system)

    def _statement(self) -> None:
        tok = self.peek()
        if (
            tok.kind == "name"
            and self.tokens[self.pos + 1].text == "="
            and tok.text not in _PASSIVE_NAMES
        ):
            name = self.next().text
            self.expect("=")
            if name[0].isupper():
                self.definitions[name] = self._comp()
            else:
                self.rates[name] = self._rate_expr()
            self.expect(";")
        else:
            if self.system is not None:
                raise PepaSyntaxError(
                    f"second system equation at offset {tok.pos}"
                )
            self.system = self._comp()
            if self.at(";"):
                self.next()

    # -- components ------------------------------------------------------
    def _comp(self):
        left = self._hideterm()
        while True:
            if self.at("||") or self.at("<>"):
                self.next()
                right = self._hideterm()
                left = Cooperation(left, right, frozenset())
            elif self.at("<"):
                self.next()
                names = self._name_list(closing=">")
                right = self._hideterm()
                left = Cooperation(left, right, frozenset(names))
            else:
                return left

    def _hideterm(self):
        comp = self._choice()
        while self.at("/"):
            self.next()
            self.expect("{")
            names = self._name_list(closing="}")
            comp = Hiding(comp, frozenset(names))
        return comp

    def _choice(self):
        left = self._prefix()
        while self.at("+"):
            self.next()
            right = self._prefix()
            left = Choice(left, right)
        return left

    def _prefix(self):
        tok = self.peek()
        if tok.kind == "name":
            if not tok.text[0].isupper():
                raise PepaSyntaxError(
                    f"component constant expected at offset {tok.pos}; "
                    f"{tok.text!r} names a rate (lower-case initial)"
                )
            self.next()
            return Constant(tok.text)
        if tok.text == "(":
            # deterministic lookahead: '(' name ',' is always an activity
            # (a component expression cannot contain a bare comma)
            if (
                self.tokens[self.pos + 1].kind == "name"
                and self.tokens[self.pos + 2].text == ","
            ):
                return self._activity_prefix()
            self.expect("(")
            comp = self._comp()
            self.expect(")")
            return comp
        raise PepaSyntaxError(
            f"expected a component at offset {tok.pos}, found {tok.text!r}"
        )

    def _activity_prefix(self):
        self.expect("(")
        tok = self.next()
        if tok.kind != "name":
            raise PepaSyntaxError(f"action name expected at offset {tok.pos}")
        action = tok.text
        self.expect(",")
        rate = self._rate_expr().to_rate()
        self.expect(")")
        self.expect(".")
        cont = self._prefix()
        return Prefix(Activity(action, rate), cont)

    def _name_list(self, closing: str) -> list[str]:
        names = []
        if self.at(closing):  # empty set, e.g. "<>" split as '<' '>'
            self.next()
            return names
        while True:
            tok = self.next()
            if tok.kind != "name":
                raise PepaSyntaxError(
                    f"action name expected at offset {tok.pos}, found {tok.text!r}"
                )
            names.append(tok.text)
            tok = self.next()
            if tok.text == closing:
                return names
            if tok.text != ",":
                raise PepaSyntaxError(
                    f"expected ',' or {closing!r} at offset {tok.pos}"
                )

    # -- rate expressions --------------------------------------------------
    def _rate_expr(self) -> _RateValue:
        left = self._rate_term()
        while self.at("+") or self.at("-"):
            op = self.next().text
            right = self._rate_term()
            left = _rate_arith(op, left, right)
        return left

    def _rate_term(self) -> _RateValue:
        left = self._rate_atom()
        while self.at("*") or self.at("/"):
            op = self.next().text
            right = self._rate_atom()
            left = _rate_arith(op, left, right)
        return left

    def _rate_atom(self) -> _RateValue:
        tok = self.next()
        if tok.kind == "num":
            return _RateValue(float(tok.text))
        if tok.kind == "name":
            if tok.text in _PASSIVE_NAMES:
                return _RateValue(1.0, passive=True)
            if tok.text in self.rates:
                v = self.rates[tok.text]
                return _RateValue(v.value, v.passive)
            raise PepaSyntaxError(
                f"undefined rate constant {tok.text!r} at offset {tok.pos}"
            )
        if tok.text == "(":
            v = self._rate_expr()
            self.expect(")")
            return v
        if tok.text == "-":
            v = self._rate_atom()
            return _RateValue(-v.value, v.passive)
        raise PepaSyntaxError(
            f"rate expression expected at offset {tok.pos}, found {tok.text!r}"
        )


def parse_model(src: str) -> Model:
    """Parse PEPA source into a :class:`~repro.pepa.syntax.Model`."""
    return _Parser(src).parse_model()


def parse_component(src: str, rates: dict[str, float] | None = None):
    """Parse a single component expression (no definitions)."""
    p = _Parser(src)
    p.rates = {k: _RateValue(float(v)) for k, v in (rates or {}).items()}
    comp = p._comp()
    if p.peek().kind != "eof":
        tok = p.peek()
        raise PepaSyntaxError(f"trailing input at offset {tok.pos}: {tok.text!r}")
    return comp
