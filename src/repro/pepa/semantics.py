"""PEPA structured operational semantics.

:func:`transitions` enumerates the activities a component enables together
with their successor components, implementing Hillston's rules including the
**apparent rate** treatment of cooperation: a shared activity proceeds at

    (r1 / R1(a)) * (r2 / R2(a)) * min(R1(a), R2(a))

where ``R_i(a)`` is component *i*'s apparent rate of ``a`` (the sum of the
rates of all its enabled ``a``-activities) and passive rates act as
infinities carrying branching weights.

The result is a *multi*-transition list: syntactically distinct derivations
that happen to coincide in (action, rate, successor) are kept separate and
later summed into the CTMC, which matches PEPA's multiset semantics (e.g.
``(a, r).P + (a, r).P`` fires ``a`` at rate ``2r``).

``TransitionContext`` memoises per-component transition lists; reachability
exploration visits the same sequential derivatives in thousands of global
states, so this cache is the difference between O(states) and
O(states x tree) work.
"""

from __future__ import annotations

from typing import Iterable

from repro.pepa.rates import MixedRateError, Rate
from repro.pepa.syntax import (
    TAU,
    Choice,
    Component,
    Constant,
    Cooperation,
    Hiding,
    Model,
    Prefix,
)

__all__ = ["Transition", "TransitionContext", "transitions", "apparent_rate"]

Transition = tuple  # (action: str, rate: Rate, successor: Component)


class TransitionContext:
    """Memoised transition computation against one model's definitions."""

    _IN_PROGRESS = object()

    def __init__(self, model: Model) -> None:
        self.model = model
        self._memo: dict = {}

    # ------------------------------------------------------------------
    def transitions(self, comp) -> tuple:
        """All activities enabled by ``comp``: tuple of
        ``(action, Rate, successor)``."""
        cached = self._memo.get(comp)
        if cached is self._IN_PROGRESS:
            raise RecursionError(
                f"unguarded recursion: computing the transitions of "
                f"{comp!r} requires its own transitions"
            )
        if cached is None:
            self._memo[comp] = self._IN_PROGRESS
            try:
                cached = self._derive(comp, ())
            except BaseException:
                del self._memo[comp]
                raise
            self._memo[comp] = cached
        return cached

    def apparent_rate(self, comp, action: str) -> Rate | None:
        """Apparent rate of ``action`` in ``comp`` (None when disabled)."""
        total: Rate | None = None
        for a, r, _ in self.transitions(comp):
            if a == action:
                total = r if total is None else total + r
        return total

    # ------------------------------------------------------------------
    def _derive(self, comp, unfolding: tuple) -> tuple:
        if isinstance(comp, Prefix):
            return ((comp.activity.action, comp.activity.rate, comp.continuation),)

        if isinstance(comp, Choice):
            return self._derive_sub(comp.left) + self._derive_sub(comp.right)

        if isinstance(comp, Constant):
            if comp.name in unfolding:
                cycle = " -> ".join(unfolding + (comp.name,))
                raise RecursionError(
                    f"unguarded recursion through constant(s): {cycle}"
                )
            body = self.model.resolve(comp.name)
            return self._derive(body, unfolding + (comp.name,))

        if isinstance(comp, Hiding):
            out = []
            for action, rate, succ in self._derive_sub(comp.component):
                shown = TAU if action in comp.actions else action
                out.append((shown, rate, Hiding(succ, comp.actions)))
            return tuple(out)

        if isinstance(comp, Cooperation):
            return self._derive_cooperation(comp)

        raise TypeError(f"not a PEPA component: {comp!r}")

    def _derive_sub(self, comp) -> tuple:
        """Memoised recursion (fresh unfolding stack: a sub-derivation is a
        new guardedness scope)."""
        return self.transitions(comp)

    def _derive_cooperation(self, comp: Cooperation) -> tuple:
        L = comp.actions
        left_tr = self._derive_sub(comp.left)
        right_tr = self._derive_sub(comp.right)
        out = []
        # independent moves
        for action, rate, succ in left_tr:
            if action not in L:
                out.append((action, rate, Cooperation(succ, comp.right, L)))
        for action, rate, succ in right_tr:
            if action not in L:
                out.append((action, rate, Cooperation(comp.left, succ, L)))
        # synchronised moves
        shared = {a for a, _, _ in left_tr if a in L} & {
            a for a, _, _ in right_tr if a in L
        }
        for action in shared:
            lt = [(r, s) for a, r, s in left_tr if a == action]
            rt = [(r, s) for a, r, s in right_tr if a == action]
            R1 = _sum_rates(action, (r for r, _ in lt))
            R2 = _sum_rates(action, (r for r, _ in rt))
            m = R1.min_with(R2)
            for r1, s1 in lt:
                for r2, s2 in rt:
                    rate = Rate(
                        r1.ratio_to(R1) * r2.ratio_to(R2) * m.value, m.passive
                    )
                    out.append((action, rate, Cooperation(s1, s2, L)))
        return tuple(out)


def _sum_rates(action: str, rates: Iterable[Rate]) -> Rate:
    total: Rate | None = None
    for r in rates:
        try:
            total = r if total is None else total + r
        except MixedRateError:
            raise MixedRateError(
                f"action {action!r} enabled with both active and passive "
                "rates inside one cooperand (ill-formed PEPA)"
            ) from None
    assert total is not None
    return total


# ----------------------------------------------------------------------
# module-level conveniences (fresh context each call; fine for small uses)
# ----------------------------------------------------------------------

def transitions(
    comp: Component,
    model: Model,
    ctx: "TransitionContext | None" = None,
) -> tuple:
    """Enabled activities of ``comp`` under ``model``'s definitions.

    Pass a shared ``ctx`` (built against the same ``model``) to keep the
    memo across calls -- a fresh context per call silently discards it,
    which turns loops (e.g. well-formedness sweeps over every derivative)
    quadratic.
    """
    if ctx is None:
        ctx = TransitionContext(model)
    elif ctx.model is not model:
        raise ValueError("ctx was built for a different model")
    return ctx.transitions(comp)


def apparent_rate(
    comp: Component,
    action: str,
    model: Model,
    ctx: "TransitionContext | None" = None,
) -> Rate | None:
    """Apparent rate of ``action`` in ``comp`` (None when disabled).

    ``ctx`` works as in :func:`transitions`: share one context across
    calls against the same model to retain memoisation.
    """
    if ctx is None:
        ctx = TransitionContext(model)
    elif ctx.model is not model:
        raise ValueError("ctx was built for a different model")
    return ctx.apparent_rate(comp, action)
