"""Bounded Pareto distribution B(k, p, a).

Harchol-Balter's TAGS analysis (the paper's reference [5]) uses the bounded
Pareto as the empirically observed heavy-tailed job-size distribution::

    f(x) = a k^a x^{-a-1} / (1 - (k/p)^a),   k <= x <= p

Our paper approximates it with an H2 whose parameters "broadly correspond"
(Section 5).  The simulator uses the bounded Pareto directly so the
CTMC-vs-simulation benches can probe what the Markovian approximation
misses.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BoundedPareto"]


class BoundedPareto:
    """Bounded Pareto on [k, p] with tail index ``a > 0``."""

    def __init__(self, k: float, p: float, a: float) -> None:
        if not (0 < k < p):
            raise ValueError(f"need 0 < k < p, got k={k}, p={p}")
        if a <= 0:
            raise ValueError(f"tail index must be positive, got {a}")
        self.k = float(k)
        self.p = float(p)
        self.a = float(a)
        self._norm = 1.0 - (k / p) ** a

    def pdf(self, x) -> np.ndarray:
        x = np.atleast_1d(np.asarray(x, dtype=float))
        inside = (x >= self.k) & (x <= self.p)
        out = np.zeros_like(x)
        out[inside] = (
            self.a * self.k**self.a * x[inside] ** (-self.a - 1) / self._norm
        )
        return out

    def cdf(self, x) -> np.ndarray:
        x = np.atleast_1d(np.asarray(x, dtype=float))
        out = np.clip((1.0 - (self.k / x) ** self.a) / self._norm, 0.0, 1.0)
        out[x < self.k] = 0.0
        out[x >= self.p] = 1.0
        return out

    def moment(self, r: int) -> float:
        """Raw moment ``E[X^r]`` (closed form; handles ``r == a``)."""
        k, p, a = self.k, self.p, self.a
        if abs(a - r) < 1e-12:
            return a * k**a * np.log(p / k) / self._norm
        return (a * k**a / self._norm) * (p ** (r - a) - k ** (r - a)) / (r - a)

    @property
    def mean(self) -> float:
        return self.moment(1)

    @property
    def variance(self) -> float:
        m = self.mean
        return self.moment(2) - m * m

    @property
    def scv(self) -> float:
        m = self.mean
        return self.variance / (m * m)

    def sample(self, size: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Inverse-CDF sampling."""
        rng = np.random.default_rng() if rng is None else rng
        u = rng.random(size)
        # invert F(x) = (1 - (k/x)^a) / norm
        return self.k * (1.0 - u * self._norm) ** (-1.0 / self.a)
