"""Concrete phase-type families: Exponential, Erlang, Hyper-exponential,
Coxian.

Each family subclasses :class:`~repro.dists.phase_type.PhaseType` so the
generic machinery (pdf/cdf/moments/sampling) applies, but stores its natural
parameters and overrides closed forms where they are cheaper/exacter than
the matrix-exponential route.

The paper's H2 parameterisation (Section 3.2) is::

    F(t) = 1 - alpha e^{-mu1 t} - (1 - alpha) e^{-mu2 t}

i.e. with probability ``alpha`` the job is "short" (rate ``mu1``) and with
probability ``1 - alpha`` "long" (rate ``mu2``); in all the paper's
experiments ``mu1 > mu2``.  Helpers construct H2 parameters from the paper's
conventions (fixed mean with ``mu1 = c * mu2``) and from (mean, SCV) pairs.
"""

from __future__ import annotations

import numpy as np

from repro.dists.phase_type import PhaseType

__all__ = [
    "Exponential",
    "Erlang",
    "HyperExponential",
    "Coxian",
    "h2_balanced_means",
    "h2_from_mean_scv",
]


class Exponential(PhaseType):
    """Exponential(rate) as a one-phase PH."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        super().__init__([1.0], [[-rate]])

    def pdf(self, x):
        x = np.atleast_1d(np.asarray(x, dtype=float))
        return np.where(x >= 0, self.rate * np.exp(-self.rate * x), 0.0)

    def cdf(self, x):
        x = np.atleast_1d(np.asarray(x, dtype=float))
        return np.where(x >= 0, 1.0 - np.exp(-self.rate * x), 0.0)

    def sample(self, size, rng=None):
        rng = np.random.default_rng() if rng is None else rng
        return rng.exponential(1.0 / self.rate, size=size)


class Erlang(PhaseType):
    """Erlang(k, rate): sum of ``k`` iid Exponential(rate) phases.

    This is the paper's model of the (ideally deterministic) TAGS timeout:
    ``k - 1`` ``tick`` actions followed by the ``timeout`` action, all at
    rate ``rate``.  Mean ``k / rate``; SCV ``1 / k`` (deterministic as
    ``k -> inf``).
    """

    def __init__(self, k: int, rate: float) -> None:
        if k < 1 or k != int(k):
            raise ValueError(f"k must be a positive integer, got {k}")
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.k = int(k)
        self.rate = float(rate)
        T = np.diag(np.full(self.k, -rate))
        idx = np.arange(self.k - 1)
        T[idx, idx + 1] = rate
        alpha = np.zeros(self.k)
        alpha[0] = 1.0
        super().__init__(alpha, T)

    def sample(self, size, rng=None):
        rng = np.random.default_rng() if rng is None else rng
        return rng.gamma(shape=self.k, scale=1.0 / self.rate, size=size)


class HyperExponential(PhaseType):
    """Hyper-exponential H_k: probabilistic mixture of exponentials.

    ``HyperExponential([p1, .., pk], [r1, .., rk])``; probabilities must sum
    to one.  SCV >= 1 always, which is what makes it the natural
    high-variance service model for TAGS (Section 3.2).
    """

    def __init__(self, probs, rates) -> None:
        probs = np.asarray(probs, dtype=float).ravel()
        rates = np.asarray(rates, dtype=float).ravel()
        if probs.shape != rates.shape:
            raise ValueError("probs and rates must have equal length")
        if abs(probs.sum() - 1.0) > 1e-9 or probs.min() < 0:
            raise ValueError(f"probs must be a distribution, got {probs}")
        if rates.min() <= 0:
            raise ValueError("rates must be positive")
        self.probs = probs
        self.rates = rates
        super().__init__(probs, np.diag(-rates))

    @classmethod
    def h2(cls, alpha: float, mu1: float, mu2: float) -> "HyperExponential":
        """The paper's H2: short jobs (rate mu1) w.p. alpha, long (mu2)
        otherwise."""
        return cls([alpha, 1.0 - alpha], [mu1, mu2])

    def pdf(self, x):
        x = np.atleast_1d(np.asarray(x, dtype=float))[:, None]
        vals = (self.probs * self.rates * np.exp(-self.rates * x)).sum(axis=1)
        return np.where(x.ravel() >= 0, vals, 0.0)

    def cdf(self, x):
        x = np.atleast_1d(np.asarray(x, dtype=float))[:, None]
        vals = (self.probs * (1.0 - np.exp(-self.rates * x))).sum(axis=1)
        return np.where(x.ravel() >= 0, vals, 0.0)

    def sample(self, size, rng=None):
        rng = np.random.default_rng() if rng is None else rng
        branch = rng.choice(len(self.probs), size=size, p=self.probs)
        return rng.exponential(1.0 / self.rates[branch])


class Coxian(PhaseType):
    """Coxian distribution: sequential phases with early-exit probabilities.

    Phase ``i`` has rate ``rates[i]``; on completing phase ``i`` the process
    continues to phase ``i+1`` with probability ``cont[i]`` (``len(cont) ==
    len(rates) - 1``), otherwise absorbs.  Coxians are dense in the class of
    all distributions on [0, inf) and are what general PH-fitting tools
    usually produce.
    """

    def __init__(self, rates, cont) -> None:
        rates = np.asarray(rates, dtype=float).ravel()
        cont = np.asarray(cont, dtype=float).ravel()
        if cont.shape != (rates.size - 1,):
            raise ValueError("need len(cont) == len(rates) - 1")
        if rates.min() <= 0:
            raise ValueError("rates must be positive")
        if cont.size and (cont.min() < 0 or cont.max() > 1):
            raise ValueError("continuation probabilities must be in [0,1]")
        self.rates = rates
        self.cont = cont
        m = rates.size
        T = np.diag(-rates)
        for i in range(m - 1):
            T[i, i + 1] = rates[i] * cont[i]
        alpha = np.zeros(m)
        alpha[0] = 1.0
        super().__init__(alpha, T)


# ----------------------------------------------------------------------
# constructors for the paper's H2 conventions
# ----------------------------------------------------------------------

def h2_balanced_means(
    mean: float, alpha: float, ratio: float
) -> HyperExponential:
    """H2 with overall mean ``mean``, short-job probability ``alpha`` and
    rate ratio ``mu1 = ratio * mu2``.

    This is exactly how the paper pins down Figures 9-12: "the average
    service demand is 0.1 and mu1 = 100 mu2" with ``alpha = 0.99``
    (Fig 9-10) or ``mu1 = 10 mu2`` with ``alpha in [0.89, 0.99]``
    (Fig 11-12).  Solving ``alpha/mu1 + (1-alpha)/mu2 = mean`` with
    ``mu1 = ratio * mu2`` gives::

        mu2 = (alpha / ratio + 1 - alpha) / mean,   mu1 = ratio * mu2
    """
    if not (0 < alpha < 1):
        raise ValueError(f"alpha must be in (0,1), got {alpha}")
    if ratio <= 0 or mean <= 0:
        raise ValueError("ratio and mean must be positive")
    mu2 = (alpha / ratio + (1.0 - alpha)) / mean
    mu1 = ratio * mu2
    return HyperExponential.h2(alpha, mu1, mu2)


def h2_from_mean_scv(mean: float, scv: float, *, balanced: bool = True):
    """H2 with given mean and squared coefficient of variation (>= 1).

    With ``balanced=True`` uses the classic balanced-means parameterisation
    (``p1/mu1 == p2/mu2``), the standard two-moment H2 fit.  ``scv == 1``
    returns an :class:`Exponential`.
    """
    if scv < 1.0 - 1e-12:
        raise ValueError(f"H2 requires scv >= 1, got {scv}")
    if mean <= 0:
        raise ValueError("mean must be positive")
    if abs(scv - 1.0) < 1e-12:
        return Exponential(1.0 / mean)
    if not balanced:
        raise NotImplementedError("only the balanced-means fit is provided")
    # balanced means: p1 = (1 + sqrt((scv-1)/(scv+1)))/2
    p1 = 0.5 * (1.0 + np.sqrt((scv - 1.0) / (scv + 1.0)))
    p2 = 1.0 - p1
    mu1 = 2.0 * p1 / mean
    mu2 = 2.0 * p2 / mean
    return HyperExponential([p1, p2], [mu1, mu2])
