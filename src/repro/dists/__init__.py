"""Phase-type distributions and related service-demand models.

The paper's service-demand models are all phase-type: exponential (Figure 3),
Erlang (the timeout clock), and two-phase hyper-exponential H2 (Figure 5,
Section 3.2).  This subpackage provides:

* :class:`~repro.dists.phase_type.PhaseType` -- general PH(alpha, T)
  representation with pdf/cdf/moments/Laplace transform/sampling;
* concrete families (:class:`Exponential`, :class:`Erlang`,
  :class:`HyperExponential`, :class:`Coxian`) in
  :mod:`~repro.dists.families`;
* residual-life computations in :mod:`~repro.dists.residual`, in particular
  the mixing probability ``alpha'`` of the H2 residual after losing a race
  against an Erlang timeout (Section 3.2 of the paper);
* EM fitting of hyper-exponential and Erlang-mixture models
  (:mod:`~repro.dists.fit`, replacing the EMpht tool cited as [1]);
* the bounded Pareto distribution of Harchol-Balter's empirical workloads
  (:mod:`~repro.dists.bounded_pareto`) for simulation experiments.
"""

from repro.dists.phase_type import PhaseType
from repro.dists.families import (
    Exponential,
    Erlang,
    HyperExponential,
    Coxian,
    h2_balanced_means,
    h2_from_mean_scv,
)
from repro.dists.residual import (
    erlang_vs_exp_timeout_probability,
    h2_residual_mixing,
    h2_conditional_timeout_probability,
)
from repro.dists.fit import fit_hyperexponential, fit_erlang_mixture, FitResult
from repro.dists.bounded_pareto import BoundedPareto
from repro.dists.empirical import EmpiricalDistribution

__all__ = [
    "PhaseType",
    "Exponential",
    "Erlang",
    "HyperExponential",
    "Coxian",
    "h2_balanced_means",
    "h2_from_mean_scv",
    "erlang_vs_exp_timeout_probability",
    "h2_residual_mixing",
    "h2_conditional_timeout_probability",
    "fit_hyperexponential",
    "fit_erlang_mixture",
    "FitResult",
    "BoundedPareto",
    "EmpiricalDistribution",
]
