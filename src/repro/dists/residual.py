"""Residual service after a lost race against the TAGS timeout.

In the TAGS model a job's service races the Erlang timeout at node 1.  When
the timeout wins, the job restarts at node 2 and -- after the *repeat
service* that redoes the lost work -- needs its **residual** demand.

* Exponential service: by memorylessness the residual is the original
  Exponential(mu) (this is why Figure 3 simply reuses rate ``mu`` for
  ``service2``).
* H2 service (Section 3.2): "the result has an H2-distribution, although
  with parameters alpha', mu1 and mu2".  The phase rates are unchanged
  (each branch is memoryless) but the mixing probability tilts towards long
  jobs, because long jobs are more likely to lose the race.  With timeout
  Erlang(k, t) and phase rates mu_j::

      P[timeout wins | phase j] = (t / (t + mu_j))^k
      alpha' = alpha p_1 / (alpha p_1 + (1 - alpha) p_2),  p_j as above.

The exponent ``k`` is the number of rate-``t`` events in the timeout clock.
In the Figure 3 component definitions that is ``n + 1`` (n ticks plus the
timeout action itself); the paper's Section 4 algebra uses ``n``.  Callers
choose explicitly -- see DESIGN.md interpretation note 2.
"""

from __future__ import annotations

import numpy as np

from repro.dists.families import HyperExponential

__all__ = [
    "erlang_vs_exp_timeout_probability",
    "h2_conditional_timeout_probability",
    "h2_residual_mixing",
    "h2_residual",
]


def erlang_vs_exp_timeout_probability(t: float, mu: float, k: int) -> float:
    """P[Erlang(k, t) < Exponential(mu)] -- the probability that the timeout
    beats the service.

    Each of the ``k`` rate-``t`` stages must complete before the exponential
    fires, independently by memorylessness: ``(t / (t + mu))^k``.
    """
    if t <= 0 or mu <= 0:
        raise ValueError("rates must be positive")
    if k < 1:
        raise ValueError("k must be >= 1")
    return float((t / (t + mu)) ** k)


def h2_conditional_timeout_probability(
    t: float, alpha: float, mu1: float, mu2: float, k: int
) -> float:
    """Unconditional P[timeout wins] for an H2(alpha, mu1, mu2) service."""
    p1 = erlang_vs_exp_timeout_probability(t, mu1, k)
    p2 = erlang_vs_exp_timeout_probability(t, mu2, k)
    return alpha * p1 + (1.0 - alpha) * p2


def h2_residual_mixing(
    t: float, alpha: float, mu1: float, mu2: float, k: int
) -> float:
    """The paper's ``alpha'``: P[job is short | it timed out]."""
    if not (0 <= alpha <= 1):
        raise ValueError(f"alpha must be in [0,1], got {alpha}")
    p1 = alpha * erlang_vs_exp_timeout_probability(t, mu1, k)
    p2 = (1.0 - alpha) * erlang_vs_exp_timeout_probability(t, mu2, k)
    total = p1 + p2
    if total == 0.0:  # pragma: no cover - requires degenerate rates
        raise ZeroDivisionError("timeout has zero probability")
    return p1 / total


def h2_residual(
    t: float, alpha: float, mu1: float, mu2: float, k: int
) -> HyperExponential:
    """The residual-demand distribution H2(alpha', mu1, mu2)."""
    a = h2_residual_mixing(t, alpha, mu1, mu2, k)
    return HyperExponential.h2(a, mu1, mu2)
