"""Empirical (trace-driven) service-demand distributions.

Harchol-Balter's TAGS papers are motivated by *measured* job-size traces;
no real traces ship with this reproduction (none are publicly bundled with
the paper), so :class:`EmpiricalDistribution` closes the loop synthetically:
generate a "trace" from any distribution (or load one from a file), then
drive the simulator with bootstrap resampling from it, optionally fitting
an H2 via EM for the CTMC side -- the complete trace -> fit -> model
pipeline the paper's Section 5 alludes to with "broadly correspond to ...
observed traffic".
"""

from __future__ import annotations

import numpy as np

__all__ = ["EmpiricalDistribution"]


class EmpiricalDistribution:
    """Bootstrap-resampling distribution over an observed sample."""

    def __init__(self, data) -> None:
        x = np.asarray(data, dtype=float).ravel()
        if x.size < 2:
            raise ValueError("need at least two observations")
        if x.min() <= 0:
            raise ValueError("service demands must be positive")
        self.data = np.sort(x)

    @classmethod
    def from_file(cls, path) -> "EmpiricalDistribution":
        """Load a whitespace/newline-separated numeric trace."""
        return cls(np.loadtxt(path, dtype=float).ravel())

    # -- moments -----------------------------------------------------
    @property
    def mean(self) -> float:
        return float(self.data.mean())

    def moment(self, k: int) -> float:
        return float(np.mean(self.data**k))

    @property
    def variance(self) -> float:
        return float(self.data.var())

    @property
    def scv(self) -> float:
        return self.variance / self.mean**2

    # -- distribution functions ---------------------------------------
    def cdf(self, x) -> np.ndarray:
        x = np.atleast_1d(np.asarray(x, dtype=float))
        return np.searchsorted(self.data, x, side="right") / self.data.size

    def quantile(self, q) -> np.ndarray:
        return np.quantile(self.data, q)

    # -- sampling ------------------------------------------------------
    def sample(self, size: int, rng: np.random.Generator | None = None):
        rng = np.random.default_rng() if rng is None else rng
        return rng.choice(self.data, size=size, replace=True)

    # -- model fitting ---------------------------------------------------
    def fit_h2(self, **kw):
        """EM-fit a two-phase hyper-exponential to the trace (the paper's
        Markovian surrogate).  Returns a
        :class:`~repro.dists.fit.FitResult`."""
        from repro.dists.fit import fit_hyperexponential

        return fit_hyperexponential(self.data, k=2, **kw)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EmpiricalDistribution(n={self.data.size}, mean={self.mean:.4g}, "
            f"scv={self.scv:.4g})"
        )
