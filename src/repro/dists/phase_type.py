"""General phase-type distribution PH(alpha, T).

A phase-type random variable is the absorption time of a CTMC with ``m``
transient phases, sub-generator ``T`` (m x m, strictly negative diagonal,
non-negative off-diagonal, row sums <= 0) and initial phase distribution
``alpha`` (an atom at zero is allowed when ``sum(alpha) < 1``).

Standard identities used below (Neuts 1981):

* pdf   ``f(x)  = alpha expm(T x) t0`` with exit vector ``t0 = -T 1``
* cdf   ``F(x)  = 1 - alpha expm(T x) 1``
* moments ``E[X^k] = k! alpha (-T)^{-k} 1``
* LST   ``f*(s) = alpha (sI - T)^{-1} t0 (+ atom)``

All matrix functions are evaluated with dense SciPy routines: the phase
counts in this reproduction are tiny (<= a few dozen), so clarity wins over
sparsity here.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.linalg

__all__ = ["PhaseType"]


class PhaseType:
    """Phase-type distribution PH(alpha, T).

    Parameters
    ----------
    alpha :
        Initial distribution over the ``m`` transient phases.  May sum to
        less than one; the deficit is an atom at zero.
    T :
        ``m x m`` sub-generator.
    """

    def __init__(self, alpha, T, *, atol: float = 1e-10) -> None:
        alpha = np.asarray(alpha, dtype=float).ravel()
        T = np.asarray(T, dtype=float)
        if T.ndim != 2 or T.shape[0] != T.shape[1]:
            raise ValueError(f"T must be square, got shape {T.shape}")
        m = T.shape[0]
        if alpha.shape != (m,):
            raise ValueError(f"alpha shape {alpha.shape} != ({m},)")
        if alpha.min() < -atol:
            raise ValueError("alpha has negative entries")
        if alpha.sum() > 1 + 1e-9:
            raise ValueError(f"alpha sums to {alpha.sum()} > 1")
        off = T - np.diag(np.diag(T))
        if off.min() < -atol:
            raise ValueError("T has negative off-diagonal entries")
        if np.any(np.diag(T) >= 0):
            raise ValueError("T diagonal must be strictly negative")
        rowsum = T.sum(axis=1)
        if rowsum.max() > atol:
            raise ValueError("T row sums must be <= 0")
        self.alpha = np.maximum(alpha, 0.0)
        self.T = T
        self.exit = np.maximum(-rowsum, 0.0)

    # ------------------------------------------------------------------
    @property
    def n_phases(self) -> int:
        return self.T.shape[0]

    @property
    def atom_at_zero(self) -> float:
        """Probability mass at x = 0."""
        return max(0.0, 1.0 - float(self.alpha.sum()))

    # ------------------------------------------------------------------
    def pdf(self, x) -> np.ndarray:
        """Density at ``x`` (the atom at zero, if any, is not included)."""
        x = np.atleast_1d(np.asarray(x, dtype=float))
        out = np.zeros_like(x)
        for i, xi in enumerate(x):
            if xi < 0:
                continue
            out[i] = float(self.alpha @ scipy.linalg.expm(self.T * xi) @ self.exit)
        return out if out.size > 1 else out

    def cdf(self, x) -> np.ndarray:
        x = np.atleast_1d(np.asarray(x, dtype=float))
        out = np.zeros_like(x)
        ones = np.ones(self.n_phases)
        for i, xi in enumerate(x):
            if xi < 0:
                continue
            out[i] = 1.0 - float(self.alpha @ scipy.linalg.expm(self.T * xi) @ ones)
        return np.clip(out, 0.0, 1.0)

    def sf(self, x) -> np.ndarray:
        """Survival function ``P[X > x]``."""
        return 1.0 - self.cdf(x)

    def moment(self, k: int) -> float:
        """Raw moment ``E[X^k]``."""
        if k < 0:
            raise ValueError("negative moment order")
        if k == 0:
            return 1.0
        ones = np.ones(self.n_phases)
        Tinv_k = np.linalg.matrix_power(np.linalg.inv(-self.T), k)
        return float(math.factorial(k) * (self.alpha @ Tinv_k @ ones))

    @property
    def mean(self) -> float:
        return self.moment(1)

    @property
    def variance(self) -> float:
        m1 = self.moment(1)
        return self.moment(2) - m1 * m1

    @property
    def scv(self) -> float:
        """Squared coefficient of variation Var/Mean^2 (exponential = 1)."""
        m = self.mean
        return self.variance / (m * m)

    def laplace_transform(self, s) -> np.ndarray:
        """Laplace-Stieltjes transform ``E[e^{-sX}]``."""
        s = np.atleast_1d(np.asarray(s, dtype=float))
        out = np.empty_like(s)
        I = np.eye(self.n_phases)
        for i, si in enumerate(s):
            out[i] = self.atom_at_zero + float(
                self.alpha @ np.linalg.solve(si * I - self.T, self.exit)
            )
        return out

    # ------------------------------------------------------------------
    def sample(self, size: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``size`` iid samples by simulating the absorbing chain.

        Vectorised per phase-jump round: all walkers advance one phase
        transition per round, which keeps the Python-level loop count at the
        (small) expected number of jumps rather than the sample count.
        """
        rng = np.random.default_rng() if rng is None else rng
        m = self.n_phases
        rates = -np.diag(self.T)
        # jump matrix: row i -> probability of next phase j or absorption (col m)
        P = np.zeros((m, m + 1))
        for i in range(m):
            P[i, :m] = self.T[i] / rates[i]
            P[i, i] = 0.0
            P[i, m] = self.exit[i] / rates[i]
        cumP = np.cumsum(P, axis=1)

        total = np.zeros(size)
        start = np.concatenate([self.alpha, [self.atom_at_zero]])
        phase = rng.choice(m + 1, size=size, p=start / start.sum())
        active = phase < m
        while active.any():
            idx = np.flatnonzero(active)
            ph = phase[idx]
            total[idx] += rng.exponential(1.0 / rates[ph])
            u = rng.random(idx.size)
            nxt = (u[:, None] < cumP[ph]).argmax(axis=1)
            phase[idx] = nxt
            active[idx] = nxt < m
        return total

    # ------------------------------------------------------------------
    def as_ph(self) -> "PhaseType":
        """Return self (concrete families override to upcast)."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(phases={self.n_phases}, "
            f"mean={self.mean:.6g}, scv={self.scv:.6g})"
        )
