"""EM fitting of phase-type models to data (EMpht-style).

The paper cites Asmussen/Nerman/Olsson's EMpht [1] as the tool for building
phase-type approximations of general service-demand distributions.  We
implement the two sub-families actually relevant to TAGS:

* :func:`fit_hyperexponential` -- mixture of ``k`` exponentials (H_k).
  This is a plain mixture model, so the E-step responsibilities and M-step
  updates are in closed form and fully vectorised.
* :func:`fit_erlang_mixture` -- mixture of Erlang(shape_j, rate_j) with
  user-chosen shapes; covers low-variance (SCV < 1) targets that H_k cannot
  reach.

Both return a :class:`FitResult` with the fitted distribution, per-iteration
log-likelihood trace and a convergence flag.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.special

from repro.dists.families import HyperExponential
from repro.dists.phase_type import PhaseType

__all__ = ["FitResult", "fit_hyperexponential", "fit_erlang_mixture"]


@dataclass
class FitResult:
    """Outcome of an EM fit."""

    dist: PhaseType
    log_likelihood: float
    trace: np.ndarray
    converged: bool
    n_iter: int


def _validate_data(data) -> np.ndarray:
    x = np.asarray(data, dtype=float).ravel()
    if x.size < 2:
        raise ValueError("need at least two observations")
    if x.min() <= 0:
        raise ValueError("phase-type data must be strictly positive")
    return x


def fit_hyperexponential(
    data,
    k: int = 2,
    *,
    max_iter: int = 500,
    tol: float = 1e-9,
    rng: np.random.Generator | None = None,
) -> FitResult:
    """Fit an H_k (mixture of exponentials) by EM.

    Initialisation spreads the component means geometrically across the data
    quantiles, which reliably separates short/long modes in heavy-tailed
    samples.
    """
    x = _validate_data(data)
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = np.random.default_rng(0) if rng is None else rng

    # geometric-quantile initialisation
    qs = np.linspace(0.15, 0.95, k)
    means = np.quantile(x, qs)
    means = np.maximum(means, x.mean() * 1e-6)
    rates = 1.0 / means
    probs = np.full(k, 1.0 / k)

    prev_ll = -np.inf
    trace = []
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        # E-step (log-space for numerical safety with extreme rates)
        log_dens = np.log(rates) - np.outer(x, rates)  # (N, k)
        log_w = np.log(probs) + log_dens
        log_norm = scipy.special.logsumexp(log_w, axis=1)
        gamma = np.exp(log_w - log_norm[:, None])
        ll = float(log_norm.sum())
        trace.append(ll)
        # M-step
        nk = gamma.sum(axis=0)
        nk = np.maximum(nk, 1e-300)
        probs = nk / x.size
        rates = nk / np.maximum(gamma.T @ x, 1e-300)
        if abs(ll - prev_ll) < tol * max(1.0, abs(ll)):
            converged = True
            break
        prev_ll = ll

    order = np.argsort(-rates)  # fastest (shortest jobs) first
    dist = HyperExponential(probs[order], rates[order])
    return FitResult(dist, trace[-1], np.asarray(trace), converged, it)


def fit_erlang_mixture(
    data,
    shapes,
    *,
    max_iter: int = 500,
    tol: float = 1e-9,
) -> FitResult:
    """Fit a mixture of Erlang(shape_j, rate_j) components by EM.

    ``shapes`` fixes each component's integer shape; EM estimates the
    weights and rates.  With ``shapes=[n]`` this is a pure Erlang fit (the
    paper's deterministic-timeout approximation); mixed shapes approximate
    multi-modal or low-variance targets.
    """
    x = _validate_data(data)
    shapes = np.asarray(shapes, dtype=int).ravel()
    if shapes.size < 1 or shapes.min() < 1:
        raise ValueError("shapes must be positive integers")
    k = shapes.size

    qs = np.linspace(0.2, 0.9, k)
    means = np.maximum(np.quantile(x, qs), x.mean() * 1e-6)
    rates = shapes / means
    probs = np.full(k, 1.0 / k)

    log_x = np.log(x)
    log_fact = scipy.special.gammaln(shapes)  # log (shape-1)!
    prev_ll = -np.inf
    trace = []
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        log_dens = (
            shapes * np.log(rates)
            + np.outer(log_x, shapes - 1)
            - np.outer(x, rates)
            - log_fact
        )
        log_w = np.log(probs) + log_dens
        log_norm = scipy.special.logsumexp(log_w, axis=1)
        gamma = np.exp(log_w - log_norm[:, None])
        ll = float(log_norm.sum())
        trace.append(ll)
        nk = np.maximum(gamma.sum(axis=0), 1e-300)
        probs = nk / x.size
        rates = shapes * nk / np.maximum(gamma.T @ x, 1e-300)
        if abs(ll - prev_ll) < tol * max(1.0, abs(ll)):
            converged = True
            break
        prev_ll = ll

    # assemble the mixture as a block-diagonal PH
    m = int(shapes.sum())
    T = np.zeros((m, m))
    alpha = np.zeros(m)
    pos = 0
    for j in range(k):
        s, r = int(shapes[j]), rates[j]
        alpha[pos] = probs[j]
        for i in range(s):
            T[pos + i, pos + i] = -r
            if i + 1 < s:
                T[pos + i, pos + i + 1] = r
        pos += s
    dist = PhaseType(alpha, T)
    return FitResult(dist, trace[-1], np.asarray(trace), converged, it)
