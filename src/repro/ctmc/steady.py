"""Steady-state solution of CTMCs.

Solves ``pi Q = 0`` with ``sum(pi) = 1`` for an irreducible generator.
Several solvers are provided because they trade accuracy against scale:

``gth``
    Grassmann-Taksar-Heyman elimination.  Subtraction-free, so it is
    numerically exact to rounding even for stiff chains, but it densifies:
    O(n^3) time, O(n^2) memory.  Default for small chains.
``direct``
    Sparse LU on the normalised system (one balance equation replaced by
    the normalisation constraint).  Default for larger chains.
``power``
    Power iteration on the uniformized DTMC.
``gauss_seidel``
    Classic iterative sweep; useful for very large sparse chains.
``gmres``
    Krylov solution of the normalised system with ILU preconditioning.

:func:`steady_state` picks ``gth`` below :data:`GTH_CUTOFF` states and
``direct`` above, which is the right default for every model in this
reproduction (the paper's largest chains are ~10^4 states).  In
``"auto"`` mode a failed solve **falls back** along the remaining
robust solvers (``gth -> direct -> power`` below the cutoff,
``direct -> power -> gth`` above) rather than failing the caller: a
stiff breakdown chain that defeats one factorisation usually yields to
another.  Every failed attempt is recorded in the caller's ``info``
dict under ``fallbacks`` (method + error) and counted as a
``steady.fallback`` obs event; if the whole chain fails, the raised
:class:`SteadyStateError` chains the primary solver's exception.
Explicitly requested methods never fall back.

Every solver files a ``steady_state`` span (attributes: method, chain
size, iteration count where applicable) with the process-global
:mod:`repro.obs` recorder, and the iterative solvers additionally emit a
per-iteration convergence trace (``steady_state.power`` etc.: step-delta
or preconditioned-residual series).  With the default
:class:`~repro.obs.NullRecorder` all of this is skipped behind a single
attribute check per solve.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import obs
from repro.ctmc.generator import Generator

__all__ = [
    "SteadyStateError",
    "steady_state",
    "steady_state_gth",
    "steady_state_direct",
    "steady_state_power",
    "steady_state_gauss_seidel",
    "steady_state_gmres",
    "GTH_CUTOFF",
    "ITERATIVE_METHODS",
]

GTH_CUTOFF = 2000
"""State-count threshold below which :func:`steady_state` uses GTH."""


class SteadyStateError(RuntimeError):
    """Raised when a steady-state solve fails or does not converge."""


def _as_Q(g) -> sp.csr_matrix:
    if isinstance(g, Generator):
        return g.Q
    return sp.csr_matrix(g, dtype=np.float64)


def _check_pi0(pi0, n: int) -> np.ndarray:
    """Validate and normalise a warm-start vector.

    Raises :class:`ValueError` (not :class:`SteadyStateError`: a bad guess
    is a caller bug, not a convergence failure) on wrong shape/length,
    non-finite or negative entries, or a vector that sums to zero.
    """
    pi0 = np.asarray(pi0, dtype=np.float64)
    if pi0.ndim != 1:
        raise ValueError(f"pi0 must be a 1-D vector, got shape {pi0.shape}")
    if pi0.shape[0] != n:
        raise ValueError(f"pi0 has length {pi0.shape[0]}, chain has {n} states")
    if not np.all(np.isfinite(pi0)):
        raise ValueError("pi0 has non-finite entries")
    if np.any(pi0 < 0):
        raise ValueError("pi0 has negative entries")
    total = pi0.sum()
    if total <= 0:
        raise ValueError("pi0 sums to zero; cannot normalise")
    return pi0 / total


def _record_info(info, **fields) -> None:
    """Write solver diagnostics into the caller's ``info`` dict, if any."""
    if info is not None:
        info.update(fields)


def _check_result(pi: np.ndarray, Q: sp.csr_matrix, tol: float) -> np.ndarray:
    pi = np.maximum(pi, 0.0)
    total = pi.sum()
    if not np.isfinite(total) or total <= 0:
        raise SteadyStateError("solver produced a non-normalisable vector")
    pi = pi / total
    residual = np.abs(pi @ Q).max()
    scale = max(1.0, float(np.abs(Q.diagonal()).max(initial=1.0)))
    if residual > tol * scale:
        raise SteadyStateError(
            f"steady-state residual too large: {residual:g} (tol {tol * scale:g})"
        )
    return pi


ITERATIVE_METHODS = frozenset({"power", "gauss_seidel", "gmres"})
"""Methods that accept a ``pi0`` warm-start / an iteration count."""


def steady_state(
    generator,
    method: str = "auto",
    tol: float = 1e-8,
    pi0=None,
    info: dict | None = None,
) -> np.ndarray:
    """Stationary distribution of an irreducible CTMC.

    Parameters
    ----------
    generator :
        A :class:`~repro.ctmc.generator.Generator` or any sparse/dense
        generator matrix.
    method :
        ``"auto"`` (default), ``"gth"``, ``"direct"``, ``"power"``,
        ``"gauss_seidel"`` or ``"gmres"``.
    tol :
        Residual tolerance used to verify the returned vector (relative to
        the largest exit rate).
    pi0 :
        Optional warm-start vector (e.g. the stationary distribution of a
        nearby parameter point).  Used by the iterative methods
        (:data:`ITERATIVE_METHODS`); the direct methods (``gth``,
        ``direct``) ignore it, since they do not iterate.  Validated
        before use: wrong length or negative entries raise ``ValueError``.
    info :
        Optional dict the solver fills with diagnostics: ``method`` always,
        ``iterations`` for the iterative methods, ``warm_started`` when a
        ``pi0`` was actually consumed, and -- in ``"auto"`` mode --
        ``fallbacks``, a list of ``{"method", "error"}`` records for every
        solver that failed before one succeeded (empty on a first-try
        solve).
    """
    Q = _as_Q(generator)
    n = Q.shape[0]
    if n == 0:
        raise SteadyStateError("empty chain")
    if n == 1:
        _record_info(info, method=method, iterations=0, warm_started=False)
        return np.ones(1)
    solvers = {
        "gth": steady_state_gth,
        "direct": steady_state_direct,
        "power": steady_state_power,
        "gauss_seidel": steady_state_gauss_seidel,
        "gmres": steady_state_gmres,
    }

    def run(m: str) -> np.ndarray:
        if m in ITERATIVE_METHODS:
            return solvers[m](Q, tol=tol, pi0=pi0, info=info)
        _record_info(info, method=m, iterations=None, warm_started=False)
        return solvers[m](Q, tol=tol)

    if method == "auto":
        chain = (
            ("gth", "direct", "power")
            if n <= GTH_CUTOFF
            else ("direct", "power", "gth")
        )
        rec = obs.recorder()
        fallbacks: list = []
        first_exc: SteadyStateError | None = None
        for m in chain:
            try:
                pi = run(m)
            except SteadyStateError as exc:
                fallbacks.append({"method": m, "error": str(exc)})
                _record_info(info, fallbacks=list(fallbacks))
                if rec.enabled:
                    rec.add("steady.fallback")
                if first_exc is None:
                    first_exc = exc
                continue
            _record_info(info, fallbacks=list(fallbacks))
            return pi
        raise SteadyStateError(
            "all auto solvers failed: "
            + "; ".join(f"{f['method']}: {f['error']}" for f in fallbacks)
        ) from first_exc
    if method not in solvers:
        raise ValueError(f"unknown method {method!r}; choose from {sorted(solvers)}")
    return run(method)


def steady_state_gth(generator, tol: float = 1e-8) -> np.ndarray:
    """GTH elimination (subtraction-free state reduction).

    Numerically the most robust option; O(n^3) time and dense O(n^2)
    storage, so only suitable for small chains.
    """
    Q = _as_Q(generator)
    n = Q.shape[0]
    rec = obs.recorder()
    t0 = time.perf_counter() if rec.enabled else 0.0
    A = Q.toarray().astype(np.float64, copy=True)
    np.fill_diagonal(A, 0.0)
    # Eliminate states n-1 .. 1.  After eliminating state k, A[:k, :k]
    # holds the rate matrix of the chain censored to states 0..k-1; the
    # column A[:k, k] (rates into k from surviving states, including paths
    # through already-eliminated states) and the elimination total s_k are
    # kept for back-substitution: pi_k = (sum_{i<k} pi_i A[i,k]) / s_k.
    s_elim = np.empty(n)
    for k in range(n - 1, 0, -1):
        s = A[k, :k].sum()
        if s <= 0.0:
            raise SteadyStateError(
                f"GTH: state {k} has no rate back into lower states; "
                "chain is not irreducible"
            )
        s_elim[k] = s
        A[k, :k] /= s
        # rank-1 update: rates into k get redistributed along A[k, :k]
        col = A[:k, k]
        nz = np.flatnonzero(col)
        if nz.size:
            A[np.ix_(nz, range(k))] += np.outer(col[nz], A[k, :k])
    pi = np.zeros(n)
    pi[0] = 1.0
    for k in range(1, n):
        pi[k] = (pi[:k] @ A[:k, k]) / s_elim[k]
    pi = _check_result(pi, Q, tol)
    if rec.enabled:
        rec.record_span(
            "steady_state", t0, time.perf_counter() - t0, method="gth", n=n
        )
    return pi


def steady_state_direct(generator, tol: float = 1e-8) -> np.ndarray:
    """Sparse LU via state elimination.

    Fixing ``pi[n-1] = 1`` (up to normalisation), the balance equations for
    the remaining states read ``A^T y = -c`` where ``A`` is the generator
    with the last row and column deleted and ``c`` the last row's
    off-diagonal part.  Unlike replacing an equation with the (dense)
    normalisation row, this keeps the factorisation sparse -- a row of
    ones causes catastrophic fill-in in SuperLU (measured ~50x slower on
    the paper's 10^4-state chains).
    """
    Q = _as_Q(generator)
    n = Q.shape[0]
    rec = obs.recorder()
    t0 = time.perf_counter() if rec.enabled else 0.0

    def solve_anchored(anchor: int) -> np.ndarray:
        keep = np.arange(n) != anchor
        A = sp.csc_matrix(Q[keep][:, keep].T)
        c = np.asarray(Q[anchor, :].todense()).ravel()[keep]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", spla.MatrixRankWarning)
            try:
                y = spla.spsolve(A, -c)
            except RuntimeError as exc:  # singular factor
                raise SteadyStateError(f"sparse LU failed: {exc}") from exc
        if not np.all(np.isfinite(y)):
            raise SteadyStateError("sparse LU produced non-finite entries")
        pi = np.empty(n)
        pi[keep] = y
        pi[anchor] = 1.0
        return pi

    pi = solve_anchored(n - 1)
    reanchored = False
    try:
        pi = _check_result(pi, Q, tol)
    except SteadyStateError:
        # anchoring a tiny-probability state loses accuracy on stiff
        # chains; re-anchor at the (estimated) most likely state -- by
        # magnitude, since the failed solve may carry sign errors
        anchor = int(np.argmax(np.abs(pi)))
        if anchor == n - 1:  # first anchor dominated: nothing to learn
            raise
        pi = _check_result(solve_anchored(anchor), Q, tol)
        reanchored = True
    if rec.enabled:
        rec.record_span(
            "steady_state",
            t0,
            time.perf_counter() - t0,
            method="direct",
            n=n,
            reanchored=reanchored,
        )
    return pi


def steady_state_power(
    generator,
    tol: float = 1e-8,
    max_iter: int = 2_000_000,
    check_every: int = 50,
    pi0=None,
    info: dict | None = None,
) -> np.ndarray:
    """Power iteration on the uniformized DTMC ``P = I + Q / Lambda``.

    Aperiodicity is guaranteed by choosing ``Lambda`` strictly above the
    maximum exit rate.  ``pi0`` warm-starts the iteration (defaults to
    uniform); a good guess from a nearby parameter point cuts the
    iteration count drastically.
    """
    Q = _as_Q(generator)
    n = Q.shape[0]
    rec = obs.recorder()
    t0 = time.perf_counter() if rec.enabled else 0.0
    trace = [] if rec.enabled else None
    lam = float(-Q.diagonal().min()) * 1.05
    if lam <= 0:
        raise SteadyStateError("chain has no transitions")
    P = sp.eye(n, format="csr") + Q / lam
    pi = np.full(n, 1.0 / n) if pi0 is None else _check_pi0(pi0, n)
    delta = float("inf")
    for it in range(1, max_iter + 1):
        new = pi @ P
        new /= new.sum()
        if it % check_every == 0:
            delta = float(np.abs(new - pi).max())
            if trace is not None:
                trace.append((it, delta))
            if delta < tol * 1e-2:
                pi = new
                break
        pi = new
    else:
        residual = float(np.abs(pi @ Q).max())
        raise SteadyStateError(
            f"power iteration did not converge in {max_iter} iterations: "
            f"last step delta {delta:g} (target {tol * 1e-2:g}), "
            f"achieved residual {residual:g}"
        )
    _record_info(info, method="power", iterations=it, warm_started=pi0 is not None)
    pi = _check_result(pi, Q, tol)
    if rec.enabled:
        rec.record_span(
            "steady_state",
            t0,
            time.perf_counter() - t0,
            method="power",
            n=n,
            iterations=it,
            warm_started=pi0 is not None,
        )
        rec.trace("steady_state.power", trace, n=n)
    return pi


def steady_state_gauss_seidel(
    generator,
    tol: float = 1e-8,
    max_iter: int = 200_000,
    pi0=None,
    info: dict | None = None,
) -> np.ndarray:
    """Gauss-Seidel sweeps on ``pi Q = 0`` (solving the transposed system
    column-state by column-state).

    Implemented with a sparse triangular solve per sweep: writing
    ``Q^T = L + D + U``, each sweep solves ``(D + L) x_{k+1} = -U x_k``.
    ``pi0`` warm-starts the sweeps (defaults to uniform).
    """
    Q = _as_Q(generator)
    QT = sp.csc_matrix(Q.T)
    n = QT.shape[0]
    rec = obs.recorder()
    t0 = time.perf_counter() if rec.enabled else 0.0
    trace = [] if rec.enabled else None
    DL = sp.tril(QT, k=0, format="csc")
    U = sp.triu(QT, k=1, format="csr")
    if np.any(DL.diagonal() == 0):
        raise SteadyStateError("zero diagonal entry; absorbing state present")
    x = np.full(n, 1.0 / n) if pi0 is None else _check_pi0(pi0, n)
    delta = float("inf")
    for it in range(1, max_iter + 1):
        rhs = -(U @ x)
        x_new = spla.spsolve_triangular(DL, rhs, lower=True)
        s = x_new.sum()
        if s == 0 or not np.all(np.isfinite(x_new)):
            raise SteadyStateError(f"Gauss-Seidel diverged at sweep {it}")
        x_new = x_new / s
        delta = float(np.abs(x_new - x).max())
        if trace is not None:
            trace.append((it, delta))
        if delta < tol * 1e-2:
            x = x_new
            break
        x = x_new
    else:
        residual = float(np.abs(x @ Q).max())
        raise SteadyStateError(
            f"Gauss-Seidel did not converge in {max_iter} sweeps: "
            f"last sweep delta {delta:g} (target {tol * 1e-2:g}), "
            f"achieved residual {residual:g}"
        )
    _record_info(
        info, method="gauss_seidel", iterations=it, warm_started=pi0 is not None
    )
    x = _check_result(x, Q, tol)
    if rec.enabled:
        rec.record_span(
            "steady_state",
            t0,
            time.perf_counter() - t0,
            method="gauss_seidel",
            n=n,
            iterations=it,
            warm_started=pi0 is not None,
        )
        rec.trace("steady_state.gauss_seidel", trace, n=n)
    return x


def steady_state_gmres(
    generator,
    tol: float = 1e-8,
    pi0=None,
    info: dict | None = None,
) -> np.ndarray:
    """GMRES on the normalised system with an ILU preconditioner.

    ``pi0`` is passed to GMRES as the initial Krylov guess ``x0``.
    """
    Q = _as_Q(generator)
    n = Q.shape[0]
    rec = obs.recorder()
    t0 = time.perf_counter() if rec.enabled else 0.0
    trace = [] if rec.enabled else None
    A = sp.lil_matrix(Q.T)
    A[n - 1, :] = 1.0
    A = sp.csc_matrix(A)
    b = np.zeros(n)
    b[n - 1] = 1.0
    x0 = None if pi0 is None else _check_pi0(pi0, n)
    try:
        ilu = spla.spilu(A, drop_tol=1e-6, fill_factor=20)
        M = spla.LinearOperator((n, n), ilu.solve)
    except RuntimeError:
        M = None
    iters = [0]
    last_norm = [float("inf")]

    def count(pr_norm):
        iters[0] += 1
        last_norm[0] = float(pr_norm)
        if trace is not None:
            trace.append((iters[0], float(pr_norm)))

    x, code = spla.gmres(
        A,
        b,
        rtol=tol * 1e-2,
        atol=0.0,
        M=M,
        x0=x0,
        maxiter=5000,
        callback=count,
        callback_type="pr_norm",
    )
    if code != 0:
        raise SteadyStateError(
            f"GMRES failed to converge after {iters[0]} iterations "
            f"(info={code}): preconditioned residual norm {last_norm[0]:g} "
            f"(target {tol * 1e-2:g})"
        )
    _record_info(
        info, method="gmres", iterations=iters[0], warm_started=pi0 is not None
    )
    x = _check_result(x, Q, tol)
    if rec.enabled:
        rec.record_span(
            "steady_state",
            t0,
            time.perf_counter() - t0,
            method="gmres",
            n=n,
            iterations=iters[0],
            warm_started=pi0 is not None,
        )
        rec.trace("steady_state.gmres", trace, n=n)
    return x
