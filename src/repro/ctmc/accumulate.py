"""Accumulated rewards before absorption.

Complements :mod:`repro.ctmc.passage`: instead of the expected *time* to
hit a target set, compute the expected *integral of a state reward* along
the way::

    a_i = E[ integral_0^{T_hit} r(X_s) ds | X_0 = i ]

solving ``Q_TT a = -r_T`` on the complement of the target set.  With
``r = 1`` this reduces to the mean first-passage time; with ``r`` = queue
length it gives (by Little-style reasoning) the expected job-seconds
accumulated before the event -- e.g. the work in flight before the first
loss of a bounded queue.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.ctmc.generator import Generator
from repro.ctmc.passage import _backward_reachable

__all__ = ["expected_accumulated_reward"]


def expected_accumulated_reward(generator, reward, targets) -> np.ndarray:
    """Expected accumulated ``reward`` until first hitting ``targets``.

    Target states return 0; states that cannot reach the targets return
    ``inf`` when their reward inflow is positive (the integral diverges)
    and ``nan`` when it is identically zero on their recurrent class (the
    limit is ill-defined without further structure).
    """
    g = generator if isinstance(generator, Generator) else Generator(
        sp.csr_matrix(generator)
    )
    n = g.n_states
    reward = np.asarray(reward, dtype=float)
    if reward.shape != (n,):
        raise ValueError(f"reward shape {reward.shape} != ({n},)")
    targets = np.asarray(sorted(set(int(t) for t in targets)), dtype=np.int64)
    if targets.size == 0:
        raise ValueError("empty target set")
    if targets.min() < 0 or targets.max() >= n:
        raise ValueError("target id out of range")

    mask = np.ones(n, dtype=bool)
    mask[targets] = False
    T = np.flatnonzero(mask)
    out = np.zeros(n)
    if T.size == 0:
        return out
    can_reach = _backward_reachable(g.Q, targets)
    stuck = T[~can_reach[T]]
    out[stuck] = np.where(reward[stuck] > 0, np.inf, np.nan)
    solvable = T[can_reach[T]]
    if solvable.size == 0:
        return out
    QTT = sp.csc_matrix(g.Q[solvable][:, solvable])
    a = spla.spsolve(QTT, -reward[solvable])
    if not np.all(np.isfinite(a)):
        raise RuntimeError("accumulated-reward solve failed")
    out[solvable] = a
    return out
