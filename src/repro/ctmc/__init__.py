"""Continuous-time Markov chain numerics.

This subpackage is the numerical substrate of the reproduction: sparse
generator matrices, steady-state solvers, transient solution by
uniformization, reward structures and structural (graph) analysis.

The public entry points are:

* :class:`~repro.ctmc.generator.Generator` -- a validated sparse CTMC
  generator matrix with labelled transition support.
* :func:`~repro.ctmc.steady.steady_state` -- steady-state distribution with
  a choice of solvers (GTH, direct sparse LU, power iteration,
  Gauss-Seidel, GMRES).
* :func:`~repro.ctmc.transient.transient_distribution` -- uniformization.
* :mod:`~repro.ctmc.rewards` -- expected rewards, action throughputs and
  Little's-law utilities.
* :mod:`~repro.ctmc.structure` -- reachability / irreducibility checks.
"""

from repro.ctmc.generator import Generator
from repro.ctmc.steady import (
    SteadyStateError,
    steady_state,
    steady_state_gth,
    steady_state_direct,
    steady_state_power,
    steady_state_gauss_seidel,
    steady_state_gmres,
)
from repro.ctmc.transient import transient_distribution, uniformized_dtmc
from repro.ctmc.rewards import (
    expected_reward,
    action_throughput,
    littles_law_response_time,
)
from repro.ctmc.structure import (
    strongly_connected_components,
    is_irreducible,
    reachable_from,
    absorbing_states,
)
from repro.ctmc.passage import (
    mean_first_passage_times,
    absorption_probabilities,
    absorbing_on_action,
)
from repro.ctmc.lumping import lump_generator, ordinary_lumping_partition
from repro.ctmc.accumulate import expected_accumulated_reward
from repro.ctmc.bfs import (
    ChainTemplate,
    StructureMismatch,
    assemble_generator,
    bfs_arrays,
    bfs_generator,
)

__all__ = [
    "Generator",
    "SteadyStateError",
    "steady_state",
    "steady_state_gth",
    "steady_state_direct",
    "steady_state_power",
    "steady_state_gauss_seidel",
    "steady_state_gmres",
    "transient_distribution",
    "uniformized_dtmc",
    "expected_reward",
    "action_throughput",
    "littles_law_response_time",
    "strongly_connected_components",
    "is_irreducible",
    "reachable_from",
    "absorbing_states",
    "mean_first_passage_times",
    "absorption_probabilities",
    "absorbing_on_action",
    "lump_generator",
    "ordinary_lumping_partition",
    "expected_accumulated_reward",
    "bfs_generator",
    "bfs_arrays",
    "assemble_generator",
    "ChainTemplate",
    "StructureMismatch",
]
