"""Reward structures over CTMC steady states.

Two reward kinds are used throughout the reproduction:

* **state rewards** -- a vector ``r`` with expected value ``pi . r``
  (mean queue length is the canonical example);
* **rate (impulse) rewards on actions** -- the steady-state frequency of an
  action ``a``, ``sum_i pi_i * (total rate of a-transitions out of i)``
  (throughput and loss rates).

Little's law converts these into response times: with mean population ``L``
and *effective* (successful) throughput ``X``, the mean response time is
``W = L / X``.  The paper computes response time exactly this way ("average
queue length and the average arrival rate of successful jobs", Section 1).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
import scipy.sparse as sp

from repro.ctmc.generator import Generator

__all__ = [
    "expected_reward",
    "action_throughput",
    "all_action_throughputs",
    "littles_law_response_time",
]


def expected_reward(pi: np.ndarray, reward: np.ndarray) -> float:
    """Steady-state expectation of a state reward vector."""
    pi = np.asarray(pi, dtype=float)
    reward = np.asarray(reward, dtype=float)
    if pi.shape != reward.shape:
        raise ValueError(f"shape mismatch {pi.shape} vs {reward.shape}")
    return float(pi @ reward)


def action_throughput(generator: Generator, pi: np.ndarray, action: str) -> float:
    """Steady-state frequency of ``action`` (completed occurrences per unit
    time).

    Requires the generator to carry an action-labelled rate matrix for
    ``action`` (PEPA-derived generators always do).  Self-loops count: an
    action that does not change the state still occurs at its rate.
    """
    try:
        R = generator.action_rates[action]
    except KeyError:
        raise KeyError(
            f"generator has no rate matrix for action {action!r}; "
            f"known actions: {sorted(generator.action_rates)}"
        )
    out_rates = np.asarray(R.sum(axis=1)).ravel()
    return float(np.asarray(pi, dtype=float) @ out_rates)


def all_action_throughputs(generator: Generator, pi: np.ndarray) -> dict[str, float]:
    """Throughput of every labelled action."""
    return {
        a: action_throughput(generator, pi, a) for a in sorted(generator.action_rates)
    }


def littles_law_response_time(mean_population: float, throughput: float) -> float:
    """Mean response time ``W = L / X``.

    ``throughput`` must be the rate of *successfully completing* jobs; jobs
    dropped from a bounded queue never accrue response time.
    """
    if throughput <= 0:
        raise ValueError(f"non-positive throughput {throughput}")
    if mean_population < 0:
        raise ValueError(f"negative population {mean_population}")
    return mean_population / throughput
