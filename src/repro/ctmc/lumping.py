"""Ordinary lumping of CTMCs (partition refinement).

A partition of the state space is *ordinarily lumpable* when every state
in a block has the same total rate into each other block; the quotient
chain is then itself a CTMC whose stationary distribution aggregates the
original's.  For PEPA this is the engine behind strong-equivalence
aggregation (Hillston 1996, ch. 8): symmetric replicated components
collapse to counting states -- exactly the reduction the paper's Section
3.1 appeals to for the Figure 4 per-place model.

:func:`ordinary_lumping_partition` computes the coarsest lumpable
refinement of an initial partition (default: everything in one block,
refined by the reward/label signature you care about) by iterated
signature splitting; :func:`lump_generator` builds the quotient.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ctmc.generator import Generator

__all__ = ["ordinary_lumping_partition", "lump_generator"]


def _signatures(Q: sp.csr_matrix, block_of: np.ndarray, rtol: float):
    """Per-state signature: tuple of (destination block, rounded rate)."""
    R = Q.tocoo()
    n = Q.shape[0]
    # accumulate rate per (state, destination block), excluding diagonal
    acc: list[dict] = [dict() for _ in range(n)]
    for i, j, r in zip(R.row, R.col, R.data):
        if i == j:
            continue
        b = int(block_of[j])
        acc[i][b] = acc[i].get(b, 0.0) + r
    sigs = []
    for i in range(n):
        items = []
        for b, r in acc[i].items():
            # quantise rates so float noise does not split blocks
            items.append((b, round(r / rtol) if rtol > 0 else r))
        sigs.append(tuple(sorted(items)))
    return sigs


def ordinary_lumping_partition(
    generator,
    initial_labels=None,
    *,
    rtol: float = 1e-9,
    max_iter: int = 10_000,
) -> np.ndarray:
    """Coarsest ordinarily-lumpable partition refining ``initial_labels``.

    Parameters
    ----------
    generator :
        The CTMC.
    initial_labels :
        Per-state labels that must not be merged (e.g. the reward values
        you need to preserve).  Default: one block.
    rtol :
        Rate quantum used when comparing signatures.

    Returns
    -------
    ndarray of block ids (0..k-1), k = number of blocks.
    """
    Q = generator.Q if isinstance(generator, Generator) else sp.csr_matrix(generator)
    n = Q.shape[0]
    if initial_labels is None:
        block_of = np.zeros(n, dtype=np.int64)
    else:
        labels = list(initial_labels)
        if len(labels) != n:
            raise ValueError(f"need {n} labels, got {len(labels)}")
        uniq = {v: i for i, v in enumerate(dict.fromkeys(labels))}
        block_of = np.asarray([uniq[v] for v in labels], dtype=np.int64)

    for _ in range(max_iter):
        sigs = _signatures(Q, block_of, rtol)
        key_of: dict = {}
        new = np.empty(n, dtype=np.int64)
        for i in range(n):
            key = (int(block_of[i]), sigs[i])
            new[i] = key_of.setdefault(key, len(key_of))
        if len(key_of) == int(block_of.max()) + 1:
            return new
        block_of = new
    raise RuntimeError("lumping refinement did not stabilise")  # pragma: no cover


def lump_generator(generator, block_of) -> Generator:
    """Quotient CTMC under a lumpable partition.

    The block-to-block rate is taken from each block's first member;
    lumpability (identical rows within a block) is verified and a
    ``ValueError`` raised if the partition is not lumpable.
    """
    g = generator if isinstance(generator, Generator) else Generator(
        sp.csr_matrix(generator)
    )
    block_of = np.asarray(block_of, dtype=np.int64)
    n = g.n_states
    if block_of.shape != (n,):
        raise ValueError("partition size mismatch")
    k = int(block_of.max()) + 1

    # aggregate each state's outflow by destination block
    R = g.off_diagonal().tocoo()
    M = sp.csr_matrix(
        (R.data, (R.row, block_of[R.col])), shape=(n, k)
    ).toarray()
    # verify within-block consistency and collect representative rows
    rep = np.zeros((k, k))
    for b in range(k):
        members = np.flatnonzero(block_of == b)
        rows = M[members]
        # exclude the self-block column from the comparison: internal
        # rates may differ without breaking ordinary lumpability
        cols = np.arange(k) != b
        if members.size > 1:
            spread = np.abs(rows[:, cols] - rows[0, cols]).max()
            scale = max(1.0, np.abs(rows[0, cols]).max(initial=0.0))
            if spread > 1e-7 * scale:
                raise ValueError(
                    f"partition not ordinarily lumpable: block {b} rows "
                    f"differ by {spread:g}"
                )
        rep[b, cols] = rows[0, cols]
    src, dst = np.nonzero(rep)
    return Generator.from_triples(k, src, dst, rep[src, dst])
