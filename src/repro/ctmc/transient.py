"""Transient analysis of CTMCs by uniformization.

Computes ``p(t) = p0 expm(Q t)`` via the uniformized DTMC::

    p(t) = sum_{k>=0} Poisson(k; Lambda t) * p0 P^k,
    P = I + Q / Lambda,   Lambda >= max exit rate.

The Poisson weights are truncated with the Fox-Glynn style criterion of
accumulating mass ``>= 1 - eps``; computation is a single sparse
vector-matrix recurrence, so memory is O(nnz).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ctmc.generator import Generator

__all__ = ["uniformized_dtmc", "transient_distribution", "transient_rewards"]


def uniformized_dtmc(generator, rate: float | None = None):
    """Return ``(P, Lambda)``: the uniformized DTMC and its rate.

    ``rate`` may force a particular uniformization constant (it must be at
    least the maximum exit rate); by default a 2% safety margin is added so
    the DTMC is aperiodic.
    """
    Q = generator.Q if isinstance(generator, Generator) else sp.csr_matrix(generator)
    lam_min = float(-Q.diagonal().min(initial=0.0))
    if rate is None:
        rate = lam_min * 1.02 if lam_min > 0 else 1.0
    elif rate < lam_min:
        raise ValueError(f"uniformization rate {rate} < max exit rate {lam_min}")
    P = sp.eye(Q.shape[0], format="csr") + Q / rate
    return sp.csr_matrix(P), float(rate)


def _poisson_truncation(q: float, eps: float) -> int:
    """Smallest K with ``P[Poisson(q) <= K] >= 1 - eps`` (simple scan with a
    normal-tail starting guess)."""
    if q <= 0:
        return 0
    k = int(q + 6.0 * np.sqrt(q) + 10)
    # extend until tail below eps using the Chernoff-style check
    log_w = -q
    total = np.exp(log_w)
    kk = 0
    while total < 1.0 - eps:
        kk += 1
        log_w += np.log(q / kk)
        total += np.exp(log_w)
        if kk > 100 * (k + 1):  # pragma: no cover - defensive
            break
    return max(kk, 1)


def transient_distribution(
    generator,
    p0: np.ndarray,
    t: float,
    eps: float = 1e-10,
) -> np.ndarray:
    """State distribution at time ``t`` starting from ``p0``."""
    if t < 0:
        raise ValueError("negative time")
    p0 = np.asarray(p0, dtype=float)
    if abs(p0.sum() - 1.0) > 1e-9 or p0.min() < -1e-12:
        raise ValueError("p0 is not a probability distribution")
    if t == 0:
        return p0.copy()
    P, lam = uniformized_dtmc(generator)
    q = lam * t
    K = _poisson_truncation(q, eps)
    log_w = -q
    acc = np.exp(log_w) * p0
    v = p0
    for k in range(1, K + 1):
        v = v @ P
        log_w += np.log(q / k)
        acc = acc + np.exp(log_w) * v
    # renormalise the truncated series
    return acc / acc.sum()


def transient_rewards(
    generator,
    p0: np.ndarray,
    times: np.ndarray,
    reward: np.ndarray,
    eps: float = 1e-10,
) -> np.ndarray:
    """Expected instantaneous reward at each time in ``times``."""
    reward = np.asarray(reward, dtype=float)
    out = np.empty(len(times))
    for i, t in enumerate(np.asarray(times, dtype=float)):
        out[i] = float(transient_distribution(generator, p0, t, eps) @ reward)
    return out
