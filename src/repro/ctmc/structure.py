"""Structural (graph) analysis of CTMCs.

Steady-state solvers assume irreducibility; these helpers verify it and
diagnose failures.  The SCC computation is an iterative Tarjan (no recursion
limit issues on 10^5-state chains); reachability is a vectorised BFS over
the CSR structure.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ctmc.generator import Generator

__all__ = [
    "strongly_connected_components",
    "is_irreducible",
    "reachable_from",
    "absorbing_states",
]


def _adjacency(generator) -> sp.csr_matrix:
    Q = generator.Q if isinstance(generator, Generator) else sp.csr_matrix(generator)
    A = Q.copy()
    A.setdiag(0.0)
    A.eliminate_zeros()
    return sp.csr_matrix(A)


def strongly_connected_components(generator) -> list[np.ndarray]:
    """SCCs of the transition graph, as arrays of state indices.

    Iterative Tarjan; components are returned in reverse topological order
    (a component only has edges into components that appear earlier in the
    returned list or itself).
    """
    A = _adjacency(generator)
    n = A.shape[0]
    indptr, indices = A.indptr, A.indices

    index = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    stack: list[int] = []
    comps: list[np.ndarray] = []
    counter = 0

    for root in range(n):
        if index[root] != -1:
            continue
        # each work-stack frame: (node, next-child-pointer)
        work = [(root, indptr[root])]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            v, ptr = work[-1]
            if ptr < indptr[v + 1]:
                work[-1] = (v, ptr + 1)
                w = indices[ptr]
                if index[w] == -1:
                    index[w] = lowlink[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append((w, indptr[w]))
                elif on_stack[w]:
                    lowlink[v] = min(lowlink[v], index[w])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[v])
                if lowlink[v] == index[v]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        comp.append(w)
                        if w == v:
                            break
                    comps.append(np.asarray(comp, dtype=np.int64))
    return comps


def is_irreducible(generator) -> bool:
    """True when every state communicates with every other state."""
    comps = strongly_connected_components(generator)
    return len(comps) == 1


def reachable_from(generator, start: int = 0) -> np.ndarray:
    """Indices of states reachable from ``start`` (including itself)."""
    A = _adjacency(generator)
    n = A.shape[0]
    seen = np.zeros(n, dtype=bool)
    frontier = np.asarray([start], dtype=np.int64)
    seen[start] = True
    indptr, indices = A.indptr, A.indices
    while frontier.size:
        nxt = np.concatenate(
            [indices[indptr[v] : indptr[v + 1]] for v in frontier]
        ) if frontier.size else np.empty(0, np.int64)
        nxt = np.unique(nxt)
        nxt = nxt[~seen[nxt]]
        seen[nxt] = True
        frontier = nxt
    return np.flatnonzero(seen)


def absorbing_states(generator) -> np.ndarray:
    """States with zero exit rate."""
    Q = generator.Q if isinstance(generator, Generator) else sp.csr_matrix(generator)
    return np.flatnonzero(-Q.diagonal() <= 0)
