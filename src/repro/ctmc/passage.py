"""First-passage and absorption analysis.

Beyond steady state, the natural questions about a bounded-queue system
are transient-structural: *how long until the first job is dropped?*,
*which node drops first?*  These reduce to first-passage times and
absorption probabilities:

* :func:`mean_first_passage_times` -- ``E[time to hit target set]`` from
  every state, by solving ``Q_TT m = -1`` on the complement ``T``.
* :func:`absorption_probabilities` -- for a chain with several absorbing
  classes, ``P[absorbed in class c | start at i]`` via ``Q_TT B = -Q_TA``.
* :func:`absorbing_on_action` -- rewire every transition carrying a given
  action label into a fresh absorbing state, turning an *event* ("a loss
  occurred") into a *state* so the two functions above apply.

All solves are sparse; unreachable-target states are reported as ``inf``
passage time rather than raising.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.ctmc.generator import Generator

__all__ = [
    "mean_first_passage_times",
    "absorption_probabilities",
    "conditional_absorption_times",
    "absorbing_on_action",
]


def _as_gen(g) -> Generator:
    return g if isinstance(g, Generator) else Generator(sp.csr_matrix(g))


def mean_first_passage_times(generator, targets) -> np.ndarray:
    """Expected time to reach ``targets`` (a set/array of state ids) from
    every state.

    Target states get 0; states that cannot reach the target set get
    ``inf``.
    """
    g = _as_gen(generator)
    n = g.n_states
    targets = np.asarray(sorted(set(int(t) for t in targets)), dtype=np.int64)
    if targets.size == 0:
        raise ValueError("empty target set")
    if targets.min() < 0 or targets.max() >= n:
        raise ValueError("target id out of range")
    mask = np.ones(n, dtype=bool)
    mask[targets] = False
    T = np.flatnonzero(mask)
    out = np.zeros(n)
    if T.size == 0:
        return out

    # restrict to states that can reach the targets at all
    can_reach = _backward_reachable(g.Q, targets)
    solvable = T[can_reach[T]]
    out[~can_reach] = np.inf
    if solvable.size == 0:
        return out
    QTT = sp.csc_matrix(g.Q[solvable][:, solvable])
    rhs = -np.ones(solvable.size)
    m = spla.spsolve(QTT, rhs)
    if not np.all(np.isfinite(m)) or m.min() < -1e-9:
        raise RuntimeError("first-passage solve failed (singular system)")
    out[solvable] = np.maximum(m, 0.0)
    return out


def absorption_probabilities(generator, classes) -> np.ndarray:
    """``P[absorbed in classes[c]]`` from every state.

    ``classes`` is a list of disjoint state-id collections, each treated
    as absorbing (their outgoing transitions are ignored).  Returns an
    ``(n_states, len(classes))`` matrix; rows of states inside a class are
    the corresponding unit vector.  Transient states that can avoid
    absorption forever (a closed recurrent class outside every target)
    yield rows summing to < 1.
    """
    g = _as_gen(generator)
    n = g.n_states
    classes = [np.asarray(sorted(set(int(i) for i in c)), np.int64) for c in classes]
    all_abs = np.concatenate(classes) if classes else np.empty(0, np.int64)
    if len(np.unique(all_abs)) != all_abs.size:
        raise ValueError("absorbing classes must be disjoint")
    mask = np.ones(n, dtype=bool)
    mask[all_abs] = False
    T = np.flatnonzero(mask)
    out = np.zeros((n, len(classes)))
    for c, ids in enumerate(classes):
        out[ids, c] = 1.0
    if T.size == 0:
        return out
    QTT = sp.csc_matrix(g.Q[T][:, T])
    for c, ids in enumerate(classes):
        rhs = -np.asarray(g.Q[T][:, ids].sum(axis=1)).ravel()
        if not rhs.any():
            continue
        b = spla.spsolve(QTT, rhs)
        out[T, c] = np.clip(b, 0.0, 1.0)
    return out


def conditional_absorption_times(generator, classes):
    """``(B, M)``: absorption probabilities and *conditional* mean
    absorption times per class.

    ``B[i, c] = P[absorbed in classes[c] | start i]`` (as in
    :func:`absorption_probabilities`) and ``M[i, c] = E[absorption time |
    start i, absorbed in classes[c]]`` (``nan`` where ``B`` is zero).

    Computed from ``H[i, c] = E[tau * 1{absorbed in c}]`` which satisfies
    ``Q_TT H = -B_T`` on the transient states, then ``M = H / B``.  This
    is what turns a tagged-job chain into per-outcome response times:
    "how long do the jobs that *complete* take, versus the ones that are
    eventually dropped?".
    """
    g = _as_gen(generator)
    n = g.n_states
    B = absorption_probabilities(g, classes)
    classes = [np.asarray(sorted(set(int(i) for i in c)), np.int64) for c in classes]
    all_abs = np.concatenate(classes) if classes else np.empty(0, np.int64)
    mask = np.ones(n, dtype=bool)
    mask[all_abs] = False
    T = np.flatnonzero(mask)
    H = np.zeros((n, len(classes)))
    if T.size:
        QTT = sp.csc_matrix(g.Q[T][:, T])
        for c in range(len(classes)):
            rhs = -B[T, c]
            if not rhs.any():
                continue
            H[T, c] = spla.spsolve(QTT, rhs)
    with np.errstate(divide="ignore", invalid="ignore"):
        M = np.where(B > 0, H / np.where(B > 0, B, 1.0), np.nan)
    return B, M


def absorbing_on_action(generator: Generator, action: str):
    """Return ``(new_generator, sink_id)`` where every ``action``-labelled
    transition is redirected into a fresh absorbing sink state.

    Use with :func:`mean_first_passage_times` to answer "expected time
    until the first occurrence of *action*" -- e.g. the first job loss of
    a bounded queueing system.
    """
    if action not in generator.action_rates:
        raise KeyError(
            f"no rate matrix for action {action!r}; known: "
            f"{sorted(generator.action_rates)}"
        )
    n = generator.n_states
    R = generator.off_diagonal().tolil()
    A = generator.action_rates[action].tocoo()
    # remove the action's rates from their original destinations (only the
    # portion that went into the generator, i.e. non-self-loop part)...
    for i, j, r in zip(A.row, A.col, A.data):
        if i != j:
            R[i, j] = max(R[i, j] - r, 0.0)
    R = R.tocoo()
    src = list(R.row)
    dst = list(R.col)
    rate = list(R.data)
    # ...and redirect the full action rate (including self-loop "drop"
    # transitions, which are real events) into the sink
    per_state = np.asarray(generator.action_rates[action].sum(axis=1)).ravel()
    for i in np.flatnonzero(per_state):
        src.append(int(i))
        dst.append(n)
        rate.append(float(per_state[i]))
    new = Generator.from_triples(n + 1, src, dst, rate)
    return new, n


def _backward_reachable(Q: sp.csr_matrix, targets: np.ndarray) -> np.ndarray:
    """Boolean mask of states from which ``targets`` is reachable."""
    A = Q.copy()
    A.setdiag(0.0)
    A.eliminate_zeros()
    AT = sp.csr_matrix(A.T)
    n = Q.shape[0]
    seen = np.zeros(n, dtype=bool)
    seen[targets] = True
    frontier = targets
    indptr, indices = AT.indptr, AT.indices
    while frontier.size:
        nxt = (
            np.unique(
                np.concatenate(
                    [indices[indptr[v]: indptr[v + 1]] for v in frontier]
                )
            )
            if frontier.size
            else np.empty(0, np.int64)
        )
        nxt = nxt[~seen[nxt]]
        seen[nxt] = True
        frontier = nxt
    return seen
