"""Sparse CTMC generator matrices.

A continuous-time Markov chain on states ``0 .. n-1`` is described by its
generator matrix ``Q`` where ``Q[i, j]`` (``i != j``) is the transition rate
from state ``i`` to state ``j`` and each diagonal entry makes the row sum to
zero.  :class:`Generator` wraps a SciPy CSR matrix, validates the generator
property on construction and keeps (optionally) a per-action decomposition
``Q = sum_a R_a + diagonal`` so that action throughputs can be computed for
process-algebra derived chains.

Construction is vectorised: callers accumulate ``(src, dst, rate)`` triples
(NumPy arrays or Python lists) and build once.  Duplicate ``(src, dst)``
pairs are summed, matching the multi-transition-system semantics of PEPA
(two distinct activities between the same pair of states add their rates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["Generator", "TransitionBatch"]


@dataclass
class TransitionBatch:
    """Accumulator for transition triples, optionally labelled by action.

    Appending is O(1) amortised per call; ``to_generator`` assembles a
    :class:`Generator` in one vectorised pass.
    """

    n_states: int | None = None
    _src: list = field(default_factory=list)
    _dst: list = field(default_factory=list)
    _rate: list = field(default_factory=list)
    _action: list = field(default_factory=list)

    def add(self, src, dst, rate, action: str | None = None) -> None:
        """Add one transition or an array batch of transitions.

        ``src``, ``dst`` and ``rate`` may be scalars or equal-length
        sequences.  ``action`` labels the whole batch.
        """
        src = np.atleast_1d(np.asarray(src, dtype=np.int64))
        dst = np.atleast_1d(np.asarray(dst, dtype=np.int64))
        rate = np.atleast_1d(np.asarray(rate, dtype=np.float64))
        if not (src.shape == dst.shape == rate.shape):
            raise ValueError(
                f"src/dst/rate shapes differ: {src.shape} {dst.shape} {rate.shape}"
            )
        self._src.append(src)
        self._dst.append(dst)
        self._rate.append(rate)
        self._action.append(action)

    def to_generator(self, n_states: int | None = None) -> "Generator":
        """Assemble the accumulated triples into a :class:`Generator`."""
        n = n_states if n_states is not None else self.n_states
        if n is None:
            if not self._src:
                raise ValueError("cannot infer state count from an empty batch")
            n = int(max(int(s.max()) for s in self._src if s.size) + 1)
            n = max(n, int(max(int(d.max()) for d in self._dst if d.size) + 1))
        by_action: dict[str, list[int]] = {}
        for idx, act in enumerate(self._action):
            if act is not None:
                by_action.setdefault(act, []).append(idx)
        action_rates = {}
        for act, idxs in by_action.items():
            s = np.concatenate([self._src[i] for i in idxs])
            d = np.concatenate([self._dst[i] for i in idxs])
            r = np.concatenate([self._rate[i] for i in idxs])
            action_rates[act] = sp.csr_matrix((r, (s, d)), shape=(n, n))
        src = np.concatenate(self._src) if self._src else np.empty(0, np.int64)
        dst = np.concatenate(self._dst) if self._dst else np.empty(0, np.int64)
        rate = np.concatenate(self._rate) if self._rate else np.empty(0, np.float64)
        return Generator.from_triples(n, src, dst, rate, action_rates=action_rates)


class Generator:
    """A validated sparse CTMC generator matrix.

    Parameters
    ----------
    Q :
        Square sparse matrix with non-negative off-diagonal entries and zero
        row sums (within ``atol``).
    action_rates :
        Optional mapping ``action -> sparse rate matrix`` whose entries are
        the rates of transitions carrying that action label.  Used for
        throughput rewards; the off-diagonal part of ``Q`` need not equal the
        sum of the labelled matrices (hidden/unlabelled transitions are
        allowed).
    """

    def __init__(
        self,
        Q: sp.spmatrix,
        action_rates: Mapping[str, sp.spmatrix] | None = None,
        *,
        atol: float = 1e-9,
        validate: bool = True,
    ) -> None:
        Q = sp.csr_matrix(Q, dtype=np.float64)
        if Q.shape[0] != Q.shape[1]:
            raise ValueError(f"generator must be square, got {Q.shape}")
        if validate:
            off = Q.copy()
            off.setdiag(0.0)
            off.eliminate_zeros()
            if off.nnz and off.data.min() < -atol:
                raise ValueError(
                    "negative off-diagonal rate in generator: "
                    f"min={off.data.min():g}"
                )
            rowsum = np.asarray(Q.sum(axis=1)).ravel()
            scale = np.maximum(1.0, np.abs(Q.diagonal()))
            bad = np.abs(rowsum) > atol * scale
            if bad.any():
                i = int(np.argmax(np.abs(rowsum)))
                raise ValueError(
                    f"generator row sums not zero (e.g. row {i}: {rowsum[i]:g})"
                )
        self.Q = Q
        self.action_rates: dict[str, sp.csr_matrix] = {
            a: sp.csr_matrix(m, dtype=np.float64)
            for a, m in (action_rates or {}).items()
        }

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_triples(
        cls,
        n_states: int,
        src: Sequence[int],
        dst: Sequence[int],
        rate: Sequence[float],
        action_rates: Mapping[str, sp.spmatrix] | None = None,
    ) -> "Generator":
        """Build from off-diagonal transition triples; the diagonal is set
        so each row sums to zero.  Self-loop triples (``src == dst``) are
        legal and simply cancel out of the generator (they still count for
        any action-labelled rate matrices supplied separately), matching the
        CTMC semantics where a self-loop is unobservable in the stationary
        distribution.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        rate = np.asarray(rate, dtype=np.float64)
        if rate.size and rate.min() < 0:
            raise ValueError("negative transition rate")
        keep = src != dst
        R = sp.csr_matrix(
            (rate[keep], (src[keep], dst[keep])), shape=(n_states, n_states)
        )
        R.sum_duplicates()
        exit_rates = np.asarray(R.sum(axis=1)).ravel()
        Q = R - sp.diags(exit_rates, format="csr")
        return cls(Q, action_rates=action_rates, validate=False)

    @classmethod
    def from_dense(cls, Q: np.ndarray, **kw) -> "Generator":
        """Build from a dense generator matrix (small models, tests)."""
        return cls(sp.csr_matrix(np.asarray(Q, dtype=np.float64)), **kw)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        return self.Q.shape[0]

    @property
    def exit_rates(self) -> np.ndarray:
        """Total rate out of each state (non-negative vector)."""
        return -self.Q.diagonal()

    @property
    def uniformization_rate(self) -> float:
        """Smallest valid uniformization constant (max exit rate)."""
        d = self.exit_rates
        return float(d.max()) if d.size else 0.0

    def off_diagonal(self) -> sp.csr_matrix:
        """The rate matrix ``R`` with the diagonal removed."""
        R = self.Q.copy()
        R.setdiag(0.0)
        R.eliminate_zeros()
        return R

    def embedded_dtmc(self) -> sp.csr_matrix:
        """Jump-chain transition matrix (rows of absorbing states are
        identity)."""
        R = self.off_diagonal()
        d = self.exit_rates
        inv = np.where(d > 0, 1.0 / np.where(d > 0, d, 1.0), 0.0)
        P = sp.diags(inv) @ R
        P = sp.csr_matrix(P)
        absorbing = np.flatnonzero(d <= 0)
        if absorbing.size:
            eye = sp.csr_matrix(
                (np.ones(absorbing.size), (absorbing, absorbing)),
                shape=P.shape,
            )
            P = P + eye
        return sp.csr_matrix(P)

    def dense(self) -> np.ndarray:
        return self.Q.toarray()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Generator(n_states={self.n_states}, nnz={self.Q.nnz}, "
            f"actions={sorted(self.action_rates)})"
        )


def _as_distribution(p: Iterable[float], n: int) -> np.ndarray:
    p = np.asarray(list(p) if not isinstance(p, np.ndarray) else p, dtype=float)
    if p.shape != (n,):
        raise ValueError(f"distribution has shape {p.shape}, expected ({n},)")
    if p.min() < -1e-12 or abs(p.sum() - 1.0) > 1e-9:
        raise ValueError("not a probability distribution")
    return np.maximum(p, 0.0)
