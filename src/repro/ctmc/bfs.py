"""Breadth-first CTMC construction over tuple-encoded states.

The direct model builders (TAGS, shortest queue, ...) define a successor
function ``succ(state) -> [(action, rate, next_state), ...]`` over plain
tuples; :func:`bfs_generator` explores the reachable set and assembles a
labelled :class:`~repro.ctmc.generator.Generator`.  This mirrors the PEPA
exploration but skips the process-algebra overhead, which makes the
parameter sweeps in the benchmarks ~50x faster while the test suite pins
both constructions to each other.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.ctmc import Generator

__all__ = ["bfs_generator"]


def bfs_generator(
    initial,
    successors: Callable,
    *,
    max_states: int = 2_000_000,
):
    """Explore from ``initial`` and build the generator.

    Returns ``(generator, states, index)`` where ``states`` is the list of
    reachable tuples (``states[0] == initial``) and ``index`` the reverse
    map.  Parallel transitions with the same action are summed; self-loops
    are kept in the per-action matrices only.

    Each build files a ``ctmc.bfs`` span (state/transition counts) and
    ``ctmc.bfs.states``/``ctmc.bfs.transitions`` counters with the
    :mod:`repro.obs` recorder; the exploration loop itself is untouched,
    so disabled recording costs one attribute check per build.
    """
    rec = obs.recorder()
    t0 = time.perf_counter() if rec.enabled else 0.0
    index = {initial: 0}
    states = [initial]
    src: list[int] = []
    dst: list[int] = []
    rate: list[float] = []
    act: list[str] = []

    head = 0
    while head < len(states):
        sid = head
        state = states[head]
        head += 1
        for action, r, nxt in successors(state):
            if r < 0:
                raise ValueError(f"negative rate {r} for {action!r} from {state!r}")
            if r == 0:
                continue
            tid = index.get(nxt)
            if tid is None:
                tid = len(states)
                if tid >= max_states:
                    raise MemoryError(f"state space exceeded {max_states}")
                index[nxt] = tid
                states.append(nxt)
            src.append(sid)
            dst.append(tid)
            rate.append(float(r))
            act.append(action)

    n = len(states)
    src_a = np.asarray(src, dtype=np.int64)
    dst_a = np.asarray(dst, dtype=np.int64)
    rate_a = np.asarray(rate, dtype=np.float64)
    act_a = np.asarray(act, dtype=object)
    action_rates = {}
    for a in sorted(set(act)):
        mask = act_a == a
        action_rates[a] = sp.csr_matrix(
            (rate_a[mask], (src_a[mask], dst_a[mask])), shape=(n, n)
        )
    gen = Generator.from_triples(n, src_a, dst_a, rate_a, action_rates=action_rates)
    if rec.enabled:
        rec.record_span(
            "ctmc.bfs", t0, time.perf_counter() - t0, states=n, transitions=len(src)
        )
        rec.add("ctmc.bfs.states", n)
        rec.add("ctmc.bfs.transitions", len(src))
    return gen, states, index
