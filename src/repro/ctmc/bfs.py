"""Breadth-first CTMC construction over tuple-encoded states.

The direct model builders (TAGS, shortest queue, ...) define a successor
function ``succ(state) -> [(action, rate, next_state), ...]`` over plain
tuples; :func:`bfs_generator` explores the reachable set and assembles a
labelled :class:`~repro.ctmc.generator.Generator`.  This mirrors the PEPA
exploration but skips the process-algebra overhead, which makes the
parameter sweeps in the benchmarks ~50x faster while the test suite pins
both constructions to each other.

:class:`ChainTemplate` is the evaluate-many companion: it freezes the
reachability structure of one exploration (states, transition endpoints,
action labels) so a parameter sweep that changes only *rate values* can
rebuild the generator without re-walking the state graph -- the direct
analogue of :meth:`repro.pepa.compiled.CompiledSpace.refill`.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.ctmc import Generator

__all__ = [
    "bfs_generator",
    "bfs_arrays",
    "assemble_generator",
    "ChainTemplate",
    "StructureMismatch",
]


def bfs_arrays(
    initial,
    successors: Callable,
    *,
    max_states: int = 2_000_000,
):
    """Explore from ``initial``; return the raw transition arrays.

    ``(states, index, src, dst, rate, act)`` with ``states[0] ==
    initial``.  Zero-rate transitions are skipped, negative rates raise
    ``ValueError``, and transitions are recorded in enumeration order
    (per-action aggregation happens in :func:`assemble_generator`).

    Each exploration files a ``ctmc.bfs`` span (state/transition counts)
    and ``ctmc.bfs.states``/``ctmc.bfs.transitions`` counters with the
    :mod:`repro.obs` recorder; the loop itself is untouched, so disabled
    recording costs one attribute check per build.
    """
    rec = obs.recorder()
    t0 = time.perf_counter() if rec.enabled else 0.0
    index = {initial: 0}
    states = [initial]
    src: list = []
    dst: list = []
    rate: list = []
    act: list = []

    head = 0
    while head < len(states):
        sid = head
        state = states[head]
        head += 1
        for action, r, nxt in successors(state):
            if r < 0:
                raise ValueError(f"negative rate {r} for {action!r} from {state!r}")
            if r == 0:
                continue
            tid = index.get(nxt)
            if tid is None:
                tid = len(states)
                if tid >= max_states:
                    raise MemoryError(f"state space exceeded {max_states}")
                index[nxt] = tid
                states.append(nxt)
            src.append(sid)
            dst.append(tid)
            rate.append(float(r))
            act.append(action)

    n = len(states)
    src_a = np.asarray(src, dtype=np.int64)
    dst_a = np.asarray(dst, dtype=np.int64)
    rate_a = np.asarray(rate, dtype=np.float64)
    if rec.enabled:
        rec.record_span(
            "ctmc.bfs", t0, time.perf_counter() - t0, states=n, transitions=len(src)
        )
        rec.add("ctmc.bfs.states", n)
        rec.add("ctmc.bfs.transitions", len(src))
    return states, index, src_a, dst_a, rate_a, act


def assemble_generator(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    rate: np.ndarray,
    act: list,
) -> Generator:
    """Assemble a labelled :class:`Generator` from transition arrays.

    Parallel transitions with the same action are summed (CSR
    construction sums duplicates); self-loops are kept in the per-action
    matrices only.  First builds and template refills share this exact
    path, so equal inputs give bit-identical generators.
    """
    act_a = np.asarray(act, dtype=object)
    action_rates = {}
    for a in sorted(set(act)):
        mask = act_a == a
        action_rates[a] = sp.csr_matrix(
            (rate[mask], (src[mask], dst[mask])), shape=(n, n)
        )
    return Generator.from_triples(n, src, dst, rate, action_rates=action_rates)


def bfs_generator(
    initial,
    successors: Callable,
    *,
    max_states: int = 2_000_000,
):
    """Explore from ``initial`` and build the generator.

    Returns ``(generator, states, index)`` where ``states`` is the list of
    reachable tuples (``states[0] == initial``) and ``index`` the reverse
    map.  Parallel transitions with the same action are summed; self-loops
    are kept in the per-action matrices only.
    """
    states, index, src, dst, rate, act = bfs_arrays(
        initial, successors, max_states=max_states
    )
    gen = assemble_generator(len(states), src, dst, rate, act)
    return gen, states, index


class StructureMismatch(ValueError):
    """A refill's transition structure differs from the template's."""


class ChainTemplate:
    """Frozen reachability structure of one successor-function CTMC.

    ``explore()`` runs the BFS once and records everything the generator
    assembly needs (states, endpoints, labels) plus the rates it was
    built with.  :meth:`refill` recomputes only the rate column by
    re-enumerating ``successors`` over the *recorded* state list -- no
    hashing, no dict growth, no reachability discovery -- and verifies
    the structure still matches (same transitions in the same order); a
    model whose parameters change the structure (e.g. a rate hitting
    exactly 0 drops transitions) raises :class:`StructureMismatch` so the
    caller can rebuild from scratch.

    Model classes with vectorisable rate formulas can skip the
    re-enumeration entirely and hand :meth:`generator` a rate vector
    computed directly from the stored endpoint arrays.
    """

    __slots__ = (
        "states",
        "index",
        "src",
        "dst",
        "act",
        "rate",
        "initial",
        "_state_array",
        "_masks",
    )

    def __init__(self, states, index, src, dst, rate, act) -> None:
        self.states = states
        self.index = index
        self.src = src
        self.dst = dst
        self.rate = rate
        self.act = act
        self.initial = states[0]
        self._state_array = None
        self._masks = None

    @classmethod
    def explore(
        cls,
        initial,
        successors: Callable,
        *,
        max_states: int = 2_000_000,
    ) -> "ChainTemplate":
        return cls(*bfs_arrays(initial, successors, max_states=max_states))

    @property
    def n_states(self) -> int:
        return len(self.states)

    @property
    def n_transitions(self) -> int:
        return int(self.src.size)

    def state_array(self) -> np.ndarray:
        """States as an ``(n_states, width)`` int array (memoised).

        Only valid for flat-tuple state encodings; vectorised rate
        formulas index it by ``src``/``dst`` to recover per-transition
        source and destination coordinates.
        """
        if self._state_array is None:
            self._state_array = np.asarray(self.states, dtype=np.int64)
        return self._state_array

    def action_mask(self, action: str) -> np.ndarray:
        """Boolean mask of transitions labelled ``action`` (memoised)."""
        if self._masks is None:
            self._masks = {}
        mask = self._masks.get(action)
        if mask is None:
            act_a = np.asarray(self.act, dtype=object)
            mask = self._masks[action] = act_a == action
        return mask

    def refill(self, successors: Callable) -> np.ndarray:
        """Rate column of ``successors`` over the recorded structure.

        The new model must enable exactly the transitions this template
        recorded, in the same enumeration order (true whenever only rate
        *values* changed); anything else raises
        :class:`StructureMismatch`.
        """
        rec = obs.recorder()
        with rec.span("template.refill") as sp_:
            out = np.empty(self.src.size, dtype=np.float64)
            k = 0
            src, dst, act, index = self.src, self.dst, self.act, self.index
            n = self.src.size
            for sid, state in enumerate(self.states):
                for action, r, nxt in successors(state):
                    if r < 0:
                        raise ValueError(
                            f"negative rate {r} for {action!r} from {state!r}"
                        )
                    if r == 0:
                        continue
                    if (
                        k >= n
                        or src[k] != sid
                        or act[k] != action
                        or dst[k] != index.get(nxt, -1)
                    ):
                        raise StructureMismatch(
                            f"transition {k} differs from the template "
                            f"(state {state!r}, action {action!r})"
                        )
                    out[k] = float(r)
                    k += 1
            if k != n:
                raise StructureMismatch(
                    f"refill produced {k} transitions, template has {n}"
                )
            if rec.enabled:
                rec.add("template.refill.points")
            sp_.set(transitions=n)
        return out

    def generator(self, rate: "np.ndarray | None" = None) -> Generator:
        """Assemble the generator for ``rate`` (default: the rates the
        template was explored with)."""
        if rate is None:
            rate = self.rate
        elif rate.shape != self.src.shape:
            raise StructureMismatch(
                f"rate vector has {rate.size} entries, template has "
                f"{self.src.size} transitions"
            )
        return assemble_generator(self.n_states, self.src, self.dst, rate, self.act)
