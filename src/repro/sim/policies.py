"""Allocation policies for the simulator.

A policy answers three questions:

* ``route(queue_lengths, rng)`` -- which node does a fresh arrival join?
* ``timeout(node)`` -- the timeout sampler for that node (``None`` = serve
  to exhaustion);
* ``forward(node)`` -- where a timed-out job restarts (``None`` = dropped).

TAGS is the only policy that uses timeouts/forwarding; random, round-robin
and JSQ run every job to completion where it lands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TagsPolicy", "RandomPolicy", "RoundRobinPolicy", "JSQPolicy"]


@dataclass
class TagsPolicy:
    """All arrivals join node 0; node ``i`` kills at ``timeouts[i]`` and
    moves the job to node ``i+1``; the last node has no timeout.

    ``resume=False`` (default) is TAGS proper: the moved job restarts from
    scratch, all work lost.  ``resume=True`` is the multi-level-feedback
    variant the paper's introduction contrasts with (and whose comparison
    Section 6 calls an open problem): the job continues from where it was
    killed.
    """

    timeouts: tuple  # len = n_nodes - 1, of timeout samplers
    resume: bool = False

    def n_nodes(self) -> int:
        return len(self.timeouts) + 1

    def route(self, queue_lengths, rng) -> int:
        return 0

    def timeout(self, node: int):
        return self.timeouts[node] if node < len(self.timeouts) else None

    def forward(self, node: int):
        return node + 1 if node < len(self.timeouts) else None


@dataclass
class RandomPolicy:
    """Probabilistic split (Appendix A)."""

    weights: tuple = (0.5, 0.5)

    def __post_init__(self) -> None:
        w = np.asarray(self.weights, dtype=float)
        if w.min() < 0 or abs(w.sum() - 1.0) > 1e-9:
            raise ValueError("weights must be a probability vector")
        self._w = w

    def n_nodes(self) -> int:
        return len(self.weights)

    def route(self, queue_lengths, rng) -> int:
        return int(rng.choice(len(self._w), p=self._w))

    def timeout(self, node: int):
        return None

    def forward(self, node: int):
        return None


@dataclass
class RoundRobinPolicy:
    """Cyclic assignment."""

    nodes: int = 2
    _next: int = field(default=0, repr=False)

    def n_nodes(self) -> int:
        return self.nodes

    def route(self, queue_lengths, rng) -> int:
        node = self._next
        self._next = (self._next + 1) % self.nodes
        return node

    def timeout(self, node: int):
        return None

    def forward(self, node: int):
        return None


@dataclass
class JSQPolicy:
    """Join the shortest queue; ties broken uniformly (Appendix B)."""

    nodes: int = 2

    def n_nodes(self) -> int:
        return self.nodes

    def route(self, queue_lengths, rng) -> int:
        q = np.asarray(queue_lengths[: self.nodes])
        shortest = np.flatnonzero(q == q.min())
        return int(shortest[0] if len(shortest) == 1 else rng.choice(shortest))

    def timeout(self, node: int):
        return None

    def forward(self, node: int):
        return None
