"""Allocation policies for the simulator.

A policy answers three questions:

* ``route(queue_lengths, rng)`` -- which node does a fresh arrival join?
* ``timeout(node)`` -- the timeout sampler for that node (``None`` = serve
  to exhaustion);
* ``forward(node)`` -- where a timed-out job restarts (``None`` = dropped).

TAGS is the only policy that uses timeouts/forwarding; random, round-robin
and JSQ run every job to completion where it lands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TagsPolicy", "RandomPolicy", "RoundRobinPolicy", "JSQPolicy"]


@dataclass
class TagsPolicy:
    """All arrivals join node 0; node ``i`` kills at ``timeouts[i]`` and
    moves the job to node ``i+1``; the last node has no timeout.

    ``resume=False`` (default) is TAGS proper: the moved job restarts from
    scratch, all work lost.  ``resume=True`` is the multi-level-feedback
    variant the paper's introduction contrasts with (and whose comparison
    Section 6 calls an open problem): the job continues from where it was
    killed.
    """

    timeouts: tuple  # len = n_nodes - 1, of timeout samplers
    resume: bool = False

    def n_nodes(self) -> int:
        return len(self.timeouts) + 1

    def route(self, queue_lengths, rng) -> int:
        return 0

    def timeout(self, node: int):
        return self.timeouts[node] if node < len(self.timeouts) else None

    def forward(self, node: int):
        return node + 1 if node < len(self.timeouts) else None


@dataclass
class RandomPolicy:
    """Probabilistic split (Appendix A)."""

    weights: tuple = (0.5, 0.5)

    def __post_init__(self) -> None:
        w = np.asarray(self.weights, dtype=float)
        if w.min() < 0 or abs(w.sum() - 1.0) > 1e-9:
            raise ValueError("weights must be a probability vector")
        self._w = w

    def n_nodes(self) -> int:
        return len(self.weights)

    def route(self, queue_lengths, rng) -> int:
        return int(rng.choice(len(self._w), p=self._w))

    def timeout(self, node: int):
        return None

    def forward(self, node: int):
        return None


@dataclass
class RoundRobinPolicy:
    """Cyclic assignment."""

    nodes: int = 2
    _next: int = field(default=0, repr=False)

    def n_nodes(self) -> int:
        return self.nodes

    def route(self, queue_lengths, rng) -> int:
        node = self._next
        self._next = (self._next + 1) % self.nodes
        return node

    def timeout(self, node: int):
        return None

    def forward(self, node: int):
        return None


@dataclass
class JSQPolicy:
    """Join the shortest queue (Appendix B).

    Tie-breaking is an explicit, seeded choice rather than an accident of
    the argmin implementation:

    * ``tie_break="random"`` (default, matching the symmetric CTMC
      model): a tied shortest node is drawn uniformly from the
      simulation's generator, so runs are reproducible per seed;
    * ``tie_break="lowest"``: deterministically the lowest-indexed tied
      node -- the behaviour a plain ``argmin`` silently gives, now
      opt-in.  Under low load this biases work toward node 0 (every
      empty-system arrival lands there), which is measurable on per-node
      queue lengths; tests pin both behaviours.
    """

    nodes: int = 2
    tie_break: str = "random"

    def __post_init__(self) -> None:
        if self.tie_break not in ("random", "lowest"):
            raise ValueError(
                f"tie_break must be 'random' or 'lowest', got {self.tie_break!r}"
            )

    def n_nodes(self) -> int:
        return self.nodes

    def route(self, queue_lengths, rng) -> int:
        q = np.asarray(queue_lengths[: self.nodes])
        shortest = np.flatnonzero(q == q.min())
        if len(shortest) == 1 or self.tie_break == "lowest":
            return int(shortest[0])
        return int(rng.choice(shortest))

    def timeout(self, node: int):
        return None

    def forward(self, node: int):
        return None
