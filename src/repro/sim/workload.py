"""Arrival processes and timeout samplers for the simulator.

Arrival processes yield successive inter-arrival times through
``next_interarrival(rng)``; the MMPP lets us probe the paper's Section 7
conjecture that bursty traffic hurts TAGS more than shortest-queue.

Timeout samplers produce the node-1 timeout duration per service attempt:
``DeterministicTimeout`` is the real TAGS mechanism, ``ErlangTimeout``
mirrors the paper's Markovian approximation (so simulator-vs-CTMC
agreement can be tested exactly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PoissonArrivals",
    "MMPPArrivals",
    "DeterministicTimeout",
    "ErlangTimeout",
]


@dataclass
class PoissonArrivals:
    """Poisson process: iid Exponential(rate) gaps."""

    rate: float

    def __post_init__(self) -> None:
        # explicit finiteness: NaN slips through a bare `rate <= 0`
        if not np.isfinite(self.rate) or self.rate <= 0:
            raise ValueError(
                f"PoissonArrivals.rate must be finite and positive, "
                f"got {self.rate!r}"
            )

    @property
    def mean_rate(self) -> float:
        return self.rate

    def next_interarrival(self, rng: np.random.Generator) -> float:
        return rng.exponential(1.0 / self.rate)


@dataclass
class MMPPArrivals:
    """Two-state Markov-modulated Poisson process.

    The modulating chain alternates between states 0 and 1 with rates
    ``switch01`` / ``switch10``; arrivals occur at ``rate0`` / ``rate1``.
    An Interrupted Poisson Process (on/off bursts) is ``rate1 = 0``.
    """

    rate0: float
    rate1: float
    switch01: float
    switch10: float

    def __post_init__(self) -> None:
        for name in ("rate0", "rate1"):
            v = getattr(self, name)
            if not np.isfinite(v) or v < 0:
                raise ValueError(
                    f"MMPPArrivals.{name} must be finite and >= 0, got {v!r}"
                )
        if max(self.rate0, self.rate1) == 0:
            raise ValueError(
                "MMPPArrivals needs at least one of rate0/rate1 positive"
            )
        for name in ("switch01", "switch10"):
            v = getattr(self, name)
            if not np.isfinite(v) or v <= 0:
                raise ValueError(
                    f"MMPPArrivals.{name} must be finite and positive, got {v!r}"
                )
        self._state = 0
        self._residual = None  # leftover exponential race bookkeeping

    @property
    def mean_rate(self) -> float:
        """Long-run arrival rate (stationary mix of the two states)."""
        p0 = self.switch10 / (self.switch01 + self.switch10)
        return p0 * self.rate0 + (1 - p0) * self.rate1

    def burstiness_index(self) -> float:
        """Ratio of peak to mean rate (1 = Poisson)."""
        return max(self.rate0, self.rate1) / self.mean_rate

    def next_interarrival(self, rng: np.random.Generator) -> float:
        """Simulate the modulated race until an arrival occurs."""
        elapsed = 0.0
        while True:
            rate = self.rate0 if self._state == 0 else self.rate1
            switch = self.switch01 if self._state == 0 else self.switch10
            total = rate + switch
            dt = rng.exponential(1.0 / total)
            if rng.random() < rate / total:
                return elapsed + dt
            elapsed += dt
            self._state = 1 - self._state


@dataclass
class DeterministicTimeout:
    """Fixed timeout duration (the actual TAGS mechanism)."""

    duration: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.duration) or self.duration <= 0:
            raise ValueError(
                f"DeterministicTimeout.duration must be finite and positive, "
                f"got {self.duration!r}"
            )

    @property
    def mean(self) -> float:
        return self.duration

    def sample(self, rng: np.random.Generator) -> float:
        return self.duration


@dataclass
class ErlangTimeout:
    """Erlang(n, t) timeout (the paper's Markovian approximation)."""

    n: int
    t: float

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"ErlangTimeout.n must be >= 1, got {self.n!r}")
        if not np.isfinite(self.t) or self.t <= 0:
            raise ValueError(
                f"ErlangTimeout.t must be finite and positive, got {self.t!r}"
            )

    @property
    def mean(self) -> float:
        return self.n / self.t

    def sample(self, rng: np.random.Generator) -> float:
        return rng.gamma(shape=self.n, scale=1.0 / self.t)
