"""Online statistics for the simulator."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["TimeAverage", "batch_means_ci"]


class TimeAverage:
    """Time-weighted average of a piecewise-constant signal (queue
    lengths, busy indicators)."""

    def __init__(self) -> None:
        self._last_t = 0.0
        self._last_v = 0.0
        self._area = 0.0
        self._t0 = 0.0

    def reset(self, t: float, value: float | None = None) -> None:
        """Discard history (warm-up end)."""
        if value is not None:
            self._last_v = value
        self._last_t = t
        self._t0 = t
        self._area = 0.0

    def update(self, t: float, value: float) -> None:
        if t < self._last_t:
            raise ValueError("time went backwards")
        self._area += self._last_v * (t - self._last_t)
        self._last_t = t
        self._last_v = value

    def mean(self, t_end: float | None = None) -> float:
        t = self._last_t if t_end is None else t_end
        area = self._area + self._last_v * (t - self._last_t)
        span = t - self._t0
        return area / span if span > 0 else 0.0

    @property
    def current(self) -> float:
        return self._last_v


def batch_means_ci(
    samples, n_batches: int = 20, confidence: float = 0.95
) -> tuple[float, float]:
    """Mean and half-width of a batch-means confidence interval.

    Splits the (autocorrelated) sample stream into ``n_batches`` contiguous
    batches; batch means are treated as approximately iid normal.  Returns
    ``(mean, half_width)``.
    """
    x = np.asarray(samples, dtype=float)
    if x.size < 2 * n_batches:
        raise ValueError(
            f"need at least {2 * n_batches} samples for {n_batches} batches, "
            f"got {x.size}"
        )
    usable = (x.size // n_batches) * n_batches
    means = x[:usable].reshape(n_batches, -1).mean(axis=1)
    grand = float(means.mean())
    se = float(means.std(ddof=1)) / math.sqrt(n_batches)
    # t-quantile via scipy
    from scipy.stats import t as t_dist

    half = float(t_dist.ppf(0.5 + confidence / 2.0, n_batches - 1)) * se
    return grand, half
