"""Discrete-event simulation of the allocation policies.

The CTMC models make Markovian approximations (Erlang timeouts, resampled
repeat periods); the simulator executes the *actual* TAGS semantics -- a
job has one fixed service demand, is killed at the timeout and restarted
from scratch downstream -- so it both validates the CTMC results and
reaches workloads PEPA cannot express (deterministic timeouts, bounded
Pareto demand, bursty arrivals).

Building blocks:

* :mod:`~repro.sim.workload` -- Poisson and MMPP/IPP (bursty) arrival
  processes; any distribution with ``.sample`` works for demands.
* :mod:`~repro.sim.policies` -- TAGS, random, round-robin and
  join-shortest-queue dispatchers over bounded FCFS nodes.
* :mod:`~repro.sim.runner` -- the event loop, warm-up handling and
  replication driver.
* :mod:`~repro.sim.stats` -- time-averaged queue lengths, batch-means
  confidence intervals, mean slowdown.
"""

from repro.sim.workload import PoissonArrivals, MMPPArrivals, DeterministicTimeout, ErlangTimeout
from repro.sim.policies import TagsPolicy, RandomPolicy, RoundRobinPolicy, JSQPolicy
from repro.sim.runner import (
    Simulation,
    SimulationResult,
    replicate,
    replicate_until,
)
from repro.sim.stats import TimeAverage, batch_means_ci

__all__ = [
    "PoissonArrivals",
    "MMPPArrivals",
    "DeterministicTimeout",
    "ErlangTimeout",
    "TagsPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "JSQPolicy",
    "Simulation",
    "SimulationResult",
    "replicate",
    "replicate_until",
    "TimeAverage",
    "batch_means_ci",
]
