"""The discrete-event engine and replication driver.

Semantics (true kill-and-restart TAGS, not the CTMC approximation):

* a job draws a single service **demand** on arrival and keeps it for life;
* at a node the head job is served FCFS at unit speed; if the node has a
  timeout, a duration is drawn from the timeout sampler at *service start*
  and the job is killed when it fires first -- all prior work is lost;
* a killed job restarts (same demand, from scratch) at the policy's
  forward node, or is dropped if that node is full -- the paper's "lost at
  node 2 after completing a timed-out service" case; policies with
  ``resume=True`` (the multi-level-feedback variant of the paper's
  Section 6 open problem) carry the remaining work over instead;
* queues are bounded: an arrival routed to a full node is dropped.

Because nothing preempts the head job, the winner of the service/timeout
race is known at service start and exactly one future event per busy node
is ever scheduled -- no event cancellation is needed.

**Fault injection** (``faults=``): a
:class:`~repro.faults.FaultPlan` / :class:`~repro.faults.FaultInjector`
replays node crashes, recoveries, service-rate degradation and arrival
surges into the run.  Crashes *do* preempt the head job, so scheduled
race outcomes carry a per-node epoch and a crash invalidates them
(stale events are skipped when popped -- the heap is never edited).
Jobs destroyed by failure are counted ``lost_to_failure``; the work an
interrupted attempt had accumulated is ``work_wasted``.  The identical
semantics run in :class:`repro.serve.dispatcher.DispatchRuntime`, and
the equivalence tests pin the two hosts' per-job fault outcomes to each
other exactly.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.faults.injector import FaultInjector
from repro.sim.stats import TimeAverage, batch_means_ci

__all__ = ["Simulation", "SimulationResult", "replicate", "replicate_until"]


@dataclass
class _Job:
    """One job: its arrival time, lifetime demand, and -- under resume
    policies -- the work still outstanding after kills.

    ``remaining`` is genuinely optional (``None`` means "not yet
    started": it is filled with the full demand on construction), so it
    is typed ``float | None`` rather than lying to the dataclass with a
    ``float`` annotation and a ``None`` default.
    """

    arrival_time: float
    demand: float
    remaining: float | None = None
    job_id: int = -1
    kills: int = 0

    def __post_init__(self) -> None:
        if self.remaining is None:
            self.remaining = self.demand


@dataclass
class SimulationResult:
    """Post-warm-up measurements of one run.

    ``demands`` is aligned with ``response_times``/``slowdowns`` (one entry
    per completed job), enabling per-size-class analysis -- TAGS's whole
    purpose is to treat short and long jobs differently, and
    Harchol-Balter's evaluation revolves around slowdown by job size.

    ``jobs`` (only with ``record_jobs=True``, never pruned at warm-up) is
    the per-job outcome log ``[(job_id, outcome, node, kills), ...]`` in
    event order, with ids assigned in arrival order -- the currency the
    ``repro.serve`` equivalence tests compare against the online runtime.

    Failure accounting (all zero without fault injection):
    ``lost_to_failure`` counts jobs destroyed by node failure (crashed
    away under ``on_crash="drop"``, shed because the routed or forward
    node was down), ``work_wasted`` the demand-units of service an
    interrupted attempt had accumulated when its node crashed, and
    ``still_queued`` the jobs left in queues at ``t_end`` -- so every
    offered job is accounted for exactly once (:attr:`accounted`).
    """

    duration: float
    offered: int
    completed: int
    dropped_arrival: int
    dropped_forward: int
    mean_queue_lengths: tuple
    response_times: np.ndarray
    slowdowns: np.ndarray
    demands: np.ndarray = field(default_factory=lambda: np.empty(0))
    jobs: "list | None" = None
    lost_to_failure: int = 0
    work_wasted: float = 0.0
    still_queued: int = 0

    def job_outcomes(self) -> dict:
        """``job_id -> (outcome, node, kills)`` for finished jobs."""
        if self.jobs is None:
            raise ValueError("run with record_jobs=True to keep job logs")
        return {jid: (outcome, node, kills) for jid, outcome, node, kills in self.jobs}

    @property
    def throughput(self) -> float:
        return self.completed / self.duration

    @property
    def offered_rate(self) -> float:
        return self.offered / self.duration

    @property
    def loss_probability(self) -> float:
        total = self.dropped_arrival + self.dropped_forward
        return total / self.offered if self.offered else 0.0

    @property
    def accounted(self) -> int:
        """Jobs accounted for: completed + dropped + lost + queued.

        Equals :attr:`offered` whenever the measurement window starts at
        time zero (``warmup=0``) -- the job-conservation invariant the
        fault-injection property tests pin for every seeded plan.
        """
        return (
            self.completed
            + self.dropped_arrival
            + self.dropped_forward
            + self.lost_to_failure
            + self.still_queued
        )

    @property
    def failure_loss_probability(self) -> float:
        return self.lost_to_failure / self.offered if self.offered else 0.0

    @property
    def mean_jobs(self) -> float:
        return float(sum(self.mean_queue_lengths))

    @property
    def mean_response_time(self) -> float:
        return float(self.response_times.mean()) if self.response_times.size else 0.0

    @property
    def mean_slowdown(self) -> float:
        return float(self.slowdowns.mean()) if self.slowdowns.size else 0.0

    def response_time_ci(self, n_batches: int = 20) -> tuple:
        return batch_means_ci(self.response_times, n_batches)

    # -- per-size-class views ------------------------------------------
    def class_mask(self, threshold: float) -> np.ndarray:
        """Boolean mask of *short* completed jobs (demand <= threshold)."""
        if self.demands.size != self.response_times.size:
            raise ValueError("this result carries no per-job demands")
        return self.demands <= threshold

    def mean_slowdown_by_class(self, threshold: float) -> tuple:
        """(short-job mean slowdown, long-job mean slowdown)."""
        short = self.class_mask(threshold)
        s = float(self.slowdowns[short].mean()) if short.any() else float("nan")
        l = (
            float(self.slowdowns[~short].mean())
            if (~short).any()
            else float("nan")
        )
        return s, l

    def mean_response_by_class(self, threshold: float) -> tuple:
        """(short-job mean response, long-job mean response)."""
        short = self.class_mask(threshold)
        s = (
            float(self.response_times[short].mean())
            if short.any()
            else float("nan")
        )
        l = (
            float(self.response_times[~short].mean())
            if (~short).any()
            else float("nan")
        )
        return s, l

    def slowdown_percentile(self, q: float) -> float:
        """Slowdown percentile (q in [0, 100])."""
        if self.slowdowns.size == 0:
            return float("nan")
        return float(np.percentile(self.slowdowns, q))


class Simulation:
    """One simulation run of a policy over bounded FCFS nodes.

    Parameters
    ----------
    arrivals :
        Arrival process (``next_interarrival``).
    demand :
        Service-demand distribution (``sample``).
    policy :
        Routing/timeout policy.
    capacities :
        Per-node capacity (queue + server).
    seed, rng :
        Either a seed for a private ``numpy.random.Generator`` or an
        existing generator to draw from (``rng`` wins when both are
        given).  Passing ``rng`` lets callers -- the ``repro.serve``
        controller and dispatcher in particular -- share or spawn
        reproducible streams across components; with ``seed`` alone the
        draw sequence is unchanged from earlier releases.
    record_jobs :
        Keep a per-job outcome log on the result (see
        :attr:`SimulationResult.jobs`).
    faults :
        Optional :class:`~repro.faults.FaultPlan` (wrapped in a default
        :class:`~repro.faults.FaultInjector`) or a configured injector:
        replays node crashes/recoveries, service degradation and
        arrival surges into the run (see the module docstring).
    """

    def __init__(
        self,
        arrivals,
        demand,
        policy,
        capacities,
        *,
        seed: int = 0,
        rng: "np.random.Generator | None" = None,
        speeds=None,
        record_jobs: bool = False,
        faults=None,
    ) -> None:
        self.arrivals = arrivals
        self.demand = demand
        self.policy = policy
        self.capacities = tuple(int(k) for k in capacities)
        if len(self.capacities) != policy.n_nodes():
            raise ValueError(
                f"policy expects {policy.n_nodes()} nodes, got "
                f"{len(self.capacities)} capacities"
            )
        if min(self.capacities) < 1:
            raise ValueError("capacities must be >= 1")
        if speeds is None:
            self.speeds = (1.0,) * len(self.capacities)
        else:
            self.speeds = tuple(float(s) for s in speeds)
            if len(self.speeds) != len(self.capacities):
                raise ValueError("need one speed per node")
            if min(self.speeds) <= 0:
                raise ValueError("speeds must be positive")
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.record_jobs = record_jobs
        if faults is None or isinstance(faults, FaultInjector):
            self.faults = faults
        else:
            self.faults = FaultInjector(faults)

    # ------------------------------------------------------------------
    def run(self, t_end: float, warmup: float = 0.0) -> SimulationResult:
        if t_end <= warmup:
            raise ValueError("t_end must exceed warmup")
        rec = obs.recorder()
        t_wall0 = time.perf_counter() if rec.enabled else 0.0
        rng = self.rng
        n_nodes = len(self.capacities)
        queues = [deque() for _ in range(n_nodes)]
        q_avg = [TimeAverage() for _ in range(n_nodes)]
        heap: list = []
        seq = 0

        inj = self.faults
        epoch = [0] * n_nodes
        # per-node (start time, effective speed, work at start) of the
        # in-progress attempt; consulted on crash for waste accounting
        # and the requeue remaining-work restore
        service_start: list = [None] * n_nodes

        offered = completed = dropped_arrival = dropped_forward = 0
        killed = forwarded = 0
        lost_to_failure = 0
        work_wasted = 0.0
        responses: list = []
        slowdowns: list = []
        demands: list = []
        warm = False
        next_id = 0  # job ids by arrival order; never reset at warm-up
        job_log: "list | None" = [] if self.record_jobs else None

        def push(time: float, kind: str, node: int, payload=None):
            nonlocal seq
            heapq.heappush(heap, (time, seq, kind, node, payload))
            seq += 1

        def start_service(now: float, node: int) -> None:
            """Schedule the race outcome for the new head job.

            A node of speed ``s`` finishes a demand-``D`` job in ``D/s``
            wall time; the timeout races that wall-clock duration.  Under
            resume policies the job's *remaining* work is what is served
            (and decremented on a kill); under restart the remaining work
            is re-set to the full demand, so prior service is lost.

            With fault injection: a down node starts nothing (service
            resumes on recovery); degradation scales the effective speed
            at service start; ``single_node`` mode suppresses the timeout
            race while the forward target is down.  The scheduled outcome
            carries the node's epoch, so a later crash invalidates it.
            """
            if inj is not None and not inj.up[node]:
                return
            job = queues[node][0]
            resume = getattr(self.policy, "resume", False)
            work = job.remaining if resume else job.demand
            speed = self.speeds[node]
            if inj is not None:
                speed = speed * inj.speed_factor[node]
            wall = work / speed
            service_start[node] = (now, speed, work)
            sampler = self.policy.timeout(node)
            if sampler is None or (
                inj is not None
                and inj.suppress_timeout(self.policy.forward(node))
            ):
                push(now + wall, "complete", node, epoch[node])
                return
            tau = sampler.sample(rng)
            if wall <= tau:
                push(now + wall, "complete", node, epoch[node])
            else:
                if resume:
                    job.remaining = work - tau * speed
                push(now + tau, "kill", node, epoch[node])

        def note_queue(now: float, node: int) -> None:
            q_avg[node].update(now, len(queues[node]))

        def next_gap() -> float:
            gap = self.arrivals.next_interarrival(rng)
            if inj is not None and inj.arrival_factor != 1.0:
                gap = gap / inj.arrival_factor
            return gap

        if inj is not None:
            inj.reset(n_nodes)
            # fault events enter the heap before the first arrival, so a
            # fault always precedes same-time host events (lower seq)
            for ev in inj.events():
                push(ev.time, "fault", ev.node, ev)
        push(next_gap(), "arrival", -1)
        now = 0.0
        while heap:
            now, _, kind, node, payload = heapq.heappop(heap)
            if now > t_end:
                break
            if not warm and now >= warmup:
                warm = True
                # queue lengths are unchanged on (last event, now) ⊇
                # (warmup, now), so anchoring the integrators at exactly
                # t=warmup makes the measurement window [warmup, t_end]
                for node_i in range(n_nodes):
                    q_avg[node_i].reset(warmup, len(queues[node_i]))
                offered = completed = dropped_arrival = dropped_forward = 0
                killed = forwarded = 0
                lost_to_failure = 0
                work_wasted = 0.0
                responses.clear()
                slowdowns.clear()
                demands.clear()

            if kind == "arrival":
                push(now + next_gap(), "arrival", -1)
                offered += 1
                job = _Job(
                    now, float(self.demand.sample(1, rng)[0]), job_id=next_id
                )
                next_id += 1
                target = self.policy.route(
                    [len(q) for q in queues], rng
                )
                if inj is not None and not inj.up[target]:
                    # a down node accepts nothing; the arrival is shed
                    lost_to_failure += 1
                    if job_log is not None:
                        job_log.append(
                            (job.job_id, "lost_to_failure", target, 0)
                        )
                    continue
                if len(queues[target]) >= self.capacities[target]:
                    dropped_arrival += 1
                    if job_log is not None:
                        job_log.append(
                            (job.job_id, "dropped_arrival", target, 0)
                        )
                    continue
                queues[target].append(job)
                note_queue(now, target)
                if len(queues[target]) == 1:
                    start_service(now, target)

            elif kind == "complete":
                if payload != epoch[node]:
                    continue  # scheduled before a crash; outcome voided
                service_start[node] = None
                job = queues[node].popleft()
                note_queue(now, node)
                completed += 1
                responses.append(now - job.arrival_time)
                slowdowns.append((now - job.arrival_time) / job.demand)
                demands.append(job.demand)
                if job_log is not None:
                    job_log.append((job.job_id, "completed", node, job.kills))
                if queues[node]:
                    start_service(now, node)

            elif kind == "kill":
                if payload != epoch[node]:
                    continue  # scheduled before a crash; outcome voided
                service_start[node] = None
                job = queues[node].popleft()
                note_queue(now, node)
                killed += 1
                job.kills += 1
                target = self.policy.forward(node)
                if inj is not None and target is not None and not inj.up[target]:
                    # killed with the forward target down: shed
                    lost_to_failure += 1
                    if job_log is not None:
                        job_log.append(
                            (job.job_id, "lost_to_failure", node, job.kills)
                        )
                elif target is None or len(queues[target]) >= self.capacities[target]:
                    dropped_forward += 1
                    if job_log is not None:
                        job_log.append(
                            (job.job_id, "dropped_forward", node, job.kills)
                        )
                else:
                    forwarded += 1
                    queues[target].append(job)
                    note_queue(now, target)
                    if len(queues[target]) == 1:
                        start_service(now, target)
                if queues[node]:
                    start_service(now, node)

            elif kind == "fault":
                directive = inj.apply(payload, now)
                if directive == "crash":
                    epoch[node] += 1  # voids this node's scheduled outcome
                    attempt = service_start[node]
                    service_start[node] = None
                    if attempt is not None:
                        start_t, att_speed, att_work = attempt
                        work_wasted += (now - start_t) * att_speed
                        if inj.on_crash == "requeue" and getattr(
                            self.policy, "resume", False
                        ):
                            # the destroyed attempt's partial service is
                            # lost, but credit from earlier kills is kept
                            queues[node][0].remaining = att_work
                    if inj.on_crash == "drop" and queues[node]:
                        for job in queues[node]:
                            lost_to_failure += 1
                            if job_log is not None:
                                job_log.append(
                                    (job.job_id, "lost_to_failure", node, job.kills)
                                )
                        queues[node].clear()
                        note_queue(now, node)
                elif directive == "recover":
                    if queues[node]:
                        start_service(now, node)
            else:  # pragma: no cover
                raise AssertionError(kind)

        duration = max(t_end - warmup, 1e-12)
        if rec.enabled:
            rec.record_span(
                "sim.run",
                t_wall0,
                time.perf_counter() - t_wall0,
                t_end=t_end,
                warmup=warmup,
                nodes=n_nodes,
            )
            rec.add("sim.offered", offered)
            rec.add("sim.completed", completed)
            rec.add("sim.killed", killed)
            rec.add("sim.forwarded", forwarded)
            rec.add("sim.dropped.arrival", dropped_arrival)
            rec.add("sim.dropped.forward", dropped_forward)
            if inj is not None:
                rec.add("sim.lost_to_failure", lost_to_failure)
                rec.gauge("sim.work_wasted", work_wasted)
            for i, avg in enumerate(q_avg):
                rec.gauge("sim.mean_queue_length", avg.mean(t_end), node=i)
        return SimulationResult(
            duration=duration,
            offered=offered,
            completed=completed,
            dropped_arrival=dropped_arrival,
            dropped_forward=dropped_forward,
            mean_queue_lengths=tuple(a.mean(t_end) for a in q_avg),
            response_times=np.asarray(responses),
            slowdowns=np.asarray(slowdowns),
            demands=np.asarray(demands),
            jobs=job_log,
            lost_to_failure=lost_to_failure,
            work_wasted=work_wasted,
            still_queued=sum(len(q) for q in queues),
        )


def replicate(
    make_simulation,
    n_reps: int = 5,
    t_end: float = 5000.0,
    warmup: float = 500.0,
):
    """Run ``n_reps`` independent replications.

    ``make_simulation(seed)`` builds a fresh :class:`Simulation`.  Returns
    a dict of arrays keyed by metric, plus convenience means.  Each
    replication runs inside a ``sim.replication`` span, so a recorded
    replication study shows per-replication wall times.
    """
    rec = obs.recorder()
    metrics = {
        "throughput": [],
        "mean_jobs": [],
        "mean_response_time": [],
        "mean_slowdown": [],
        "loss_probability": [],
    }
    for rep in range(n_reps):
        with rec.span("sim.replication", rep=rep):
            res = make_simulation(rep).run(t_end, warmup)
        for key in metrics:
            metrics[key].append(getattr(res, key))
    out = {k: np.asarray(v) for k, v in metrics.items()}
    out["means"] = {k: float(v.mean()) for k, v in out.items()}
    return out


def replicate_until(
    make_simulation,
    metric: str = "mean_response_time",
    *,
    rel_half_width: float = 0.05,
    confidence: float = 0.95,
    min_reps: int = 4,
    max_reps: int = 64,
    t_end: float = 5000.0,
    warmup: float = 500.0,
):
    """Run independent replications until the metric's confidence interval
    is tight enough.

    Returns ``(mean, half_width, n_reps)`` where ``half_width`` is the
    t-based CI half-width over replications.  Replication-based CIs are
    statistically cleaner than batch means (true independence) at the cost
    of re-paying the warm-up per replication; this is the recommended way
    to produce publishable simulation numbers from this package.
    """
    from scipy.stats import t as t_dist

    if not (0 < rel_half_width):
        raise ValueError("rel_half_width must be positive")
    if min_reps < 2:
        raise ValueError("need at least two replications for a CI")
    rec = obs.recorder()
    values: list = []
    for rep in range(max_reps):
        with rec.span("sim.replication", rep=rep):
            res = make_simulation(rep).run(t_end, warmup)
        values.append(float(getattr(res, metric)))
        if len(values) < min_reps:
            continue
        arr = np.asarray(values)
        mean = float(arr.mean())
        se = float(arr.std(ddof=1)) / np.sqrt(len(arr))
        half = float(t_dist.ppf(0.5 + confidence / 2, len(arr) - 1)) * se
        if mean != 0 and half / abs(mean) <= rel_half_width:
            return mean, half, len(values)
    arr = np.asarray(values)
    mean = float(arr.mean())
    se = float(arr.std(ddof=1)) / np.sqrt(len(arr))
    half = float(t_dist.ppf(0.5 + confidence / 2, len(arr) - 1)) * se
    return mean, half, len(values)
