"""The online dispatcher runtime: policies from ``sim`` run as services.

:class:`DispatchRuntime` executes an allocation policy
(:class:`~repro.sim.policies.TagsPolicy`, random, round-robin, JSQ --
anything answering ``route``/``timeout``/``forward``) over bounded FCFS
nodes as a set of cooperating asyncio tasks:

* one **load-generator task** pulls ``(gap, demand)`` pairs from a
  :mod:`~repro.serve.loadgen` source, sleeps the gap on the runtime's
  :class:`~repro.serve.clock.Clock`, and admits the arrival (routing via
  the policy; **drop-on-full** at the routed node);
* one **server task per node** serves its queue head FCFS, racing the
  policy's timeout sampler against the job's remaining wall time exactly
  as ``sim.runner`` does: on a timeout the job is killed and forwarded
  to ``policy.forward(node)`` (**drop-after-timeout** when that node is
  full or absent), with restart-from-scratch or resume semantics chosen
  by the policy's ``resume`` flag;
* optionally a **controller task** (:mod:`~repro.serve.controller`)
  re-tunes the timeout from live observations.

Under a :class:`~repro.serve.clock.VirtualClock` the runtime is a
deterministic discrete-event program: ``tests/serve/test_equivalence.py``
pins its per-job outcomes bit-for-bit to ``sim.runner.Simulation`` on a
shared trace.  Under a :class:`~repro.serve.clock.WallClock` the same
code serves in real time.

Instrumentation goes through :mod:`repro.obs` and is gated on
``recorder().enabled`` everywhere, so a disabled recorder costs one
attribute check per event (the CI ``serve`` job benches off vs. on):
per-job ``serve.job`` spans (virtual timestamps), queue-depth gauges,
and end-of-run counters mirroring the simulator's.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.serve.clock import Clock, VirtualClock
from repro.sim.runner import SimulationResult
from repro.sim.stats import TimeAverage

__all__ = ["JobRecord", "DispatchResult", "DispatchRuntime"]


@dataclass
class JobRecord:
    """One job's life in the runtime (also the queue entry)."""

    job_id: int
    arrival_time: float
    demand: float
    remaining: float | None = None
    kills: int = 0
    outcome: str | None = None  # completed / dropped_arrival / dropped_forward
    node: int | None = None
    finish_time: float | None = None

    def __post_init__(self) -> None:
        if self.remaining is None:
            self.remaining = self.demand

    def outcome_tuple(self) -> tuple:
        """``(outcome, node, kills)`` -- the equivalence-test currency."""
        return (self.outcome, self.node, self.kills)


@dataclass
class DispatchResult(SimulationResult):
    """A :class:`~repro.sim.runner.SimulationResult` plus runtime extras.

    ``jobs`` holds :class:`JobRecord` objects (richer than the
    simulator's tuples); :meth:`job_outcomes` normalises both to the
    same ``job_id -> (outcome, node, kills)`` mapping.
    """

    killed: int = 0
    forwarded: int = 0

    def job_outcomes(self) -> dict:
        """``job_id -> (outcome, node, kills)`` for finished jobs."""
        if self.jobs is None:
            raise ValueError("run with record_jobs=True to keep job logs")
        return {
            j.job_id: j.outcome_tuple()
            for j in self.jobs
            if j.outcome is not None
        }


class DispatchRuntime:
    """Online dispatcher over bounded per-node queues.

    Parameters mirror :class:`~repro.sim.runner.Simulation` where they
    overlap (``policy``, ``capacities``, ``speeds``, ``seed``/``rng``);
    the workload comes from a load generator instead of separate
    arrival/demand objects, and ``clock`` selects virtual or wall time.
    """

    def __init__(
        self,
        loadgen,
        policy,
        capacities,
        *,
        clock: "Clock | None" = None,
        speeds=None,
        seed: int = 0,
        rng: "np.random.Generator | None" = None,
        controller=None,
        record_jobs: bool = False,
        gauge_interval: float = 10.0,
    ) -> None:
        self.loadgen = loadgen
        self.policy = policy
        self.capacities = tuple(int(k) for k in capacities)
        if len(self.capacities) != policy.n_nodes():
            raise ValueError(
                f"policy expects {policy.n_nodes()} nodes, got "
                f"{len(self.capacities)} capacities"
            )
        if min(self.capacities) < 1:
            raise ValueError("capacities must be >= 1")
        if speeds is None:
            self.speeds = (1.0,) * len(self.capacities)
        else:
            self.speeds = tuple(float(s) for s in speeds)
            if len(self.speeds) != len(self.capacities):
                raise ValueError("need one speed per node")
            if min(self.speeds) <= 0:
                raise ValueError("speeds must be positive")
        self.clock = clock if clock is not None else VirtualClock()
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.controller = controller
        self.record_jobs = record_jobs
        if gauge_interval <= 0:
            raise ValueError("gauge_interval must be positive")
        self.gauge_interval = float(gauge_interval)
        self._rec = obs.recorder()  # re-resolved at each arun()

        n = len(self.capacities)
        self.queues: "list[deque]" = [deque() for _ in range(n)]
        self._wake = [None] * n  # asyncio.Events, created in arun
        self.q_avg = [TimeAverage() for _ in range(n)]
        self.offered = 0
        self.completed = 0
        self.killed = 0
        self.forwarded = 0
        self.dropped_arrival = 0
        self.dropped_forward = 0
        self.responses: list = []
        self.slowdowns: list = []
        self.demands: list = []
        self.jobs: "list[JobRecord]" = []
        self._next_id = 0
        self._scheduled: list = []  # (delay, fn) buffered before arun
        self._running = False
        # sliding-window observations for the controller (pruned there)
        self.window_arrivals: deque = deque()
        self.window_completions: deque = deque()  # (time, demand)

    # -- live control ---------------------------------------------------
    def set_timeout(self, node: int, sampler) -> None:
        """Swap the policy's timeout sampler for ``node``.

        Takes effect at the next service start on that node (jobs whose
        race is already scheduled keep the old draw), which is exactly
        the semantics an operator changing a kill-timeout gets.
        """
        timeouts = getattr(self.policy, "timeouts", None)
        if timeouts is None or node >= len(timeouts):
            raise ValueError(f"policy has no timeout at node {node}")
        new = list(timeouts)
        new[node] = sampler
        self.policy.timeouts = tuple(new)

    def current_timeout(self, node: int = 0):
        return self.policy.timeout(node)

    def schedule(self, delay: float, fn) -> None:
        """Run ``fn()`` at model time ``now + delay`` (e.g. a load shift).

        Callable before the run starts (buffered) or from inside a task
        while the runtime is live.
        """
        if self._running:
            asyncio.get_running_loop().create_task(self._fire_later(delay, fn))
        else:
            self._scheduled.append((delay, fn))

    async def _fire_later(self, delay: float, fn) -> None:
        await self.clock.sleep(delay)
        fn()

    def queue_lengths(self) -> list:
        return [len(q) for q in self.queues]

    # -- event handling -------------------------------------------------
    def _note_queue(self, now: float, node: int) -> None:
        self.q_avg[node].update(now, len(self.queues[node]))

    async def _sample_depths(self, rec, interval: float) -> None:
        """Periodic ``serve.queue_depth`` gauges.

        Depth is sampled on a timer rather than at every queue event:
        per-event gauges would dominate the dispatch cost (the CI gate
        holds enabled recording to <= 10%), and the exact time-averaged
        depths are kept in ``q_avg`` regardless.
        """
        while True:
            await self.clock.sleep(interval, daemon=True)
            for i, q in enumerate(self.queues):
                rec.gauge("serve.queue_depth", len(q), node=i)

    def _finish(self, job: JobRecord, now: float, outcome: str, node: int) -> None:
        job.outcome = outcome
        job.node = node
        job.finish_time = now
        rec = self._rec
        if rec.enabled:
            rec.record_span(
                "serve.job",
                job.arrival_time,
                now - job.arrival_time,
                job=job.job_id,
                outcome=outcome,
                node=node,
                kills=job.kills,
            )

    def _admit(self, now: float, demand: float) -> None:
        self.offered += 1
        job = JobRecord(self._next_id, now, demand)
        self._next_id += 1
        if self.record_jobs:
            self.jobs.append(job)
        if self.controller is not None:
            self.window_arrivals.append(now)
        target = self.policy.route(self.queue_lengths(), self.rng)
        if len(self.queues[target]) >= self.capacities[target]:
            self.dropped_arrival += 1
            self._finish(job, now, "dropped_arrival", target)
            return
        self.queues[target].append(job)
        self._note_queue(now, target)
        self._wake[target].set()

    async def _generate(self) -> None:
        while True:
            nxt = self.loadgen.next_job(self.rng)
            if nxt is None:
                return  # finite trace exhausted
            gap, demand = nxt
            await self.clock.sleep(gap)
            self._admit(self.clock.now(), demand)

    async def _serve_node(self, node: int) -> None:
        queue = self.queues[node]
        wake = self._wake[node]
        resume = getattr(self.policy, "resume", False)
        while True:
            if not queue:
                wake.clear()
                await wake.wait()
                continue
            job = queue[0]
            work = job.remaining if resume else job.demand
            wall = work / self.speeds[node]
            sampler = self.policy.timeout(node)
            tau = None if sampler is None else sampler.sample(self.rng)
            if tau is None or wall <= tau:
                await self.clock.sleep(wall)
                now = self.clock.now()
                queue.popleft()
                self._note_queue(now, node)
                self.completed += 1
                self.responses.append(now - job.arrival_time)
                self.slowdowns.append((now - job.arrival_time) / job.demand)
                self.demands.append(job.demand)
                if self.controller is not None:
                    self.window_completions.append((now, job.demand))
                self._finish(job, now, "completed", node)
            else:
                if resume:
                    job.remaining = work - tau * self.speeds[node]
                await self.clock.sleep(tau)
                now = self.clock.now()
                queue.popleft()
                self._note_queue(now, node)
                self.killed += 1
                job.kills += 1
                target = self.policy.forward(node)
                if (
                    target is None
                    or len(self.queues[target]) >= self.capacities[target]
                ):
                    self.dropped_forward += 1
                    self._finish(job, now, "dropped_forward", node)
                else:
                    self.forwarded += 1
                    self.queues[target].append(job)
                    self._note_queue(now, target)
                    self._wake[target].set()

    def _reset_measurements(self, now: float) -> None:
        """Warm-up boundary: zero counters, keep jobs in flight."""
        self.offered = self.completed = 0
        self.killed = self.forwarded = 0
        self.dropped_arrival = self.dropped_forward = 0
        self.responses.clear()
        self.slowdowns.clear()
        self.demands.clear()
        for node, avg in enumerate(self.q_avg):
            avg.reset(now, len(self.queues[node]))

    # -- running --------------------------------------------------------
    async def arun(self, t_end: float, warmup: float = 0.0) -> DispatchResult:
        """Run until model time ``t_end``; measure after ``warmup``."""
        if t_end <= warmup:
            raise ValueError("t_end must exceed warmup")
        if self._running:
            raise RuntimeError("runtime is already running")
        self._running = True
        # one recorder lookup per run: every per-job site reads the
        # cached reference (swapping recorders mid-run is unsupported)
        rec = self._rec = obs.recorder()
        t_wall0 = time.perf_counter() if rec.enabled else 0.0
        n = len(self.capacities)
        self._wake = [asyncio.Event() for _ in range(n)]
        tasks = [asyncio.ensure_future(self._generate())]
        if rec.enabled:
            tasks.append(
                asyncio.ensure_future(
                    self._sample_depths(rec, self.gauge_interval)
                )
            )
        tasks += [
            asyncio.ensure_future(self._serve_node(i)) for i in range(n)
        ]
        if warmup > 0:
            tasks.append(
                asyncio.ensure_future(
                    self._fire_later(
                        warmup, lambda: self._reset_measurements(warmup)
                    )
                )
            )
        if self.controller is not None:
            self.controller.bind(self)
            tasks.append(asyncio.ensure_future(self.controller.run()))
        for delay, fn in self._scheduled:
            tasks.append(asyncio.ensure_future(self._fire_later(delay, fn)))
        self._scheduled = []
        try:
            await self.clock.run_until(t_end)
        finally:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            self._running = False

        duration = max(t_end - warmup, 1e-12)
        if rec.enabled:
            rec.record_span(
                "serve.run",
                t_wall0,
                time.perf_counter() - t_wall0,
                t_end=t_end,
                warmup=warmup,
                nodes=n,
            )
            rec.add("serve.offered", self.offered)
            rec.add("serve.completed", self.completed)
            rec.add("serve.killed", self.killed)
            rec.add("serve.forwarded", self.forwarded)
            rec.add("serve.dropped.arrival", self.dropped_arrival)
            rec.add("serve.dropped.forward", self.dropped_forward)
            for i, avg in enumerate(self.q_avg):
                rec.gauge("serve.mean_queue_length", avg.mean(t_end), node=i)
        return DispatchResult(
            duration=duration,
            offered=self.offered,
            completed=self.completed,
            dropped_arrival=self.dropped_arrival,
            dropped_forward=self.dropped_forward,
            mean_queue_lengths=tuple(a.mean(t_end) for a in self.q_avg),
            response_times=np.asarray(self.responses),
            slowdowns=np.asarray(self.slowdowns),
            demands=np.asarray(self.demands),
            killed=self.killed,
            forwarded=self.forwarded,
            jobs=self.jobs if self.record_jobs else None,
        )

    def run(self, t_end: float, warmup: float = 0.0) -> DispatchResult:
        """Synchronous convenience wrapper around :meth:`arun`."""
        return asyncio.run(self.arun(t_end, warmup))
