"""The online dispatcher runtime: policies from ``sim`` run as services.

:class:`DispatchRuntime` executes an allocation policy
(:class:`~repro.sim.policies.TagsPolicy`, random, round-robin, JSQ --
anything answering ``route``/``timeout``/``forward``) over bounded FCFS
nodes as a set of cooperating asyncio tasks:

* one **load-generator task** pulls ``(gap, demand)`` pairs from a
  :mod:`~repro.serve.loadgen` source, sleeps the gap on the runtime's
  :class:`~repro.serve.clock.Clock`, and admits the arrival (routing via
  the policy; **drop-on-full** at the routed node);
* one **server task per node** serves its queue head FCFS, racing the
  policy's timeout sampler against the job's remaining wall time exactly
  as ``sim.runner`` does: on a timeout the job is killed and forwarded
  to ``policy.forward(node)`` (**drop-after-timeout** when that node is
  full or absent), with restart-from-scratch or resume semantics chosen
  by the policy's ``resume`` flag;
* optionally a **controller task** (:mod:`~repro.serve.controller`)
  re-tunes the timeout from live observations.

Under a :class:`~repro.serve.clock.VirtualClock` the runtime is a
deterministic discrete-event program: ``tests/serve/test_equivalence.py``
pins its per-job outcomes bit-for-bit to ``sim.runner.Simulation`` on a
shared trace.  Under a :class:`~repro.serve.clock.WallClock` the same
code serves in real time.

Instrumentation goes through :mod:`repro.obs` and is gated on
``recorder().enabled`` everywhere, so a disabled recorder costs one
attribute check per event (the CI ``serve`` job benches off vs. on):
per-job ``serve.job`` spans (virtual timestamps), queue-depth gauges,
and end-of-run counters mirroring the simulator's.

**Faults and resilience** (all off by default; the defaults leave the
no-fault path bit-for-bit unchanged):

* ``faults=`` replays a :class:`~repro.faults.FaultPlan` /
  :class:`~repro.faults.FaultInjector` -- the same object the simulator
  accepts -- through a fault-driver task.  A crash cancels the node's
  in-flight service race (per-node epochs mark the cancellation, as in
  the simulator's stale-event skip), wastes the attempt's work, and
  either holds the queue for recovery (``on_crash="requeue"``) or sheds
  it (``"drop"``); arrivals and forwards to a down node are shed as
  ``lost_to_failure``.
* ``supervisor=`` attaches a :class:`~repro.serve.supervisor.Supervisor`
  whose health-check/backoff loop performs restarts after a fault
  clears, so measured MTTR includes detection latency.
* ``forward_retries=`` / ``breaker=`` guard node-2 forwards with
  jittered-exponential-backoff retries and a
  :class:`~repro.faults.CircuitBreaker`; jobs whose forward ultimately
  fails are ``dropped_forward`` (full target) or ``lost_to_failure``
  (down target), never leaked.

Retry backoff and supervisor jitter draw from private RNG streams, so
enabling them never perturbs the workload's draw sequence.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.faults.injector import FaultInjector
from repro.serve.clock import Clock, VirtualClock
from repro.sim.runner import SimulationResult
from repro.sim.stats import TimeAverage

__all__ = ["JobRecord", "DispatchResult", "DispatchRuntime"]


@dataclass
class JobRecord:
    """One job's life in the runtime (also the queue entry)."""

    job_id: int
    arrival_time: float
    demand: float
    remaining: float | None = None
    kills: int = 0
    outcome: str | None = None  # completed / dropped_arrival / dropped_forward
    node: int | None = None
    finish_time: float | None = None

    def __post_init__(self) -> None:
        if self.remaining is None:
            self.remaining = self.demand

    def outcome_tuple(self) -> tuple:
        """``(outcome, node, kills)`` -- the equivalence-test currency."""
        return (self.outcome, self.node, self.kills)


@dataclass
class DispatchResult(SimulationResult):
    """A :class:`~repro.sim.runner.SimulationResult` plus runtime extras.

    ``jobs`` holds :class:`JobRecord` objects (richer than the
    simulator's tuples); :meth:`job_outcomes` normalises both to the
    same ``job_id -> (outcome, node, kills)`` mapping.
    """

    killed: int = 0
    forwarded: int = 0

    def job_outcomes(self) -> dict:
        """``job_id -> (outcome, node, kills)`` for finished jobs."""
        if self.jobs is None:
            raise ValueError("run with record_jobs=True to keep job logs")
        return {
            j.job_id: j.outcome_tuple()
            for j in self.jobs
            if j.outcome is not None
        }


class DispatchRuntime:
    """Online dispatcher over bounded per-node queues.

    Parameters mirror :class:`~repro.sim.runner.Simulation` where they
    overlap (``policy``, ``capacities``, ``speeds``, ``seed``/``rng``);
    the workload comes from a load generator instead of separate
    arrival/demand objects, and ``clock`` selects virtual or wall time.
    """

    def __init__(
        self,
        loadgen,
        policy,
        capacities,
        *,
        clock: "Clock | None" = None,
        speeds=None,
        seed: int = 0,
        rng: "np.random.Generator | None" = None,
        controller=None,
        record_jobs: bool = False,
        gauge_interval: float = 10.0,
        faults=None,
        supervisor=None,
        forward_retries: int = 0,
        retry_backoff: float = 0.5,
        retry_jitter: float = 0.1,
        breaker=None,
    ) -> None:
        self.loadgen = loadgen
        self.policy = policy
        self.capacities = tuple(int(k) for k in capacities)
        if len(self.capacities) != policy.n_nodes():
            raise ValueError(
                f"policy expects {policy.n_nodes()} nodes, got "
                f"{len(self.capacities)} capacities"
            )
        if min(self.capacities) < 1:
            raise ValueError("capacities must be >= 1")
        if speeds is None:
            self.speeds = (1.0,) * len(self.capacities)
        else:
            self.speeds = tuple(float(s) for s in speeds)
            if len(self.speeds) != len(self.capacities):
                raise ValueError("need one speed per node")
            if min(self.speeds) <= 0:
                raise ValueError("speeds must be positive")
        self.clock = clock if clock is not None else VirtualClock()
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.controller = controller
        self.record_jobs = record_jobs
        if gauge_interval <= 0:
            raise ValueError("gauge_interval must be positive")
        self.gauge_interval = float(gauge_interval)
        if faults is None or isinstance(faults, FaultInjector):
            self.faults = faults
        else:
            self.faults = FaultInjector(faults)
        self.supervisor = supervisor
        if supervisor is not None:
            if self.faults is None:
                raise ValueError("a supervisor needs faults to supervise")
            self.faults.supervised = True
        if forward_retries < 0:
            raise ValueError("forward_retries must be >= 0")
        if retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        if not 0 <= retry_jitter < 1:
            raise ValueError("retry_jitter must be in [0, 1)")
        self.forward_retries = int(forward_retries)
        self.retry_backoff = float(retry_backoff)
        self.retry_jitter = float(retry_jitter)
        self.breaker = breaker
        # private stream: retry jitter must not perturb the workload rng
        self._resilience_rng = np.random.default_rng([seed, 0x7E5])
        self._rec = obs.recorder()  # re-resolved at each arun()

        n = len(self.capacities)
        self.queues: "list[deque]" = [deque() for _ in range(n)]
        self._wake = [None] * n  # asyncio.Events, created in arun
        self.q_avg = [TimeAverage() for _ in range(n)]
        self.offered = 0
        self.completed = 0
        self.killed = 0
        self.forwarded = 0
        self.dropped_arrival = 0
        self.dropped_forward = 0
        self.lost_to_failure = 0
        self.work_wasted = 0.0
        self._epoch = [0] * n
        self._service_start: list = [None] * n  # (t0, speed, work) per attempt
        self._sleep_fut: list = [None] * n  # cancellable service race
        self._up_evt: list = [None] * n  # asyncio.Events, created in arun
        self._sup_wake = None  # supervisor wake event, created in arun
        self._inflight_forwards = 0  # jobs mid-retry, owned by no queue
        self.responses: list = []
        self.slowdowns: list = []
        self.demands: list = []
        self.jobs: "list[JobRecord]" = []
        self._next_id = 0
        self._scheduled: list = []  # (delay, fn) buffered before arun
        self._running = False
        # sliding-window observations for the controller (pruned there)
        self.window_arrivals: deque = deque()
        self.window_completions: deque = deque()  # (time, demand)

    # -- live control ---------------------------------------------------
    def set_timeout(self, node: int, sampler) -> None:
        """Swap the policy's timeout sampler for ``node``.

        Takes effect at the next service start on that node (jobs whose
        race is already scheduled keep the old draw), which is exactly
        the semantics an operator changing a kill-timeout gets.
        """
        timeouts = getattr(self.policy, "timeouts", None)
        if timeouts is None or node >= len(timeouts):
            raise ValueError(f"policy has no timeout at node {node}")
        new = list(timeouts)
        new[node] = sampler
        self.policy.timeouts = tuple(new)

    def current_timeout(self, node: int = 0):
        return self.policy.timeout(node)

    def schedule(self, delay: float, fn) -> None:
        """Run ``fn()`` at model time ``now + delay`` (e.g. a load shift).

        Callable before the run starts (buffered) or from inside a task
        while the runtime is live.
        """
        if self._running:
            asyncio.get_running_loop().create_task(self._fire_later(delay, fn))
        else:
            self._scheduled.append((delay, fn))

    async def _fire_later(self, delay: float, fn) -> None:
        await self.clock.sleep(delay)
        fn()

    def queue_lengths(self) -> list:
        return [len(q) for q in self.queues]

    # -- event handling -------------------------------------------------
    def _note_queue(self, now: float, node: int) -> None:
        self.q_avg[node].update(now, len(self.queues[node]))

    async def _sample_depths(self, rec, interval: float) -> None:
        """Periodic ``serve.queue_depth`` gauges.

        Depth is sampled on a timer rather than at every queue event:
        per-event gauges would dominate the dispatch cost (the CI gate
        holds enabled recording to <= 10%), and the exact time-averaged
        depths are kept in ``q_avg`` regardless.
        """
        while True:
            await self.clock.sleep(interval, daemon=True)
            for i, q in enumerate(self.queues):
                rec.gauge("serve.queue_depth", len(q), node=i)

    def _finish(self, job: JobRecord, now: float, outcome: str, node: int) -> None:
        job.outcome = outcome
        job.node = node
        job.finish_time = now
        rec = self._rec
        if rec.enabled:
            rec.record_span(
                "serve.job",
                job.arrival_time,
                now - job.arrival_time,
                job=job.job_id,
                outcome=outcome,
                node=node,
                kills=job.kills,
            )

    def _admit(self, now: float, demand: float) -> None:
        self.offered += 1
        job = JobRecord(self._next_id, now, demand)
        self._next_id += 1
        if self.record_jobs:
            self.jobs.append(job)
        if self.controller is not None:
            self.window_arrivals.append(now)
        target = self.policy.route(self.queue_lengths(), self.rng)
        if self.faults is not None and not self.faults.up[target]:
            # a down node accepts nothing; the arrival is shed
            self.lost_to_failure += 1
            self._finish(job, now, "lost_to_failure", target)
            return
        if len(self.queues[target]) >= self.capacities[target]:
            self.dropped_arrival += 1
            self._finish(job, now, "dropped_arrival", target)
            return
        self.queues[target].append(job)
        self._note_queue(now, target)
        self._wake[target].set()

    async def _generate(self) -> None:
        inj = self.faults
        while True:
            nxt = self.loadgen.next_job(self.rng)
            if nxt is None:
                return  # finite trace exhausted
            gap, demand = nxt
            if inj is not None and inj.arrival_factor != 1.0:
                gap = gap / inj.arrival_factor
            await self.clock.sleep(gap)
            self._admit(self.clock.now(), demand)

    async def _service_sleep(self, node: int, delay: float) -> bool:
        """Sleep the race duration; False when a crash voided the race.

        With faults on, the sleep's future is parked where the fault
        driver can cancel it; a bumped epoch identifies the cancellation
        as a crash (anything else is runtime teardown and re-raises).
        """
        if self.faults is None:
            await self.clock.sleep(delay)
            return True
        e0 = self._epoch[node]
        fut = asyncio.ensure_future(self.clock.sleep(delay))
        self._sleep_fut[node] = fut
        try:
            await fut
            return True
        except asyncio.CancelledError:
            if self._epoch[node] != e0:
                return False
            raise
        finally:
            self._sleep_fut[node] = None

    async def _serve_node(self, node: int) -> None:
        queue = self.queues[node]
        wake = self._wake[node]
        inj = self.faults
        resume = getattr(self.policy, "resume", False)
        while True:
            if inj is not None and not inj.up[node]:
                await self._up_evt[node].wait()
                continue
            if not queue:
                wake.clear()
                await wake.wait()
                continue
            job = queue[0]
            work = job.remaining if resume else job.demand
            speed = self.speeds[node]
            if inj is not None:
                speed = speed * inj.speed_factor[node]
            wall = work / speed
            sampler = self.policy.timeout(node)
            if (
                sampler is not None
                and inj is not None
                and inj.suppress_timeout(self.policy.forward(node))
            ):
                sampler = None  # degraded single-node: serve to exhaustion
            tau = None if sampler is None else sampler.sample(self.rng)
            if inj is not None:
                self._service_start[node] = (self.clock.now(), speed, work)
            if tau is None or wall <= tau:
                if not await self._service_sleep(node, wall):
                    continue  # crash voided the race
                now = self.clock.now()
                self._service_start[node] = None
                queue.popleft()
                self._note_queue(now, node)
                self.completed += 1
                self.responses.append(now - job.arrival_time)
                self.slowdowns.append((now - job.arrival_time) / job.demand)
                self.demands.append(job.demand)
                if self.controller is not None:
                    self.window_completions.append((now, job.demand))
                self._finish(job, now, "completed", node)
            else:
                if resume:
                    job.remaining = work - tau * speed
                if not await self._service_sleep(node, tau):
                    continue  # crash voided the race
                now = self.clock.now()
                self._service_start[node] = None
                queue.popleft()
                self._note_queue(now, node)
                self.killed += 1
                job.kills += 1
                # counted until _forward resolves the job; teardown
                # cancellation leaves it counted, so a job asleep in a
                # retry backoff at t_end still shows up in still_queued
                self._inflight_forwards += 1
                await self._forward(job, node)
                self._inflight_forwards -= 1

    async def _forward(self, job: JobRecord, node: int) -> None:
        """Place a killed job at the forward target.

        The default configuration (no retries, no breaker, no faults)
        reproduces the simulator's drop-after-timeout exactly.  With
        resilience on, each attempt must pass the breaker and find the
        target up with room; failed attempts back off exponentially with
        jitter.  A job whose attempts are exhausted is ``lost_to_failure``
        when the target is down, ``dropped_forward`` otherwise.
        """
        target = self.policy.forward(node)
        if target is None:
            self.dropped_forward += 1
            self._finish(job, self.clock.now(), "dropped_forward", node)
            return
        inj = self.faults
        breaker = self.breaker
        attempt = 0
        while True:
            now = self.clock.now()
            if breaker is None or breaker.allow(now):
                if (inj is None or inj.up[target]) and len(
                    self.queues[target]
                ) < self.capacities[target]:
                    if breaker is not None:
                        breaker.record_success(now)
                    self.forwarded += 1
                    self.queues[target].append(job)
                    self._note_queue(now, target)
                    self._wake[target].set()
                    return
                if breaker is not None:
                    breaker.record_failure(now)
            if attempt >= self.forward_retries:
                break
            attempt += 1
            delay = self.retry_backoff * (2.0 ** (attempt - 1))
            if self.retry_jitter:
                delay *= 1.0 + self.retry_jitter * float(
                    self._resilience_rng.uniform(-1.0, 1.0)
                )
            await self.clock.sleep(delay)
        now = self.clock.now()
        if inj is not None and not inj.up[target]:
            self.lost_to_failure += 1
            self._finish(job, now, "lost_to_failure", node)
        else:
            self.dropped_forward += 1
            self._finish(job, now, "dropped_forward", node)

    # -- fault handling -------------------------------------------------
    async def _drive_faults(self) -> None:
        """Replay the injector's plan on the runtime's clock."""
        inj = self.faults
        for ev in inj.events():
            delay = ev.time - self.clock.now()
            if delay > 0:
                await self.clock.sleep(delay)
            self._apply_fault(ev, self.clock.now())

    def _apply_fault(self, ev, now: float) -> None:
        inj = self.faults
        directive = inj.apply(ev, now)
        node = ev.node
        rec = self._rec
        if directive == "crash":
            if rec.enabled:
                rec.add("serve.fault.crash")
            self._epoch[node] += 1  # voids this node's in-flight race
            self._up_evt[node].clear()
            attempt = self._service_start[node]
            self._service_start[node] = None
            if attempt is not None:
                start_t, att_speed, att_work = attempt
                self.work_wasted += (now - start_t) * att_speed
                if inj.on_crash == "requeue" and getattr(
                    self.policy, "resume", False
                ):
                    # the destroyed attempt's partial service is lost,
                    # but credit from earlier kills is kept
                    self.queues[node][0].remaining = att_work
            fut = self._sleep_fut[node]
            if fut is not None and not fut.done():
                fut.cancel()
            if inj.on_crash == "drop" and self.queues[node]:
                for job in self.queues[node]:
                    self.lost_to_failure += 1
                    self._finish(job, now, "lost_to_failure", node)
                self.queues[node].clear()
                self._note_queue(now, node)
            if self.supervisor is not None:
                self._sup_wake.set()
        elif directive == "recover":
            self._on_restart(node, now)

    def _on_restart(self, node: int, now: float) -> None:
        """Bring a node back into service (recovery or supervisor restart)."""
        rec = self._rec
        if rec.enabled:
            rec.add("serve.fault.restart")
        self._up_evt[node].set()

    def _reset_measurements(self, now: float) -> None:
        """Warm-up boundary: zero counters, keep jobs in flight."""
        self.offered = self.completed = 0
        self.killed = self.forwarded = 0
        self.dropped_arrival = self.dropped_forward = 0
        self.lost_to_failure = 0
        self.work_wasted = 0.0
        self.responses.clear()
        self.slowdowns.clear()
        self.demands.clear()
        for node, avg in enumerate(self.q_avg):
            avg.reset(now, len(self.queues[node]))

    # -- running --------------------------------------------------------
    async def arun(self, t_end: float, warmup: float = 0.0) -> DispatchResult:
        """Run until model time ``t_end``; measure after ``warmup``."""
        if t_end <= warmup:
            raise ValueError("t_end must exceed warmup")
        if self._running:
            raise RuntimeError("runtime is already running")
        self._running = True
        # one recorder lookup per run: every per-job site reads the
        # cached reference (swapping recorders mid-run is unsupported)
        rec = self._rec = obs.recorder()
        t_wall0 = time.perf_counter() if rec.enabled else 0.0
        n = len(self.capacities)
        self._wake = [asyncio.Event() for _ in range(n)]
        if self.faults is not None:
            self.faults.reset(n)
            self._epoch = [0] * n
            self._service_start = [None] * n
            self._sleep_fut = [None] * n
            self._up_evt = [asyncio.Event() for _ in range(n)]
            for evt in self._up_evt:
                evt.set()
            self._sup_wake = asyncio.Event()
        tasks = [asyncio.ensure_future(self._generate())]
        if rec.enabled:
            tasks.append(
                asyncio.ensure_future(
                    self._sample_depths(rec, self.gauge_interval)
                )
            )
        tasks += [
            asyncio.ensure_future(self._serve_node(i)) for i in range(n)
        ]
        if warmup > 0:
            tasks.append(
                asyncio.ensure_future(
                    self._fire_later(
                        warmup, lambda: self._reset_measurements(warmup)
                    )
                )
            )
        if self.faults is not None:
            tasks.append(asyncio.ensure_future(self._drive_faults()))
        if self.supervisor is not None:
            self.supervisor.bind(self)
            tasks.append(asyncio.ensure_future(self.supervisor.run()))
        if self.controller is not None:
            self.controller.bind(self)
            tasks.append(asyncio.ensure_future(self.controller.run()))
        for delay, fn in self._scheduled:
            tasks.append(asyncio.ensure_future(self._fire_later(delay, fn)))
        self._scheduled = []
        try:
            await self.clock.run_until(t_end)
        finally:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            self._running = False

        duration = max(t_end - warmup, 1e-12)
        if rec.enabled:
            rec.record_span(
                "serve.run",
                t_wall0,
                time.perf_counter() - t_wall0,
                t_end=t_end,
                warmup=warmup,
                nodes=n,
            )
            rec.add("serve.offered", self.offered)
            rec.add("serve.completed", self.completed)
            rec.add("serve.killed", self.killed)
            rec.add("serve.forwarded", self.forwarded)
            rec.add("serve.dropped.arrival", self.dropped_arrival)
            rec.add("serve.dropped.forward", self.dropped_forward)
            if self.faults is not None:
                rec.add("serve.lost_to_failure", self.lost_to_failure)
                rec.gauge("serve.work_wasted", self.work_wasted)
            for i, avg in enumerate(self.q_avg):
                rec.gauge("serve.mean_queue_length", avg.mean(t_end), node=i)
        return DispatchResult(
            duration=duration,
            offered=self.offered,
            completed=self.completed,
            dropped_arrival=self.dropped_arrival,
            dropped_forward=self.dropped_forward,
            mean_queue_lengths=tuple(a.mean(t_end) for a in self.q_avg),
            response_times=np.asarray(self.responses),
            slowdowns=np.asarray(self.slowdowns),
            demands=np.asarray(self.demands),
            killed=self.killed,
            forwarded=self.forwarded,
            jobs=self.jobs if self.record_jobs else None,
            lost_to_failure=self.lost_to_failure,
            work_wasted=self.work_wasted,
            still_queued=sum(len(q) for q in self.queues)
            + self._inflight_forwards,
        )

    def run(self, t_end: float, warmup: float = 0.0) -> DispatchResult:
        """Synchronous convenience wrapper around :meth:`arun`."""
        return asyncio.run(self.arun(t_end, warmup))
