"""Load generators for the dispatcher runtime.

A load generator answers one question, repeatedly: *when does the next
job arrive and how much work does it bring?* -- via
``next_job(rng) -> (gap, demand)`` (``None`` when a finite source is
exhausted).  Three sources cover the paper's territory:

* :class:`PoissonLoad` -- open-loop Poisson arrivals (the paper's base
  model).  ``rate`` is a plain mutable attribute, so experiments can
  shift the load mid-run (``runtime.schedule(5000, lambda: setattr(load,
  "rate", 10.0))``) and watch the controller chase it.
* :class:`MMPPLoad` -- bursty arrivals through
  :class:`repro.sim.workload.MMPPArrivals` (the Section 7 conjecture).
* :class:`TraceLoad` -- replay of a recorded :class:`Trace`, byte-exact:
  the equivalence tests feed the same trace to the runtime and to
  ``sim.runner.Simulation`` and require identical per-job outcomes.

:class:`Trace` stores **gaps** (inter-arrival times) rather than
absolute times as the ground truth; both replay paths accumulate
``now + gap`` in the same order, so their floating-point arrival
instants agree bit-for-bit.  :class:`TraceArrivals` and
:class:`TraceDemands` adapt a trace to the ``next_interarrival`` /
``sample`` protocols the simulator expects;
:meth:`Trace.from_arrival_times` builds a trace from absolute arrival
instants (rejecting non-monotone sequences).

All sources validate their parameters **up front** and name the
offending field in the ``ValueError``: a zero MMPP rate or a NaN gap
surfacing as a hung load-generator task deep inside an asyncio run is
much harder to diagnose than a constructor error (NaN in particular
slips through naive ``x <= 0`` comparisons, so the checks here insist
on finiteness explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "PoissonLoad",
    "MMPPLoad",
    "TraceLoad",
    "Trace",
    "TraceArrivals",
    "TraceDemands",
]


@dataclass
class PoissonLoad:
    """Poisson arrivals of iid demands; ``rate`` may be changed mid-run."""

    rate: float
    demand: object  # distribution with .sample(size, rng)

    def __post_init__(self) -> None:
        if not np.isfinite(self.rate) or self.rate <= 0:
            raise ValueError(
                f"PoissonLoad.rate must be finite and positive, got {self.rate!r}"
            )
        if not hasattr(self.demand, "sample"):
            raise ValueError(
                "PoissonLoad.demand must be a distribution with .sample(size, rng)"
            )

    def next_job(self, rng: np.random.Generator):
        gap = rng.exponential(1.0 / self.rate)
        return gap, float(self.demand.sample(1, rng)[0])


@dataclass
class MMPPLoad:
    """Bursty arrivals: an ``MMPPArrivals`` process paired with a demand
    distribution."""

    arrivals: object  # MMPPArrivals (or anything with next_interarrival)
    demand: object

    def __post_init__(self) -> None:
        if not hasattr(self.arrivals, "next_interarrival"):
            raise ValueError(
                "MMPPLoad.arrivals must provide next_interarrival(rng)"
            )
        if not hasattr(self.demand, "sample"):
            raise ValueError(
                "MMPPLoad.demand must be a distribution with .sample(size, rng)"
            )

    def next_job(self, rng: np.random.Generator):
        gap = float(self.arrivals.next_interarrival(rng))
        return gap, float(self.demand.sample(1, rng)[0])


@dataclass
class Trace:
    """A finite recorded workload: inter-arrival gaps and demands."""

    gaps: np.ndarray
    demands: np.ndarray

    def __post_init__(self) -> None:
        self.gaps = np.asarray(self.gaps, dtype=float).ravel()
        self.demands = np.asarray(self.demands, dtype=float).ravel()
        if self.gaps.shape != self.demands.shape:
            raise ValueError(
                f"Trace.gaps ({self.gaps.size}) and Trace.demands "
                f"({self.demands.size}) must have one demand per gap"
            )
        if self.gaps.size == 0:
            raise ValueError("Trace.gaps is empty: a trace needs >= 1 job")
        # NaN passes `min() < 0`, so check finiteness explicitly
        if not np.all(np.isfinite(self.gaps)) or self.gaps.min() < 0:
            raise ValueError("Trace.gaps must all be finite and >= 0")
        if not np.all(np.isfinite(self.demands)) or self.demands.min() <= 0:
            raise ValueError("Trace.demands must all be finite and > 0")

    def __len__(self) -> int:
        return int(self.gaps.size)

    @property
    def arrival_times(self) -> np.ndarray:
        return np.cumsum(self.gaps)

    @classmethod
    def from_arrival_times(cls, times, demands) -> "Trace":
        """Build a trace from absolute arrival instants.

        ``times`` must be non-decreasing (a recorded log in arrival
        order); the first gap is the first instant itself, i.e. time
        starts at 0.
        """
        times = np.asarray(times, dtype=float).ravel()
        if times.size == 0:
            raise ValueError("times is empty: a trace needs >= 1 job")
        if not np.all(np.isfinite(times)):
            raise ValueError("times must all be finite")
        gaps = np.diff(times, prepend=0.0)
        if gaps.min() < 0:
            bad = int(np.argmin(gaps))
            raise ValueError(
                f"times must be non-decreasing: times[{bad}]="
                f"{times[bad]!r} < times[{bad - 1}]={times[bad - 1]!r}"
            )
        return cls(gaps, demands)

    @classmethod
    def synthesise(cls, arrivals, demand, n_jobs: int, *, seed: int = 0) -> "Trace":
        """Record ``n_jobs`` from an arrival process + demand distribution
        (e.g. ``PoissonArrivals(5.0)`` + ``HyperExponential.h2(...)``)."""
        if n_jobs < 1:
            raise ValueError("need at least one job")
        rng = np.random.default_rng(seed)
        gaps = np.array(
            [arrivals.next_interarrival(rng) for _ in range(n_jobs)]
        )
        demands = np.asarray(demand.sample(n_jobs, rng), dtype=float)
        return cls(gaps, demands)


@dataclass
class TraceLoad:
    """Replay a :class:`Trace`; returns ``None`` once exhausted."""

    trace: Trace
    _pos: int = field(default=0, repr=False)

    def next_job(self, rng: np.random.Generator):
        i = self._pos
        if i >= len(self.trace):
            return None
        self._pos = i + 1
        return float(self.trace.gaps[i]), float(self.trace.demands[i])

    @property
    def remaining(self) -> int:
        return len(self.trace) - self._pos


@dataclass
class TraceArrivals:
    """``next_interarrival`` view of a trace for ``sim.runner.Simulation``.

    After the last recorded gap it returns ``inf``: the simulator keeps
    scheduling "next arrival" events, and an infinitely-far one simply
    never fires before ``t_end``.
    """

    trace: Trace
    _pos: int = field(default=0, repr=False)

    def next_interarrival(self, rng) -> float:
        i = self._pos
        if i >= len(self.trace):
            return float("inf")
        self._pos = i + 1
        return float(self.trace.gaps[i])


@dataclass
class TraceDemands:
    """``sample`` view of a trace's demands for ``sim.runner.Simulation``."""

    trace: Trace
    _pos: int = field(default=0, repr=False)

    def sample(self, size, rng) -> np.ndarray:
        if size != 1:
            raise ValueError("trace demands are consumed one at a time")
        i = self._pos
        if i >= len(self.trace):
            raise IndexError("trace exhausted")
        self._pos = i + 1
        return self.trace.demands[i : i + 1]
