"""Supervised failover: health checks and restart-with-backoff.

A :class:`Supervisor` runs as a task inside a
:class:`~repro.serve.dispatcher.DispatchRuntime` with fault injection
attached.  Under supervision a ``node_recover`` plan event only marks
the underlying fault *cleared* (see
:class:`~repro.faults.FaultInjector`); the node stays out of service
until the supervisor notices and restarts it, so measured MTTR is the
operationally honest number: fault duration **plus** detection latency
(up to ``check_interval``) **plus** any backoff the restart loop had
accumulated probing the still-broken node.

The loop is event-driven while healthy -- it parks on the runtime's
crash-wake event and holds **no timer at all**, so a fault-free run
(including the huge drained trace replays of the equivalence tests)
never pays a supervision tick.  While any node is down it polls every
``check_interval`` model-seconds; a node whose restart probe fails
(fault not yet cleared) is next probed only after a jittered exponential
backoff ``min(backoff_base * backoff_factor**attempts, backoff_max)``.

Backoff jitter draws from the supervisor's private RNG
(``numpy.random.default_rng(seed)``), never from the workload stream:
attaching a supervisor must not change which jobs are killed.

Every probe is recorded in :attr:`Supervisor.history` as a
:class:`RestartAttempt`, mirrored to :mod:`repro.obs` as
``serve.supervisor.probe`` / ``serve.supervisor.restart`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs

__all__ = ["RestartAttempt", "Supervisor"]


@dataclass(frozen=True)
class RestartAttempt:
    """One health-check probe of a down node."""

    time: float
    node: int
    success: bool


@dataclass
class Supervisor:
    """Health-check / restart-with-backoff loop over a runtime's nodes.

    Parameters
    ----------
    check_interval :
        Model-seconds between polls while any node is down (also the
        worst-case detection latency after a crash).
    backoff_base, backoff_factor, backoff_max :
        Restart backoff schedule: after ``k`` failed probes of a node
        the next probe waits ``min(base * factor**k, max)`` seconds.
    jitter :
        Relative jitter on each backoff delay (uniform in
        ``[-jitter, +jitter]``); 0 disables it.
    seed :
        Seed for the private jitter RNG.
    """

    check_interval: float = 1.0
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.1
    seed: int = 0
    history: list = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.check_interval <= 0:
            raise ValueError("check_interval must be positive")
        if self.backoff_base <= 0 or self.backoff_factor < 1:
            raise ValueError("backoff_base must be > 0 and backoff_factor >= 1")
        if self.backoff_max < self.backoff_base:
            raise ValueError("backoff_max must be >= backoff_base")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        self._runtime = None
        self._rng = np.random.default_rng(self.seed)

    # -- runtime protocol ----------------------------------------------
    def bind(self, runtime) -> None:
        self._runtime = runtime

    async def run(self) -> None:
        if self._runtime is None:
            raise RuntimeError("bind() the supervisor to a runtime first")
        rt = self._runtime
        inj = rt.faults
        rec = obs.recorder()
        n = len(rt.capacities)
        attempts = [0] * n
        next_try = [0.0] * n
        while True:
            if all(inj.up):
                # healthy: hold no timer; the fault driver wakes us
                rt._sup_wake.clear()
                await rt._sup_wake.wait()
                continue
            await rt.clock.sleep(self.check_interval)
            now = rt.clock.now()
            for node in range(n):
                if inj.up[node] or now < next_try[node]:
                    continue
                ok = inj.try_restart(node, now)
                self.history.append(RestartAttempt(now, node, ok))
                if rec.enabled:
                    rec.add("serve.supervisor.probe")
                if ok:
                    if rec.enabled:
                        rec.add("serve.supervisor.restart")
                    attempts[node] = 0
                    next_try[node] = now
                    rt._on_restart(node, now)
                else:
                    delay = min(
                        self.backoff_base
                        * self.backoff_factor ** attempts[node],
                        self.backoff_max,
                    )
                    if self.jitter:
                        delay *= 1.0 + self.jitter * float(
                            self._rng.uniform(-1.0, 1.0)
                        )
                    attempts[node] += 1
                    next_try[node] = now + delay
