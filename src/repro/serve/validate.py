"""Live-runtime metrics vs. CTMC steady-state predictions.

The dispatcher's measurements and the paper's models describe the same
system (run the runtime with an ``ErlangTimeout(n, t)`` and the Figure 3
chain :class:`repro.models.TagsExponential` with the same ``(lam, mu, t,
n, K1, K2)`` is *exactly* the model of it), so live numbers should land
on the steady-state predictions up to sampling noise.  This module turns
that into a report an operator -- or a test -- can gate on:

* **relative error** per metric (mean jobs per node, throughput, loss
  probability, mean response time);
* a **confidence bound** where the live stream supports one: the mean
  response time gets a batch-means CI
  (:func:`repro.sim.stats.batch_means_ci`), and the total mean
  population inherits it through Little's law (``L = X W`` and the loss
  metrics are ratios of long counts, so the response-time CI is the
  binding one);
* a verdict per row: within CI where a CI exists, within ``rel_tol``
  otherwise.

This is the same methodology ``tests/sim/test_runner.py`` applies to the
offline simulator, packaged as a first-class runtime feature (the
controller's "are my estimates sane" check, the ``serve`` CLI's closing
table, and the convergence test's acceptance gate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.stats import batch_means_ci

__all__ = ["MetricCheck", "ValidationReport", "validate_against_model"]


@dataclass(frozen=True)
class MetricCheck:
    """One live-vs-predicted comparison."""

    name: str
    live: float
    predicted: float
    rel_error: float
    ci_half: float | None  # half-width of the live CI, when available
    ok: bool


@dataclass(frozen=True)
class ValidationReport:
    """All metric checks from one runtime result."""

    checks: tuple
    rel_tol: float

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def __getitem__(self, name: str) -> MetricCheck:
        for c in self.checks:
            if c.name == name:
                return c
        raise KeyError(name)

    def format(self) -> str:
        rows = []
        for c in self.checks:
            ci = f"{c.ci_half:.4f}" if c.ci_half is not None else "-"
            rows.append(
                f"{c.name:<22} live {c.live:>10.4f}  predicted "
                f"{c.predicted:>10.4f}  rel.err {c.rel_error:>7.2%}  "
                f"ci± {ci:>8}  {'ok' if c.ok else 'MISMATCH'}"
            )
        verdict = "agreement" if self.ok else "DISAGREEMENT"
        return "\n".join(rows + [f"=> {verdict} (rel_tol={self.rel_tol:.0%})"])


def _rel_error(live: float, predicted: float) -> float:
    scale = max(abs(predicted), 1e-12)
    return abs(live - predicted) / scale


def validate_against_model(
    result,
    model,
    *,
    rel_tol: float = 0.10,
    abs_loss_tol: float = 0.02,
    node_tol: "float | None" = None,
    n_batches: int = 20,
) -> ValidationReport:
    """Compare a runtime (or simulator) result against a solved model.

    Parameters
    ----------
    result :
        A :class:`~repro.sim.runner.SimulationResult` /
        :class:`~repro.serve.dispatcher.DispatchResult`.
    model :
        Anything with ``.metrics()`` returning
        :class:`~repro.models.QueueMetrics` -- typically
        ``TagsExponential`` at the parameters the runtime ran with (or
        at the controller's estimates of them).
    rel_tol :
        Acceptance band for metrics without a live CI.
    abs_loss_tol :
        Absolute band for the loss probability (relative error on a
        near-zero loss is noise).
    node_tol :
        Band for the *per-node* population rows (default: ``rel_tol``).
        The paper's node-2 model is a Markovian approximation -- the
        repeat period is resampled as a fresh Erlang rather than being
        the (stochastically shorter) timeout draw that actually fired --
        so once node 2 carries real load the CTMC systematically
        overestimates its population by 15-20% even though the *live
        system is correct* (the offline simulator lands on the same
        numbers).  Callers validating in such regimes widen this band
        deliberately; the report still shows the raw error.
    n_batches :
        Batch count for the response-time batch-means CI; when the live
        stream is too short for that many batches the CI is dropped and
        the ``rel_tol`` band applies instead.
    """
    if node_tol is None:
        node_tol = rel_tol
    predicted = model.metrics()
    checks = []

    # response time: the one metric with an honest live CI
    ci_half = None
    if result.response_times.size >= 2 * n_batches:
        _, ci_half = batch_means_ci(result.response_times, n_batches)
    live_w = result.mean_response_time
    pred_w = predicted.response_time
    ok_w = (
        abs(live_w - pred_w) <= ci_half + rel_tol * abs(pred_w)
        if ci_half is not None
        else _rel_error(live_w, pred_w) <= rel_tol
    )
    checks.append(
        MetricCheck(
            "mean_response_time", live_w, pred_w, _rel_error(live_w, pred_w),
            ci_half, ok_w,
        )
    )

    # population: Little's law L = X W carries the response-time CI over
    live_l = result.mean_jobs
    pred_l = predicted.mean_jobs
    l_half = result.throughput * ci_half if ci_half is not None else None
    ok_l = (
        abs(live_l - pred_l) <= l_half + rel_tol * abs(pred_l)
        if l_half is not None
        else _rel_error(live_l, pred_l) <= rel_tol
    )
    checks.append(
        MetricCheck(
            "mean_jobs", live_l, pred_l, _rel_error(live_l, pred_l),
            l_half, ok_l,
        )
    )

    # per-node populations (no CI: band check)
    for i, (live_q, pred_q) in enumerate(
        zip(result.mean_queue_lengths, predicted.mean_jobs_per_node)
    ):
        err = _rel_error(live_q, pred_q)
        # absolute slack mirrors abs_loss_tol: a relative band on a
        # near-empty queue amplifies noise
        ok_q = err <= node_tol or abs(live_q - pred_q) <= abs_loss_tol
        checks.append(
            MetricCheck(f"mean_jobs_node{i + 1}", float(live_q),
                        float(pred_q), err, None, ok_q)
        )

    live_x = result.throughput
    pred_x = predicted.throughput
    checks.append(
        MetricCheck(
            "throughput", live_x, pred_x, _rel_error(live_x, pred_x), None,
            _rel_error(live_x, pred_x) <= rel_tol,
        )
    )

    live_p = result.loss_probability
    pred_p = predicted.loss_probability
    checks.append(
        MetricCheck(
            "loss_probability", live_p, pred_p, _rel_error(live_p, pred_p),
            None, abs(live_p - pred_p) <= abs_loss_tol,
        )
    )
    return ValidationReport(tuple(checks), rel_tol)
