"""Closed-loop timeout control for the online dispatcher.

The operator's problem from the paper, run live: the dispatcher cannot
see job sizes, so the kill-timeout must be tuned from what *is*
observable -- arrival instants and the service demands revealed when
jobs finally complete.  :class:`TimeoutController` runs as a task inside
a :class:`~repro.serve.dispatcher.DispatchRuntime` and every
``interval`` model-seconds:

1. **estimates** the arrival rate over a sliding window (count / span)
   and the service-demand mix from completed-job demands -- either a
   plain exponential moment match or an H2 fit through
   :func:`repro.dists.fit.fit_hyperexponential` (degenerate windows --
   too few samples, all-equal demands, collapsed components -- fail
   *soft*: the controller falls back to the moment match rather than
   letting an EM corner case kill the dispatch loop);
2. **re-optimises** the timeout rate by handing the estimates to
   :func:`repro.approx.optimise_timeout` over a model factory (default:
   the Section 4 :class:`~repro.approx.TagsFixedPoint` decomposition,
   whose closed forms make a re-tune cost microseconds; pass
   ``model_factory`` to use the exact CTMC instead);
3. **applies** the new rate with hysteresis: the runtime's timeout
   sampler is only swapped when the optimum moved by more than
   ``deadband`` relative -- small estimation noise must not make the
   operating point flap.

Every decision is kept in :attr:`history` (a
:class:`ControlDecision` per tick) and mirrored to :mod:`repro.obs`
(``serve.retune`` counters, a ``serve.timeout`` gauge) when a recorder
is listening.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.approx import TagsFixedPoint, optimise_timeout
from repro.dists.fit import fit_hyperexponential
from repro.sim.workload import ErlangTimeout

__all__ = ["ControlDecision", "TimeoutController", "fit_demands_soft"]


def fit_demands_soft(demands, k: int = 2):
    """H2-fit a window of completed demands, degrading gracefully.

    Returns the :class:`~repro.dists.FitResult` or ``None`` when the
    window cannot support a fit (too few points, non-positive values,
    numerically degenerate EM) -- the caller then falls back to a moment
    match.  This is the controller's input path, so *no* window content
    may raise.
    """
    x = np.asarray(demands, dtype=float).ravel()
    x = x[np.isfinite(x) & (x > 0)]
    if x.size < max(2, k):
        return None
    try:
        result = fit_hyperexponential(x, k=k)
    except (ValueError, FloatingPointError, np.linalg.LinAlgError):
        return None
    rates = np.asarray(result.dist.rates, dtype=float)
    if not np.all(np.isfinite(rates)) or rates.min() <= 0:
        return None
    if not np.isfinite(result.log_likelihood):
        return None
    return result


@dataclass
class ControlDecision:
    """One controller tick: what was estimated, chosen and applied."""

    time: float
    lam_hat: float | None
    mu_hat: float | None
    scv_hat: float | None
    t_opt: float | None
    t_current: float
    applied: bool
    reason: str  # "applied" / "deadband" / "insufficient-data"


@dataclass
class TimeoutController:
    """Sliding-window estimate -> re-optimise -> apply with hysteresis.

    Parameters
    ----------
    interval, window :
        Tick period and estimation-window length (model-seconds).
    min_samples :
        Minimum arrivals *and* completions in the window before acting.
    deadband :
        Relative move of the optimal rate required to touch the system.
    metric :
        Objective handed to :func:`~repro.approx.optimise_timeout`.
    n :
        Erlang phase count of the applied timeout (matches the paper's
        Markovian timeout; the sampler installed is ``ErlangTimeout(n,
        t)``, overridable via ``make_sampler``).
    fit :
        ``"exponential"`` (moment match) or ``"h2"`` (EM fit with soft
        fallback to the moment match).
    model_factory :
        ``(lam, mu, t) -> model with .metrics()``; default builds
        :class:`TagsFixedPoint` with this controller's ``n`` and the
        runtime's capacities.
    """

    interval: float = 100.0
    window: float = 500.0
    min_samples: int = 20
    deadband: float = 0.1
    metric: str = "mean_jobs"
    n: int = 6
    t_min: float = 0.5
    t_max: float = 500.0
    grid_points: int = 40
    fit: str = "exponential"
    make_sampler: "callable | None" = None
    model_factory: "callable | None" = None
    node: int = 0
    history: "list[ControlDecision]" = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.interval <= 0 or self.window <= 0:
            raise ValueError("interval and window must be positive")
        if self.fit not in ("exponential", "h2"):
            raise ValueError("fit must be 'exponential' or 'h2'")
        if not (0 <= self.deadband):
            raise ValueError("deadband must be non-negative")
        self._runtime = None
        self._t0 = 0.0

    # -- runtime protocol ----------------------------------------------
    def bind(self, runtime) -> None:
        self._runtime = runtime
        self._t0 = runtime.clock.now()

    async def run(self) -> None:
        if self._runtime is None:
            raise RuntimeError("bind() the controller to a runtime first")
        while True:
            # daemon: control ticks matter only while work is in flight;
            # they must not keep a drained virtual-clock run spinning
            await self._runtime.clock.sleep(self.interval, daemon=True)
            self.tick()

    # -- one control step ----------------------------------------------
    def current_rate(self) -> float:
        sampler = self._runtime.current_timeout(self.node)
        if sampler is None:
            raise ValueError(f"node {self.node} has no timeout to control")
        if hasattr(sampler, "t"):
            return float(sampler.t)
        # deterministic or other samplers: rate from the mean duration
        return self.n / float(sampler.mean)

    def _estimate(self, now: float):
        """(lam_hat, mu_hat, scv_hat) over the trailing window, or None."""
        rt = self._runtime
        cutoff = max(self._t0, now - self.window)
        while rt.window_arrivals and rt.window_arrivals[0] < cutoff:
            rt.window_arrivals.popleft()
        while rt.window_completions and rt.window_completions[0][0] < cutoff:
            rt.window_completions.popleft()
        span = now - cutoff
        n_arr = len(rt.window_arrivals)
        n_done = len(rt.window_completions)
        if span <= 0 or n_arr < self.min_samples or n_done < self.min_samples:
            return None
        lam_hat = n_arr / span
        demands = np.array([d for _, d in rt.window_completions])
        mean = float(demands.mean())
        scv = float(demands.var() / mean**2) if mean > 0 else None
        if self.fit == "h2":
            fitted = fit_demands_soft(demands)
            if fitted is not None:
                m1 = float(fitted.dist.moment(1))
                if np.isfinite(m1) and m1 > 0:
                    mean = m1
                    m2 = float(fitted.dist.moment(2))
                    scv = m2 / m1**2 - 1.0
        if mean <= 0:
            return None
        return lam_hat, 1.0 / mean, scv

    def tick(self) -> ControlDecision:
        """Estimate, optimise and (maybe) apply; returns the decision."""
        rt = self._runtime
        now = rt.clock.now()
        t_cur = self.current_rate()
        rec = obs.recorder()
        estimate = self._estimate(now)
        if estimate is None:
            decision = ControlDecision(
                now, None, None, None, None, t_cur, False, "insufficient-data"
            )
            self.history.append(decision)
            if rec.enabled:
                rec.add("serve.retune", skipped=True)
            return decision
        lam_hat, mu_hat, scv_hat = estimate
        if self.model_factory is not None:
            factory = lambda t: self.model_factory(lam_hat, mu_hat, t)
        else:
            K1, K2 = rt.capacities[0], rt.capacities[-1]
            factory = lambda t: TagsFixedPoint(
                lam=lam_hat, mu=mu_hat, t=t, n=self.n, K1=K1, K2=K2
            )
        opt = optimise_timeout(
            factory,
            self.metric,
            t_min=self.t_min,
            t_max=self.t_max,
            grid_points=self.grid_points,
        )
        move = abs(opt.t_opt - t_cur) / t_cur
        apply = move > self.deadband
        if apply:
            sampler = (
                self.make_sampler(opt.t_opt)
                if self.make_sampler is not None
                else ErlangTimeout(self.n, opt.t_opt)
            )
            rt.set_timeout(self.node, sampler)
        decision = ControlDecision(
            now,
            lam_hat,
            mu_hat,
            scv_hat,
            float(opt.t_opt),
            t_cur,
            apply,
            "applied" if apply else "deadband",
        )
        self.history.append(decision)
        if rec.enabled:
            rec.add("serve.retune", applied=apply)
            rec.gauge("serve.timeout", opt.t_opt if apply else t_cur)
            rec.gauge("serve.lambda_hat", lam_hat)
            rec.gauge("serve.mu_hat", mu_hat)
        return decision
