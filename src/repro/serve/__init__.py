"""`repro.serve` -- an online TAGS dispatcher runtime.

Everything below :mod:`repro.sim` *solves* or *simulates* the paper's
models offline; this package **runs** them: an asyncio runtime that
dispatches live jobs with the same policy objects
(:class:`~repro.sim.policies.TagsPolicy` and friends), enforces the
paper's admission control on bounded queues (drop-on-full at the routed
node, drop-after-timeout on a full forward node), and closes the
Section 4 loop online -- a controller estimates the arrival rate and
service mix from what a size-blind dispatcher can actually observe and
re-optimises the kill-timeout with hysteresis while traffic flows.

Pieces
------
* :mod:`~repro.serve.clock` -- :class:`VirtualClock` (deterministic
  simulated time; the equivalence tests pin runtime outcomes exactly to
  ``sim.runner``) and :class:`WallClock` (real time, optionally scaled).
* :mod:`~repro.serve.loadgen` -- open-loop Poisson, MMPP/bursty and
  trace-replay sources, plus trace adapters for the offline simulator.
* :mod:`~repro.serve.dispatcher` -- the runtime: per-node server tasks,
  kill/forward semantics, live timeout swapping, obs instrumentation.
* :mod:`~repro.serve.controller` -- sliding-window estimation
  (``dists.fit`` with soft failure), ``approx.optimise_timeout``
  re-tuning, deadband hysteresis, full decision history.
* :mod:`~repro.serve.validate` -- live metrics vs. the CTMC
  steady-state prediction, with CI-aware acceptance.
* :mod:`~repro.serve.supervisor` -- supervised failover under fault
  injection (:mod:`repro.faults`): health checks, restart with jittered
  exponential backoff, full probe history.

Quick start::

    from repro.dists import Exponential
    from repro.serve import DispatchRuntime, PoissonLoad, TimeoutController
    from repro.sim import ErlangTimeout, TagsPolicy

    policy = TagsPolicy(timeouts=(ErlangTimeout(6, 20.0),))
    runtime = DispatchRuntime(
        PoissonLoad(5.0, Exponential(10.0)), policy, (10, 10),
        controller=TimeoutController(interval=100.0, window=500.0),
    )
    result = runtime.run(t_end=4000.0, warmup=500.0)   # virtual clock

See ``docs/serving.md`` for the runtime model and how live metrics map
onto the paper's figures.
"""

from repro.serve.clock import Clock, VirtualClock, WallClock
from repro.serve.controller import (
    ControlDecision,
    TimeoutController,
    fit_demands_soft,
)
from repro.serve.dispatcher import DispatchResult, DispatchRuntime, JobRecord
from repro.serve.loadgen import (
    MMPPLoad,
    PoissonLoad,
    Trace,
    TraceArrivals,
    TraceDemands,
    TraceLoad,
)
from repro.serve.supervisor import RestartAttempt, Supervisor
from repro.serve.validate import (
    MetricCheck,
    ValidationReport,
    validate_against_model,
)

__all__ = [
    "Clock",
    "VirtualClock",
    "WallClock",
    "ControlDecision",
    "TimeoutController",
    "fit_demands_soft",
    "DispatchResult",
    "DispatchRuntime",
    "JobRecord",
    "MMPPLoad",
    "PoissonLoad",
    "Trace",
    "TraceArrivals",
    "TraceDemands",
    "TraceLoad",
    "RestartAttempt",
    "Supervisor",
    "MetricCheck",
    "ValidationReport",
    "validate_against_model",
]
