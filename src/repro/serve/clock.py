"""Virtual and wall clocks for the dispatcher runtime.

Every time-dependent actor in :mod:`repro.serve` (load generators, node
servers, the controller) sleeps through a :class:`Clock` rather than
``asyncio.sleep``, so the same runtime runs in two modes:

* :class:`VirtualClock` -- simulated time.  Timers live in a heap; the
  driver (:meth:`VirtualClock.run_until`) repeatedly lets every runnable
  task progress until the whole task set is blocked on timers, then fires
  the earliest timer and advances ``now`` to its deadline.  Nothing ever
  waits on the operating system, so a 10^5-arrival day of traffic runs in
  however long the dispatch decisions take to compute -- and, because
  timers fire in strict ``(deadline, creation order)`` sequence, the run
  is **deterministic**: the equivalence tests pin its per-job outcomes
  exactly to :class:`repro.sim.runner.Simulation`.
* :class:`WallClock` -- real time via ``asyncio.sleep``, optionally
  scaled (``rate=10`` runs 10 model-seconds per wall-second).  This is
  the mode an actual deployment would use; tests only smoke it.

Knowing when "everything runnable has run" is the crux of virtual time.
The driver yields with ``asyncio.sleep(0)`` and checks the event loop's
ready queue; when it is empty every other task is parked on a timer
future (or an event/queue that only a timer can release), so firing the
next timer is causally safe.  CPython exposes the ready queue as
``loop._ready``; on loops without that attribute the driver falls back
to a bounded number of extra yields, which keeps correctness (each yield
runs a full ready round) at the cost of a little wasted spinning.
"""

from __future__ import annotations

import asyncio
import heapq
import time

__all__ = ["Clock", "VirtualClock", "WallClock"]


class Clock:
    """Interface shared by the two clocks."""

    def now(self) -> float:
        """Current model time (seconds since the clock started)."""
        raise NotImplementedError

    async def sleep(self, delay: float, *, daemon: bool = False) -> None:
        """Suspend the calling task for ``delay`` model-seconds.

        ``daemon=True`` marks a housekeeping sleep (periodic gauge
        sampling, controller ticks): on a virtual clock such timers
        fire in order while real work is pending but do not, by
        themselves, keep time grinding forward -- once only daemon
        timers remain the driver jumps straight to its deadline.
        Without this, an obs depth-sampler ticking every 10 model
        seconds would turn a drained ``run(1e12)`` trace replay into
        10^11 pointless timer fires.  Wall clocks ignore the flag.
        """
        raise NotImplementedError

    async def run_until(self, deadline: float) -> None:
        """Drive the clock to model time ``deadline`` (no-op for wall
        clocks beyond sleeping until it passes)."""
        raise NotImplementedError


async def _drain(max_rounds: int = 64) -> None:
    """Yield until every other task is blocked on a future.

    Each ``await asyncio.sleep(0)`` lets the loop run one full round of
    ready callbacks; the loop's ready queue being empty afterwards means
    no task can progress without an external wake-up.
    """
    loop = asyncio.get_running_loop()
    ready = getattr(loop, "_ready", None)
    if ready is None:  # non-CPython loop: bounded spin
        for _ in range(max_rounds):
            await asyncio.sleep(0)
        return
    while True:
        await asyncio.sleep(0)
        if not ready:
            return


class VirtualClock(Clock):
    """Deterministic simulated time over an asyncio loop."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._timers: list = []  # (deadline, seq, future, daemon)
        self._seq = 0
        self._essential = 0  # live non-daemon timers in the heap

    def now(self) -> float:
        return self._now

    @property
    def pending_timers(self) -> int:
        return sum(1 for *_, fut, _ in self._timers if not fut.cancelled())

    def next_deadline(self) -> float | None:
        """Earliest live timer deadline (None when no timers are set)."""
        while self._timers and self._timers[0][2].cancelled():
            _, _, _, daemon = heapq.heappop(self._timers)
            if not daemon:
                self._essential -= 1
        return self._timers[0][0] if self._timers else None

    def sleep(self, delay: float, *, daemon: bool = False):
        if delay < 0:
            raise ValueError("cannot sleep a negative duration")
        fut = asyncio.get_running_loop().create_future()
        heapq.heappush(
            self._timers, (self._now + delay, self._seq, fut, daemon)
        )
        self._seq += 1
        if not daemon:
            self._essential += 1
        return fut

    async def run_until(self, deadline: float) -> None:
        """Advance to ``deadline``, firing every timer due on the way.

        Timers fire one at a time in ``(deadline, creation)`` order with
        a full drain between fires, so all consequences of one event
        (enqueues, new timers) land before the next event's time is
        decided -- exactly the discrete-event contract of
        ``sim.runner``'s heap loop.

        Daemon timers fire in that same order *while* essential work is
        pending; once only daemon timers remain the system can no longer
        change state on its own, so the driver stops firing them and
        jumps to ``deadline``.
        """
        await _drain()
        while self._essential > 0:
            nxt = self.next_deadline()
            if nxt is None or nxt > deadline:
                break
            when, _, fut, daemon = heapq.heappop(self._timers)
            if not daemon:
                self._essential -= 1
            self._now = when if when > self._now else self._now
            if not fut.cancelled():
                fut.set_result(None)
                await _drain()
        if deadline > self._now:
            self._now = deadline


class WallClock(Clock):
    """Real time, optionally scaled: ``rate`` model-seconds per second."""

    def __init__(self, rate: float = 1.0) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self._t0 = time.monotonic()

    def now(self) -> float:
        return (time.monotonic() - self._t0) * self.rate

    async def sleep(self, delay: float, *, daemon: bool = False) -> None:
        if delay < 0:
            raise ValueError("cannot sleep a negative duration")
        await asyncio.sleep(delay / self.rate)

    async def run_until(self, deadline: float) -> None:
        remaining = deadline - self.now()
        if remaining > 0:
            await asyncio.sleep(remaining / self.rate)
