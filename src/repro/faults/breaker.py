"""A clock-agnostic circuit breaker for forward attempts.

The dispatcher wraps its node-2 (and beyond) forwards in one breaker per
target node: repeated forward failures -- the target down or full --
trip the breaker **open**, after which forwards fail fast to the
fallback (drop / lost-to-failure accounting) without probing the target
at all.  After ``reset_timeout`` model-seconds the breaker goes
**half-open** and admits a single probe; a successful placement closes
it, a failure re-opens it for another full ``reset_timeout``.

The breaker never sources time itself -- callers pass ``now`` from
whatever clock they run on -- so the same object is exact under the
virtual clock and sane under the wall clock, and its transition history
(:attr:`transitions`) lines up with the run's model-time axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CircuitBreaker"]


@dataclass
class CircuitBreaker:
    """closed -> open -> half-open -> {closed, open} failure gate.

    Parameters
    ----------
    failure_threshold :
        Consecutive failures (while closed) that trip the breaker.
    reset_timeout :
        Model-seconds an open breaker waits before admitting a probe.
    """

    failure_threshold: int = 5
    reset_timeout: float = 30.0
    state: str = field(default="closed", init=False)
    failures: int = field(default=0, init=False)
    opened_at: "float | None" = field(default=None, init=False)
    transitions: list = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")

    def _move(self, state: str, now: float) -> None:
        self.state = state
        self.transitions.append((now, state))

    def allow(self, now: float) -> bool:
        """May an attempt proceed at model time ``now``?

        An open breaker past its reset timeout transitions to half-open
        and admits this one call as the probe.
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            if now - self.opened_at >= self.reset_timeout:
                self._move("half_open", now)
                return True
            return False
        # half-open: the single probe was already admitted; further
        # attempts wait for its outcome
        return False

    def record_success(self, now: float) -> None:
        """An admitted attempt succeeded: close and reset the count."""
        self.failures = 0
        if self.state != "closed":
            self._move("closed", now)

    def record_failure(self, now: float) -> None:
        """An admitted attempt failed: count it; trip or re-open."""
        self.failures += 1
        if self.state == "half_open" or (
            self.state == "closed" and self.failures >= self.failure_threshold
        ):
            self.opened_at = now
            self.failures = 0
            self._move("open", now)
