"""Deterministic fault schedules.

A :class:`FaultPlan` is a time-sorted, immutable list of
:class:`FaultEvent` objects -- the *ground truth* of what goes wrong and
when.  Both execution hosts (:class:`repro.sim.runner.Simulation` and
:class:`repro.serve.dispatcher.DispatchRuntime`) replay the same plan
through a :class:`~repro.faults.injector.FaultInjector`, so an offline
run and an online (virtual-clock) run see the identical fault trace:
``tests/serve/test_equivalence.py`` pins their per-job fault outcomes to
each other exactly.

Event kinds
-----------

``node_crash``
    The node's server fails: service stops, in-progress work on the
    current attempt is lost, and (injector policy) its queue is either
    kept for recovery or dropped.
``node_recover``
    The underlying fault clears.  Without a supervisor the node comes
    straight back up; with one (:class:`repro.serve.Supervisor`) the
    event only marks the node *restartable* and the supervisor's
    health-check/backoff loop performs the actual restart, so MTTR
    includes detection and backoff latency.
``degrade``
    Multiply the node's service speed by ``factor`` (applies from the
    next service start -- a decided race keeps its draw, exactly like a
    live timeout swap).
``surge``
    Multiply the arrival rate by ``factor`` (inter-arrival gaps are
    divided by it, from the next gap drawn).

Plans are either **scripted** (pass explicit events) or **generated**
(:meth:`FaultPlan.generate`): seeded alternating exponential
up/down periods per node, the standard breakdown/repair model the
``models.tags_breakdown`` CTMC analyses exactly.

Two events at the *same* instant have unspecified relative order against
other simultaneous runtime events (both hosts are deterministic, but
their tie-breaking differs); generated plans draw continuous times, so
ties never occur in practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultPlan"]

FAULT_KINDS = ("node_crash", "node_recover", "degrade", "surge")
"""The event kinds a plan may contain."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action.

    ``node`` is required for the node-scoped kinds and ignored for
    ``surge`` (which is system-wide); ``factor`` is the speed multiplier
    for ``degrade`` and the arrival-rate multiplier for ``surge``.
    """

    time: float
    kind: str
    node: int = -1
    factor: float = 1.0

    def __post_init__(self) -> None:
        if not np.isfinite(self.time) or self.time < 0:
            raise ValueError(f"event time must be finite and >= 0, got {self.time!r}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.kind != "surge" and self.node < 0:
            raise ValueError(f"{self.kind} event needs a node index >= 0")
        if self.kind in ("degrade", "surge"):
            if not np.isfinite(self.factor) or self.factor <= 0:
                raise ValueError(
                    f"{self.kind} factor must be finite and > 0, got {self.factor!r}"
                )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted schedule of :class:`FaultEvent`."""

    events: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        evs = tuple(self.events)
        for ev in evs:
            if not isinstance(ev, FaultEvent):
                raise TypeError(f"plan entries must be FaultEvent, got {type(ev)!r}")
        # stable sort: same-time events keep their scripted order
        object.__setattr__(
            self, "events", tuple(sorted(evs, key=lambda e: e.time))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def max_node(self) -> int:
        """Largest node index referenced (-1 for a surge-only/empty plan)."""
        return max((ev.node for ev in self.events), default=-1)

    def for_node(self, node: int) -> tuple:
        """The node-scoped events touching ``node``, in time order."""
        return tuple(
            ev for ev in self.events if ev.kind != "surge" and ev.node == node
        )

    # ------------------------------------------------------------------
    @classmethod
    def script(cls, *events) -> "FaultPlan":
        """Build a plan from ``(time, kind, node[, factor])`` tuples or
        ready-made :class:`FaultEvent` objects."""
        out = []
        for ev in events:
            if isinstance(ev, FaultEvent):
                out.append(ev)
            else:
                out.append(FaultEvent(*ev))
        return cls(tuple(out))

    @classmethod
    def generate(
        cls,
        *,
        horizon: float,
        crash_rate: float,
        repair_rate: float,
        nodes,
        seed: int = 0,
    ) -> "FaultPlan":
        """Seeded breakdown/repair schedule over ``[0, horizon]``.

        Each node in ``nodes`` alternates exponential up periods (mean
        ``1 / crash_rate``) and down periods (mean ``1 / repair_rate``),
        the classic machine-breakdown model -- and exactly the dynamics
        the :class:`repro.models.TagsBreakdown` CTMC solves, so a
        generated plan has an analytic availability target
        ``repair_rate / (crash_rate + repair_rate)``.

        ``crash_rate=0`` yields an empty plan (the no-fault baseline of
        a degradation sweep).  A node whose final repair would land past
        ``horizon`` simply stays down.
        """
        if not np.isfinite(horizon) or horizon <= 0:
            raise ValueError("horizon must be finite and positive")
        if crash_rate < 0 or not np.isfinite(crash_rate):
            raise ValueError("crash_rate must be finite and >= 0")
        if repair_rate <= 0 or not np.isfinite(repair_rate):
            raise ValueError("repair_rate must be finite and positive")
        events = []
        if crash_rate > 0:
            rng = np.random.default_rng(seed)
            for node in nodes:
                t = 0.0
                while True:
                    t += rng.exponential(1.0 / crash_rate)
                    if t >= horizon:
                        break
                    events.append(FaultEvent(t, "node_crash", node))
                    t += rng.exponential(1.0 / repair_rate)
                    if t >= horizon:
                        break
                    events.append(FaultEvent(t, "node_recover", node))
        return cls(tuple(events))
