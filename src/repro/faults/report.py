"""Failure-impact reporting: availability, MTTR, lost jobs, wasted work.

:class:`FaultReport` folds one run's failure bookkeeping -- the
injector's downtime log plus the host's loss counters -- into the
numbers an operator reasons about, and
:func:`degradation_table` sweeps a crash rate over the online runtime to
produce the degradation-vs-failure-rate table behind
``python -m repro.experiments faults`` and the CI chaos artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan

__all__ = ["FaultReport", "degradation_table"]


@dataclass(frozen=True)
class FaultReport:
    """One run's failure impact."""

    t_end: float
    availability: tuple  # per node, fraction of [t0, t_end] up
    mttr: "float | None"  # mean completed-downtime duration
    crashes: int
    recoveries: int
    lost_to_failure: int
    work_wasted: float

    @classmethod
    def collect(cls, result, injector: FaultInjector, t_end: float) -> "FaultReport":
        """Build from a finished run's result + the injector that drove it.

        ``result`` is a :class:`~repro.sim.runner.SimulationResult` or
        :class:`~repro.serve.dispatcher.DispatchResult`; both carry
        ``lost_to_failure`` / ``work_wasted``.
        """
        return cls(
            t_end=float(t_end),
            availability=tuple(
                injector.availability(i, t_end) for i in range(injector.n_nodes)
            ),
            mttr=injector.mttr(),
            crashes=injector.crashes,
            recoveries=injector.recoveries,
            lost_to_failure=int(result.lost_to_failure),
            work_wasted=float(result.work_wasted),
        )

    def format(self) -> str:
        avail = "  ".join(f"node{i + 1} {a:.4f}" for i, a in enumerate(self.availability))
        mttr = "-" if self.mttr is None else f"{self.mttr:.2f}"
        return (
            f"availability: {avail}\n"
            f"crashes {self.crashes}  recoveries {self.recoveries}  "
            f"MTTR {mttr}\n"
            f"jobs lost to failure {self.lost_to_failure}  "
            f"work wasted {self.work_wasted:.2f}"
        )


def degradation_table(
    crash_rates,
    *,
    lam: float = 5.0,
    mu: float = 10.0,
    n: int = 6,
    t: float = 51.0,
    capacities=(10, 10),
    repair_rate: float = 0.05,
    horizon: float = 3000.0,
    warmup: float = 0.0,
    degraded: str = "single_node",
    on_crash: str = "requeue",
    seed: int = 1,
    supervised: bool = False,
):
    """Run online TAGS under increasing node-2 crash rates.

    Returns ``(headers, rows)`` ready for
    :func:`repro.experiments.report.render_table`: one row per crash
    rate with availability, MTTR, throughput, loss probability, jobs
    lost to failure and work wasted -- the degradation curve of the
    runtime's resilience machinery.
    """
    from repro.dists import Exponential
    from repro.serve import DispatchRuntime, PoissonLoad, Supervisor
    from repro.sim import ErlangTimeout, TagsPolicy

    headers = [
        "crash_rate",
        "avail_node2",
        "mttr",
        "throughput",
        "loss_prob",
        "lost_to_failure",
        "work_wasted",
    ]
    rows = []
    for rate in crash_rates:
        plan = FaultPlan.generate(
            horizon=horizon,
            crash_rate=float(rate),
            repair_rate=repair_rate,
            nodes=(len(capacities) - 1,),
            seed=seed,
        )
        inj = FaultInjector(plan, on_crash=on_crash, degraded=degraded)
        rt = DispatchRuntime(
            PoissonLoad(lam, Exponential(mu)),
            TagsPolicy(timeouts=tuple(ErlangTimeout(n, t) for _ in capacities[:-1])),
            capacities,
            seed=seed,
            faults=inj,
            supervisor=Supervisor(check_interval=2.0, seed=seed) if supervised else None,
        )
        res = rt.run(horizon, warmup=warmup)
        rep = FaultReport.collect(res, inj, horizon)
        rows.append(
            [
                float(rate),
                rep.availability[-1],
                float("nan") if rep.mttr is None else rep.mttr,
                res.throughput,
                res.loss_probability,
                float(rep.lost_to_failure),
                rep.work_wasted,
            ]
        )
    return headers, rows
