"""`repro.faults` -- fault injection and resilience for the TAGS stack.

TAGS is itself a restart mechanism -- the paper's node-1 timeout kills a
job and re-does its work downstream -- yet the rest of the stack used to
assume the *servers* never fail.  This package closes that gap on three
fronts:

* **Injection** -- :class:`FaultPlan` (a deterministic, seeded or
  scripted schedule of ``node_crash`` / ``node_recover`` /
  ``degrade`` / ``surge`` events) replayed through a
  :class:`FaultInjector` into both execution hosts.  The offline
  simulator (``Simulation(..., faults=...)``) and the online runtime
  (``DispatchRuntime(..., faults=...)``) replay the identical trace to
  identical per-job fault outcomes under the virtual clock.
* **Resilience primitives** -- :class:`CircuitBreaker` (fail-fast gate
  on forward attempts; used with the runtime's retry/backoff machinery)
  and, on the serving side, :class:`repro.serve.Supervisor`
  (health-check + restart-with-backoff).
* **Reporting** -- :class:`FaultReport` (availability, MTTR, jobs lost
  to failure, work wasted by failure) and :func:`degradation_table`
  (the crash-rate sweep behind ``python -m repro.experiments faults``).

The exact counterpart lives in :class:`repro.models.TagsBreakdown`: the
same breakdown/repair dynamics as a CTMC, whose node-1 marginal under
"node 2 permanently down" reduces to ``models.mm1k`` -- the target
``serve/validate.py`` holds the degraded runtime to.

See ``docs/robustness.md`` for the fault model and the validation
methodology.
"""

from repro.faults.breaker import CircuitBreaker
from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan
from repro.faults.report import FaultReport, degradation_table

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "CircuitBreaker",
    "FaultReport",
    "degradation_table",
]
