"""The shared fault state machine both execution hosts drive.

A :class:`FaultInjector` owns everything about a fault trace that must
be *identical* between the offline simulator and the online runtime:
which nodes are up, the current speed/arrival multipliers, the crash
semantics (``on_crash``) and the degraded-mode policy (``degraded``).
The hosts own their queues and job bookkeeping; they call
:meth:`apply` when a plan event's time arrives and act on the returned
directive (``"crash"``/``"recover"``/``None``), and they consult
:meth:`suppress_timeout`, :attr:`up`, :attr:`speed_factor` and
:attr:`arrival_factor` at every decision the fault state influences.
Because both hosts run the same decision logic at the same model times
with the same RNG stream, their per-job fault outcomes agree exactly
(``tests/serve/test_equivalence.py``).

Crash semantics (``on_crash``)
------------------------------

``"requeue"`` (default)
    Jobs stay queued at the crashed node and wait for recovery.  The
    interrupted service attempt's work is lost: the head job's
    ``remaining`` is restored to its value at the attempt's start (so a
    resume policy keeps credit from *earlier* completed kills, but
    nothing from the attempt the crash destroyed).
``"drop"``
    The node's whole queue -- head included -- is discarded; every job
    is counted ``lost_to_failure``.

Degraded-mode policy (``degraded``)
-----------------------------------

``"shed"`` (default)
    Timeouts keep firing while the forward target is down; a killed job
    with a down target is counted ``lost_to_failure``.
``"single_node"``
    The timeout race is suppressed at service start while the forward
    target is down: the node serves every job to exhaustion, which for
    two-node TAGS is exactly M/M/1/K1 at node 1 -- the regime
    :mod:`repro.models.tags_breakdown` reduces to ``models.mm1k`` and
    ``serve/validate.py`` checks the live runtime against.

Supervised mode
---------------

With ``supervised=True`` (set by the runtime when a
:class:`repro.serve.Supervisor` is attached) a ``node_recover`` event
only marks the fault *cleared*; the node stays down until the
supervisor's :meth:`try_restart` succeeds, so measured MTTR includes
detection and backoff latency.

The injector also keeps the failure bookkeeping that does not depend on
host internals: per-node downtime intervals (availability, MTTR) and
crash/recovery counts.  One injector drives one run: hosts call
:meth:`reset` when a run starts.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan

__all__ = ["FaultInjector"]

ON_CRASH_CHOICES = ("requeue", "drop")
DEGRADED_CHOICES = ("shed", "single_node")


class FaultInjector:
    """Replays a :class:`~repro.faults.plan.FaultPlan` into a host.

    Parameters
    ----------
    plan :
        The fault schedule to replay.
    on_crash :
        What happens to a crashed node's queue: ``"requeue"`` or
        ``"drop"`` (see the module docstring).
    degraded :
        Timeout behaviour while the forward target is down: ``"shed"``
        or ``"single_node"``.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        on_crash: str = "requeue",
        degraded: str = "shed",
    ) -> None:
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan(tuple(plan))
        if on_crash not in ON_CRASH_CHOICES:
            raise ValueError(f"on_crash must be one of {ON_CRASH_CHOICES}")
        if degraded not in DEGRADED_CHOICES:
            raise ValueError(f"degraded must be one of {DEGRADED_CHOICES}")
        self.plan = plan
        self.on_crash = on_crash
        self.degraded = degraded
        self.supervised = False
        self.n_nodes = 0
        self.reset(max(plan.max_node() + 1, 1))

    # ------------------------------------------------------------------
    def reset(self, n_nodes: int, t0: float = 0.0) -> None:
        """Re-arm for a fresh run over ``n_nodes`` nodes."""
        if self.plan.max_node() >= n_nodes:
            raise ValueError(
                f"plan references node {self.plan.max_node()}, "
                f"host has {n_nodes} nodes"
            )
        self.n_nodes = int(n_nodes)
        self.t0 = float(t0)
        self.up = [True] * self.n_nodes
        self.cleared = [True] * self.n_nodes
        self.speed_factor = [1.0] * self.n_nodes
        self.arrival_factor = 1.0
        self.crashes = 0
        self.recoveries = 0
        self._down_since = [None] * self.n_nodes
        self.downtimes = [[] for _ in range(self.n_nodes)]

    def events(self):
        """The plan's events in replay order."""
        return iter(self.plan)

    # -- state transitions ---------------------------------------------
    def apply(self, event, now: float) -> "str | None":
        """Apply one plan event at model time ``now``.

        Returns the directive the host must act on: ``"crash"`` (the
        node just went down -- interrupt service, do queue surgery),
        ``"recover"`` (the node just came up -- resume service) or
        ``None`` (state-only change, or redundant event).
        """
        kind = event.kind
        if kind == "node_crash":
            node = event.node
            self.cleared[node] = False
            if self.up[node]:
                self.up[node] = False
                self.crashes += 1
                self._down_since[node] = now
                return "crash"
            return None
        if kind == "node_recover":
            node = event.node
            self.cleared[node] = True
            if not self.supervised and not self.up[node]:
                self._mark_up(node, now)
                return "recover"
            return None
        if kind == "degrade":
            self.speed_factor[event.node] = event.factor
            return None
        if kind == "surge":
            self.arrival_factor = event.factor
            return None
        raise AssertionError(kind)  # pragma: no cover

    def try_restart(self, node: int, now: float) -> bool:
        """Supervisor path: restart ``node`` if its fault has cleared.

        Returns True when the node is (now) up.
        """
        if self.up[node]:
            return True
        if not self.cleared[node]:
            return False
        self._mark_up(node, now)
        return True

    def _mark_up(self, node: int, now: float) -> None:
        self.up[node] = True
        self.recoveries += 1
        start = self._down_since[node]
        self._down_since[node] = None
        if start is not None:
            self.downtimes[node].append((start, now))

    # -- decision helpers ----------------------------------------------
    def suppress_timeout(self, forward_target: "int | None") -> bool:
        """True when the degraded policy says "serve to exhaustion":
        ``single_node`` mode with the forward target down."""
        return (
            self.degraded == "single_node"
            and forward_target is not None
            and not self.up[forward_target]
        )

    # -- reporting ------------------------------------------------------
    def availability(self, node: int, t_end: float) -> float:
        """Fraction of ``[t0, t_end]`` the node was up (an open downtime
        counts as down through ``t_end``)."""
        span = t_end - self.t0
        if span <= 0:
            return 1.0
        down = sum(e - s for s, e in self.downtimes[node])
        if self._down_since[node] is not None:
            down += t_end - self._down_since[node]
        return max(0.0, 1.0 - down / span)

    def mttr(self) -> "float | None":
        """Mean time to recovery over *completed* downtimes (None when
        no node has recovered yet)."""
        durations = [e - s for per_node in self.downtimes for s, e in per_node]
        if not durations:
            return None
        return sum(durations) / len(durations)
