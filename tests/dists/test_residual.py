"""Residual-life tests: the alpha' computation of Section 3.2."""

import numpy as np
import pytest

from repro.dists import (
    Erlang,
    HyperExponential,
    erlang_vs_exp_timeout_probability,
    h2_conditional_timeout_probability,
    h2_residual_mixing,
)
from repro.dists.residual import h2_residual


class TestTimeoutRace:
    def test_closed_form_k1(self):
        # exponential timeout: P[T < S] = t / (t + mu)
        assert erlang_vs_exp_timeout_probability(3.0, 7.0, 1) == pytest.approx(0.3)

    def test_monotone_in_k(self):
        """More Erlang stages -> longer (more deterministic) timeout ->
        less likely to beat the service."""
        ps = [erlang_vs_exp_timeout_probability(5.0, 10.0, k) for k in (1, 2, 5, 10)]
        assert all(a > b for a, b in zip(ps, ps[1:]))

    def test_monte_carlo_agreement(self):
        t, mu, k = 40.0, 10.0, 7
        p = erlang_vs_exp_timeout_probability(t, mu, k)
        rng = np.random.default_rng(5)
        timeout = Erlang(k, t).sample(60_000, rng)
        service = rng.exponential(1 / mu, 60_000)
        assert np.mean(timeout < service) == pytest.approx(p, abs=0.01)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            erlang_vs_exp_timeout_probability(-1.0, 1.0, 1)
        with pytest.raises(ValueError):
            erlang_vs_exp_timeout_probability(1.0, 1.0, 0)


class TestResidualMixing:
    def test_tilts_towards_long_jobs(self):
        """alpha' < alpha: timed-out jobs are disproportionately long."""
        a = 0.99
        ap = h2_residual_mixing(42.0, a, 100.0, 1.0, 7)
        assert ap < a

    def test_equal_rates_no_tilt(self):
        a = 0.7
        assert h2_residual_mixing(5.0, a, 2.0, 2.0, 3) == pytest.approx(a)

    def test_extreme_timeout_recovers_alpha(self):
        """A very long timeout only catches the very longest jobs; a very
        short timeout catches everyone (mix -> alpha)."""
        a = 0.9
        short = h2_residual_mixing(1e6, a, 100.0, 1.0, 1)
        assert short == pytest.approx(a, abs=1e-3)
        long = h2_residual_mixing(1e-4, a, 100.0, 1.0, 1)
        assert long < 0.2

    def test_unconditional_probability_bounds(self):
        p = h2_conditional_timeout_probability(42.0, 0.99, 100.0, 1.0, 7)
        p1 = erlang_vs_exp_timeout_probability(42.0, 100.0, 7)
        p2 = erlang_vs_exp_timeout_probability(42.0, 1.0, 7)
        assert p1 < p < p2

    def test_residual_distribution_object(self):
        d = h2_residual(42.0, 0.99, 100.0, 1.0, 7)
        assert isinstance(d, HyperExponential)
        # residual mean exceeds the original mean (long jobs over-represented)
        orig = HyperExponential.h2(0.99, 100.0, 1.0)
        assert d.mean > orig.mean

    def test_monte_carlo_mixing(self):
        """Simulate the race and check the conditional short-job fraction."""
        t, a, m1, m2, k = 30.0, 0.95, 50.0, 2.0, 5
        rng = np.random.default_rng(11)
        n = 200_000
        is_short = rng.random(n) < a
        service = np.where(
            is_short, rng.exponential(1 / m1, n), rng.exponential(1 / m2, n)
        )
        timeout = Erlang(k, t).sample(n, rng)
        timed_out = timeout < service
        emp = is_short[timed_out].mean()
        assert emp == pytest.approx(h2_residual_mixing(t, a, m1, m2, k), abs=0.01)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            h2_residual_mixing(1.0, 1.5, 1.0, 2.0, 1)
