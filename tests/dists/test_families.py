"""Tests for the concrete PH families and the paper's H2 constructors."""

import numpy as np
import pytest

from repro.dists import (
    Coxian,
    Erlang,
    Exponential,
    HyperExponential,
    h2_balanced_means,
    h2_from_mean_scv,
)


class TestExponential:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_mean_scv(self):
        d = Exponential(10.0)
        assert d.mean == pytest.approx(0.1)
        assert d.scv == pytest.approx(1.0)


class TestErlang:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            Erlang(0, 1.0)

    def test_scv_decreases_with_k(self):
        """The paper: "the variance decreases as k increases, so that for
        large k the Erlang distribution is approximately deterministic"."""
        scvs = [Erlang(k, k / 2.0).scv for k in (1, 2, 6, 20)]
        assert all(a > b for a, b in zip(scvs, scvs[1:]))
        assert scvs[-1] == pytest.approx(1 / 20)

    def test_k1_is_exponential(self):
        e, d = Exponential(3.0), Erlang(1, 3.0)
        xs = np.linspace(0, 3, 50)
        np.testing.assert_allclose(d.pdf(xs), e.pdf(xs), atol=1e-10)

    def test_timeout_clock_mean(self):
        """Figure 3 timer with n ticks + timeout action = Erlang(n+1, t)."""
        n, t = 6, 51.0
        clock = Erlang(n + 1, t)
        assert clock.mean == pytest.approx((n + 1) / t)


class TestHyperExponential:
    def test_cdf_matches_paper_formula(self):
        """F = 1 - alpha e^{-mu1 t} - (1-alpha) e^{-mu2 t} (Section 3.2)."""
        a, m1, m2 = 0.99, 100.0, 1.0
        d = HyperExponential.h2(a, m1, m2)
        ts = np.array([0.01, 0.1, 1.0, 5.0])
        expected = 1 - a * np.exp(-m1 * ts) - (1 - a) * np.exp(-m2 * ts)
        np.testing.assert_allclose(d.cdf(ts), expected, atol=1e-12)

    def test_variance_exceeds_exponential_same_mean(self):
        """Paper: H2 "has a greater variance than an exponential distribution
        of the same mean (as long as mu1 != mu2)"."""
        d = HyperExponential.h2(0.5, 4.0, 1.0)
        e = Exponential(1.0 / d.mean)
        assert d.variance > e.variance

    def test_equal_rates_degenerates_to_exponential(self):
        d = HyperExponential.h2(0.3, 2.0, 2.0)
        assert d.scv == pytest.approx(1.0)

    def test_rejects_bad_probs(self):
        with pytest.raises(ValueError):
            HyperExponential([0.6, 0.6], [1.0, 2.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            HyperExponential([0.5, 0.5], [1.0])

    def test_three_branch(self):
        d = HyperExponential([0.2, 0.3, 0.5], [1.0, 2.0, 4.0])
        assert d.mean == pytest.approx(0.2 / 1 + 0.3 / 2 + 0.5 / 4)


class TestCoxian:
    def test_all_continue_is_erlang(self):
        c = Coxian([2.0, 2.0, 2.0], [1.0, 1.0])
        e = Erlang(3, 2.0)
        assert c.mean == pytest.approx(e.mean)
        assert c.variance == pytest.approx(e.variance)

    def test_no_continue_is_exponential(self):
        c = Coxian([3.0, 1.0], [0.0])
        assert c.mean == pytest.approx(1 / 3)

    def test_rejects_bad_cont(self):
        with pytest.raises(ValueError):
            Coxian([1.0, 1.0], [1.5])


class TestPaperH2Constructors:
    def test_fig9_parameters(self):
        """Fig 9: mean 0.1, alpha = 0.99, mu1 = 100 mu2."""
        d = h2_balanced_means(0.1, 0.99, 100.0)
        assert d.mean == pytest.approx(0.1)
        assert d.rates[0] == pytest.approx(100.0 * d.rates[1])
        assert d.probs[0] == pytest.approx(0.99)

    def test_fig11_parameters_sweep(self):
        """Fig 11-12: mu1 = 10 mu2, alpha in [0.89, 0.99], mean 0.1."""
        for a in np.linspace(0.89, 0.99, 6):
            d = h2_balanced_means(0.1, a, 10.0)
            assert d.mean == pytest.approx(0.1)
            assert d.rates[0] == pytest.approx(10.0 * d.rates[1])

    def test_long_jobs_get_longer_as_alpha_grows(self):
        """Paper (Fig 11 discussion): as alpha increases, the long jobs'
        mean increases to keep the overall mean constant."""
        means_long = [
            1.0 / h2_balanced_means(0.1, a, 10.0).rates[1]
            for a in (0.89, 0.94, 0.99)
        ]
        assert means_long[0] < means_long[1] < means_long[2]

    def test_rejects_alpha_bounds(self):
        with pytest.raises(ValueError):
            h2_balanced_means(0.1, 1.0, 10.0)

    def test_mean_scv_fit_roundtrip(self):
        d = h2_from_mean_scv(0.1, 20.0)
        assert d.mean == pytest.approx(0.1)
        assert d.scv == pytest.approx(20.0)

    def test_mean_scv_one_gives_exponential(self):
        d = h2_from_mean_scv(0.25, 1.0)
        assert isinstance(d, Exponential)
        assert d.mean == pytest.approx(0.25)

    def test_mean_scv_below_one_rejected(self):
        with pytest.raises(ValueError):
            h2_from_mean_scv(1.0, 0.5)
