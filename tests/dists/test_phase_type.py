"""Tests for the general PH(alpha, T) machinery."""

import numpy as np
import pytest

from repro.dists import Erlang, Exponential, HyperExponential, PhaseType


class TestValidation:
    def test_rejects_nonsquare_T(self):
        with pytest.raises(ValueError, match="square"):
            PhaseType([1.0], np.zeros((1, 2)))

    def test_rejects_alpha_shape(self):
        with pytest.raises(ValueError, match="alpha shape"):
            PhaseType([0.5, 0.5], [[-1.0]])

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError, match="negative"):
            PhaseType([-0.1, 1.1], np.diag([-1.0, -1.0]))

    def test_rejects_alpha_above_one(self):
        with pytest.raises(ValueError, match="sums to"):
            PhaseType([0.8, 0.8], np.diag([-1.0, -1.0]))

    def test_rejects_positive_diagonal(self):
        with pytest.raises(ValueError, match="diagonal"):
            PhaseType([1.0], [[1.0]])

    def test_rejects_positive_rowsum(self):
        T = np.array([[-1.0, 2.0], [0.0, -1.0]])
        with pytest.raises(ValueError, match="row sums"):
            PhaseType([1.0, 0.0], T)

    def test_atom_at_zero(self):
        d = PhaseType([0.7], [[-2.0]])
        assert d.atom_at_zero == pytest.approx(0.3)


class TestAgainstExponential:
    """A one-phase PH must agree with Exponential closed forms."""

    def setup_method(self):
        self.ph = PhaseType([1.0], [[-3.0]])

    def test_mean(self):
        assert self.ph.mean == pytest.approx(1 / 3)

    def test_variance(self):
        assert self.ph.variance == pytest.approx(1 / 9)

    def test_scv_is_one(self):
        assert self.ph.scv == pytest.approx(1.0)

    def test_pdf(self):
        xs = np.array([0.0, 0.5, 2.0])
        np.testing.assert_allclose(self.ph.pdf(xs), 3 * np.exp(-3 * xs), atol=1e-10)

    def test_cdf(self):
        xs = np.array([0.0, 0.5, 2.0])
        np.testing.assert_allclose(self.ph.cdf(xs), 1 - np.exp(-3 * xs), atol=1e-10)

    def test_laplace(self):
        s = np.array([0.5, 1.0, 4.0])
        np.testing.assert_allclose(
            self.ph.laplace_transform(s), 3.0 / (3.0 + s), atol=1e-12
        )


class TestMoments:
    def test_erlang_moments(self):
        d = Erlang(4, 2.0)
        assert d.mean == pytest.approx(2.0)
        assert d.variance == pytest.approx(1.0)
        assert d.scv == pytest.approx(0.25)
        # third raw moment of gamma(k, 1/r): k(k+1)(k+2)/r^3
        assert d.moment(3) == pytest.approx(4 * 5 * 6 / 8)

    def test_moment_zero(self):
        assert Exponential(1.0).moment(0) == 1.0

    def test_negative_moment_rejected(self):
        with pytest.raises(ValueError):
            Exponential(1.0).moment(-1)

    def test_h2_mean(self):
        d = HyperExponential.h2(0.99, 100.0, 1.0)
        assert d.mean == pytest.approx(0.99 / 100 + 0.01 / 1.0)

    def test_h2_scv_above_one(self):
        d = HyperExponential.h2(0.99, 100.0, 1.0)
        assert d.scv > 1.0


class TestSampling:
    @pytest.mark.parametrize(
        "dist",
        [
            Exponential(2.0),
            Erlang(3, 4.0),
            HyperExponential.h2(0.9, 10.0, 0.5),
        ],
        ids=["exp", "erlang", "h2"],
    )
    def test_sample_mean_matches(self, dist):
        rng = np.random.default_rng(1234)
        xs = dist.sample(40_000, rng)
        assert xs.min() > 0
        assert np.mean(xs) == pytest.approx(dist.mean, rel=0.05)

    def test_generic_ph_sampler(self):
        # two-phase Coxian-like PH sampled through the generic walker
        T = np.array([[-5.0, 2.0], [0.0, -1.0]])
        d = PhaseType([1.0, 0.0], T)
        rng = np.random.default_rng(7)
        xs = d.sample(40_000, rng)
        assert np.mean(xs) == pytest.approx(d.mean, rel=0.05)

    def test_atom_at_zero_sampling(self):
        d = PhaseType([0.5], [[-1.0]])
        rng = np.random.default_rng(3)
        xs = d.sample(10_000, rng)
        assert np.mean(xs == 0.0) == pytest.approx(0.5, abs=0.02)


class TestCdfPdfConsistency:
    def test_cdf_monotone_and_limits(self):
        d = HyperExponential.h2(0.8, 5.0, 0.5)
        xs = np.linspace(0, 20, 200)
        F = d.cdf(xs)
        assert np.all(np.diff(F) >= -1e-12)
        assert F[0] == pytest.approx(0.0, abs=1e-9)
        assert F[-1] == pytest.approx(1.0, abs=1e-3)

    def test_pdf_integrates_to_one(self):
        d = Erlang(3, 2.0)
        xs = np.linspace(0, 15, 4001)
        integral = np.trapezoid(d.pdf(xs), xs)
        assert integral == pytest.approx(1.0, abs=1e-4)

    def test_negative_x_zero(self):
        d = Exponential(1.0)
        assert d.pdf(np.array([-1.0]))[0] == 0.0
        assert d.cdf(np.array([-1.0]))[0] == 0.0
