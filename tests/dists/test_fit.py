"""EM fitting tests (the EMpht replacement)."""

import numpy as np
import pytest

from repro.dists import (
    BoundedPareto,
    Erlang,
    HyperExponential,
    fit_erlang_mixture,
    fit_hyperexponential,
)


class TestHyperExpFit:
    def test_recovers_planted_h2(self):
        true = HyperExponential.h2(0.9, 20.0, 0.5)
        rng = np.random.default_rng(42)
        data = true.sample(60_000, rng)
        res = fit_hyperexponential(data, k=2)
        assert res.converged
        assert res.dist.mean == pytest.approx(true.mean, rel=0.05)
        # component recovery (fastest-first ordering)
        assert res.dist.rates[0] == pytest.approx(20.0, rel=0.15)
        assert res.dist.probs[0] == pytest.approx(0.9, abs=0.03)

    def test_likelihood_monotone(self):
        rng = np.random.default_rng(0)
        data = HyperExponential.h2(0.7, 5.0, 0.2).sample(5_000, rng)
        res = fit_hyperexponential(data, k=2)
        assert np.all(np.diff(res.trace) >= -1e-6)

    def test_k1_is_mle_exponential(self):
        rng = np.random.default_rng(3)
        data = rng.exponential(0.25, 10_000)
        res = fit_hyperexponential(data, k=1)
        assert res.dist.rates[0] == pytest.approx(1.0 / data.mean(), rel=1e-6)

    def test_fits_bounded_pareto_mean(self):
        """The paper's H2 'broadly corresponds' to a bounded Pareto; the EM
        fit must at least match the mean and produce SCV > 1."""
        bp = BoundedPareto(0.02, 20.0, 1.1)
        rng = np.random.default_rng(9)
        data = bp.sample(50_000, rng)
        res = fit_hyperexponential(data, k=2)
        assert res.dist.mean == pytest.approx(data.mean(), rel=0.05)
        assert res.dist.scv > 1.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_hyperexponential([1.0])
        with pytest.raises(ValueError):
            fit_hyperexponential([1.0, -1.0])
        with pytest.raises(ValueError):
            fit_hyperexponential([1.0, 2.0], k=0)


class TestDegenerateWindows:
    """Small / pathological samples, as produced by the serve
    controller's sliding estimation window: the EM must either fit or
    raise ``ValueError`` -- never emit NaN/zero rates.  (The controller
    itself goes through :func:`repro.serve.fit_demands_soft`, which maps
    the raises to a soft ``None``.)"""

    def assert_sane(self, res, data):
        rates = np.asarray(res.dist.rates)
        assert np.all(np.isfinite(rates)) and rates.min() > 0
        assert np.isfinite(res.log_likelihood)
        assert res.dist.mean == pytest.approx(np.mean(data), rel=1e-6)

    @pytest.mark.parametrize("n", [2, 3, 5, 9])
    def test_tiny_windows_fit_finite(self, n):
        """n < 10 points: far too few to identify two phases, but the
        moment-matched mean must still come back finite."""
        rng = np.random.default_rng(n)
        data = rng.exponential(0.1, n)
        self.assert_sane(fit_hyperexponential(data, k=2), data)

    def test_all_equal_window(self):
        """Zero-variance data (deterministic trace replay): the fit
        collapses to identical rates 1/mean in both components."""
        data = [2.0] * 50
        res = fit_hyperexponential(data, k=2)
        self.assert_sane(res, data)
        assert res.dist.rates[0] == pytest.approx(0.5, rel=1e-6)
        assert res.dist.rates[1] == pytest.approx(0.5, rel=1e-6)
        assert res.dist.scv == pytest.approx(1.0, rel=1e-6)

    def test_single_phase_collapse(self):
        """Exponential data under k=2: the components merge onto the
        exponential MLE rather than one rate running away."""
        rng = np.random.default_rng(0)
        data = rng.exponential(0.1, 200)
        res = fit_hyperexponential(data, k=2)
        self.assert_sane(res, data)
        mle = 1.0 / data.mean()
        assert res.dist.rates[0] == pytest.approx(mle, rel=0.05)
        assert res.dist.rates[1] == pytest.approx(mle, rel=0.05)

    def test_single_point_still_rejected(self):
        with pytest.raises(ValueError):
            fit_hyperexponential([1.0], k=2)


class TestErlangMixtureFit:
    def test_recovers_pure_erlang(self):
        true = Erlang(4, 8.0)
        rng = np.random.default_rng(17)
        data = true.sample(40_000, rng)
        res = fit_erlang_mixture(data, shapes=[4])
        assert res.converged
        assert res.dist.mean == pytest.approx(true.mean, rel=0.02)
        assert res.dist.scv == pytest.approx(0.25, abs=0.02)

    def test_mixture_of_two_shapes(self):
        rng = np.random.default_rng(23)
        a = Erlang(2, 10.0).sample(20_000, rng)
        b = Erlang(6, 1.0).sample(20_000, rng)
        data = np.concatenate([a, b])
        res = fit_erlang_mixture(data, shapes=[2, 6])
        assert res.dist.mean == pytest.approx(data.mean(), rel=0.05)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            fit_erlang_mixture([1.0, 2.0], shapes=[0])
