"""Empirical-distribution tests: the trace -> fit -> simulate pipeline."""

import numpy as np
import pytest

from repro.dists import BoundedPareto, HyperExponential
from repro.dists.empirical import EmpiricalDistribution


@pytest.fixture(scope="module")
def trace():
    rng = np.random.default_rng(99)
    return HyperExponential.h2(0.95, 20.0, 0.5).sample(30_000, rng)


class TestBasics:
    def test_moments_match_data(self, trace):
        d = EmpiricalDistribution(trace)
        assert d.mean == pytest.approx(trace.mean())
        assert d.scv == pytest.approx(trace.var() / trace.mean() ** 2)

    def test_cdf_step_function(self):
        d = EmpiricalDistribution([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(d.cdf([0.5, 1.0, 2.5, 4.0]), [0, 0.25, 0.5, 1.0])

    def test_quantiles(self, trace):
        d = EmpiricalDistribution(trace)
        assert d.quantile(0.5) == pytest.approx(np.median(trace))

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([1.0])
        with pytest.raises(ValueError):
            EmpiricalDistribution([1.0, -2.0])

    def test_from_file(self, tmp_path, trace):
        path = tmp_path / "trace.txt"
        np.savetxt(path, trace[:100])
        d = EmpiricalDistribution.from_file(path)
        assert d.data.size == 100


class TestSampling:
    def test_bootstrap_mean(self, trace):
        d = EmpiricalDistribution(trace)
        xs = d.sample(50_000, np.random.default_rng(1))
        assert xs.mean() == pytest.approx(d.mean, rel=0.05)

    def test_samples_come_from_data(self):
        d = EmpiricalDistribution([1.0, 5.0, 9.0])
        xs = d.sample(100, np.random.default_rng(0))
        assert set(np.unique(xs)) <= {1.0, 5.0, 9.0}


class TestPipeline:
    def test_fit_h2_recovers_trace_shape(self, trace):
        d = EmpiricalDistribution(trace)
        res = d.fit_h2()
        assert res.dist.mean == pytest.approx(d.mean, rel=0.03)
        assert res.dist.scv == pytest.approx(d.scv, rel=0.25)

    def test_simulator_accepts_empirical(self, trace):
        from repro.sim import PoissonArrivals, RandomPolicy, Simulation

        d = EmpiricalDistribution(trace)
        sim = Simulation(
            PoissonArrivals(2.0), d, RandomPolicy(weights=(1.0,)), (10,), seed=0
        )
        res = sim.run(t_end=2_000.0, warmup=100.0)
        assert res.completed > 1000

    def test_trace_to_ctmc_pipeline(self):
        """bounded Pareto trace -> H2 fit -> TAGS CTMC runs end to end."""
        rng = np.random.default_rng(5)
        trace = BoundedPareto(0.03, 30.0, 1.2).sample(20_000, rng)
        d = EmpiricalDistribution(trace)
        fit = d.fit_h2()
        mu1, mu2 = fit.dist.rates
        a = float(fit.dist.probs[0])
        from repro.models import TagsHyperExponential

        m = TagsHyperExponential(
            lam=4.0, alpha=a, mu1=float(mu1), mu2=float(mu2),
            t=20.0, n=3, K1=5, K2=5,
        ).metrics()
        assert m.throughput > 0
