"""Bounded Pareto tests (Harchol-Balter's workload distribution)."""

import numpy as np
import pytest

from repro.dists import BoundedPareto


class TestValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            BoundedPareto(2.0, 1.0, 1.1)

    def test_rejects_bad_tail(self):
        with pytest.raises(ValueError):
            BoundedPareto(1.0, 10.0, 0.0)


class TestMoments:
    def test_mean_by_quadrature(self):
        d = BoundedPareto(1.0, 1000.0, 1.1)
        xs = np.linspace(1.0, 1000.0, 400_000)
        mean_num = np.trapezoid(xs * d.pdf(xs), xs)
        assert d.mean == pytest.approx(mean_num, rel=1e-3)

    def test_moment_at_tail_index(self):
        # r == a hits the logarithmic branch
        d = BoundedPareto(1.0, 100.0, 2.0)
        xs = np.linspace(1.0, 100.0, 400_000)
        m2_num = np.trapezoid(xs**2 * d.pdf(xs), xs)
        assert d.moment(2) == pytest.approx(m2_num, rel=1e-3)

    def test_high_variability(self):
        """Harchol-Balter's canonical parameters give enormous SCV."""
        d = BoundedPareto(512.0, 10.0**10, 1.1)
        assert d.scv > 100.0


class TestCdfSampling:
    def test_cdf_limits(self):
        d = BoundedPareto(2.0, 50.0, 1.5)
        assert d.cdf(np.array([1.0]))[0] == 0.0
        assert d.cdf(np.array([50.0]))[0] == pytest.approx(1.0)
        assert d.cdf(np.array([100.0]))[0] == 1.0

    def test_samples_within_bounds(self):
        d = BoundedPareto(1.0, 100.0, 1.1)
        xs = d.sample(10_000, np.random.default_rng(0))
        assert xs.min() >= 1.0
        assert xs.max() <= 100.0

    def test_sample_mean(self):
        d = BoundedPareto(1.0, 100.0, 1.5)
        xs = d.sample(200_000, np.random.default_rng(1))
        assert xs.mean() == pytest.approx(d.mean, rel=0.02)

    def test_sample_cdf_agreement(self):
        d = BoundedPareto(1.0, 30.0, 2.0)
        xs = d.sample(100_000, np.random.default_rng(2))
        for q in (2.0, 5.0, 15.0):
            assert np.mean(xs <= q) == pytest.approx(d.cdf(np.array([q]))[0], abs=0.01)
