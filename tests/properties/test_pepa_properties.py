"""Property-based tests of the PEPA engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import steady_state
from repro.pepa import (
    Activity,
    Choice,
    Constant,
    Cooperation,
    Model,
    Prefix,
    Rate,
    explore,
    parse_model,
    to_generator,
    top,
    transitions,
)
from repro.pepa.semantics import TransitionContext

rates = st.floats(0.05, 50.0, allow_nan=False)


@st.composite
def birth_death_models(draw):
    """Random M/M/1/K as PEPA source text."""
    K = draw(st.integers(1, 8))
    lam = draw(rates)
    mu = draw(rates)
    lines = [f"lam = {lam}; mu = {mu};", "Q0 = (arr, lam).Q1;"]
    for i in range(1, K):
        lines.append(f"Q{i} = (arr, lam).Q{i + 1} + (srv, mu).Q{i - 1};")
    lines.append(f"Q{K} = (srv, mu).Q{K - 1};")
    lines.append("Q0;")
    return "\n".join(lines), lam, mu, K


class TestParserExploreSolve:
    @given(birth_death_models())
    @settings(max_examples=25, deadline=None)
    def test_mm1k_roundtrip(self, case):
        src, lam, mu, K = case
        space = explore(parse_model(src))
        assert space.n_states == K + 1
        pi = steady_state(to_generator(space))
        rho = lam / mu
        exact = rho ** np.arange(K + 1)
        exact /= exact.sum()
        # states are discovered in order Q0, Q1, ...
        order = np.argsort([int(space.local_names(i)[0][1:]) for i in range(K + 1)])
        np.testing.assert_allclose(pi[order], exact, atol=1e-7)


class TestCooperationLaws:
    @given(rates, rates)
    def test_shared_rate_never_exceeds_either_side(self, r1, r2):
        P, Q = Constant("P"), Constant("Q")
        m = Model(
            {
                "P": Prefix(Activity("a", Rate(r1)), P),
                "Q": Prefix(Activity("a", Rate(r2)), Q),
            },
            P,
        )
        c = Cooperation(P, Q, frozenset({"a"}))
        trs = transitions(c, m)
        total = sum(r.value for _, r, _ in trs)
        assert total <= min(r1, r2) + 1e-12

    @given(rates, st.integers(1, 5))
    def test_choice_apparent_rate_additive(self, r, k):
        """k identical branches of (a, r) give apparent rate k*r."""
        P = Constant("P")
        body = Prefix(Activity("a", Rate(r)), P)
        comp = body
        for _ in range(k - 1):
            comp = Choice(comp, body)
        m = Model({"P": comp}, P)
        ctx = TransitionContext(m)
        assert ctx.apparent_rate(P, "a").value == pytest.approx(k * r)

    @given(rates, rates, rates)
    def test_cooperation_commutative_in_rates(self, r1, r2, w):
        """Total synchronised rate is symmetric in the two sides."""
        P, Q = Constant("P"), Constant("Q")

        def total(ra, rb):
            m = Model(
                {
                    "P": Prefix(Activity("a", Rate(ra)), P),
                    "Q": Prefix(Activity("a", Rate(rb)), Q),
                },
                P,
            )
            c = Cooperation(P, Q, frozenset({"a"}))
            return sum(r.value for _, r, _ in transitions(c, m))

        assert total(r1, r2) == pytest.approx(total(r2, r1))

    @given(rates, st.floats(0.1, 10.0))
    def test_passive_weights_set_branching_only(self, active, w):
        """Two passive branches with weights w and 2w split the active rate
        1:2 regardless of w."""
        P, Q, Q1, Q2 = (Constant(x) for x in ("P", "Q", "Q1", "Q2"))
        m = Model(
            {
                "P": Prefix(Activity("a", Rate(active)), P),
                "Q": Choice(
                    Prefix(Activity("a", top(w)), Q1),
                    Prefix(Activity("a", top(2 * w)), Q2),
                ),
                "Q1": Prefix(Activity("x", Rate(1.0)), Q),
                "Q2": Prefix(Activity("x", Rate(1.0)), Q),
            },
            P,
        )
        c = Cooperation(P, Q, frozenset({"a"}))
        trs = sorted(
            (r.value for _, r, _ in transitions(c, m))
        )
        assert sum(trs) == pytest.approx(active)
        assert trs[1] == pytest.approx(2 * trs[0])


class TestStateSpaceProperties:
    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_parallel_composition_state_count_multiplies(self, k1, k2):
        """Independent components: |S1 x S2| = |S1| * |S2|."""
        def cycle(prefix, k, action):
            lines = []
            for i in range(k):
                lines.append(
                    f"{prefix}{i} = ({action}, 1.0).{prefix}{(i + 1) % k};"
                )
            return "\n".join(lines)

        src = cycle("A", k1, "a") + "\n" + cycle("B", k2, "b") + "\nA0 || B0;"
        space = explore(parse_model(src))
        assert space.n_states == k1 * k2
