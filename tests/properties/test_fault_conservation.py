"""Property: no fault storm can lose track of a job.

For any seeded FaultPlan and any allocation policy, every arrival the
simulator offered must be accounted for exactly once at the end of the
run::

    completed + dropped_arrival + dropped_forward
              + lost_to_failure + still_queued == offered

This is the invariant the whole ``repro.faults`` layer is built around:
crash-time queue surgery, requeue/drop semantics, degraded-mode kills
and down-node shedding may *reclassify* a job, but can never leak or
double-count one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dists import Exponential
from repro.faults import FaultInjector, FaultPlan
from repro.sim import (
    ErlangTimeout,
    JSQPolicy,
    PoissonArrivals,
    RandomPolicy,
    Simulation,
    TagsPolicy,
)

HORIZON = 600.0

POLICIES = {
    "tags": lambda: TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
    "tags_resume": lambda: TagsPolicy(
        timeouts=(ErlangTimeout(6, 51.0),), resume=True
    ),
    "random": lambda: RandomPolicy(weights=(0.5, 0.5)),
    "jsq": lambda: JSQPolicy(),
}

plans = st.builds(
    lambda seed, crash, repair: FaultPlan.generate(
        horizon=HORIZON,
        crash_rate=crash,
        repair_rate=repair,
        nodes=(0, 1),
        seed=seed,
    ),
    seed=st.integers(0, 2**31),
    crash=st.floats(0.0, 0.05, allow_nan=False),
    repair=st.floats(0.01, 0.5, allow_nan=False),
)


@settings(max_examples=25, deadline=None)
@given(
    plan=plans,
    policy=st.sampled_from(sorted(POLICIES)),
    on_crash=st.sampled_from(["requeue", "drop"]),
    degraded=st.sampled_from(["shed", "single_node"]),
    seed=st.integers(0, 2**31),
)
def test_every_arrival_accounted_exactly_once(
    plan, policy, on_crash, degraded, seed
):
    sim = Simulation(
        PoissonArrivals(6.0),
        Exponential(10.0),
        POLICIES[policy](),
        (8, 8),
        seed=seed,
        faults=FaultInjector(plan, on_crash=on_crash, degraded=degraded),
    )
    res = sim.run(t_end=HORIZON)
    assert res.accounted == res.offered
    assert res.lost_to_failure >= 0
    assert res.still_queued >= 0
    assert res.work_wasted >= 0.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_conservation_survives_mid_storm_cutoff(seed):
    """Ending the run in the middle of an outage (open downtime, jobs
    parked in a down node's queue) must still balance."""
    plan = FaultPlan.script(
        (HORIZON / 3, "node_crash", 1),
        (HORIZON / 2, "node_crash", 0),
    )
    sim = Simulation(
        PoissonArrivals(6.0),
        Exponential(10.0),
        TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
        (8, 8),
        seed=seed,
        faults=FaultInjector(plan),
    )
    res = sim.run(t_end=HORIZON)
    assert res.accounted == res.offered
    assert res.still_queued >= 0
