"""Property-based tests of the phase-type machinery."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dists import (
    Erlang,
    Exponential,
    HyperExponential,
    h2_balanced_means,
    h2_from_mean_scv,
)
from repro.dists.residual import (
    erlang_vs_exp_timeout_probability,
    h2_residual_mixing,
)

rates = st.floats(0.01, 100.0, allow_nan=False, allow_infinity=False)
probs = st.floats(0.01, 0.99)
shapes = st.integers(1, 20)


class TestFamilyInvariants:
    @given(shapes, rates)
    def test_erlang_scv_is_inverse_shape(self, k, r):
        d = Erlang(k, r)
        assert d.scv == pytest.approx(1.0 / k, rel=1e-6)
        assert d.mean == pytest.approx(k / r, rel=1e-9)

    @given(probs, rates, rates)
    def test_hyperexp_scv_at_least_one(self, a, r1, r2):
        d = HyperExponential.h2(a, r1, r2)
        assert d.scv >= 1.0 - 1e-9

    @given(probs, rates, rates)
    def test_hyperexp_mean_formula(self, a, r1, r2):
        d = HyperExponential.h2(a, r1, r2)
        assert d.mean == pytest.approx(a / r1 + (1 - a) / r2, rel=1e-9)

    @given(probs, rates, rates, st.floats(0.0, 10.0))
    def test_cdf_bounds_and_monotonicity(self, a, r1, r2, x):
        d = HyperExponential.h2(a, r1, r2)
        f1 = float(d.cdf(np.array([x]))[0])
        f2 = float(d.cdf(np.array([x + 0.5]))[0])
        assert 0.0 <= f1 <= f2 <= 1.0

    @given(st.floats(0.01, 10.0), probs, st.floats(1.5, 500.0))
    def test_balanced_means_constructor(self, mean, a, ratio):
        d = h2_balanced_means(mean, a, ratio)
        assert d.mean == pytest.approx(mean, rel=1e-9)
        assert d.rates[0] == pytest.approx(ratio * d.rates[1], rel=1e-9)

    @given(st.floats(0.01, 10.0), st.floats(1.0, 50.0))
    def test_mean_scv_roundtrip(self, mean, scv):
        d = h2_from_mean_scv(mean, scv)
        assert d.mean == pytest.approx(mean, rel=1e-8)
        assert d.scv == pytest.approx(scv, rel=1e-6)


class TestResidualInvariants:
    @given(rates, rates, shapes)
    def test_timeout_probability_in_unit_interval(self, t, mu, k):
        p = erlang_vs_exp_timeout_probability(t, mu, k)
        assert 0.0 < p < 1.0

    @given(rates, rates, shapes)
    def test_timeout_probability_decreases_in_mu(self, t, mu, k):
        p1 = erlang_vs_exp_timeout_probability(t, mu, k)
        p2 = erlang_vs_exp_timeout_probability(t, mu * 2, k)
        assert p2 < p1

    @given(rates, probs, rates, rates, shapes)
    def test_residual_mixing_tilts_towards_long(self, t, a, m1, m2, k):
        """If mu1 >= mu2 (short jobs faster), alpha' <= alpha."""
        mu1, mu2 = max(m1, m2), min(m1, m2)
        assume(mu1 > mu2)
        ap = h2_residual_mixing(t, a, mu1, mu2, k)
        assert 0.0 <= ap <= a + 1e-12

    @given(rates, probs, rates, shapes)
    def test_equal_rates_identity(self, t, a, mu, k):
        assert h2_residual_mixing(t, a, mu, mu, k) == pytest.approx(a)


class TestSamplingLaws:
    @given(probs, st.floats(0.5, 20.0))
    @settings(max_examples=10, deadline=None)
    def test_h2_sample_mean(self, a, r1):
        d = HyperExponential.h2(a, r1, r1 / 5.0)
        xs = d.sample(20_000, np.random.default_rng(0))
        assert xs.mean() == pytest.approx(d.mean, rel=0.1)
