"""Property-based round-trip: random PEPA ASTs survive print -> parse."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pepa import (
    Activity,
    Choice,
    Constant,
    Cooperation,
    Hiding,
    Prefix,
    Rate,
    parse_component,
    pretty_component,
    top,
)

action_names = st.sampled_from(["a", "b", "go", "serve", "tick1"])
const_names = st.sampled_from(["P", "Q", "R1", "Queue_0"])
rates = st.one_of(
    st.floats(0.001, 1000.0, allow_nan=False).map(Rate),
    st.just(top()),
    st.floats(0.5, 8.0).map(top),
)


def components(max_depth=4):
    base = const_names.map(Constant)

    def extend(children):
        prefix = st.builds(
            Prefix,
            st.builds(Activity, action_names, rates),
            children,
        )
        choice = st.builds(Choice, children, children)
        coop = st.builds(
            Cooperation,
            children,
            children,
            st.sets(action_names, max_size=3).map(frozenset),
        )
        hide = st.builds(
            Hiding,
            children,
            st.sets(action_names, min_size=1, max_size=2).map(frozenset),
        )
        return st.one_of(prefix, choice, coop, hide)

    return st.recursive(base, extend, max_leaves=12)


class TestPrettyRoundTrip:
    @given(components())
    @settings(max_examples=200, deadline=None)
    def test_parse_of_pretty_is_identity(self, comp):
        text = pretty_component(comp)
        assert parse_component(text) == comp

    @given(components())
    @settings(max_examples=50, deadline=None)
    def test_pretty_is_stable(self, comp):
        """pretty(parse(pretty(x))) == pretty(x): printing is idempotent."""
        once = pretty_component(comp)
        twice = pretty_component(parse_component(once))
        assert once == twice
