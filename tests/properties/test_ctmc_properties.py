"""Property-based tests of the CTMC substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import Generator, steady_state, transient_distribution
from repro.ctmc.steady import steady_state_direct, steady_state_gth


@st.composite
def irreducible_generators(draw, max_states: int = 12):
    """Random irreducible generators: a ring plus random extra edges."""
    n = draw(st.integers(2, max_states))
    rates = draw(
        st.lists(
            st.floats(0.05, 20.0, allow_nan=False),
            min_size=2 * n,
            max_size=2 * n,
        )
    )
    src = list(range(n)) + [(i + 1) % n for i in range(n)]
    dst = [(i + 1) % n for i in range(n)] + list(range(n))
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1),
                      st.floats(0.05, 5.0)),
            max_size=10,
        )
    )
    for a, b, r in extra:
        if a != b:
            src.append(a)
            dst.append(b)
            rates.append(r)
    return Generator.from_triples(n, src, dst, rates[: len(src)])


class TestSteadyStateProperties:
    @given(irreducible_generators())
    @settings(max_examples=40, deadline=None)
    def test_is_stationary_distribution(self, g):
        pi = steady_state(g)
        assert pi.min() >= 0
        assert pi.sum() == pytest.approx(1.0)
        assert np.abs(pi @ g.Q.toarray()).max() < 1e-7 * max(
            1.0, g.uniformization_rate
        )

    @given(irreducible_generators())
    @settings(max_examples=25, deadline=None)
    def test_gth_and_direct_agree(self, g):
        np.testing.assert_allclose(
            steady_state_gth(g), steady_state_direct(g), atol=1e-7
        )

    @given(irreducible_generators(), st.floats(0.01, 5.0))
    @settings(max_examples=20, deadline=None)
    def test_steady_state_invariant_under_uniform_scaling(self, g, c):
        """pi(cQ) == pi(Q): time-rescaling does not move the stationary
        distribution."""
        g2 = Generator(g.Q * c, validate=False)
        np.testing.assert_allclose(steady_state(g), steady_state(g2), atol=1e-7)


class TestTransientProperties:
    @given(irreducible_generators(), st.floats(0.0, 3.0))
    @settings(max_examples=25, deadline=None)
    def test_distribution_stays_normalised(self, g, t):
        p0 = np.zeros(g.n_states)
        p0[0] = 1.0
        pt = transient_distribution(g, p0, t)
        assert pt.min() >= -1e-12
        assert pt.sum() == pytest.approx(1.0)

    @given(irreducible_generators(), st.floats(0.05, 1.5), st.floats(0.05, 1.5))
    @settings(max_examples=15, deadline=None)
    def test_chapman_kolmogorov(self, g, t1, t2):
        """p(t1 + t2) reached directly equals stepping through t1."""
        p0 = np.zeros(g.n_states)
        p0[0] = 1.0
        direct = transient_distribution(g, p0, t1 + t2)
        stepped = transient_distribution(
            g, transient_distribution(g, p0, t1), t2
        )
        np.testing.assert_allclose(direct, stepped, atol=1e-8)
