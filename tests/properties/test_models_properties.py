"""Property-based tests of the queueing models and the batch calculator."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.batch import tags_batch_completion_times, tags_batch_mean_response
from repro.dists import Exponential
from repro.models import MM1K, MPH1K, ShortestQueue, TagsExponential

rates = st.floats(0.5, 30.0, allow_nan=False)
small_caps = st.integers(1, 6)


class TestMM1KProperties:
    @given(rates, rates, st.integers(1, 30))
    def test_flow_balance(self, lam, mu, K):
        q = MM1K(lam, mu, K)
        assert q.throughput + q.loss_rate == pytest.approx(lam, rel=1e-9)

    @given(rates, rates, st.integers(1, 20))
    def test_mph1k_degeneracy(self, lam, mu, K):
        ana = MM1K(lam, mu, K)
        ph = MPH1K(lam, Exponential(mu), K)
        assert ph.mean_jobs == pytest.approx(ana.mean_jobs, rel=1e-7)

    @given(rates, rates, st.integers(1, 15))
    def test_capacity_monotone(self, lam, mu, K):
        """More room never reduces throughput."""
        a = MM1K(lam, mu, K)
        b = MM1K(lam, mu, K + 1)
        assert b.throughput >= a.throughput - 1e-12


class TestTagsChainProperties:
    @given(
        st.floats(1.0, 14.0),
        st.floats(5.0, 15.0),
        st.floats(2.0, 120.0),
        st.integers(1, 4),
        small_caps,
        small_caps,
    )
    @settings(max_examples=20, deadline=None)
    def test_flow_conservation_and_bounds(self, lam, mu, t, n, K1, K2):
        m = TagsExponential(lam=lam, mu=mu, t=t, n=n, K1=K1, K2=K2).metrics()
        assert m.throughput + m.loss_rate == pytest.approx(lam, abs=1e-7)
        assert 0 <= m.mean_jobs_per_node[0] <= K1 + 1e-9
        assert 0 <= m.mean_jobs_per_node[1] <= K2 + 1e-9
        assert m.loss_per_node[0] >= -1e-10
        assert m.loss_per_node[1] >= -1e-10

    @given(st.floats(1.0, 14.0), st.floats(2.0, 120.0))
    @settings(max_examples=15, deadline=None)
    def test_state_count_formula(self, lam, t):
        n, K1, K2 = 3, 4, 5
        m = TagsExponential(lam=lam, mu=10.0, t=t, n=n, K1=K1, K2=K2)
        assert m.n_states == (K1 * n + 1) * (K2 * (n + 1) + 1)


class TestJsqProperties:
    @given(st.floats(1.0, 25.0), rates, st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_jsq_beats_or_ties_random_exponential(self, lam, mu, K):
        """JSQ is the optimal policy for exponential service."""
        from repro.models import RandomAllocation

        jsq = ShortestQueue(lam=lam, service=mu, K=K).metrics()
        rnd = RandomAllocation(lam=lam, service=mu, K=K).metrics()
        # Throughput is the universally valid comparison: population and
        # even per-job response time can be larger under JSQ because it
        # admits jobs random would have dropped (e.g. overload at small K)
        assert jsq.throughput >= rnd.throughput - 1e-9

    @given(st.floats(1.0, 12.0), st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_jsq_response_time_under_moderate_load(self, lam, K):
        """With both queues jointly underloaded (rho <= 0.75) loss is
        second-order and JSQ's response time wins too."""
        from repro.models import RandomAllocation

        mu = lam / 1.5  # joint utilisation 0.75
        jsq = ShortestQueue(lam=lam, service=mu, K=K).metrics()
        rnd = RandomAllocation(lam=lam, service=mu, K=K).metrics()
        assert jsq.response_time <= rnd.response_time + 1e-9


class TestBatchProperties:
    demands = st.lists(st.floats(0.1, 50.0), min_size=1, max_size=12)

    @given(demands)
    def test_completion_at_least_demand(self, ds):
        c = tags_batch_completion_times(ds, ())
        assert np.all(c >= np.asarray(ds) - 1e-12)

    @given(demands, st.floats(0.1, 100.0))
    def test_conservation_single_node_work(self, ds, tau):
        """Total completion span at node 1 never exceeds the no-timeout
        makespan (killing only removes work from node 1)."""
        c_plain = tags_batch_completion_times(ds, ())
        assert c_plain.max() == pytest.approx(sum(ds))

    @given(demands)
    def test_huge_timeout_equals_no_timeout(self, ds):
        big = max(ds) + 1.0
        np.testing.assert_allclose(
            tags_batch_completion_times(ds, (big,)),
            tags_batch_completion_times(ds, ()),
        )

    @given(demands, st.floats(0.1, 100.0))
    def test_two_nodes_with_timeout_bounded_by_kill_overhead(self, ds, tau):
        """Each job's completion is at most no-timeout makespan + tau * #jobs
        (crude upper bound: sanity against runaway recursion)."""
        c = tags_batch_completion_times(ds, (tau,))
        bound = sum(ds) + tau * len(ds)
        assert np.all(c <= bound + 1e-9)

    @given(demands)
    def test_mean_response_matches_completions(self, ds):
        c = tags_batch_completion_times(ds, (3.0,))
        assert tags_batch_mean_response(ds, (3.0,)) == pytest.approx(
            float(c.mean())
        )
