"""Property-based tests for the analytic queue family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import MM1K
from repro.models.mmck import MMcK, erlang_b, erlang_c

rates = st.floats(0.1, 50.0, allow_nan=False)


class TestMMcKProperties:
    @given(rates, rates, st.integers(1, 6), st.integers(0, 10))
    def test_distribution_normalised(self, lam, mu, c, extra):
        q = MMcK(lam, mu, c, c + extra)
        p = q.distribution()
        assert p.min() >= 0
        assert p.sum() == pytest.approx(1.0)

    @given(rates, rates, st.integers(1, 6), st.integers(0, 8))
    def test_flow_balance(self, lam, mu, c, extra):
        q = MMcK(lam, mu, c, c + extra)
        loss = lam * q.blocking_probability
        assert q.throughput + loss == pytest.approx(lam, rel=1e-9)

    @given(rates, rates, st.integers(1, 5), st.integers(1, 8))
    def test_more_servers_never_hurt(self, lam, mu, c, extra):
        K = c + extra
        a = MMcK(lam, mu, c, K)
        b = MMcK(lam, mu, min(c + 1, K), K)
        assert b.throughput >= a.throughput - 1e-12
        assert b.mean_jobs <= a.mean_jobs + 1e-9

    @given(rates, rates, st.integers(0, 8))
    def test_utilisation_consistent_with_throughput(self, lam, mu, extra):
        c = 2
        q = MMcK(lam, mu, c, c + extra)
        # busy servers * mu = completion rate
        assert q.utilisation * c * mu == pytest.approx(q.throughput, rel=1e-9)


class TestErlangProperties:
    @given(st.floats(0.05, 30.0), st.integers(1, 40))
    def test_b_in_unit_interval(self, a, c):
        assert 0 < erlang_b(a, c) < 1

    @given(st.floats(0.05, 30.0), st.integers(1, 30))
    def test_b_recursion_vs_direct(self, a, c):
        """The recursion must equal the direct truncated-Poisson ratio
        (computed in log space)."""
        from scipy.special import gammaln

        ks = np.arange(c + 1)
        logs = ks * np.log(a) - gammaln(ks + 1)
        logs -= logs.max()
        ps = np.exp(logs)
        direct = ps[-1] / ps.sum()
        assert erlang_b(a, c) == pytest.approx(direct, rel=1e-10)

    @given(st.integers(2, 20))
    def test_c_exceeds_b(self, c):
        a = c * 0.7
        assert erlang_c(a, c) >= erlang_b(a, c)


class TestCrossFamilyConsistency:
    @given(rates, rates, st.integers(1, 12))
    def test_mmck_c1_equals_mm1k(self, lam, mu, K):
        a = MMcK(lam, mu, 1, K)
        b = MM1K(lam, mu, K)
        np.testing.assert_allclose(a.distribution(), b.distribution(), atol=1e-12)
