"""Content-addressed solve cache: keying, hit/miss semantics, disk layer."""

import os
import pickle

import numpy as np
import pytest

from repro.models import TagsExponential
from repro.sweep import (
    ModelSpec,
    SolveCache,
    SolveRecord,
    SweepEngine,
    UncacheableParams,
    cache_key,
)
from repro.sweep.cache import _canon

from tests.sweep._counting_model import CountingMM1K

PARAMS = dict(lam=2.0, mu=5.0, K=10)


@pytest.fixture(autouse=True)
def reset_counter():
    CountingMM1K.builds = 0
    yield


def make_engine(**kw):
    kw.setdefault("workers", 1)
    return SweepEngine(**kw)


class TestCacheKey:
    def test_stable_across_dict_order(self):
        a = cache_key(TagsExponential, dict(lam=5.0, mu=10.0, t=51.0), "auto", 1e-8)
        b = cache_key(TagsExponential, dict(t=51.0, mu=10.0, lam=5.0), "auto", 1e-8)
        assert a == b

    def test_numpy_scalars_equal_python_floats(self):
        a = cache_key(TagsExponential, dict(lam=np.float64(5.0)), "auto", 1e-8)
        b = cache_key(TagsExponential, dict(lam=5.0), "auto", 1e-8)
        assert a == b

    @pytest.mark.parametrize(
        "change",
        [
            dict(params=dict(lam=5.000001, t=51.0)),
            dict(params=dict(lam=5.0, t=52.0)),
            dict(method="power"),
            dict(tol=1e-6),
            dict(model_cls=CountingMM1K),
        ],
        ids=["param-value", "other-param", "method", "tol", "model-class"],
    )
    def test_any_change_changes_key(self, change):
        base = dict(
            model_cls=TagsExponential,
            params=dict(lam=5.0, t=51.0),
            method="auto",
            tol=1e-8,
        )
        changed = {**base, **change}
        assert cache_key(**base) != cache_key(**changed)

    def test_callable_param_is_uncacheable(self):
        with pytest.raises(UncacheableParams):
            cache_key(TagsExponential, dict(t_of_q1=lambda q: 50.0), "auto", 1e-8)

    def test_distribution_objects_canonicalise(self):
        from repro.dists.families import HyperExponential

        a = _canon(HyperExponential.h2(0.99, 19.9, 0.199))
        b = _canon(HyperExponential.h2(0.99, 19.9, 0.199))
        c = _canon(HyperExponential.h2(0.98, 19.9, 0.199))
        assert a == b
        assert a != c


class TestHitMissSemantics:
    def test_identical_params_hit_without_resolving(self):
        eng = make_engine()
        m1, s1 = eng.solve(CountingMM1K, PARAMS)
        assert CountingMM1K.builds == 1
        assert not s1.cache_hit
        m2, s2 = eng.solve(CountingMM1K, PARAMS)
        assert CountingMM1K.builds == 1  # solver NOT re-invoked
        assert s2.cache_hit
        assert m2.mean_jobs == m1.mean_jobs

    def test_changed_param_misses(self):
        eng = make_engine()
        eng.solve(CountingMM1K, PARAMS)
        eng.solve(CountingMM1K, dict(PARAMS, lam=2.5))
        assert CountingMM1K.builds == 2

    def test_changed_method_misses(self):
        e1 = make_engine()
        e2 = make_engine(method="power", cache=e1.cache)
        e1.solve(CountingMM1K, PARAMS)
        e2.solve(CountingMM1K, PARAMS)
        assert CountingMM1K.builds == 2

    def test_changed_tol_misses(self):
        e1 = make_engine()
        e2 = make_engine(tol=1e-6, cache=e1.cache)
        e1.solve(CountingMM1K, PARAMS)
        e2.solve(CountingMM1K, PARAMS)
        assert CountingMM1K.builds == 2

    def test_sweep_then_point_lookup_shares(self):
        eng = make_engine()
        grid = [dict(PARAMS, lam=x) for x in (1.0, 2.0, 3.0)]
        eng.sweep(CountingMM1K, grid)
        assert CountingMM1K.builds == 3
        eng.solve(CountingMM1K, dict(PARAMS, lam=2.0))
        assert CountingMM1K.builds == 3

    def test_cache_disabled(self):
        eng = make_engine(cache=False)
        eng.solve(CountingMM1K, PARAMS)
        eng.solve(CountingMM1K, PARAMS)
        assert CountingMM1K.builds == 2

    def test_lru_eviction(self):
        cache = SolveCache(maxsize=2)
        eng = make_engine(cache=cache)
        for lam in (1.0, 2.0, 3.0):
            eng.solve(CountingMM1K, dict(PARAMS, lam=lam))
        assert len(cache) == 2
        eng.solve(CountingMM1K, dict(PARAMS, lam=1.0))  # evicted -> resolve
        assert CountingMM1K.builds == 4


class TestDiskLayer:
    def test_round_trip_across_fresh_cache(self, tmp_path):
        eng1 = make_engine(cache=SolveCache(disk_dir=tmp_path))
        m1, _ = eng1.solve(CountingMM1K, PARAMS)
        assert CountingMM1K.builds == 1

        # brand-new cache instance, same directory: disk hit, no solve
        eng2 = make_engine(cache=SolveCache(disk_dir=tmp_path))
        m2, s2 = eng2.solve(CountingMM1K, PARAMS)
        assert CountingMM1K.builds == 1
        assert s2.cache_hit
        assert m2.mean_jobs == m1.mean_jobs
        np.testing.assert_array_equal(
            eng2.cache.get(s2.key).pi, eng1.cache.get(s2.key).pi
        )

    def test_corrupt_file_recomputes(self, tmp_path):
        eng1 = make_engine(cache=SolveCache(disk_dir=tmp_path))
        _, s1 = eng1.solve(CountingMM1K, PARAMS)
        (tmp_path / f"{s1.key}.pkl").write_bytes(b"not a pickle at all")

        eng2 = make_engine(cache=SolveCache(disk_dir=tmp_path))
        _, s2 = eng2.solve(CountingMM1K, PARAMS)
        assert not s2.cache_hit
        assert CountingMM1K.builds == 2
        # and the recompute heals the file for the next fresh cache
        eng3 = make_engine(cache=SolveCache(disk_dir=tmp_path))
        _, s3 = eng3.solve(CountingMM1K, PARAMS)
        assert s3.cache_hit

    def test_truncated_pickle_recomputes(self, tmp_path):
        eng1 = make_engine(cache=SolveCache(disk_dir=tmp_path))
        _, s1 = eng1.solve(CountingMM1K, PARAMS)
        path = tmp_path / f"{s1.key}.pkl"
        path.write_bytes(path.read_bytes()[:20])

        eng2 = make_engine(cache=SolveCache(disk_dir=tmp_path))
        _, s2 = eng2.solve(CountingMM1K, PARAMS)
        assert not s2.cache_hit and CountingMM1K.builds == 2

    def test_wrong_object_type_recomputes(self, tmp_path):
        eng1 = make_engine(cache=SolveCache(disk_dir=tmp_path))
        _, s1 = eng1.solve(CountingMM1K, PARAMS)
        with open(tmp_path / f"{s1.key}.pkl", "wb") as fh:
            pickle.dump({"not": "a record"}, fh)
        eng2 = make_engine(cache=SolveCache(disk_dir=tmp_path))
        _, s2 = eng2.solve(CountingMM1K, PARAMS)
        assert not s2.cache_hit and CountingMM1K.builds == 2

    def test_corrupt_entry_is_quarantined(self, tmp_path):
        """A truncated pickle is moved aside to <key>.corrupt -- the bad
        bytes survive for post-mortems -- counted on the cache and in
        obs, and the recompute heals the live .pkl."""
        from repro import obs

        eng1 = make_engine(cache=SolveCache(disk_dir=tmp_path))
        _, s1 = eng1.solve(CountingMM1K, PARAMS)
        path = tmp_path / f"{s1.key}.pkl"
        bad_bytes = path.read_bytes()[:20]
        path.write_bytes(bad_bytes)

        cache2 = SolveCache(disk_dir=tmp_path)
        eng2 = make_engine(cache=cache2)
        with obs.use(obs.Recorder()) as rec:
            _, s2 = eng2.solve(CountingMM1K, PARAMS)
        assert not s2.cache_hit
        assert cache2.corrupt == 1
        assert rec.counter("cache.corrupt") == 1
        quarantined = tmp_path / f"{s1.key}.corrupt"
        assert quarantined.read_bytes() == bad_bytes
        # the recompute rewrote the live entry: a fresh cache hits
        cache3 = SolveCache(disk_dir=tmp_path)
        _, s3 = make_engine(cache=cache3).solve(CountingMM1K, PARAMS)
        assert s3.cache_hit
        assert cache3.corrupt == 0

    def test_missing_file_is_plain_miss_not_corrupt(self, tmp_path):
        cache = SolveCache(disk_dir=tmp_path)
        assert cache.get("no-such-key") is None
        assert cache.corrupt == 0
        assert list(tmp_path.iterdir()) == []

    def test_clear_disk_removes_quarantined_files(self, tmp_path):
        cache = SolveCache(disk_dir=tmp_path)
        eng = make_engine(cache=cache)
        _, s = eng.solve(CountingMM1K, PARAMS)
        path = tmp_path / f"{s.key}.pkl"
        path.write_bytes(b"junk")
        SolveCache(disk_dir=tmp_path).get(s.key)  # quarantines
        assert (tmp_path / f"{s.key}.corrupt").exists()
        cache.clear(disk=True)
        assert [
            p for p in os.listdir(tmp_path)
            if p.endswith((".pkl", ".corrupt"))
        ] == []

    def test_no_stray_tmp_files(self, tmp_path):
        eng = make_engine(cache=SolveCache(disk_dir=tmp_path))
        eng.solve(CountingMM1K, PARAMS)
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_clear_disk(self, tmp_path):
        cache = SolveCache(disk_dir=tmp_path)
        eng = make_engine(cache=cache)
        eng.solve(CountingMM1K, PARAMS)
        cache.clear(disk=True)
        assert [p for p in os.listdir(tmp_path) if p.endswith(".pkl")] == []
        eng.solve(CountingMM1K, PARAMS)
        assert CountingMM1K.builds == 2


class TestUncacheablePoints:
    def test_callable_param_still_solves(self):
        eng = SweepEngine(workers=1)
        m, s = eng.solve(
            TagsExponential,
            dict(lam=5.0, mu=10.0, n=2, K1=2, K2=2, t=50.0,
                 t_of_q1=lambda q: 50.0),
        )
        assert s.key is None and not s.cache_hit
        assert m.throughput > 0


class TestModelSpec:
    def test_spec_round_trip(self):
        spec = ModelSpec.of(CountingMM1K, param_name="lam", mu=5.0, K=10)
        assert spec.params_at(2.0) == dict(mu=5.0, K=10, lam=2.0)
        assert spec.grid([1.0, 2.0])[1]["lam"] == 2.0
        model = spec(2.0)
        assert isinstance(model, CountingMM1K)

    def test_record_is_picklable(self):
        eng = make_engine()
        _, s = eng.solve(CountingMM1K, PARAMS)
        rec = eng.cache.get(s.key)
        clone = pickle.loads(pickle.dumps(rec))
        assert isinstance(clone, SolveRecord)
        np.testing.assert_array_equal(clone.pi, rec.pi)


class TestEngineTag:
    """Satellite: the solve-cache key carries an engine/version tag so a
    solver-pipeline change (e.g. interpreter -> compiled) invalidates old
    entries instead of silently serving them."""

    BASE = dict(
        model_cls=TagsExponential, params=dict(lam=5.0), method="auto", tol=1e-8
    )

    def test_engine_changes_key(self):
        assert cache_key(**self.BASE) != cache_key(**self.BASE, engine="v2")
        assert cache_key(**self.BASE, engine="v1") != cache_key(
            **self.BASE, engine="v2"
        )

    def test_engine_none_is_default(self):
        assert cache_key(**self.BASE) == cache_key(**self.BASE, engine=None)

    def test_sweep_key_uses_solve_engine_attr(self):
        eng = make_engine()
        base = eng._key(TagsExponential, dict(lam=5.0))
        assert base == cache_key(
            TagsExponential,
            dict(lam=5.0),
            eng.method,
            eng.tol,
            engine=TagsExponential.SOLVE_ENGINE,
        )

    def test_untagged_model_gets_no_tag(self):
        class Plain:
            pass

        eng = make_engine()
        assert eng._key(Plain, dict(lam=5.0)) == cache_key(
            Plain, dict(lam=5.0), eng.method, eng.tol, engine=None
        )

    def test_engine_bump_invalidates_cache_entry(self, monkeypatch):
        eng = make_engine()
        eng.solve(CountingMM1K, PARAMS)
        assert CountingMM1K.builds == 1
        monkeypatch.setattr(CountingMM1K, "SOLVE_ENGINE", "bumped-v2",
                            raising=False)
        eng.solve(CountingMM1K, PARAMS)
        assert CountingMM1K.builds == 2  # old entry not served
