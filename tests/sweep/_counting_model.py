"""A tiny instrumented model for cache/engine tests.

Module-level (not defined inside a test) so it pickles into pool workers.
The solve counter lives in a class attribute: in serial runs it counts
exactly how many times a steady-state solve was triggered, which is how
the cache tests assert "solver not re-invoked".
"""

from dataclasses import dataclass

import numpy as np

from repro.ctmc import Generator, steady_state
from repro.models.metrics import from_population_and_throughput


@dataclass
class CountingMM1K:
    """M/M/1/K whose generator builds are counted."""

    lam: float = 2.0
    mu: float = 5.0
    K: int = 10

    builds = 0  # class-level counter, incremented per generator build

    @property
    def generator(self):
        if not hasattr(self, "_gen"):
            type(self).builds += 1
            src, dst, rate = [], [], []
            for i in range(self.K):
                src.append(i), dst.append(i + 1), rate.append(self.lam)
                src.append(i + 1), dst.append(i), rate.append(self.mu)
            self._gen = Generator.from_triples(self.K + 1, src, dst, rate)
            self._pi = None
        return self._gen

    @property
    def pi(self):
        _ = self.generator
        if self._pi is None:
            self._pi = steady_state(self._gen)
        return self._pi

    def metrics(self):
        pi = self.pi
        jobs = float(pi @ np.arange(self.K + 1))
        throughput = self.lam * (1.0 - pi[-1])
        return from_population_and_throughput(
            mean_jobs_per_node=(jobs,),
            throughput=throughput,
            offered_load=self.lam,
        )
