"""Structure-level caching: explore once per structure, refill per point.

Covers the :class:`repro.sweep.StructureCache` itself (LRU, counters,
drop semantics), the :class:`repro.ctmc.ChainTemplate` refill contract,
and the end-to-end guarantee the compiled engine was built for: a
parameter sweep over rate values runs exactly one state-space
exploration per reachability structure, and every refilled generator is
bit-identical to a from-scratch build.
"""

import numpy as np
import pytest

from repro import obs
from repro.ctmc import ChainTemplate, StructureMismatch, bfs_generator
from repro.models import (
    TagsExponential,
    TagsHyperExponential,
    TagsMultiNode,
    TagsPepa,
    tags_pepa_metrics,
)
from repro.models.tags_pepa import TagsParameters
from repro.sweep import StructureCache, SweepEngine, structure_cache


@pytest.fixture(autouse=True)
def fresh_cache():
    structure_cache().clear()
    yield
    structure_cache().clear()


def assert_generators_equal(a, b):
    assert (a.Q != b.Q).nnz == 0
    assert set(a.action_rates) == set(b.action_rates)
    for name, mat in a.action_rates.items():
        assert (mat != b.action_rates[name]).nnz == 0


class TestStructureCache:
    def test_miss_then_hit(self):
        cache = StructureCache()
        built = []

        def make():
            built.append(1)
            return object()

        first = cache.get_or_build("k", make)
        second = cache.get_or_build("k", make)
        assert first is second
        assert built == [1]
        assert (cache.misses, cache.hits) == (1, 1)

    def test_lru_eviction(self):
        cache = StructureCache(maxsize=2)
        a = cache.get_or_build("a", object)
        cache.get_or_build("b", object)
        cache.get_or_build("a", object)  # refresh a
        cache.get_or_build("c", object)  # evicts b, not a
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.get_or_build("a", object) is a
        assert len(cache) == 2

    def test_drop_and_clear(self):
        cache = StructureCache()
        cache.get_or_build("k", object)
        cache.drop("k")
        assert "k" not in cache
        cache.drop("k")  # idempotent
        cache.get_or_build("k", object)
        cache.clear()
        assert len(cache) == 0

    def test_obs_counters(self):
        cache = StructureCache()
        with obs.use(obs.Recorder()) as rec:
            cache.get_or_build("k", object)
            cache.get_or_build("k", object)
            cache.get_or_build("k", object)
        assert rec.counter_total("sweep.structure.miss") == 1
        assert rec.counter_total("sweep.structure.hit") == 2
        assert len(rec.find_spans("sweep.structure.build")) == 1


SUCC_RATE = {"fast": 7.0, "slow": 2.0}


def ring_successors(rate):
    def succ(state):
        return [("step", rate, ((state[0] + 1) % 4,))]

    return succ


class TestChainTemplate:
    def test_refill_matches_fresh(self):
        tpl = ChainTemplate.explore((0,), ring_successors(7.0))
        rate = tpl.refill(ring_successors(2.0))
        fresh, _, _ = bfs_generator((0,), ring_successors(2.0))
        assert_generators_equal(tpl.generator(rate), fresh)

    def test_default_rates_roundtrip(self):
        tpl = ChainTemplate.explore((0,), ring_successors(7.0))
        fresh, _, _ = bfs_generator((0,), ring_successors(7.0))
        assert_generators_equal(tpl.generator(), fresh)

    def test_structure_mismatch_on_extra_transition(self):
        tpl = ChainTemplate.explore((0,), ring_successors(7.0))

        def branching(state):
            return [
                ("step", 1.0, ((state[0] + 1) % 4,)),
                ("jump", 1.0, ((state[0] + 2) % 4,)),
            ]

        with pytest.raises(StructureMismatch):
            tpl.refill(branching)

    def test_structure_mismatch_on_dropped_transition(self):
        tpl = ChainTemplate.explore((0,), ring_successors(7.0))

        def gated(state):
            return [("step", 1.0 if state[0] == 0 else 0.0, ((state[0] + 1) % 4,))]

        with pytest.raises(StructureMismatch):
            tpl.refill(gated)

    def test_rate_vector_shape_checked(self):
        tpl = ChainTemplate.explore((0,), ring_successors(7.0))
        with pytest.raises(StructureMismatch):
            tpl.generator(np.ones(tpl.n_transitions + 1))


SMALL = dict(mu=10.0, t=51.0, n=3, K1=4, K2=4)


class TestDirectModelTemplates:
    def test_explores_once_per_structure(self):
        with obs.use(obs.Recorder()) as rec:
            for lam in (2.0, 4.0, 6.0, 8.0):
                TagsExponential(lam=lam, **SMALL).generator
        assert len(rec.find_spans("ctmc.bfs")) == 1
        assert rec.counter_total("sweep.structure.miss") == 1
        assert rec.counter_total("sweep.structure.hit") == 3

    def test_different_structure_explores_again(self):
        with obs.use(obs.Recorder()) as rec:
            TagsExponential(lam=2.0, **SMALL).generator
            TagsExponential(lam=2.0, **dict(SMALL, K1=5)).generator
        assert len(rec.find_spans("ctmc.bfs")) == 2

    @pytest.mark.parametrize(
        "make",
        [
            lambda lam: TagsExponential(lam=lam, **SMALL),
            lambda lam: TagsExponential(
                lam=lam, mu=10.0, n=3, K1=4, K2=4, t=51.0, restart_work=False
            ),
            lambda lam: TagsExponential(
                lam=lam, mu=10.0, n=3, K1=4, K2=4, t=51.0,
                t_of_q1=lambda q: 30.0 + 5.0 * q,
            ),
            lambda lam: TagsHyperExponential(lam=lam, n=2, K1=3, K2=3),
            lambda lam: TagsHyperExponential(
                lam=lam, n=2, K1=3, K2=3, alpha_prime=1.0
            ),
            lambda lam: TagsMultiNode(lam=lam, n=2, capacities=(3, 3, 3),
                                      timeouts=(51.0, 31.0)),
        ],
        ids=["exp", "exp-migrate", "exp-dynamic-t", "h2", "h2-ap1", "multinode"],
    )
    def test_refilled_generator_bit_equal(self, make):
        """Warm build (template hit) == cold build == plain bfs_generator."""
        make(3.0).generator  # populate the template
        warm_model = make(9.0)
        warm = warm_model.generator
        fresh, _, _ = bfs_generator(
            warm_model._initial(), warm_model._successors
        )
        assert_generators_equal(warm, fresh)

    def test_custom_repeat_cycles_opts_out(self):
        model = TagsMultiNode(
            lam=3.0, n=2, capacities=(3, 3), timeouts=(51.0,),
            repeat_cycles=lambda i: 2 * i,
        )
        before = len(structure_cache())
        model.generator
        assert len(structure_cache()) == before  # uncacheable: no entry


class TestPepaSweepIntegration:
    GRID = [dict(lam=l, mu=10.0, t=51.0, n=3, K1=4, K2=4) for l in
            (2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0)]

    def test_explore_once_refill_per_point(self):
        with obs.use(obs.Recorder()) as rec:
            SweepEngine(workers=1).sweep(TagsPepa, self.GRID)
        assert len(rec.find_spans("pepa.compile")) == 1
        assert len(rec.find_spans("pepa.explore.fast")) == 1
        assert len(rec.find_spans("template.refill")) == len(self.GRID) - 1
        assert rec.counter_total("template.refill.points") == len(self.GRID) - 1

    def test_metrics_match_interpreter_pipeline(self):
        """TagsPepa (compiled + templates) == tags_pepa_metrics (full
        interpreter + scratch assembly), exactly."""
        for point in (self.GRID[0], self.GRID[-1]):
            fast = TagsPepa(**point).metrics()
            slow = tags_pepa_metrics(TagsParameters(**point))
            assert fast.mean_jobs == slow.mean_jobs
            assert fast.throughput == slow.throughput
            assert fast.response_time == slow.response_time
            assert fast.extra == slow.extra

    def test_sweep_values_match_per_point_solves(self):
        res = SweepEngine(workers=1).sweep(TagsPepa, self.GRID)
        expect = [tags_pepa_metrics(TagsParameters(**p)) for p in self.GRID]
        np.testing.assert_array_equal(
            res.values("mean_jobs"), [m.mean_jobs for m in expect]
        )
