"""Sweep engine: parallel determinism, warm-start plumbing, worker
resolution, and the figure-level shared-solve guarantee."""

import numpy as np
import pytest

from repro.models import TagsExponential
from repro.sweep import SolveCache, SweepEngine, default_engine
from repro.sweep.engine import WORKERS_ENV_VAR

from tests.sweep._counting_model import CountingMM1K

# a small Figure 6 system (reduced buffers) so chains stay a few hundred
# states and the suite stays fast; same structure as the paper's sweep
FIG6_SMALL = dict(lam=5.0, mu=10.0, n=6, K1=4, K2=4)
T_GRID = [10.0, 30.0, 50.0, 70.0, 90.0, 110.0]


def fig6_grid():
    return [dict(FIG6_SMALL, t=t) for t in T_GRID]


class TestDeterminism:
    def test_parallel_matches_serial_bitwise(self):
        """Figure 6 metrics from a parallel sweep must equal the serial
        sweep's (acceptance bar: allclose at rtol=1e-10; the direct
        solvers actually give bit-identical results)."""
        serial = SweepEngine(workers=1).sweep(TagsExponential, fig6_grid())
        for workers in (2, 3):
            par = SweepEngine(workers=workers).sweep(TagsExponential, fig6_grid())
            for metric in ("mean_jobs", "response_time", "throughput"):
                s = np.asarray(serial.values(metric))
                p = np.asarray(par.values(metric))
                np.testing.assert_allclose(p, s, rtol=1e-10, atol=0.0)
                np.testing.assert_array_equal(p, s)  # stronger: bitwise

    def test_parallel_preserves_grid_order(self):
        par = SweepEngine(workers=3).sweep(TagsExponential, fig6_grid())
        assert [s.index for s in par.stats] == list(range(len(T_GRID)))
        assert [p["t"] for p in par.params] == T_GRID
        # mean queue length is not monotone in t (interior optimum), so a
        # shuffled result could not reproduce the solved-by-param mapping
        for p, m in zip(par.params, par.metrics):
            ref, _ = SweepEngine(workers=1).solve(TagsExponential, p)
            assert ref.mean_jobs == m.mean_jobs

    def test_warm_start_stays_within_tolerance(self):
        """Iterative warm-started sweeps agree with GTH within tol."""
        ref = SweepEngine(workers=1, method="gth").sweep(
            TagsExponential, fig6_grid()
        )
        warm = SweepEngine(workers=1, method="gauss_seidel").sweep(
            TagsExponential, fig6_grid()
        )
        np.testing.assert_allclose(
            warm.values("mean_jobs"), ref.values("mean_jobs"), atol=1e-6
        )
        assert warm.n_warm_started == len(T_GRID) - 1


class TestWarmStartPlumbing:
    def test_iterations_drop_with_warm_start(self):
        dense = [dict(FIG6_SMALL, t=float(t)) for t in np.arange(40.0, 61.0, 2.0)]
        cold = SweepEngine(
            workers=1, method="power", warm_start=False
        ).sweep(TagsExponential, dense)
        warm = SweepEngine(workers=1, method="power").sweep(TagsExponential, dense)
        assert sum(s.iterations for s in warm.stats) < sum(
            s.iterations for s in cold.stats
        )
        assert cold.n_warm_started == 0

    def test_stats_fields(self):
        res = SweepEngine(workers=1).sweep(TagsExponential, fig6_grid())
        for s in res.stats:
            assert s.method == "gth"  # 725 states -> auto resolves to GTH
            assert s.residual < 1e-8
            assert not s.cache_hit
        summary = res.summary()
        assert summary["points"] == summary["solves"] == len(T_GRID)
        assert summary["cache_hits"] == 0

    def test_mixed_state_spaces_drop_stale_pi0(self):
        """Sweeping a parameter that changes the state space must not
        poison warm starts (the hint is silently dropped)."""
        grid = [dict(FIG6_SMALL, K1=k, t=50.0) for k in (3, 4, 5)]
        res = SweepEngine(workers=1, method="power").sweep(TagsExponential, grid)
        assert res.n_points == 3
        assert all(s.residual < 1e-7 for s in res.stats)


class TestWorkerResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        eng = SweepEngine(workers=3)
        assert eng.resolve_workers(2, 100) == 2

    def test_engine_attribute_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        assert SweepEngine(workers=3).resolve_workers(None, 100) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "5")
        assert SweepEngine().resolve_workers(None, 100) == 5

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.raises(ValueError, match=WORKERS_ENV_VAR):
            SweepEngine().resolve_workers(None, 100)

    def test_clamped_to_task_count(self):
        assert SweepEngine(workers=16).resolve_workers(None, 3) == 3
        assert SweepEngine(workers=0).resolve_workers(None, 3) == 1

    def test_default_is_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert SweepEngine().resolve_workers(None, 10_000) == min(
            os.cpu_count() or 1, 10_000
        )


class TestParallelFallback:
    def test_unpicklable_model_falls_back_to_serial(self):
        class LocalModel(CountingMM1K):  # local class: not picklable
            pass

        res = SweepEngine(workers=2, cache=False).sweep(
            LocalModel, [dict(lam=l, mu=5.0, K=5) for l in (1.0, 2.0, 3.0)]
        )
        assert res.workers == 1  # fell back
        assert res.n_points == 3

    def test_parallel_results_enter_parent_cache(self):
        eng = SweepEngine(workers=2)
        r1 = eng.sweep(TagsExponential, fig6_grid())
        assert r1.n_solves == len(T_GRID)
        r2 = eng.sweep(TagsExponential, fig6_grid())
        assert r2.n_hits == len(T_GRID) and r2.n_solves == 0

    def test_partial_cache_solves_only_misses(self):
        eng = SweepEngine(workers=1)
        eng.sweep(TagsExponential, fig6_grid()[:3])
        res = eng.sweep(TagsExponential, fig6_grid())
        assert res.n_hits == 3 and res.n_solves == len(T_GRID) - 3


class TestFigureSharing:
    def test_figure6_and_figure7_share_one_solve_pass(self):
        """The seed computed the Fig 6/7 sweep twice; now the second
        figure must be answered entirely from the shared cache."""
        from repro.experiments import figure6, figure7

        eng = default_engine()
        eng.cache.clear()
        t_grid = np.asarray(T_GRID)

        figure6(t_grid)
        misses_after_6 = eng.cache.misses
        assert misses_after_6 == len(T_GRID) + 2  # sweep + random + JSQ

        figure7(t_grid)
        assert eng.cache.misses == misses_after_6  # zero new solves
        assert eng.cache.hits >= len(T_GRID) + 2

    def test_h2_pair_shares_one_solve_pass(self):
        from repro.experiments import figure9, figure10

        eng = default_engine()
        eng.cache.clear()
        t_grid = np.asarray([20.0, 40.0, 60.0])

        figure9(t_grid)
        misses_after_9 = eng.cache.misses
        figure10(t_grid)
        assert eng.cache.misses == misses_after_9
