"""Sweep statistics against the recorded obs stream.

``PointStats`` is derived from the engine's ``sweep.point`` spans, so
``SweepResult.summary`` / ``format_sweep_stats`` and an exported trace
are two views of the same recording -- these tests pin that: the cache
hit/miss counts in the summary must equal the obs counter values exactly,
per-point wall times must be the span durations, and events produced in
pool workers must surface in the parent recorder.
"""

import pytest

from repro import obs
from repro.models import TagsExponential
from repro.sweep import SweepEngine
from repro.sweep.stats import PointStats, format_sweep_stats

PARAMS = dict(lam=5.0, mu=10.0, n=6, K1=3, K2=3)
T_GRID = [10.0, 40.0, 70.0, 100.0]


def grid():
    return [dict(PARAMS, t=t) for t in T_GRID]


class TestFromSpan:
    def test_round_trip(self):
        span = obs.SpanRecord(
            name="sweep.point", t0=1.0, duration=0.25,
            attrs=dict(index=3, key="k", method="gth", cache_hit=False,
                       warm_started=True, iterations=17, residual=1e-9),
        )
        stats = PointStats.from_span(span)
        assert stats == PointStats(
            index=3, key="k", method="gth", cache_hit=False,
            warm_started=True, iterations=17, residual=1e-9, wall_time=0.25,
        )

    def test_optional_fields_default(self):
        span = obs.SpanRecord(
            name="sweep.point", t0=0.0, duration=0.0,
            attrs=dict(index=0, method="gth", cache_hit=True,
                       warm_started=False, residual=0.0),
        )
        stats = PointStats.from_span(span)
        assert stats.key is None and stats.iterations is None


class TestSummaryMatchesCounters:
    """The acceptance bar: summary counts == obs counter values, exactly."""

    def recorded_sweeps(self, workers=1):
        engine = SweepEngine(workers=workers)
        with obs.use(obs.Recorder()) as rec:
            cold = engine.sweep(TagsExponential, grid())
            warm = engine.sweep(TagsExponential, grid())
        return rec, cold, warm

    def test_cold_then_cached_sweep(self):
        rec, cold, warm = self.recorded_sweeps()
        assert cold.summary()["solves"] == len(T_GRID)
        assert cold.summary()["cache_hits"] == 0
        assert warm.summary()["cache_hits"] == len(T_GRID)
        assert rec.counter("sweep.cache.miss") == (
            cold.summary()["solves"] + warm.summary()["solves"]
        )
        assert rec.counter("sweep.cache.hit") == (
            cold.summary()["cache_hits"] + warm.summary()["cache_hits"]
        )

    def test_point_spans_are_the_stats(self):
        rec, cold, warm = self.recorded_sweeps()
        points = rec.find_spans("sweep.point")
        assert len(points) == 2 * len(T_GRID)
        by_sweep = points[: len(T_GRID)], points[len(T_GRID):]
        for result, spans in zip((cold, warm), by_sweep):
            assert [PointStats.from_span(s) for s in spans] == result.stats
            assert result.summary()["solve_time"] == pytest.approx(
                sum(s.duration for s in spans if not s.attrs["cache_hit"])
            )

    def test_point_spans_nest_under_sweep_span(self):
        rec, _, _ = self.recorded_sweeps()
        sweeps = rec.find_spans("sweep")
        assert len(sweeps) == 2
        parents = {s.parent_id for s in rec.find_spans("sweep.point")}
        assert parents == {s.span_id for s in sweeps}

    def test_sweep_span_attrs_match_summary(self):
        rec, cold, warm = self.recorded_sweeps()
        for span, result in zip(rec.find_spans("sweep"), (cold, warm)):
            assert span.attrs["cache_hits"] == result.summary()["cache_hits"]
            assert span.attrs["solves"] == result.summary()["solves"]
            assert span.attrs["points"] == result.n_points

    def test_format_sweep_stats_reports_counter_values(self):
        rec, cold, warm = self.recorded_sweeps()
        line = format_sweep_stats(cold, label="fig6")
        assert line.startswith("fig6: ")
        assert f"{rec.counter('sweep.cache.miss') - warm.n_solves} solves" in line
        hits = format_sweep_stats(warm)
        assert f"{rec.counter('sweep.cache.hit')} cache hits" in hits

    def test_single_point_solve_files_counters(self):
        engine = SweepEngine()
        with obs.use(obs.Recorder()) as rec:
            _, miss = engine.solve(TagsExponential, dict(PARAMS, t=50.0))
            _, hit = engine.solve(TagsExponential, dict(PARAMS, t=50.0))
        assert (miss.cache_hit, hit.cache_hit) == (False, True)
        assert rec.counter("sweep.cache.miss") == 1
        assert rec.counter("sweep.cache.hit") == 1


class TestWorkerAggregation:
    """Acceptance: spans recorded inside ProcessPoolExecutor workers must
    appear in the parent recorder's export, nested under the sweep."""

    def test_worker_solver_spans_reach_parent(self):
        with obs.use(obs.Recorder()) as rec:
            result = SweepEngine(workers=2, cache=False).sweep(
                TagsExponential, grid()
            )
        solves = rec.find_spans("steady_state")
        assert len(solves) == len(T_GRID)
        sweep_id = rec.find_spans("sweep")[0].span_id
        for s in solves:
            assert s.parent_id == sweep_id
        assert result.summary()["solves"] == len(T_GRID)

    def test_parallel_summary_still_matches_counters(self):
        with obs.use(obs.Recorder()) as rec:
            result = SweepEngine(workers=2, cache=False).sweep(
                TagsExponential, grid()
            )
        assert rec.counter("sweep.cache.miss") == result.summary()["solves"]
        assert rec.counter("sweep.cache.hit") == 0

    def test_recording_does_not_change_results(self):
        plain = SweepEngine(workers=2, cache=False).sweep(
            TagsExponential, grid()
        )
        with obs.use(obs.Recorder()):
            recorded = SweepEngine(workers=2, cache=False).sweep(
                TagsExponential, grid()
            )
        assert plain.values("mean_jobs") == recorded.values("mean_jobs")


class TestDisabledPath:
    def test_stats_still_produced_without_recorder(self):
        assert not obs.recorder().enabled
        result = SweepEngine(cache=False).sweep(TagsExponential, grid())
        assert len(result.stats) == len(T_GRID)
        assert result.summary()["solves"] == len(T_GRID)
        assert obs.recorder().n_events == 0
