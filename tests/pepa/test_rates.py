"""Rate algebra tests (the T-calculus)."""

import pytest

from repro.pepa import Rate, top
from repro.pepa.rates import ACTIVE, MixedRateError


class TestConstruction:
    def test_positive_required(self):
        with pytest.raises(ValueError):
            Rate(0.0)
        with pytest.raises(ValueError):
            Rate(-1.0, passive=True)

    def test_top_default_weight(self):
        assert top().value == 1.0
        assert top().passive

    def test_active_helper(self):
        r = ACTIVE(2.5)
        assert not r.passive and r.value == 2.5


class TestAddition:
    def test_actives_add(self):
        assert (Rate(1.0) + Rate(2.0)).value == 3.0

    def test_passives_add_weights(self):
        s = top(2.0) + top(3.0)
        assert s.passive and s.value == 5.0

    def test_mixed_raises(self):
        with pytest.raises(MixedRateError):
            Rate(1.0) + top()


class TestMin:
    def test_active_beats_passive(self):
        assert Rate(5.0).min_with(top(0.1)) == Rate(5.0)
        assert top(0.1).min_with(Rate(5.0)) == Rate(5.0)

    def test_actives_compare_by_value(self):
        assert Rate(2.0).min_with(Rate(3.0)) == Rate(2.0)

    def test_passives_compare_by_weight(self):
        assert top(2.0).min_with(top(1.0)) == top(1.0)


class TestRatio:
    def test_active_ratio(self):
        assert Rate(1.0).ratio_to(Rate(4.0)) == 0.25

    def test_passive_ratio(self):
        assert top(3.0).ratio_to(top(4.0)) == 0.75

    def test_mixed_ratio_raises(self):
        with pytest.raises(MixedRateError):
            Rate(1.0).ratio_to(top())


class TestRepr:
    def test_display(self):
        assert repr(top()) == "T"
        assert repr(top(2.0)) == "2*T"
        assert repr(Rate(1.5)) == "1.5"
