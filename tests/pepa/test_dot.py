"""DOT export tests."""

import pytest

from repro.pepa import explore, parse_model
from repro.pepa.dot import to_dot

MODEL = """
lam = 1.0; mu = 2.0;
Idle = (arrive, lam).Busy;
Busy = (serve, mu).Idle;
Idle;
"""


class TestToDot:
    def test_structure(self):
        space = explore(parse_model(MODEL))
        dot = to_dot(space, name="queue")
        assert dot.startswith('digraph "queue"')
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == space.n_transitions
        assert 'label="Idle"' in dot
        assert '"arrive, 1"' in dot

    def test_initial_state_marked(self):
        space = explore(parse_model(MODEL))
        dot = to_dot(space)
        line = next(l for l in dot.splitlines() if l.strip().startswith("s0 "))
        assert "peripheries=2" in line

    def test_custom_labels(self):
        space = explore(parse_model(MODEL))
        dot = to_dot(space, state_label=lambda i: f"state-{i}")
        assert 'label="state-0"' in dot

    def test_size_guard(self):
        from repro.models.tags_pepa import TagsParameters, build_tags_model

        space = explore(build_tags_model(TagsParameters(n=6, K1=10, K2=10)))
        with pytest.raises(ValueError, match="raise max_states"):
            to_dot(space)

    def test_escaping(self):
        space = explore(parse_model(MODEL))
        dot = to_dot(space, name='with "quotes"')
        assert 'digraph "with \\"quotes\\""' in dot
