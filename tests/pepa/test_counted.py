"""Count-based aggregation tests: the quotient must be the exact lumped
CTMC of the replicated system."""

import numpy as np
import pytest

from repro.ctmc import action_throughput, steady_state
from repro.pepa import FluidGroup, explore, parse_model, to_generator
from repro.pepa.counted import CountedModel

REPAIR = """
brk = 1.0; fix = 4.0;
Up = (break, brk).Down;
Down = (repair, fix).Up;
Up;
"""


class TestUnsyncedPopulation:
    def test_counts_match_full_model(self):
        """3 independent Up/Down components: counted quotient (4 states)
        must aggregate the full 8-state product chain."""
        m = parse_model(REPAIR)
        cm = CountedModel(m, [FluidGroup("g", {"Up": 3})], synced=set())
        gen, states, _ = cm.explore()
        assert gen.n_states == 4  # up-count 0..3
        pi = steady_state(gen)
        up = cm.count_reward("g", "Up")
        mean_up = float(pi @ np.array([up(s) for s in states]))
        # independent components: E[up] = 3 * fix/(brk+fix)
        assert mean_up == pytest.approx(3 * 0.8, rel=1e-9)

    def test_binomial_distribution(self):
        m = parse_model(REPAIR)
        cm = CountedModel(m, [FluidGroup("g", {"Up": 2})], synced=set())
        gen, states, _ = cm.explore()
        pi = steady_state(gen)
        up = cm.count_reward("g", "Up")
        dist = {int(up(s)): p for s, p in zip(states, pi)}
        p = 0.8
        assert dist[2] == pytest.approx(p * p, rel=1e-9)
        assert dist[1] == pytest.approx(2 * p * (1 - p), rel=1e-9)

    def test_passive_unsynced_rejected(self):
        m = parse_model("P = (a, infty).P; P;")
        with pytest.raises(ValueError, match="passive"):
            CountedModel(m, [FluidGroup("g", {"P": 2})], synced=set())

    def test_non_integer_counts_rejected(self):
        m = parse_model(REPAIR)
        with pytest.raises(ValueError, match="integer"):
            CountedModel(m, [FluidGroup("g", {"Up": 1.5})], synced=set())


class TestSyncedGroups:
    DEFS = """
    mu = 5.0;
    P0 = (eat, infty).P1;
    P1 = (reset, 1.0).P0;
    S = (eat, mu).S;
    """

    def test_against_explicit_composition(self):
        """Counted (places <eat> server) must match the explicit PEPA
        cooperation of 2 places with the server."""
        cm = CountedModel(
            parse_model(self.DEFS + "S;"),
            [FluidGroup("places", {"P0": 2}), FluidGroup("server", {"S": 1})],
            synced={"eat"},
        )
        gen, states, _ = cm.explore()
        pi = steady_state(gen)
        p1 = cm.count_reward("places", "P1")
        counted_mean = float(pi @ np.array([p1(s) for s in states]))

        full = parse_model(self.DEFS + "(P0 || P0) <eat> S;")
        space = explore(full)
        g2 = to_generator(space)
        pi2 = steady_state(g2)
        full_mean = float(pi2 @ space.derivative_count("P1"))
        assert counted_mean == pytest.approx(full_mean, rel=1e-9)
        assert gen.n_states < space.n_states  # aggregation really shrinks

    def test_throughput_matches(self):
        cm = CountedModel(
            parse_model(self.DEFS + "S;"),
            [FluidGroup("places", {"P0": 3}), FluidGroup("server", {"S": 1})],
            synced={"eat"},
        )
        gen, states, _ = cm.explore()
        pi = steady_state(gen)
        x_counted = action_throughput(gen, pi, "eat")

        full = parse_model(self.DEFS + "(P0 || P0 || P0) <eat> S;")
        space = explore(full)
        g2 = to_generator(space)
        pi2 = steady_state(g2)
        x_full = action_throughput(g2, pi2, "eat")
        assert x_counted == pytest.approx(x_full, rel=1e-9)

    def test_blocked_sync_fires_nothing(self):
        """If every place is busy, 'eat' must be disabled."""
        cm = CountedModel(
            parse_model(self.DEFS + "S;"),
            [FluidGroup("places", {"P1": 2}), FluidGroup("server", {"S": 1})],
            synced={"eat"},
        )
        succ = cm._successors(cm.initial)
        assert all(a != "eat" for a, _, _ in succ)

    def test_all_passive_sync_rejected(self):
        m = parse_model(
            """
            A0 = (go, infty).A1; A1 = (back, 1.0).A0;
            B0 = (go, infty).B1; B1 = (back2, 1.0).B0;
            A0;
            """
        )
        cm = CountedModel(
            m,
            [FluidGroup("a", {"A0": 1}), FluidGroup("b", {"B0": 1})],
            synced={"go"},
        )
        with pytest.raises(ValueError, match="no active participant"):
            cm.explore()
