"""State-space exploration and CTMC-mapping tests."""

import numpy as np
import pytest

from repro.ctmc import action_throughput, steady_state
from repro.pepa import (
    PassiveRateError,
    explore,
    parse_model,
    to_generator,
)

MM1K = """
lam = 3.0; mu = 5.0;
Q0 = (arrive, lam).Q1;
Q1 = (arrive, lam).Q2 + (serve, mu).Q0;
Q2 = (arrive, lam).Q3 + (serve, mu).Q1;
Q3 = (serve, mu).Q2 + (drop, lam).Q3;
Q0;
"""


class TestExploration:
    def test_counts_states(self):
        space = explore(parse_model(MM1K))
        assert space.n_states == 4

    def test_initial_state_is_zero(self):
        space = explore(parse_model(MM1K))
        assert space.initial == 0
        assert space.local_names(0) == ("Q0",)

    def test_transition_rates(self):
        space = explore(parse_model(MM1K))
        gen = to_generator(space)
        pi = steady_state(gen)
        rho = 0.6
        exact = rho ** np.arange(4)
        exact /= exact.sum()
        np.testing.assert_allclose(sorted(pi, reverse=True), sorted(exact, reverse=True), atol=1e-9)

    def test_passive_at_top_level_raises(self):
        m = parse_model("P = (a, infty).P;")
        with pytest.raises(PassiveRateError, match="passive"):
            explore(m)

    def test_max_states_guard(self):
        with pytest.raises(MemoryError):
            explore(parse_model(MM1K), max_states=2)

    def test_self_loop_recorded_for_actions(self):
        space = explore(parse_model(MM1K))
        gen = to_generator(space)
        pi = steady_state(gen)
        # the drop self-loop only fires in Q3, at rate lam
        q3 = next(i for i in range(4) if space.local_names(i) == ("Q3",))
        assert action_throughput(gen, pi, "drop") == pytest.approx(3.0 * pi[q3])


class TestCooperativeModel:
    MODEL = """
    lam = 2.0; mu = 3.0;
    Job0 = (submit, lam).Job1;
    Job1 = (done, infty).Job0;
    Srv = (done, mu).Srv;
    Job0 <done> Srv;
    """

    def test_passive_closed_by_cooperation(self):
        space = explore(parse_model(self.MODEL))
        assert space.n_states == 2
        gen = to_generator(space)
        pi = steady_state(gen)
        np.testing.assert_allclose(pi, [0.6, 0.4])

    def test_local_names_flatten(self):
        space = explore(parse_model(self.MODEL))
        names = space.local_names(0)
        assert names == ("Job0", "Srv")

    def test_derivative_count(self):
        space = explore(parse_model(self.MODEL))
        counts = space.derivative_count("Job1")
        assert sorted(counts) == [0.0, 1.0]


class TestDeadlocks:
    def test_no_deadlocks_in_live_model(self):
        m = parse_model("P = (a, 1.0).Q; Q = (x, 1.0).Q; P;")
        assert explore(m).find_deadlocks().size == 0

    def test_blocked_cooperation_deadlocks(self):
        # after the a-sync, P2 wants b (needs Q2) and Q2 wants c (needs P2):
        # total deadlock
        m = parse_model(
            """
            P = (a, 1.0).P2;  P2 = (b, 1.0).P2;
            Q = (a, infty).Q2; Q2 = (c, 1.0).Q2;
            P <a, b, c> Q;
            """
        )
        space = explore(m)
        assert space.find_deadlocks().size == 1


class TestRewardHelpers:
    def test_state_reward_vectorisation(self):
        space = explore(parse_model(MM1K))
        idx = {space.local_names(i)[0]: i for i in range(4)}
        r = space.state_reward(lambda names: float(names[0][1:]))
        assert r[idx["Q2"]] == 2.0
