"""Parser tests: grammar coverage and error reporting."""

import pytest

from repro.pepa import (
    Choice,
    Constant,
    Cooperation,
    Hiding,
    PepaSyntaxError,
    Prefix,
    Rate,
    parse_component,
    parse_model,
    top,
)


class TestBasics:
    def test_single_definition(self):
        m = parse_model("P = (a, 1.0).P;")
        assert set(m.definitions) == {"P"}
        body = m.definitions["P"]
        assert isinstance(body, Prefix)
        assert body.activity.action == "a"
        assert body.activity.rate == Rate(1.0)
        assert body.continuation == Constant("P")

    def test_system_defaults_to_last_definition(self):
        m = parse_model("P = (a, 1.0).Q; Q = (b, 1.0).P;")
        assert m.system == Constant("Q")

    def test_bare_system_equation(self):
        m = parse_model("P = (a, 1.0).P; Q = (a, infty).Q; P <a> Q;")
        assert isinstance(m.system, Cooperation)
        assert m.system.actions == frozenset({"a"})

    def test_comments(self):
        m = parse_model(
            """
            // a rate
            r = 2.0;  # trailing comment
            P = (a, r).P;
            """
        )
        assert m.definitions["P"].activity.rate == Rate(2.0)


class TestRates:
    def test_rate_constants_and_arithmetic(self):
        m = parse_model("mu = 10.0; n = 4; P = (a, n * mu / 2 + 1).P;")
        assert m.definitions["P"].activity.rate == Rate(21.0)

    def test_passive(self):
        m = parse_model("P = (a, infty).P;")
        assert m.definitions["P"].activity.rate == top()

    def test_weighted_passive(self):
        m = parse_model("P = (a, 2 * infty).P;")
        assert m.definitions["P"].activity.rate == top(2.0)

    def test_T_alias(self):
        m = parse_model("P = (a, T).P;")
        assert m.definitions["P"].activity.rate.passive

    def test_undefined_rate_rejected(self):
        with pytest.raises(PepaSyntaxError, match="undefined rate"):
            parse_model("P = (a, nope).P;")

    def test_scientific_notation(self):
        m = parse_model("P = (a, 1e-3).P;")
        assert m.definitions["P"].activity.rate == Rate(1e-3)

    def test_bad_passive_arithmetic(self):
        with pytest.raises(PepaSyntaxError):
            parse_model("P = (a, infty + 1).P;")


class TestOperators:
    def test_choice(self):
        m = parse_model("P = (a, 1.0).P + (b, 2.0).P;")
        assert isinstance(m.definitions["P"], Choice)

    def test_choice_left_assoc(self):
        m = parse_model("P = (a, 1.0).P + (b, 1.0).P + (c, 1.0).P;")
        body = m.definitions["P"]
        assert isinstance(body, Choice) and isinstance(body.left, Choice)

    def test_cooperation_set(self):
        c = parse_component("P <a, b> Q")
        assert c == Cooperation(Constant("P"), Constant("Q"), frozenset({"a", "b"}))

    def test_parallel_shorthand(self):
        c = parse_component("P || Q")
        assert c == Cooperation(Constant("P"), Constant("Q"), frozenset())

    def test_empty_angle_brackets(self):
        c = parse_component("P <> Q")
        assert c.actions == frozenset()

    def test_hiding(self):
        c = parse_component("P / {a, b}")
        assert isinstance(c, Hiding)
        assert c.actions == frozenset({"a", "b"})

    def test_hiding_binds_tighter_than_coop(self):
        c = parse_component("P / {a} <b> Q")
        assert isinstance(c, Cooperation)
        assert isinstance(c.left, Hiding)

    def test_nested_prefix(self):
        m = parse_model("P = (a, 1.0).(b, 2.0).P;")
        body = m.definitions["P"]
        assert isinstance(body.continuation, Prefix)
        assert body.continuation.activity.action == "b"

    def test_parenthesised_choice_in_prefix(self):
        m = parse_model("P = (a, 1.0).((b, 1.0).P + (c, 1.0).P);")
        assert isinstance(m.definitions["P"].continuation, Choice)

    def test_coop_left_assoc(self):
        c = parse_component("P <a> Q <b> R")
        assert isinstance(c, Cooperation)
        assert c.actions == frozenset({"b"})
        assert isinstance(c.left, Cooperation)


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(PepaSyntaxError, match="unexpected character"):
            parse_model("P = (a, 1.0).P ~ Q;")

    def test_missing_semicolon(self):
        with pytest.raises(PepaSyntaxError):
            parse_model("P = (a, 1.0).P Q = (b, 1.0).Q;")

    def test_lowercase_component_rejected(self):
        with pytest.raises(PepaSyntaxError, match="rate"):
            parse_model("P = (a, 1.0).q;")

    def test_empty_model(self):
        with pytest.raises(PepaSyntaxError, match="empty"):
            parse_model("   // nothing\n")

    def test_two_system_equations(self):
        with pytest.raises(PepaSyntaxError, match="second system"):
            parse_model("P = (a, 1.0).P; P; P;")

    def test_trailing_garbage_component(self):
        with pytest.raises(PepaSyntaxError, match="trailing"):
            parse_component("P Q")


class TestRoundTrip:
    def test_parse_explore_smoke(self):
        """Full pipeline on a tiny queue."""
        from repro.pepa import explore, to_generator
        from repro.ctmc import steady_state

        m = parse_model(
            """
            lam = 1.0; mu = 2.0;
            Q0 = (arrive, lam).Q1;
            Q1 = (arrive, lam).Q2 + (serve, mu).Q0;
            Q2 = (serve, mu).Q1;
            Q0;
            """
        )
        space = explore(m)
        assert space.n_states == 3
        pi = steady_state(to_generator(space))
        # M/M/1/2 with rho = 0.5: pi ~ (1, .5, .25)/1.75
        assert pi[0] == pytest.approx(4 / 7)
        assert pi[2] == pytest.approx(1 / 7)
