"""Well-formedness check tests."""

import pytest

from repro.pepa import (
    WellFormednessError,
    alphabet,
    check_model,
    parse_model,
)


class TestUndefinedConstants:
    def test_detects_undefined(self):
        m = parse_model("P = (a, 1.0).Nope; P;")
        with pytest.raises(WellFormednessError, match="Nope"):
            check_model(m)

    def test_clean_model_passes(self):
        m = parse_model("P = (a, 1.0).Q; Q = (b, 1.0).P; P;")
        report = check_model(m)
        assert report.warnings == []


class TestGuardedness:
    def test_direct_self_reference(self):
        m = parse_model("P = P + (a, 1.0).P; P;")
        with pytest.raises(WellFormednessError, match="unguarded"):
            check_model(m)

    def test_mutual_unguarded_cycle(self):
        m = parse_model("P = Q + (a, 1.0).P; Q = P + (b, 1.0).Q; P;")
        with pytest.raises(WellFormednessError, match="unguarded"):
            check_model(m)

    def test_guarded_recursion_ok(self):
        m = parse_model("P = (a, 1.0).P; P;")
        check_model(m)


class TestMixedRates:
    def test_active_and_passive_same_action(self):
        m = parse_model("P = (a, 1.0).P + (a, infty).P; P;")
        with pytest.raises(WellFormednessError, match="both active and passive"):
            check_model(m)

    def test_different_actions_ok(self):
        m = parse_model("P = (a, 1.0).P + (b, infty).P; Q = (b, 1.0).Q; P <b> Q;")
        check_model(m)


class TestCooperationWarnings:
    def test_action_nobody_performs(self):
        m = parse_model("P = (a, 1.0).P; Q = (b, 1.0).Q; P <zzz> Q;")
        report = check_model(m)
        assert any("zzz" in w and "neither side" in w for w in report.warnings)

    def test_action_one_side_never_performs(self):
        m = parse_model("P = (a, 1.0).P; Q = (b, 1.0).Q; P <a> Q;")
        report = check_model(m)
        assert any("permanently blocks" in w for w in report.warnings)

    def test_catches_figure3_style_typo(self):
        """Misspelling service1 in the cooperation set must warn."""
        m = parse_model(
            """
            Q1 = (service1, 1.0).Q1;
            T1 = (servcie1, infty).T1;   // typo on the timer side
            Q1 <servcie1, service1> T1;
            """
        )
        report = check_model(m)
        assert len(report.warnings) == 2


class TestAlphabet:
    def test_collects_through_constants(self):
        m = parse_model("P = (a, 1.0).Q; Q = (b, 1.0).P; P;")
        assert alphabet(m.system, m) == {"a", "b"}

    def test_hiding_masks(self):
        m = parse_model("P = (a, 1.0).P + (b, 1.0).P; P / {a};")
        assert alphabet(m.system, m) == {"b"}

    def test_cyclic_definitions_terminate(self):
        m = parse_model("P = (a, 1.0).Q; Q = (b, 1.0).P; P <a> Q;")
        assert alphabet(m.system, m) == {"a", "b"}
