"""Operational-semantics tests: SOS rules, apparent rates, cooperation."""

import pytest

from repro.pepa import (
    Activity,
    Choice,
    Constant,
    Cooperation,
    Hiding,
    Model,
    Prefix,
    Rate,
    TAU,
    apparent_rate,
    top,
    transitions,
)
from repro.pepa.rates import MixedRateError


def act(name, rate, cont):
    r = rate if isinstance(rate, Rate) else Rate(rate)
    return Prefix(Activity(name, r), cont)


P = Constant("P")
Q = Constant("Q")


def model(defs, system):
    return Model(defs, system)


class TestPrefixChoice:
    def test_prefix_single_transition(self):
        m = model({"P": act("a", 2.0, P)}, P)
        trs = transitions(P, m)
        assert trs == (("a", Rate(2.0), P),)

    def test_choice_unions(self):
        body = Choice(act("a", 1.0, P), act("b", 2.0, Q))
        m = model({"P": body, "Q": act("c", 1.0, P)}, P)
        trs = transitions(P, m)
        assert {(a, r.value) for a, r, _ in trs} == {("a", 1.0), ("b", 2.0)}

    def test_multi_transition_duplicates_kept(self):
        """(a, r).P + (a, r).P enables a at apparent rate 2r."""
        body = Choice(act("a", 1.5, P), act("a", 1.5, P))
        m = model({"P": body}, P)
        trs = transitions(P, m)
        assert len(trs) == 2
        assert apparent_rate(P, "a", m).value == 3.0

    def test_unguarded_recursion_detected(self):
        m = model({"P": Choice(Constant("P"), act("a", 1.0, P))}, P)
        with pytest.raises(RecursionError, match="unguarded"):
            transitions(P, m)


class TestHiding:
    def test_hidden_becomes_tau(self):
        m = model({"P": act("a", 2.0, P)}, P)
        h = Hiding(P, frozenset({"a"}))
        trs = transitions(h, m)
        assert trs[0][0] == TAU
        assert trs[0][1] == Rate(2.0)
        # successor stays hidden
        assert isinstance(trs[0][2], Hiding)

    def test_unhidden_passes_through(self):
        m = model({"P": act("a", 2.0, P)}, P)
        h = Hiding(P, frozenset({"zzz"}))
        assert transitions(h, m)[0][0] == "a"

    def test_tau_not_allowed_in_coop_set(self):
        with pytest.raises(ValueError):
            Cooperation(P, Q, frozenset({TAU}))


class TestInterleaving:
    def test_unshared_actions_interleave(self):
        m = model({"P": act("a", 1.0, P), "Q": act("b", 2.0, Q)}, P)
        c = Cooperation(P, Q, frozenset())
        trs = transitions(c, m)
        assert {(a, r.value) for a, r, _ in trs} == {("a", 1.0), ("b", 2.0)}

    def test_same_action_unshared_both_fire(self):
        m = model({"P": act("a", 1.0, P), "Q": act("a", 2.0, Q)}, P)
        c = Cooperation(P, Q, frozenset())
        trs = transitions(c, m)
        assert len(trs) == 2
        assert apparent_rate(c, "a", m).value == 3.0


class TestCooperation:
    def test_shared_rate_is_minimum(self):
        """Single a-activity each side: shared rate = min(r1, r2)."""
        m = model({"P": act("a", 1.0, P), "Q": act("a", 5.0, Q)}, P)
        c = Cooperation(P, Q, frozenset({"a"}))
        trs = transitions(c, m)
        assert len(trs) == 1
        assert trs[0][1] == Rate(1.0)

    def test_passive_adopts_active_rate(self):
        m = model({"P": act("a", 3.0, P), "Q": act("a", top(), Q)}, P)
        c = Cooperation(P, Q, frozenset({"a"}))
        trs = transitions(c, m)
        assert trs[0][1] == Rate(3.0)

    def test_blocked_when_one_side_disabled(self):
        m = model({"P": act("a", 3.0, P), "Q": act("b", 1.0, Q)}, P)
        c = Cooperation(P, Q, frozenset({"a", "b"}))
        assert transitions(c, m) == ()

    def test_apparent_rate_formula_with_branching(self):
        """Hillston's canonical example: P enables a at rates r1+r2, Q at
        R; each combined transition gets (ri/(r1+r2)) * min(r1+r2, R)."""
        P1, P2, Q1 = Constant("P1"), Constant("P2"), Constant("Q1")
        m = model(
            {
                "P": Choice(act("a", 2.0, P1), act("a", 6.0, P2)),
                "P1": act("x", 1.0, Constant("P")),
                "P2": act("x", 1.0, Constant("P")),
                "Q": act("a", 4.0, Q1),
                "Q1": act("y", 1.0, Q),
            },
            P,
        )
        c = Cooperation(Constant("P"), Constant("Q"), frozenset({"a"}))
        trs = transitions(c, m)
        # apparent rates: P -> 8, Q -> 4; min = 4
        rates = sorted(r.value for _, r, _ in trs)
        assert rates == pytest.approx([0.25 * 4.0, 0.75 * 4.0])
        assert apparent_rate(c, "a", m).value == pytest.approx(4.0)

    def test_two_passives_combine_weights(self):
        m = model(
            {"P": act("a", top(2.0), P), "Q": act("a", top(4.0), Q)}, P
        )
        c = Cooperation(P, Q, frozenset({"a"}))
        trs = transitions(c, m)
        assert trs[0][1].passive
        assert trs[0][1].value == pytest.approx(2.0)  # min(2,4) * 1 * 1

    def test_three_way_sync_through_nesting(self):
        """timeout-style sync: (A <a> B) <a> C with A active."""
        A, B, C = Constant("A"), Constant("B"), Constant("C")
        m = model(
            {
                "A": act("a", 7.0, A),
                "B": act("a", top(), B),
                "C": act("a", top(), C),
            },
            A,
        )
        inner = Cooperation(A, B, frozenset({"a"}))
        outer = Cooperation(inner, C, frozenset({"a"}))
        trs = transitions(outer, m)
        assert len(trs) == 1
        assert trs[0][1] == Rate(7.0)

    def test_mixed_rates_same_action_rejected(self):
        m = model(
            {"P": Choice(act("a", 1.0, P), act("a", top(), P)), "Q": act("a", 1.0, Q)},
            P,
        )
        c = Cooperation(P, Q, frozenset({"a"}))
        with pytest.raises(MixedRateError):
            transitions(c, m)


class TestApparentRate:
    def test_disabled_action_none(self):
        m = model({"P": act("a", 1.0, P)}, P)
        assert apparent_rate(P, "b", m) is None

    def test_passive_apparent_rate_sums_weights(self):
        m = model({"P": Choice(act("a", top(1.0), P), act("a", top(2.0), P))}, P)
        r = apparent_rate(P, "a", m)
        assert r.passive and r.value == 3.0


class TestSharedContext:
    """Module-level transitions()/apparent_rate() accept a caller-owned
    TransitionContext so batch callers share one memo table."""

    def _model(self):
        return model({"P": act("a", 2.0, P), "Q": act("b", 3.0, P)}, P)

    def test_shared_ctx_reused(self):
        from repro.pepa.semantics import TransitionContext

        m = self._model()
        ctx = TransitionContext(m)
        first = transitions(P, m, ctx)
        assert transitions(P, m, ctx) is first  # memo hit: same tuple object
        assert apparent_rate(P, "a", m, ctx) == Rate(2.0)

    def test_ctx_for_wrong_model_rejected(self):
        from repro.pepa.semantics import TransitionContext

        m = self._model()
        other = model({"P": act("a", 9.0, P)}, P)
        ctx = TransitionContext(other)
        with pytest.raises(ValueError, match="different model"):
            transitions(P, m, ctx)
        with pytest.raises(ValueError, match="different model"):
            apparent_rate(P, "a", m, ctx)

    def test_default_builds_fresh_ctx(self):
        m = self._model()
        assert transitions(P, m) == transitions(P, m)
