"""Fluid (ODE) approximation tests.

Validation strategy: for large replicated populations the fluid limit must
match closed-form equilibria; for the degenerate single-copy case it is a
mean-field approximation whose equilibrium we compare loosely against the
exact CTMC.
"""

import numpy as np
import pytest

from repro.pepa import FluidGroup, FluidModel, parse_model

REPAIR_MODEL = """
brk = 1.0; fix = 4.0;
Up = (break, brk).Down;
Down = (repair, fix).Up;
Up;
"""


class TestUnsyncedPopulation:
    def test_two_state_relaxation(self):
        """N independent Up/Down components: equilibrium fraction up =
        fix / (brk + fix)."""
        m = parse_model(REPAIR_MODEL)
        fm = FluidModel(m, [FluidGroup("machines", {"Up": 100.0})], synced=set())
        eq = fm.equilibrium(t_end=50.0)
        assert eq["machines.Up"] == pytest.approx(100 * 4 / 5, rel=1e-4)
        assert eq["machines.Down"] == pytest.approx(100 * 1 / 5, rel=1e-4)

    def test_mass_conserved(self):
        m = parse_model(REPAIR_MODEL)
        fm = FluidModel(m, [FluidGroup("machines", {"Up": 10.0})], synced=set())
        ts, traj = fm.solve(20.0, n_points=50)
        total = traj["machines.Up"] + traj["machines.Down"]
        np.testing.assert_allclose(total, 10.0, atol=1e-6)

    def test_transient_matches_scalar_ode(self):
        """dx/dt = -brk*x + fix*(N - x) has a closed-form solution."""
        m = parse_model(REPAIR_MODEL)
        N, brk, fix = 50.0, 1.0, 4.0
        fm = FluidModel(m, [FluidGroup("g", {"Up": N})], synced=set())
        ts, traj = fm.solve(2.0, n_points=30)
        lam = brk + fix
        x_inf = N * fix / lam
        expected = x_inf + (N - x_inf) * np.exp(-lam * ts)
        np.testing.assert_allclose(traj["g.Up"], expected, rtol=1e-5)


SYNC_MODEL = """
work = 2.0; rest = 1.0; sync = 10.0;
C0 = (go, sync).C1;
C1 = (done, work).C0;
S0 = (go, sync).S1;
S1 = (back, rest).S0;
C0 <go> S0;
"""


class TestSyncedGroups:
    def test_flow_limited_by_minimum(self):
        m = parse_model(SYNC_MODEL)
        fm = FluidModel(
            m,
            [FluidGroup("clients", {"C0": 100.0}), FluidGroup("servers", {"S0": 5.0})],
            synced={"go"},
        )
        eq = fm.equilibrium(t_end=200.0)
        # servers are the bottleneck: flow(go) <= 10 * 5
        assert eq["clients.C0"] + eq["clients.C1"] == pytest.approx(100.0, abs=1e-5)
        assert eq["servers.S0"] + eq["servers.S1"] == pytest.approx(5.0, abs=1e-6)
        # balance: flow(go) = work * C1 = rest * S1 at equilibrium
        flow_c = 2.0 * eq["clients.C1"]
        flow_s = 1.0 * eq["servers.S1"]
        assert flow_c == pytest.approx(flow_s, rel=1e-3)

    def test_passive_group_throttles(self):
        """A passive population near zero must throttle the flow rather
        than go negative."""
        m = parse_model(
            """
            mu = 5.0;
            P0 = (eat, infty).P1;
            P1 = (reset, 1.0).P0;
            S = (eat, mu).S;
            P0 <eat> S;
            """
        )
        fm = FluidModel(
            m,
            [FluidGroup("places", {"P0": 0.5}), FluidGroup("server", {"S": 1.0})],
            synced={"eat"},
        )
        ts, traj = fm.solve(10.0, n_points=100)
        assert traj["places.P0"].min() >= -1e-9

    def test_sync_needs_two_groups(self):
        m = parse_model(REPAIR_MODEL)
        with pytest.raises(ValueError, match="at least two"):
            FluidModel(m, [FluidGroup("g", {"Up": 5.0})], synced={"break"})


class TestValidation:
    def test_unknown_initial_derivative(self):
        m = parse_model(REPAIR_MODEL)
        with pytest.raises(KeyError, match="undefined PEPA constant"):
            FluidModel(m, [FluidGroup("g", {"Nope": 1.0})], synced=set())

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            FluidGroup("g", {"Up": -1.0})

    def test_duplicate_group_names(self):
        m = parse_model(REPAIR_MODEL)
        gs = [FluidGroup("g", {"Up": 1.0}), FluidGroup("g", {"Up": 1.0})]
        with pytest.raises(ValueError, match="duplicate"):
            FluidModel(m, gs, synced=set())
