"""Kronecker assembly tests: must agree with explicit exploration
state-for-state (up to ordering)."""

import numpy as np
import pytest

from repro.ctmc import action_throughput, steady_state
from repro.models.tags_pepa import TagsParameters, build_tags_model
from repro.pepa import PassiveRateError, explore, parse_model, to_generator
from repro.pepa.kron import kron_generator
from repro.pepa.syntax import Constant


def flatten(state) -> tuple:
    """Nested kron product state -> sorted sequential names."""
    out = []

    def walk(s):
        if isinstance(s, tuple) and not isinstance(s, Constant):
            for part in s:
                walk(part)
        else:
            out.append(s.name if isinstance(s, Constant) else repr(s))

    walk(state)
    return tuple(out)


class TestSimpleModels:
    def test_two_component_sync(self):
        m = parse_model(
            """
            lam = 2.0; mu = 3.0;
            Job0 = (submit, lam).Job1;
            Job1 = (done, infty).Job0;
            Srv = (done, mu).Srv;
            Job0 <done> Srv;
            """
        )
        gen, states = kron_generator(m)
        ref = to_generator(explore(m))
        assert gen.n_states == ref.n_states == 2
        np.testing.assert_allclose(
            sorted(steady_state(gen)), sorted(steady_state(ref)), atol=1e-12
        )

    def test_parallel_independent(self):
        m = parse_model(
            """
            A0 = (a, 1.0).A1; A1 = (b, 2.0).A0;
            C0 = (c, 3.0).C1; C1 = (d, 4.0).C0;
            A0 || C0;
            """
        )
        gen, states = kron_generator(m)
        ref = to_generator(explore(m))
        assert gen.n_states == ref.n_states == 4
        np.testing.assert_allclose(
            sorted(steady_state(gen)), sorted(steady_state(ref)), atol=1e-12
        )

    def test_unreachable_product_states_pruned(self):
        """A passive component that can only move in lock-step with its
        driver has unreachable product combinations."""
        m = parse_model(
            """
            P0 = (go, infty).P1; P1 = (back, infty).P0;
            D0 = (go, 1.0).D1;  D1 = (back, 2.0).D0;
            P0 <go, back> D0;
            """
        )
        gen, states = kron_generator(m)
        # product space is 4 but only the diagonal pairs are reachable
        assert gen.n_states == 2

    def test_hiding(self):
        # the system equation is the hiding expression itself (naming it
        # via a constant would alias the initial state into a transient
        # copy -- a PEPA quirk, not a kron one)
        m = parse_model(
            """
            P0 = (a, 1.0).P1; P1 = (b, 2.0).P0;
            P0 / {a};
            """
        )
        gen, _ = kron_generator(m)
        assert "tau" in gen.action_rates
        ref = to_generator(explore(m))
        np.testing.assert_allclose(
            sorted(steady_state(gen)), sorted(steady_state(ref)), atol=1e-12
        )


class TestFigure3Model:
    @pytest.fixture(scope="class")
    def both(self):
        p = TagsParameters(lam=5, mu=10, t=51.0, n=3, K1=4, K2=4)
        model = build_tags_model(p)
        gen_k, states_k = kron_generator(model)
        space = explore(model)
        gen_e = to_generator(space)
        return gen_k, states_k, gen_e, space

    def test_same_state_count(self, both):
        gen_k, _, gen_e, _ = both
        assert gen_k.n_states == gen_e.n_states

    def test_same_stationary_distribution(self, both):
        gen_k, _, gen_e, _ = both
        np.testing.assert_allclose(
            sorted(steady_state(gen_k)), sorted(steady_state(gen_e)), atol=1e-10
        )

    def test_same_throughputs(self, both):
        gen_k, _, gen_e, _ = both
        pi_k, pi_e = steady_state(gen_k), steady_state(gen_e)
        for action in ("service1", "service2", "timeout", "arrival", "arrloss"):
            assert action_throughput(gen_k, pi_k, action) == pytest.approx(
                action_throughput(gen_e, pi_e, action), rel=1e-9
            ), action

    def test_same_mean_queue_lengths(self, both):
        gen_k, states_k, gen_e, space = both
        pi_k, pi_e = steady_state(gen_k), steady_state(gen_e)

        def qlen(names, prefix):
            for nm in names:
                for pref in (prefix, prefix[:2] + "r_"):
                    if nm.startswith(pref):
                        return float(nm.split("_", 1)[1])
            raise AssertionError(names)

        L1_k = sum(
            p * qlen(flatten(s), "Q1_") for p, s in zip(pi_k, states_k)
        )
        L1_e = float(
            pi_e @ space.state_reward(lambda names: qlen(names, "Q1_"))
        )
        assert L1_k == pytest.approx(L1_e, rel=1e-9)

    def test_full_paper_configuration(self):
        p = TagsParameters(lam=5, mu=10, t=51.0, n=6, K1=10, K2=10)
        gen_k, _ = kron_generator(build_tags_model(p))
        assert gen_k.n_states == 4331


class TestFigure5Model:
    def test_h2_model_matches_direct_chain(self):
        """Figure 5 also fits the Kronecker fragment (queue-side active
        timeout, passive timer): metrics must match the direct chain."""
        from repro.models import TagsHyperExponential
        from repro.models.tags_hyper import TagsH2Parameters, build_tags_h2_model

        kwargs = dict(
            lam=8.0, alpha=0.95, mu1=19.0, mu2=1.0, t=25.0, n=3, K1=4, K2=4
        )
        gen_k, states_k = kron_generator(
            build_tags_h2_model(TagsH2Parameters(**kwargs))
        )
        direct = TagsHyperExponential(**kwargs)
        assert gen_k.n_states == direct.n_states
        pi_k = steady_state(gen_k)
        for action in ("service1", "service2", "timeout"):
            assert action_throughput(gen_k, pi_k, action) == pytest.approx(
                action_throughput(direct.generator, direct.pi, action),
                rel=1e-9,
            ), action


class TestUnsupportedFragments:
    def test_both_active_sync_rejected(self):
        m = parse_model(
            """
            P = (a, 1.0).P;
            Q = (a, 2.0).Q;
            P <a> Q;
            """
        )
        with pytest.raises(NotImplementedError, match="active on both"):
            kron_generator(m)

    def test_both_passive_sync_rejected(self):
        m = parse_model(
            """
            P = (a, infty).P;
            Q = (a, infty).Q;
            R = (a, 1.0).R;
            (P <a> Q) <a> R;
            """
        )
        with pytest.raises(NotImplementedError, match="passive on both"):
            kron_generator(m)

    def test_top_level_passive_rejected(self):
        m = parse_model("P = (a, infty).P; P;")
        with pytest.raises(PassiveRateError):
            kron_generator(m)
