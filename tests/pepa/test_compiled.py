"""Compiled-engine tests: equivalence with the interpreter, fragment
boundary / fallback behaviour, template refill, and decomposition caches.

The acceptance bar is strict: for every PEPA builder in ``repro.models``
the compiled engine must produce the *same* ``StateSpace`` as the
interpreter -- identical states, identical transition endpoints and
actions, bit-identical rates -- after both spaces are put in a canonical
order (the two engines enumerate states differently).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import steady_state
from repro.models import (
    Figure4Model,
    build_jsq_pepa_model,
    build_tags_breakdown_model,
    build_tags_h2_model,
    build_tags_model,
)
from repro.models.tags_hyper import TagsH2Parameters
from repro.models.tags_pepa import TagsParameters
from repro.pepa import (
    Activity,
    Choice,
    Constant,
    Cooperation,
    Hiding,
    Model,
    PassiveRateError,
    Prefix,
    Rate,
    explore,
    parse_model,
    to_generator,
    top,
)
from repro.pepa.compiled import (
    CompileError,
    CompiledSpace,
    TemplateMismatch,
    compile_model,
)

MM1K = """
lam = 3.0; mu = 5.0;
Q0 = (arrive, lam).Q1;
Q1 = (arrive, lam).Q2 + (serve, mu).Q0;
Q2 = (arrive, lam).Q3 + (serve, mu).Q1;
Q3 = (serve, mu).Q2 + (drop, lam).Q3;
Q0;
"""

SYNC = """
lam = 2.0; mu = 3.0;
Job0 = (submit, lam).Job1;
Job1 = (done, infty).Job0;
Srv = (done, mu).Srv;
Job0 <done> Srv;
"""

HIDDEN = """
P0 = (work, 2.0).P1;
P1 = (rest, 1.0).P0;
Q0 = (work, infty).Q1;
Q1 = (back, 4.0).Q0;
(P0 <work> Q0) / {work};
"""


def canon(space):
    """Reorder a state space into repr-sorted canonical form.

    Returns ``(state_keys, transitions, order)`` where ``transitions``
    is a sorted list of ``(src_rank, action, dst_rank, rate)`` tuples and
    ``order`` maps canonical rank -> original state id (usable to
    reorder a steady-state vector).
    """
    keys = [repr(s) for s in space.states]
    assert len(set(keys)) == len(keys), "state reprs must be unique"
    order = sorted(range(len(keys)), key=keys.__getitem__)
    rank = [0] * len(order)
    for new, old in enumerate(order):
        rank[old] = new
    trans = sorted(
        (rank[int(s)], a, rank[int(d)], float(r))
        for s, a, d, r in zip(space.src, space.action, space.dst, space.rate)
    )
    return [keys[i] for i in order], trans, order


def assert_equivalent(model, *, rate_rtol=None):
    """Interpreter and compiled engines must agree on the state space.

    With ``rate_rtol=None`` rates must be bit-identical; otherwise they
    are compared to the given relative tolerance (used by the randomised
    property test, where float multiplication order may differ).
    """
    si = explore(model, engine="interpreter")
    sc = explore(model, engine="compiled")
    keys_i, trans_i, order_i = canon(si)
    keys_c, trans_c, order_c = canon(sc)
    assert keys_i == keys_c
    assert [t[:3] for t in trans_i] == [t[:3] for t in trans_c]
    ri = np.array([t[3] for t in trans_i])
    rc = np.array([t[3] for t in trans_c])
    if rate_rtol is None:
        assert np.array_equal(ri, rc), "rates must be bit-identical"
    else:
        np.testing.assert_allclose(rc, ri, rtol=rate_rtol)
    return si, sc, order_i, order_c


BUILDERS = {
    "figure3": lambda: build_tags_model(TagsParameters(n=3, K1=4, K2=4)),
    "figure3_tick": lambda: build_tags_model(
        TagsParameters(n=3, K1=4, K2=4, tick_during_residual=True)
    ),
    "h2": lambda: build_tags_h2_model(TagsH2Parameters(n=2, K1=3, K2=3)),
    "breakdown": lambda: build_tags_breakdown_model(
        TagsParameters(n=2, K1=3, K2=3), 0.01, 0.5
    ),
    "breakdown_down": lambda: build_tags_breakdown_model(
        TagsParameters(n=2, K1=3, K2=3), 0.0, 0.0, permanently_down=True
    ),
    "jsq": lambda: build_jsq_pepa_model(3.0, 5.0, 4),
    "figure4": lambda: Figure4Model(n=3, K1=4, K2=4).pepa_model(),
    "mm1k": lambda: parse_model(MM1K),
    "sync": lambda: parse_model(SYNC),
    "hidden": lambda: parse_model(HIDDEN),
}


class TestEquivalence:
    """Compiled == interpreted for every model builder in the repo."""

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_statespace_bit_identical(self, name):
        model = BUILDERS[name]()
        # every repo builder currently sits inside the compiled fragment
        compile_model(model)
        assert_equivalent(model)

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_steady_state_agrees(self, name):
        model = BUILDERS[name]()
        si, sc, order_i, order_c = assert_equivalent(model)
        pi_i = steady_state(to_generator(si))[order_i]
        pi_c = steady_state(to_generator(sc))[order_c]
        np.testing.assert_allclose(pi_c, pi_i, atol=1e-12, rtol=0)

    def test_auto_engine_matches_compiled(self):
        model = parse_model(MM1K)
        _, trans_auto, _ = canon(explore(model))
        _, trans_c, _ = canon(explore(model, engine="compiled"))
        assert trans_auto == trans_c

    def test_compiled_space_generator_matches_statespace(self):
        """CompiledSpace.generator() == to_generator of the StateSpace."""
        model = build_tags_model(TagsParameters(n=3, K1=4, K2=4))
        cs = compile_model(model).explore()
        assert isinstance(cs, CompiledSpace)
        g_direct = cs.generator()
        g_space = to_generator(cs.statespace())
        assert (g_direct.Q != g_space.Q).nnz == 0
        assert set(g_direct.action_rates) == set(g_space.action_rates)
        for a, mat in g_direct.action_rates.items():
            assert (mat != g_space.action_rates[a]).nnz == 0


# ----------------------------------------------------------------------
# fragment boundary: what cannot compile must fall back, identically
# ----------------------------------------------------------------------

BOTH_ACTIVE = """
P0 = (go, 2.0).P1; P1 = (halt, 1.0).P0;
Q0 = (go, 3.0).Q1; Q1 = (halt, 1.0).Q0;
P0 <go> Q0;
"""

MULTI_PASSIVE = """
A0 = (x, 5.0).A1; A1 = (r, 1.0).A0;
P0 = (x, infty).P1; P1 = (back, 2.0).P0;
A0 <x> (P0 <back> P0);
"""

HIDDEN_PASSIVE = """
P0 = (a, infty).P1; P1 = (b, 1.0).P0;
P0 / {a};
"""


class TestFragmentFallback:
    def test_both_active_sync_rejected(self):
        with pytest.raises(CompileError, match="active"):
            compile_model(parse_model(BOTH_ACTIVE))

    def test_both_active_sync_engine_compiled_raises(self):
        with pytest.raises(CompileError):
            explore(parse_model(BOTH_ACTIVE), engine="compiled")

    def test_both_active_sync_auto_falls_back(self):
        m = parse_model(BOTH_ACTIVE)
        _, trans_auto, _ = canon(explore(m))
        _, trans_i, _ = canon(explore(m, engine="interpreter"))
        assert trans_auto == trans_i
        # min-rate semantics: apparent rate of go is min(2, 3) = 2
        assert any(a == "go" and r == 2.0 for _, a, _, r in trans_auto)

    def test_multi_term_passive_side_falls_back(self):
        m = parse_model(MULTI_PASSIVE)
        with pytest.raises(CompileError):
            compile_model(m)
        _, trans_auto, _ = canon(explore(m))
        _, trans_i, _ = canon(explore(m, engine="interpreter"))
        assert trans_auto == trans_i

    def test_hidden_passive_rejected(self):
        with pytest.raises(CompileError):
            compile_model(parse_model(HIDDEN_PASSIVE))

    def test_bad_engine_name(self):
        with pytest.raises(ValueError, match="engine"):
            explore(parse_model(MM1K), engine="quantum")


class TestPassivePoison:
    """Reachability-sensitive passive check (the kron engine's eager
    whole-product check would differ; the compiled engine must match the
    interpreter exactly)."""

    def test_reachable_passive_raises(self):
        m = parse_model("P = (a, infty).P;")
        for engine in ("interpreter", "compiled", "auto"):
            with pytest.raises(PassiveRateError, match="passive"):
                explore(m, engine=engine)

    def test_unreachable_passive_is_fine(self):
        # M's passive `c` is only enabled in M1, but M1 is reached via
        # the shared action `b`, which L never offers: blocked forever.
        m = parse_model(
            """
            L = (a, 1.0).L;
            M0 = (b, 2.0).M1;
            M1 = (c, infty).M0;
            L <b, c> M0;
            """
        )
        for engine in ("interpreter", "compiled"):
            space = explore(m, engine=engine)
            assert space.n_states == 1
            assert space.actions() == {"a"}

    def test_max_states_guard(self):
        with pytest.raises(MemoryError):
            explore(parse_model(MM1K), engine="compiled", max_states=2)


# ----------------------------------------------------------------------
# randomised two-level cooperations
# ----------------------------------------------------------------------

ACTIONS = ("a", "b", "c")


def _machine(names, targets, rates, passive_mask, shared):
    """A cyclic machine: state i offers action[i] to state targets[i].

    Shared actions on the passive side get weight-``T`` rates; every
    state keeps an unshared active self-advance so the space stays live.
    """
    defs = {}
    k = len(targets)
    for i in range(k):
        act = ACTIONS[i % len(ACTIONS)]
        rate = top(rates[i]) if (passive_mask and act in shared) else Rate(rates[i])
        step = Prefix(Activity(act, rate), Constant(names[targets[i]]))
        # unshared progress action keeps passive states from deadlocking
        prog = Prefix(
            Activity("m" if passive_mask else "l", Rate(1.0)),
            Constant(names[(i + 1) % k]),
        )
        defs[names[i]] = Choice(step, prog) if act in shared or not passive_mask else step
    return defs


@st.composite
def two_level_coop(draw):
    kl = draw(st.integers(min_value=1, max_value=3))
    kr = draw(st.integers(min_value=1, max_value=3))
    shared = frozenset(draw(st.sets(st.sampled_from(ACTIONS), max_size=2)))
    rl = [draw(st.floats(min_value=0.5, max_value=8.0)) for _ in range(kl)]
    rr = [draw(st.floats(min_value=0.5, max_value=8.0)) for _ in range(kr)]
    tl = [draw(st.integers(min_value=0, max_value=kl - 1)) for _ in range(kl)]
    tr = [draw(st.integers(min_value=0, max_value=kr - 1)) for _ in range(kr)]
    lnames = [f"L{i}" for i in range(kl)]
    rnames = [f"R{i}" for i in range(kr)]
    defs = {}
    defs.update(_machine(lnames, tl, rl, False, shared))
    defs.update(_machine(rnames, tr, rr, True, shared))
    system = Cooperation(Constant("L0"), Constant("R0"), shared)
    return Model(defs, system)


class TestHypothesisEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(two_level_coop())
    def test_random_two_level_cooperation(self, model):
        # left machines are always active, right machines passive only on
        # shared actions -- every draw is inside the compiled fragment
        compile_model(model)
        assert_equivalent(model, rate_rtol=1e-12)


# ----------------------------------------------------------------------
# compile-once / evaluate-many templates
# ----------------------------------------------------------------------


class TestRefill:
    def test_refill_matches_fresh_exploration(self):
        base = build_tags_model(TagsParameters(lam=5.0, n=3, K1=4, K2=4))
        other = build_tags_model(TagsParameters(lam=9.0, n=3, K1=4, K2=4))
        cs = compile_model(base).explore()
        cs.refill(other)
        fresh = compile_model(other).explore()
        assert np.array_equal(cs.rate, fresh.rate)
        assert np.array_equal(cs.src, fresh.src)
        g_refill = cs.generator()
        g_fresh = fresh.generator()
        assert (g_refill.Q != g_fresh.Q).nnz == 0
        for a, mat in g_fresh.action_rates.items():
            assert (g_refill.action_rates[a] != mat).nnz == 0

    def test_refill_generator_matches_first_assembly(self):
        """The CSR template fast path (second generator() call) must be
        bit-identical to the scratch assembly (first call)."""
        p0 = TagsParameters(lam=5.0, n=3, K1=4, K2=4)
        cs = compile_model(build_tags_model(p0)).explore()
        cs.generator()  # builds the CSR template
        cs.refill(build_tags_model(TagsParameters(lam=7.5, n=3, K1=4, K2=4)))
        g_tpl = cs.generator()  # template path
        g_scratch = to_generator(cs)  # scratch assembly of the same rates
        assert (g_tpl.Q != g_scratch.Q).nnz == 0
        for a, mat in g_scratch.action_rates.items():
            assert (g_tpl.action_rates[a] != mat).nnz == 0

    def test_refill_rejects_different_structure(self):
        cs = compile_model(
            build_tags_model(TagsParameters(n=3, K1=4, K2=4))
        ).explore()
        with pytest.raises(TemplateMismatch):
            cs.refill(build_tags_model(TagsParameters(n=3, K1=5, K2=4)))

    def test_refill_rejects_different_model_shape(self):
        cs = compile_model(parse_model(MM1K)).explore()
        with pytest.raises(TemplateMismatch):
            cs.refill(parse_model(SYNC))

    def test_state_reward_memoised_and_refreshed(self):
        p0 = TagsParameters(lam=5.0, n=3, K1=4, K2=4)
        cs = compile_model(build_tags_model(p0)).explore()

        def q1(names):
            return float(sum(1 for nm in names if nm.startswith("Q1_")))

        r1 = cs.state_reward(q1)
        r2 = cs.state_reward(q1)
        assert np.array_equal(r1, r2)
        r1[:] = -1.0  # callers get copies; the memo must be unaffected
        assert not np.array_equal(r1, cs.state_reward(q1))
        # rates-only refill keeps the reward memo valid
        cs.refill(build_tags_model(TagsParameters(lam=8.0, n=3, K1=4, K2=4)))
        assert np.array_equal(cs.state_reward(q1), r2)


# ----------------------------------------------------------------------
# satellite 1: flattened local-state decomposition caches
# ----------------------------------------------------------------------


class TestDecompositionCache:
    @pytest.mark.parametrize("engine", ["interpreter", "compiled"])
    def test_local_names_cached(self, engine):
        space = explore(parse_model(SYNC), engine=engine)
        assert space.local_names(0) == ("Job0", "Srv")
        assert space._names is not None  # built (or primed) once
        first = space._names
        space.local_names(1)
        assert space._names is first  # no rebuild on later calls

    @pytest.mark.parametrize("engine", ["interpreter", "compiled"])
    def test_derivative_count_int_coded(self, engine):
        space = explore(
            build_tags_model(TagsParameters(n=3, K1=4, K2=4)), engine=engine
        )
        counts = space.derivative_count("Q1_0")
        naive = np.array(
            [
                sum(1 for nm in space.local_names(i) if nm == "Q1_0")
                for i in range(space.n_states)
            ],
            dtype=np.float64,
        )
        np.testing.assert_array_equal(counts, naive)
        # the int-coded matrix is cached for the next lookup
        assert space._name_codes is not None or space._name_vocab is not None

    def test_engines_agree_on_names(self):
        model = build_tags_model(TagsParameters(n=3, K1=4, K2=4))
        si = explore(model, engine="interpreter")
        sc = explore(model, engine="compiled")
        names_i = {repr(si.states[i]): si.local_names(i) for i in range(si.n_states)}
        names_c = {repr(sc.states[i]): sc.local_names(i) for i in range(sc.n_states)}
        assert names_i == names_c
