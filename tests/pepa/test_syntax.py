"""AST construction and operator-sugar tests."""

import pytest

from repro.pepa import (
    Activity,
    Choice,
    Constant,
    Cooperation,
    Hiding,
    Model,
    Prefix,
    Rate,
    TAU,
    prefix_chain,
)


class TestOperatorSugar:
    def test_plus_builds_choice(self):
        p, q = Constant("P"), Constant("Q")
        assert p + q == Choice(p, q)

    def test_pipe_builds_parallel(self):
        p, q = Constant("P"), Constant("Q")
        c = p | q
        assert isinstance(c, Cooperation) and c.actions == frozenset()

    def test_coop_method(self):
        p, q = Constant("P"), Constant("Q")
        c = p.coop(q, {"a"})
        assert c.actions == frozenset({"a"})

    def test_hide_method(self):
        p = Constant("P")
        h = p.hide({"a", "b"})
        assert isinstance(h, Hiding) and h.actions == frozenset({"a", "b"})


class TestPrefixChain:
    def test_builds_sequence(self):
        acts = [Activity("a", Rate(1.0)), Activity("b", Rate(2.0))]
        comp = prefix_chain(*acts, then=Constant("P"))
        assert isinstance(comp, Prefix)
        assert comp.activity.action == "a"
        assert comp.continuation.activity.action == "b"
        assert comp.continuation.continuation == Constant("P")

    def test_empty_chain_is_target(self):
        assert prefix_chain(then=Constant("P")) == Constant("P")


class TestInvariants:
    def test_tau_banned_in_cooperation(self):
        with pytest.raises(ValueError, match="tau"):
            Cooperation(Constant("P"), Constant("Q"), frozenset({TAU}))

    def test_components_hashable_and_equal(self):
        a = Prefix(Activity("x", Rate(1.0)), Constant("P"))
        b = Prefix(Activity("x", Rate(1.0)), Constant("P"))
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_model_resolve_missing(self):
        m = Model({"P": Constant("P")}, Constant("P"))
        with pytest.raises(KeyError, match="undefined PEPA constant"):
            m.resolve("Nope")

    def test_model_definitions_copied(self):
        defs = {"P": Constant("P")}
        m = Model(defs, Constant("P"))
        defs["Q"] = Constant("Q")
        assert "Q" not in m.definitions

    def test_reprs_are_readable(self):
        comp = Prefix(Activity("go", Rate(2.0)), Constant("P"))
        assert repr(comp) == "(go, 2).P"
        h = Hiding(Constant("P"), frozenset({"a"}))
        assert repr(h) == "(P/{a})"
