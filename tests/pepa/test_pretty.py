"""Pretty-printer tests: round-trip through the parser."""

import pytest

from repro.pepa import (
    explore,
    parse_component,
    parse_model,
    pretty_component,
    pretty_model,
)
from repro.models.tags_pepa import TagsParameters, build_tags_model


class TestComponentRoundTrip:
    @pytest.mark.parametrize(
        "src",
        [
            "P",
            "(a, 1.5).P",
            "(a, 1.5).(b, 2.0).P",
            "(a, 1.0).P + (b, 2.0).Q",
            "(a, infty).P",
            "(a, 2.0 * infty).P",
            "P / {a, b}",
            "P <a, b> Q",
            "P || Q",
            "P <a> Q <b> R",
            "(P + Q) / {x}",
            "(a, 1.0).(P <x> Q)",
        ],
    )
    def test_roundtrip(self, src):
        comp = parse_component(src)
        text = pretty_component(comp)
        assert parse_component(text) == comp

    def test_nested_coop_right(self):
        from repro.pepa import Cooperation, Constant

        comp = Cooperation(
            Constant("P"),
            Cooperation(Constant("Q"), Constant("R"), frozenset({"b"})),
            frozenset({"a"}),
        )
        text = pretty_component(comp)
        assert parse_component(text) == comp


class TestModelRoundTrip:
    def test_simple_model(self):
        m = parse_model(
            """
            lam = 1.0; mu = 2.0;
            Idle = (arrive, lam).Busy;
            Busy = (serve, mu).Idle + (fail, 0.5).Idle;
            Idle;
            """
        )
        m2 = parse_model(pretty_model(m))
        assert m2.definitions == dict(m.definitions)
        assert m2.system == m.system

    def test_tags_model_roundtrip_same_state_space(self):
        """The full Figure 3 model survives print -> parse with an
        identical reachable state space and transitions."""
        p = TagsParameters(lam=5, mu=10, t=51, n=3, K1=4, K2=4)
        m = build_tags_model(p)
        m2 = parse_model(pretty_model(m))
        s1, s2 = explore(m), explore(m2)
        assert s1.n_states == s2.n_states
        assert s1.n_transitions == s2.n_transitions
        assert sorted(zip(s1.src, s1.dst, s1.rate, s1.action)) == sorted(
            zip(s2.src, s2.dst, s2.rate, s2.action)
        )

    def test_output_is_deterministic(self):
        p = TagsParameters(n=2, K1=2, K2=2)
        a = pretty_model(build_tags_model(p))
        b = pretty_model(build_tags_model(p))
        assert a == b
