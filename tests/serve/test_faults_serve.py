"""Runtime-side resilience: retries, circuit breaker, degraded mode.

The injection mechanics shared with the simulator are covered by
``tests/faults`` and the equivalence gate; this module exercises what
only the online runtime has -- retry-with-backoff on forwards, the
circuit breaker, and the degraded single-node regime validated against
the exact M/M/1/K model.
"""

import pytest

from repro.dists import Exponential
from repro.faults import CircuitBreaker, FaultInjector, FaultPlan
from repro.models import MM1K
from repro.serve import DispatchRuntime, PoissonLoad, validate_against_model
from repro.sim import DeterministicTimeout, ErlangTimeout, TagsPolicy


def make_runtime(plan, *, timeout=DeterministicTimeout(0.1), lam=8.0,
                 seed=42, **kw):
    return DispatchRuntime(
        PoissonLoad(lam, Exponential(10.0)),
        TagsPolicy(timeouts=(timeout,)),
        (10, 10),
        seed=seed,
        faults=FaultInjector(plan, **kw.pop("inj_kw", {})),
        **kw,
    )


class TestRetries:
    OUTAGE = FaultPlan.script(
        (100.0, "node_crash", 1), (101.0, "node_recover", 1)
    )

    def test_retry_rides_out_a_short_outage(self):
        """Kills during a 1s node-2 outage are lost without retries but
        survive with a backoff schedule that spans the outage."""
        no_retry = make_runtime(self.OUTAGE).run(300.0)
        retry = make_runtime(
            self.OUTAGE, forward_retries=3, retry_backoff=0.6
        ).run(300.0)
        assert no_retry.lost_to_failure > 0
        assert retry.lost_to_failure < no_retry.lost_to_failure
        assert retry.accounted == retry.offered
        assert no_retry.accounted == no_retry.offered

    def test_retry_parameters_validated(self):
        with pytest.raises(ValueError):
            make_runtime(self.OUTAGE, forward_retries=-1)
        with pytest.raises(ValueError):
            make_runtime(self.OUTAGE, forward_retries=1, retry_backoff=0.0)


class TestBreaker:
    def test_breaker_trips_on_a_dead_target(self):
        plan = FaultPlan.script((100.0, "node_crash", 1))  # down forever
        br = CircuitBreaker(failure_threshold=3, reset_timeout=1e6)
        res = make_runtime(plan, breaker=br).run(400.0)
        assert br.state == "open"
        assert any(s == "open" for _, s in br.transitions)
        assert res.lost_to_failure > 0
        assert res.accounted == res.offered

    def test_breaker_closes_after_recovery(self):
        plan = FaultPlan.script(
            (100.0, "node_crash", 1), (150.0, "node_recover", 1)
        )
        br = CircuitBreaker(failure_threshold=3, reset_timeout=20.0)
        res = make_runtime(plan, breaker=br).run(500.0)
        states = [s for _, s in br.transitions]
        assert "open" in states and "half_open" in states
        assert br.state == "closed"  # the post-recovery probe closed it
        assert res.forwarded > 0
        assert res.accounted == res.offered


class TestDegradedValidation:
    def test_single_node_regime_is_exactly_mm1k(self):
        """Node 2 permanently down + single_node degradation: node 1
        serves every job to exhaustion, i.e. M/M/1/K1.  The live metrics
        must agree with the exact model within batch-means CIs -- the
        same gate ``models.tags_breakdown`` passes analytically."""
        lam, mu, k1 = 5.0, 10.0, 10
        plan = FaultPlan.script((0.0, "node_crash", 1))
        rt = DispatchRuntime(
            PoissonLoad(lam, Exponential(mu)),
            TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
            (k1, 10),
            seed=7,
            faults=FaultInjector(plan, degraded="single_node"),
        )
        res = rt.run(20000.0, warmup=500.0)
        report = validate_against_model(res, MM1K(lam=lam, mu=mu, K=k1))
        assert report.ok, report.format()
        # nothing was killed or forwarded: node 2 never served
        assert res.killed == 0
        assert res.forwarded == 0


class TestInflightAccounting:
    def test_jobs_mid_retry_count_as_queued(self):
        """A run ending while a forward retry sleeps must count that job
        somewhere: still_queued includes in-flight forwards."""
        plan = FaultPlan.script((99.0, "node_crash", 1))
        res = make_runtime(
            plan, forward_retries=5, retry_backoff=5.0
        ).run(100.0)
        assert res.accounted == res.offered
