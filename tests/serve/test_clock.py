"""Virtual/wall clock semantics: ordering, determinism, driving."""

import asyncio

import pytest

from repro.serve import VirtualClock, WallClock


def run(coro):
    return asyncio.run(coro)


class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        async def main():
            clock = VirtualClock()
            assert clock.now() == 0.0
            await clock.run_until(10.0)
            return clock.now()

        assert run(main()) == 10.0

    def test_sleep_wakes_at_deadline(self):
        async def main():
            clock = VirtualClock()
            times = []

            async def sleeper(delay):
                await clock.sleep(delay)
                times.append(clock.now())

            tasks = [asyncio.ensure_future(sleeper(d)) for d in (3.0, 1.0, 2.0)]
            await clock.run_until(5.0)
            await asyncio.gather(*tasks)
            return times

        assert run(main()) == [1.0, 2.0, 3.0]

    def test_ties_fire_in_creation_order(self):
        async def main():
            clock = VirtualClock()
            order = []

            async def sleeper(tag):
                await clock.sleep(1.0)
                order.append(tag)

            tasks = [asyncio.ensure_future(sleeper(i)) for i in range(5)]
            await clock.run_until(1.0)
            await asyncio.gather(*tasks)
            return order

        assert run(main()) == [0, 1, 2, 3, 4]

    def test_chained_sleeps_stay_causal(self):
        """A timer consequence scheduled at fire time must beat later
        deadlines: 0.5+0.5 fires before the pre-existing 1.5 timer."""

        async def main():
            clock = VirtualClock()
            order = []

            async def chain():
                await clock.sleep(0.5)
                await clock.sleep(0.5)
                order.append(("chain", clock.now()))

            async def single():
                await clock.sleep(1.5)
                order.append(("single", clock.now()))

            tasks = [
                asyncio.ensure_future(single()),
                asyncio.ensure_future(chain()),
            ]
            await clock.run_until(2.0)
            await asyncio.gather(*tasks)
            return order

        assert run(main()) == [("chain", 1.0), ("single", 1.5)]

    def test_run_until_excludes_later_timers(self):
        async def main():
            clock = VirtualClock()
            fired = []

            async def sleeper():
                await clock.sleep(7.0)
                fired.append(clock.now())

            task = asyncio.ensure_future(sleeper())
            await clock.run_until(5.0)
            assert fired == [] and clock.now() == 5.0
            assert clock.pending_timers == 1
            assert clock.next_deadline() == 7.0
            await clock.run_until(10.0)
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            return fired

        assert run(main()) == [7.0]

    def test_timer_at_deadline_boundary_fires(self):
        async def main():
            clock = VirtualClock()
            fired = []

            async def sleeper():
                await clock.sleep(5.0)
                fired.append(clock.now())

            task = asyncio.ensure_future(sleeper())
            await clock.run_until(5.0)
            await asyncio.gather(task, return_exceptions=True)
            return fired

        assert run(main()) == [5.0]

    def test_cancelled_sleeper_is_skipped(self):
        async def main():
            clock = VirtualClock()

            async def sleeper():
                await clock.sleep(1.0)

            task = asyncio.ensure_future(sleeper())
            await asyncio.sleep(0)
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            await clock.run_until(2.0)
            return clock.now(), clock.pending_timers

        assert run(main()) == (2.0, 0)

    def test_negative_sleep_rejected(self):
        async def main():
            clock = VirtualClock()
            with pytest.raises(ValueError, match="negative"):
                await clock.sleep(-1.0)

        run(main())

    def test_start_offset(self):
        clock = VirtualClock(start=100.0)
        assert clock.now() == 100.0


class TestWallClock:
    def test_sleep_and_now(self):
        async def main():
            clock = WallClock(rate=100.0)  # 100 model-seconds per second
            t0 = clock.now()
            await clock.sleep(1.0)  # 10 ms wall
            return clock.now() - t0

        elapsed = run(main())
        assert elapsed >= 1.0

    def test_run_until(self):
        async def main():
            clock = WallClock(rate=100.0)
            await clock.run_until(2.0)
            return clock.now()

        assert run(main()) >= 2.0

    def test_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            WallClock(rate=0.0)
