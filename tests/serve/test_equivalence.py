"""The deterministic-equivalence gate: under a virtual clock on a fixed
trace, the online runtime's per-job outcomes (completion node, kill
count, drop point) must match ``sim.runner.Simulation`` executing the
same TAGS policy on the same trace **exactly** -- same job ids, same
outcomes, same floats driving every decision.

This is the strongest statement the repo can make that the serving path
implements the paper's semantics: the offline simulator is already
pinned to the CTMC models, and the runtime is pinned job-for-job to the
simulator.
"""

import numpy as np
import pytest

from repro.dists import Exponential, h2_balanced_means
from repro.faults import FaultInjector, FaultPlan
from repro.serve import (
    DispatchRuntime,
    Trace,
    TraceArrivals,
    TraceDemands,
    TraceLoad,
)
from repro.sim import (
    DeterministicTimeout,
    ErlangTimeout,
    PoissonArrivals,
    Simulation,
    TagsPolicy,
)

HORIZON = 1e12  # both sides run the trace to completion


def run_both(trace, make_policy, capacities, seed=42):
    """(sim outcomes, runtime outcomes) for one trace + policy."""
    sim = Simulation(
        TraceArrivals(trace),
        TraceDemands(trace),
        make_policy(),
        capacities,
        seed=seed,
        record_jobs=True,
    )
    sim_res = sim.run(t_end=HORIZON)
    rt = DispatchRuntime(
        TraceLoad(trace),
        make_policy(),
        capacities,
        rng=np.random.default_rng(seed),
        record_jobs=True,
    )
    rt_res = rt.run(HORIZON)
    return sim_res, rt_res


class TestExactEquivalence:
    def test_erlang_timeout_two_nodes(self):
        """Stochastic (Erlang) timeouts: the shared seed must produce the
        identical draw sequence, hence identical outcomes."""
        trace = Trace.synthesise(
            PoissonArrivals(5.0), Exponential(10.0), 4000, seed=7
        )
        sim_res, rt_res = run_both(
            trace,
            lambda: TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
            (10, 10),
        )
        assert sim_res.job_outcomes() == rt_res.job_outcomes()
        assert sim_res.completed == rt_res.completed
        assert np.array_equal(sim_res.response_times, rt_res.response_times)

    def test_deterministic_timeout_heavy_tail(self):
        """The real TAGS mechanism on an H2 heavy-tail workload, with
        forward drops (node 2 capacity 2)."""
        trace = Trace.synthesise(
            PoissonArrivals(8.0),
            h2_balanced_means(0.1, 0.99, 100.0),
            4000,
            seed=11,
        )
        sim_res, rt_res = run_both(
            trace,
            lambda: TagsPolicy(timeouts=(DeterministicTimeout(0.12),)),
            (10, 2),
        )
        assert sim_res.dropped_forward > 0  # the interesting case occurs
        assert sim_res.job_outcomes() == rt_res.job_outcomes()

    def test_three_node_cascade(self):
        """N-node TAGS with deterministic timeouts (no sampler rng, so
        the multi-node draw-order caveat does not apply)."""
        trace = Trace.synthesise(
            PoissonArrivals(6.0),
            h2_balanced_means(0.15, 0.95, 50.0),
            3000,
            seed=13,
        )
        sim_res, rt_res = run_both(
            trace,
            lambda: TagsPolicy(
                timeouts=(
                    DeterministicTimeout(0.1),
                    DeterministicTimeout(0.5),
                )
            ),
            (8, 8, 8),
        )
        outcomes = sim_res.job_outcomes()
        assert outcomes == rt_res.job_outcomes()
        assert any(k >= 2 for _, _, k in outcomes.values())  # double kills

    def test_resume_variant(self):
        """The multi-level-feedback (resume) variant stays equivalent."""
        trace = Trace.synthesise(
            PoissonArrivals(4.0), Exponential(2.0), 2000, seed=17
        )
        sim_res, rt_res = run_both(
            trace,
            lambda: TagsPolicy(
                timeouts=(DeterministicTimeout(0.3),), resume=True
            ),
            (15, 15),
        )
        assert sim_res.job_outcomes() == rt_res.job_outcomes()

    def test_overload_with_arrival_drops(self):
        trace = Trace.synthesise(
            PoissonArrivals(20.0), Exponential(10.0), 3000, seed=19
        )
        sim_res, rt_res = run_both(
            trace,
            lambda: TagsPolicy(timeouts=(ErlangTimeout(6, 42.0),)),
            (4, 4),
        )
        assert sim_res.dropped_arrival > 0
        assert sim_res.job_outcomes() == rt_res.job_outcomes()
        assert sim_res.dropped_arrival == rt_res.dropped_arrival
        assert sim_res.dropped_forward == rt_res.dropped_forward

    def test_fault_plan_replay_matches(self):
        """Both hosts replaying the same FaultPlan see identical per-job
        fault outcomes: same jobs lost to failure, same work wasted --
        across every crash/degraded semantics combination."""
        trace = Trace.synthesise(
            PoissonArrivals(5.0), Exponential(10.0), 3000, seed=29
        )
        span = float(trace.arrival_times[-1])
        plan = FaultPlan.generate(
            horizon=span,
            crash_rate=0.01,
            repair_rate=0.05,
            nodes=(0, 1),
            seed=3,
        )
        assert len(plan) >= 4  # the storm actually happens
        for on_crash, degraded in [
            ("requeue", "shed"),
            ("drop", "shed"),
            ("requeue", "single_node"),
        ]:
            sim = Simulation(
                TraceArrivals(trace),
                TraceDemands(trace),
                TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
                (10, 10),
                seed=42,
                record_jobs=True,
                faults=FaultInjector(plan, on_crash=on_crash, degraded=degraded),
            )
            sim_res = sim.run(t_end=HORIZON)
            rt = DispatchRuntime(
                TraceLoad(trace),
                TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
                (10, 10),
                rng=np.random.default_rng(42),
                record_jobs=True,
                faults=FaultInjector(plan, on_crash=on_crash, degraded=degraded),
            )
            rt_res = rt.run(HORIZON)
            assert sim_res.job_outcomes() == rt_res.job_outcomes(), (
                on_crash,
                degraded,
            )
            assert sim_res.lost_to_failure == rt_res.lost_to_failure
            assert sim_res.work_wasted == rt_res.work_wasted
            assert sim_res.lost_to_failure > 0  # faults actually bit

    def test_no_fault_equality_with_empty_plan(self):
        """An attached-but-empty injector must not perturb the runtime:
        outcomes still match a completely fault-free simulator run."""
        trace = Trace.synthesise(
            PoissonArrivals(5.0), Exponential(10.0), 1000, seed=31
        )
        sim_res, _ = run_both(
            trace,
            lambda: TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
            (10, 10),
        )
        rt = DispatchRuntime(
            TraceLoad(trace),
            TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
            (10, 10),
            rng=np.random.default_rng(42),
            record_jobs=True,
            faults=FaultInjector(FaultPlan()),
        )
        rt_res = rt.run(HORIZON)
        assert sim_res.job_outcomes() == rt_res.job_outcomes()

    def test_aggregate_metrics_match_too(self):
        """Beyond outcomes: queue-length time averages agree (same event
        times, same piecewise-constant trajectories)."""
        trace = Trace.synthesise(
            PoissonArrivals(5.0), Exponential(10.0), 2000, seed=23
        )
        horizon = float(trace.arrival_times[-1]) + 50.0
        sim = Simulation(
            TraceArrivals(trace),
            TraceDemands(trace),
            TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
            (10, 10),
            seed=5,
        )
        sim_res = sim.run(t_end=horizon)
        rt = DispatchRuntime(
            TraceLoad(trace),
            TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
            (10, 10),
            rng=np.random.default_rng(5),
        )
        rt_res = rt.run(horizon)
        assert sim_res.mean_queue_lengths == pytest.approx(
            rt_res.mean_queue_lengths, rel=1e-12
        )
        assert sim_res.throughput == rt_res.throughput
