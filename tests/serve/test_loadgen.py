"""Load generators: traces, replay adapters, live sources."""

import numpy as np
import pytest

from repro.dists import Exponential
from repro.serve import (
    MMPPLoad,
    PoissonLoad,
    Trace,
    TraceArrivals,
    TraceDemands,
    TraceLoad,
)
from repro.sim import MMPPArrivals, PoissonArrivals


class TestTrace:
    def test_synthesise_shapes(self):
        trace = Trace.synthesise(PoissonArrivals(5.0), Exponential(10.0), 100, seed=1)
        assert len(trace) == 100
        assert trace.gaps.shape == trace.demands.shape == (100,)
        assert trace.arrival_times[-1] == pytest.approx(trace.gaps.sum())

    def test_synthesise_is_seeded(self):
        a = Trace.synthesise(PoissonArrivals(5.0), Exponential(10.0), 50, seed=3)
        b = Trace.synthesise(PoissonArrivals(5.0), Exponential(10.0), 50, seed=3)
        assert np.array_equal(a.gaps, b.gaps)
        assert np.array_equal(a.demands, b.demands)

    def test_validation(self):
        with pytest.raises(ValueError, match="one demand per gap"):
            Trace([1.0, 2.0], [1.0])
        with pytest.raises(ValueError, match="demands"):
            Trace([1.0], [0.0])
        with pytest.raises(ValueError, match="at least one job"):
            Trace.synthesise(PoissonArrivals(5.0), Exponential(10.0), 0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Trace([], [])

    def test_nan_slips_no_comparison(self):
        """NaN passes a naive ``min() < 0`` check; the explicit
        finiteness guard must still name the offending field."""
        with pytest.raises(ValueError, match="Trace.gaps"):
            Trace([1.0, float("nan")], [1.0, 1.0])
        with pytest.raises(ValueError, match="Trace.demands"):
            Trace([1.0, 1.0], [1.0, float("nan")])

    def test_from_arrival_times(self):
        trace = Trace.from_arrival_times([0.5, 2.0, 2.0, 3.5], [1.0] * 4)
        np.testing.assert_allclose(trace.gaps, [0.5, 1.5, 0.0, 1.5])
        np.testing.assert_allclose(trace.arrival_times, [0.5, 2.0, 2.0, 3.5])

    def test_from_arrival_times_rejects_non_monotone(self):
        with pytest.raises(ValueError, match=r"times\[2\]"):
            Trace.from_arrival_times([1.0, 2.0, 1.5], [1.0] * 3)
        with pytest.raises(ValueError, match="finite"):
            Trace.from_arrival_times([1.0, float("inf")], [1.0] * 2)
        with pytest.raises(ValueError, match="empty"):
            Trace.from_arrival_times([], [])


class TestTraceLoad:
    def test_replay_and_exhaustion(self):
        trace = Trace([0.5, 1.0, 0.25], [1.0, 2.0, 3.0])
        load = TraceLoad(trace)
        rng = np.random.default_rng(0)
        jobs = [load.next_job(rng) for _ in range(4)]
        assert jobs[:3] == [(0.5, 1.0), (1.0, 2.0), (0.25, 3.0)]
        assert jobs[3] is None
        assert load.remaining == 0


class TestSimAdapters:
    def test_arrivals_then_inf(self):
        trace = Trace([0.5, 1.5], [1.0, 1.0])
        arr = TraceArrivals(trace)
        rng = np.random.default_rng(0)
        assert arr.next_interarrival(rng) == 0.5
        assert arr.next_interarrival(rng) == 1.5
        assert arr.next_interarrival(rng) == float("inf")

    def test_demands_one_at_a_time(self):
        trace = Trace([0.5, 1.5], [1.0, 2.0])
        dem = TraceDemands(trace)
        rng = np.random.default_rng(0)
        assert dem.sample(1, rng)[0] == 1.0
        assert dem.sample(1, rng)[0] == 2.0
        with pytest.raises(IndexError):
            dem.sample(1, rng)
        with pytest.raises(ValueError, match="one at a time"):
            TraceDemands(trace).sample(2, rng)


class TestLiveSources:
    def test_poisson_mean_gap(self):
        load = PoissonLoad(4.0, Exponential(10.0))
        rng = np.random.default_rng(0)
        gaps = [load.next_job(rng)[0] for _ in range(4000)]
        assert np.mean(gaps) == pytest.approx(0.25, rel=0.1)

    def test_poisson_rate_is_live(self):
        """The controller/scenario path: mutating ``rate`` shifts the
        load immediately."""
        load = PoissonLoad(4.0, Exponential(10.0))
        rng = np.random.default_rng(0)
        load.rate = 40.0
        gaps = [load.next_job(rng)[0] for _ in range(4000)]
        assert np.mean(gaps) == pytest.approx(0.025, rel=0.1)

    def test_poisson_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            PoissonLoad(0.0, Exponential(10.0))
        with pytest.raises(ValueError, match="PoissonLoad.rate"):
            PoissonLoad(float("nan"), Exponential(10.0))
        with pytest.raises(ValueError, match="demand"):
            PoissonLoad(1.0, object())

    def test_mmpp_load_protocol_checked(self):
        with pytest.raises(ValueError, match="next_interarrival"):
            MMPPLoad(object(), Exponential(10.0))
        mmpp = MMPPArrivals(rate0=10.0, rate1=1.0, switch01=0.5, switch10=0.5)
        with pytest.raises(ValueError, match="demand"):
            MMPPLoad(mmpp, object())

    def test_mmpp_wraps_arrival_process(self):
        mmpp = MMPPArrivals(rate0=10.0, rate1=1.0, switch01=0.5, switch10=0.5)
        load = MMPPLoad(mmpp, Exponential(10.0))
        rng = np.random.default_rng(0)
        gaps = [load.next_job(rng)[0] for _ in range(8000)]
        assert 1.0 / np.mean(gaps) == pytest.approx(mmpp.mean_rate, rel=0.1)
