"""The adaptive timeout controller: estimation, convergence to the
offline optimum, hysteresis, and soft failure on degenerate windows."""

import asyncio

import numpy as np
import pytest

from repro.approx import TagsFixedPoint, optimise_timeout
from repro.dists import Exponential, h2_balanced_means
from repro.models import TagsExponential
from repro.serve import (
    DispatchRuntime,
    PoissonLoad,
    TimeoutController,
    fit_demands_soft,
    validate_against_model,
)
from repro.sim import ErlangTimeout, JSQPolicy, TagsPolicy

LAM, MU = 8.0, 10.0


def make_runtime(ctrl, lam=LAM, t0=5.0, seed=0, caps=(10, 10)):
    return DispatchRuntime(
        PoissonLoad(lam, Exponential(MU)),
        TagsPolicy(timeouts=(ErlangTimeout(6, t0),)),
        caps,
        seed=seed,
        controller=ctrl,
    )


def offline_optimum(lam=LAM, mu=MU, metric="throughput"):
    return optimise_timeout(
        lambda t: TagsFixedPoint(lam=lam, mu=mu, t=t, n=6, K1=10, K2=10),
        metric,
        t_min=0.5,
        t_max=500.0,
        grid_points=40,
    )


class TestFitDemandsSoft:
    """The controller's input path: no window content may raise."""

    def test_too_few_samples(self):
        assert fit_demands_soft([]) is None
        assert fit_demands_soft([1.0]) is None

    def test_non_finite_and_non_positive_filtered(self):
        assert fit_demands_soft([np.nan, np.inf, -1.0, 0.0]) is None
        # two clean points survive the filter; must not raise
        fit_demands_soft([np.nan, 0.5, -3.0, 1.5, np.inf])

    def test_all_equal_window(self):
        """A window of identical demands (deterministic trace replay)
        collapses the EM fit -- soft None or a finite result, no raise."""
        result = fit_demands_soft([2.0] * 50)
        if result is not None:
            assert np.all(np.isfinite(result.dist.rates))

    def test_single_phase_collapse(self):
        """Plain exponential data under a k=2 fit: one component starves.
        Still must come back finite or None."""
        rng = np.random.default_rng(0)
        result = fit_demands_soft(rng.exponential(0.1, size=200))
        if result is not None:
            assert np.isfinite(result.log_likelihood)
            assert min(result.dist.rates) > 0

    def test_genuine_h2_window_fits(self):
        rng = np.random.default_rng(1)
        h2 = h2_balanced_means(0.2, 0.9, 25.0)
        result = fit_demands_soft(h2.sample(500, rng))
        assert result is not None
        m1 = float(result.dist.moment(1))
        assert m1 == pytest.approx(h2.mean, rel=0.5)


class TestValidation:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="positive"):
            TimeoutController(interval=0.0)
        with pytest.raises(ValueError, match="positive"):
            TimeoutController(window=-1.0)
        with pytest.raises(ValueError, match="fit"):
            TimeoutController(fit="weibull")
        with pytest.raises(ValueError, match="deadband"):
            TimeoutController(deadband=-0.1)

    def test_run_requires_bind(self):
        with pytest.raises(RuntimeError, match="bind"):
            asyncio.run(TimeoutController().run())

    def test_node_without_timeout(self):
        ctrl = TimeoutController()
        rt = DispatchRuntime(
            PoissonLoad(5.0, Exponential(10.0)), JSQPolicy(), (10, 10)
        )
        ctrl.bind(rt)
        with pytest.raises(ValueError, match="no timeout"):
            ctrl.tick()


class TestTickPaths:
    def test_insufficient_data_is_a_no_op(self):
        ctrl = TimeoutController(interval=50.0, min_samples=10**9)
        rt = make_runtime(ctrl)
        rt.run(500.0)
        assert ctrl.history  # ticks happened
        assert all(d.reason == "insufficient-data" for d in ctrl.history)
        assert rt.current_timeout(0).t == 5.0  # untouched

    def test_wide_deadband_never_applies(self):
        ctrl = TimeoutController(
            interval=100.0, metric="throughput", deadband=1e9
        )
        rt = make_runtime(ctrl)
        rt.run(1000.0)
        decided = [d for d in ctrl.history if d.reason != "insufficient-data"]
        assert decided and all(d.reason == "deadband" for d in decided)
        assert rt.current_timeout(0).t == 5.0

    def test_estimates_land_near_truth(self):
        ctrl = TimeoutController(interval=150.0, window=300.0, metric="throughput")
        rt = make_runtime(ctrl)
        rt.run(2000.0)
        est = [d for d in ctrl.history if d.lam_hat is not None]
        assert est
        lam_hats = np.array([d.lam_hat for d in est])
        mu_hats = np.array([d.mu_hat for d in est])
        assert lam_hats.mean() == pytest.approx(LAM, rel=0.1)
        # completed-job demands are biased low (large jobs get killed and
        # their demand only counted once finally completed), so allow a
        # generous band -- the controller's optimiser is flat enough here
        assert mu_hats.mean() == pytest.approx(MU, rel=0.25)

    def test_custom_sampler_and_model_factory(self):
        made = []

        def sampler(t):
            made.append(t)
            return ErlangTimeout(4, t)

        ctrl = TimeoutController(
            interval=200.0,
            metric="throughput",
            make_sampler=sampler,
            model_factory=lambda lam, mu, t: TagsFixedPoint(
                lam=lam, mu=mu, t=t, n=4, K1=10, K2=10
            ),
        )
        rt = make_runtime(ctrl)
        rt.run(1500.0)
        assert made  # custom sampler used for the applied re-tune
        assert rt.current_timeout(0).n == 4


class TestConvergence:
    """The acceptance gate: the adapted timeout lands within 10% of the
    offline optimum, and the live metrics validate against the CTMC at
    the true parameters."""

    def test_converges_to_offline_optimum(self):
        offline = offline_optimum()
        ctrl = TimeoutController(interval=150.0, window=300.0, metric="throughput")
        rt = make_runtime(ctrl, t0=5.0, seed=0)
        res = rt.run(2000.0, warmup=200.0)
        final = rt.current_timeout(0).t
        assert final == pytest.approx(offline.t_opt, rel=0.10)
        # hysteresis: one decisive move, then the deadband holds
        applied = [d for d in ctrl.history if d.applied]
        assert len(applied) == 1
        after = ctrl.history[ctrl.history.index(applied[0]) + 1 :]
        assert after and all(d.reason == "deadband" for d in after)
        # and the system the controller steered to validates against the
        # exact chain at the operating point (node band widened for the
        # documented node-2 Markovian approximation bias)
        model = TagsExponential(
            lam=LAM, mu=MU, t=final, n=6, K1=10, K2=10
        )
        report = validate_against_model(res, model, node_tol=0.25)
        assert report["throughput"].ok
        assert report["mean_jobs"].ok

    def test_converges_under_h2_fit(self):
        """The EM-fit estimation path end to end (exponential demands:
        the fit collapses softly to the moment match)."""
        offline = offline_optimum()
        ctrl = TimeoutController(
            interval=150.0, window=300.0, metric="throughput", fit="h2"
        )
        rt = make_runtime(ctrl, seed=1)
        rt.run(2000.0)
        assert rt.current_timeout(0).t == pytest.approx(offline.t_opt, rel=0.10)

    def test_tracks_a_load_shift(self):
        """lambda doubles mid-run; the re-estimated optimum moves and the
        controller follows it (the examples/online_tags.py scenario)."""
        load = PoissonLoad(4.0, Exponential(MU))
        ctrl = TimeoutController(
            interval=150.0, window=300.0, metric="throughput", deadband=0.05
        )
        rt = DispatchRuntime(
            load,
            TagsPolicy(timeouts=(ErlangTimeout(6, 5.0),)),
            (10, 10),
            seed=3,
            controller=ctrl,
        )

        def double():
            load.rate = 13.0

        rt.schedule(2000.0, double)
        rt.run(4000.0)
        final = rt.current_timeout(0).t
        target = offline_optimum(lam=13.0).t_opt
        assert final == pytest.approx(target, rel=0.15)
        # the trajectory actually moved after the shift
        applied_times = [d.time for d in ctrl.history if d.applied]
        assert any(t > 2000.0 for t in applied_times)
