"""The dispatcher runtime: semantics, admission control, live control,
obs integration, wall-clock smoke."""

import numpy as np
import pytest

from repro import obs
from repro.dists import Exponential
from repro.models import MM1K
from repro.serve import (
    DispatchRuntime,
    PoissonLoad,
    Trace,
    TraceLoad,
    WallClock,
)
from repro.sim import (
    DeterministicTimeout,
    ErlangTimeout,
    JSQPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    TagsPolicy,
)


def make_tags_runtime(lam=5.0, mu=10.0, t=51.0, n=6, caps=(10, 10), **kw):
    policy = TagsPolicy(timeouts=(ErlangTimeout(n, t),))
    return DispatchRuntime(
        PoissonLoad(lam, Exponential(mu)), policy, caps, **kw
    )


class TestBasicRuns:
    def test_single_node_matches_mm1k(self):
        """RandomPolicy with all weight on one node is an M/M/1/K served
        online."""
        lam, mu, K = 4.0, 5.0, 8
        rt = DispatchRuntime(
            PoissonLoad(lam, Exponential(mu)),
            RandomPolicy(weights=(1.0,)),
            (K,),
            seed=2,
        )
        res = rt.run(20_000.0, warmup=1000.0)
        ana = MM1K(lam, mu, K)
        assert res.mean_jobs == pytest.approx(ana.mean_jobs, rel=0.08)
        assert res.throughput == pytest.approx(ana.throughput, rel=0.05)
        assert res.loss_probability == pytest.approx(
            ana.blocking_probability, abs=0.015
        )

    def test_tags_kills_and_forwards(self):
        rt = make_tags_runtime(seed=1)
        res = rt.run(3000.0, warmup=300.0)
        assert res.killed > 0
        assert res.forwarded > 0
        assert res.completed > 0
        # flow sanity: everything offered is accounted for up to jobs in
        # flight at the horizon
        assert res.offered >= res.completed + res.dropped_arrival - 50

    def test_policies_without_timeouts(self):
        for policy in (
            RoundRobinPolicy(nodes=2),
            JSQPolicy(nodes=2),
            RandomPolicy(),
        ):
            rt = DispatchRuntime(
                PoissonLoad(5.0, Exponential(10.0)), policy, (10, 10), seed=4
            )
            res = rt.run(1000.0, warmup=100.0)
            assert res.killed == 0
            assert res.completed > 0

    def test_seeded_runs_reproduce(self):
        a = make_tags_runtime(seed=9).run(1000.0)
        b = make_tags_runtime(seed=9).run(1000.0)
        assert a.offered == b.offered
        assert a.completed == b.completed
        assert np.array_equal(a.response_times, b.response_times)

    def test_rng_stream_can_be_shared_style(self):
        """An explicit generator gives the same run as the equivalent
        seed (mirrors the ``sim.runner`` rng= parameter)."""
        a = make_tags_runtime(seed=9).run(500.0)
        b = make_tags_runtime(rng=np.random.default_rng(9)).run(500.0)
        assert a.offered == b.offered
        assert np.array_equal(a.response_times, b.response_times)


class TestAdmissionControl:
    def test_drop_on_full_node1(self):
        """Tiny node-1 capacity under overload: arrivals are refused."""
        rt = make_tags_runtime(lam=20.0, caps=(2, 10), seed=5)
        res = rt.run(500.0)
        assert res.dropped_arrival > 0
        assert res.loss_probability > 0.3

    def test_drop_after_timeout_node2(self):
        """Node 2 of capacity 1 under a short timeout: killed jobs find
        it full and are dropped."""
        policy = TagsPolicy(timeouts=(DeterministicTimeout(0.02),))
        rt = DispatchRuntime(
            PoissonLoad(8.0, Exponential(10.0)), policy, (10, 1), seed=6
        )
        res = rt.run(500.0)
        assert res.dropped_forward > 0

    def test_resume_semantics_carry_work(self):
        """resume=True serves strictly less total work than restart, so
        completions can only go up."""
        t_end = 2000.0
        demand = Exponential(2.0)  # long jobs vs a 0.3 timeout
        restart = DispatchRuntime(
            PoissonLoad(2.0, demand),
            TagsPolicy(timeouts=(DeterministicTimeout(0.3),)),
            (20, 20),
            seed=7,
        ).run(t_end)
        resume = DispatchRuntime(
            PoissonLoad(2.0, demand),
            TagsPolicy(timeouts=(DeterministicTimeout(0.3),), resume=True),
            (20, 20),
            seed=7,
        ).run(t_end)
        assert resume.completed >= restart.completed
        assert resume.mean_response_time < restart.mean_response_time


class TestLiveControl:
    def test_set_timeout_takes_effect(self):
        rt = make_tags_runtime(t=1000.0, seed=8)  # mean timeout 6ms: kill storm
        rt.schedule(500.0, lambda: rt.set_timeout(0, ErlangTimeout(6, 0.06)))
        res = rt.run(1000.0)
        # after the swap the timeout mean is 100s: kills all but stop.
        # compare kill rates in the two halves via the policy history
        assert res.killed > 0
        assert rt.current_timeout(0).t == 0.06

    def test_set_timeout_validates_node(self):
        rt = make_tags_runtime()
        with pytest.raises(ValueError, match="no timeout"):
            rt.set_timeout(1, ErlangTimeout(6, 1.0))
        rt2 = DispatchRuntime(
            PoissonLoad(5.0, Exponential(10.0)), JSQPolicy(), (10, 10)
        )
        with pytest.raises(ValueError, match="no timeout"):
            rt2.set_timeout(0, ErlangTimeout(6, 1.0))

    def test_schedule_fires_at_virtual_time(self):
        rt = make_tags_runtime(seed=1)
        seen = []
        rt.schedule(250.0, lambda: seen.append(rt.clock.now()))
        rt.run(500.0)
        assert seen == [250.0]

    def test_run_validates(self):
        rt = make_tags_runtime()
        with pytest.raises(ValueError, match="exceed"):
            rt.run(10.0, warmup=10.0)
        with pytest.raises(ValueError, match="capacities"):
            make_tags_runtime(caps=(10,))
        with pytest.raises(ValueError, match="capacities"):
            make_tags_runtime(caps=(10, 0))
        with pytest.raises(ValueError, match="speed"):
            DispatchRuntime(
                PoissonLoad(5.0, Exponential(10.0)),
                TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
                (10, 10),
                speeds=(1.0,),
            )

    def test_heterogeneous_speeds(self):
        """A 2x node-2 speed halves node-2 service times: fewer jobs
        pile up there than at speed 1."""
        slow = make_tags_runtime(lam=9.0, t=40.0, seed=3).run(2000.0)
        fast = make_tags_runtime(
            lam=9.0, t=40.0, seed=3, speeds=(1.0, 2.0)
        ).run(2000.0)
        assert fast.mean_queue_lengths[1] < slow.mean_queue_lengths[1]


class TestJobRecords:
    def test_job_log_accounts_for_every_finished_job(self):
        rt = make_tags_runtime(seed=11, record_jobs=True)
        res = rt.run(1000.0)
        outcomes = res.job_outcomes()
        by_kind = {}
        for outcome, _, _ in outcomes.values():
            by_kind[outcome] = by_kind.get(outcome, 0) + 1
        assert by_kind.get("completed", 0) == res.completed
        assert by_kind.get("dropped_arrival", 0) == res.dropped_arrival
        assert by_kind.get("dropped_forward", 0) == res.dropped_forward

    def test_job_log_off_by_default(self):
        res = make_tags_runtime(seed=11).run(200.0)
        assert res.jobs is None
        with pytest.raises(ValueError, match="record_jobs"):
            res.job_outcomes()


class TestObsIntegration:
    def test_disabled_recorder_stays_empty(self):
        rec = obs.recorder()
        if rec.enabled:  # REPRO_OBS=record in the environment
            pytest.skip("recorder enabled process-wide")
        make_tags_runtime(seed=1).run(300.0)
        assert rec.spans == [] and rec.counters == {}

    def test_enabled_recorder_sees_the_run(self):
        with obs.use(obs.Recorder()) as rec:
            res = make_tags_runtime(seed=1, t=20.0).run(300.0)
        assert len(rec.find_spans("serve.run")) == 1
        assert rec.counter("serve.offered") == res.offered
        assert rec.counter("serve.completed") == res.completed
        assert rec.counter("serve.killed") == res.killed
        jobs = rec.find_spans("serve.job")
        finished = res.completed + res.dropped_arrival + res.dropped_forward
        assert len(jobs) == finished
        # spans carry virtual timestamps: completions end within horizon
        completed = [s for s in jobs if s.attrs["outcome"] == "completed"]
        assert completed and all(s.end <= 300.0 for s in completed)
        depth = rec.gauges.get(("serve.queue_depth", (("node", 0),)))
        assert depth is not None and depth.count > 0


class TestWallClockSmoke:
    def test_short_wall_run(self):
        """Real-time mode end to end (scaled 50x so ~0.2s wall)."""
        policy = TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),))
        rt = DispatchRuntime(
            PoissonLoad(5.0, Exponential(10.0)),
            policy,
            (10, 10),
            clock=WallClock(rate=50.0),
            seed=2,
        )
        res = rt.run(10.0)  # 10 model-seconds
        assert res.offered > 10
        assert res.completed > 0

    def test_trace_replay_on_wall_clock(self):
        trace = Trace([0.01] * 20, [0.001] * 20)
        policy = TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),))
        rt = DispatchRuntime(
            TraceLoad(trace), policy, (30, 30), clock=WallClock(rate=1.0)
        )
        res = rt.run(0.5)
        assert res.offered == 20
        assert res.completed == 20
