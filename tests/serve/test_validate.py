"""Live metrics vs CTMC steady state: the paper's models predict what
the runtime measures."""

import pytest

from repro.dists import Exponential
from repro.models import TagsExponential
from repro.serve import (
    DispatchRuntime,
    PoissonLoad,
    validate_against_model,
)
from repro.sim import ErlangTimeout, TagsPolicy

LAM, MU, N = 5.0, 10.0, 6


def run_live(t, seed=0, t_end=22_000.0, warmup=2000.0):
    rt = DispatchRuntime(
        PoissonLoad(LAM, Exponential(MU)),
        TagsPolicy(timeouts=(ErlangTimeout(N, t),)),
        (10, 10),
        seed=seed,
    )
    return rt.run(t_end, warmup=warmup)


def model(t):
    return TagsExponential(lam=LAM, mu=MU, t=t, n=N, K1=10, K2=10)


class TestAgreement:
    def test_all_rows_ok_in_benign_regime(self):
        """Long timeout (rate 5 -> mean 1.2 = 12 mean services): kills
        are rare, the chain is near-exact, every row lands."""
        report = validate_against_model(run_live(5.0), model(5.0))
        assert report.ok, report.format()
        names = {c.name for c in report.checks}
        assert names == {
            "mean_response_time",
            "mean_jobs",
            "mean_jobs_node1",
            "mean_jobs_node2",
            "throughput",
            "loss_probability",
        }
        # the CI-backed rows actually carry a CI
        assert report["mean_response_time"].ci_half is not None
        assert report["mean_jobs"].ci_half is not None

    def test_node2_bias_documented_and_gated_by_node_tol(self):
        """At the paper's operating point (t=51) node 2 carries real
        load and the CTMC's resampled-Erlang repeat period overestimates
        its population by 10-20%.  The default band flags exactly that
        row; widening node_tol (the documented escape hatch) accepts it
        while the raw error stays visible in the report."""
        res = run_live(51.0)
        strict = validate_against_model(res, model(51.0))
        assert not strict.ok
        bad = [c.name for c in strict.checks if not c.ok]
        assert bad == ["mean_jobs_node2"]
        node2 = strict["mean_jobs_node2"]
        assert node2.live < node2.predicted  # CTMC over-predicts
        assert 0.05 < node2.rel_error < 0.25

        widened = validate_against_model(res, model(51.0), node_tol=0.25)
        assert widened.ok
        # raw error is unchanged -- the band moved, not the measurement
        assert widened["mean_jobs_node2"].rel_error == node2.rel_error

    def test_wrong_model_is_flagged(self):
        """Validate against a chain at double the arrival rate: the
        population and response-time rows must blow past any CI."""
        res = run_live(5.0)
        wrong = TagsExponential(lam=2 * LAM, mu=MU, t=5.0, n=N, K1=10, K2=10)
        report = validate_against_model(res, wrong)
        assert not report.ok
        assert not report["mean_jobs"].ok
        assert not report["throughput"].ok


class TestReportObject:
    def test_format_and_lookup(self):
        report = validate_against_model(
            run_live(5.0, t_end=4000.0, warmup=500.0), model(5.0)
        )
        text = report.format()
        assert "mean_jobs_node2" in text
        assert ("agreement" in text) or ("DISAGREEMENT" in text)
        with pytest.raises(KeyError):
            report["no_such_metric"]

    def test_short_stream_drops_the_ci(self):
        """Fewer than 2 * n_batches response samples: the CI is dropped
        and the rel_tol band applies instead of crashing."""
        res = run_live(5.0, t_end=30.0, warmup=0.0)
        report = validate_against_model(res, model(5.0), n_batches=10**6)
        assert report["mean_response_time"].ci_half is None
