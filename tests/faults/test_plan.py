"""FaultPlan / FaultEvent: validation, ordering, generation."""

import numpy as np
import pytest

from repro.faults import FAULT_KINDS, FaultEvent, FaultPlan


class TestFaultEvent:
    def test_valid_kinds_construct(self):
        for kind in ("node_crash", "node_recover"):
            ev = FaultEvent(1.0, kind, 0)
            assert ev.kind in FAULT_KINDS

    def test_bad_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            FaultEvent(-1.0, "node_crash", 0)
        with pytest.raises(ValueError, match="time"):
            FaultEvent(float("nan"), "node_crash", 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(0.0, "meteor_strike", 0)

    def test_node_scoped_kinds_need_a_node(self):
        with pytest.raises(ValueError, match="node"):
            FaultEvent(0.0, "node_crash")
        # surge is system-wide: no node needed
        FaultEvent(0.0, "surge", factor=2.0)

    def test_factor_must_be_positive_and_finite(self):
        for kind in ("degrade", "surge"):
            with pytest.raises(ValueError, match="factor"):
                FaultEvent(0.0, kind, 0, 0.0)
            with pytest.raises(ValueError, match="factor"):
                FaultEvent(0.0, kind, 0, float("inf"))


class TestFaultPlan:
    def test_script_tuples_and_events_mix(self):
        plan = FaultPlan.script(
            (5.0, "node_crash", 1),
            FaultEvent(2.0, "surge", factor=3.0),
            (9.0, "node_recover", 1),
        )
        assert [ev.time for ev in plan] == [2.0, 5.0, 9.0]
        assert len(plan) == 3

    def test_stable_sort_preserves_scripted_tie_order(self):
        plan = FaultPlan.script(
            (1.0, "node_crash", 0),
            (1.0, "node_recover", 0),
        )
        assert [ev.kind for ev in plan] == ["node_crash", "node_recover"]

    def test_non_event_entries_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(("not an event",))

    def test_max_node_and_for_node(self):
        plan = FaultPlan.script(
            (1.0, "node_crash", 2),
            (2.0, "surge", -1, 2.0),
            (3.0, "node_recover", 2),
            (4.0, "degrade", 0, 0.5),
        )
        assert plan.max_node() == 2
        assert [ev.kind for ev in plan.for_node(2)] == [
            "node_crash",
            "node_recover",
        ]
        assert FaultPlan().max_node() == -1


class TestGenerate:
    def test_zero_crash_rate_is_empty(self):
        plan = FaultPlan.generate(
            horizon=100.0, crash_rate=0.0, repair_rate=1.0, nodes=(1,)
        )
        assert len(plan) == 0

    def test_alternates_crash_recover_per_node(self):
        plan = FaultPlan.generate(
            horizon=5000.0, crash_rate=0.01, repair_rate=0.1, nodes=(0, 1), seed=3
        )
        assert len(plan) > 0
        for node in (0, 1):
            kinds = [ev.kind for ev in plan.for_node(node)]
            assert kinds == [
                "node_crash" if i % 2 == 0 else "node_recover"
                for i in range(len(kinds))
            ]

    def test_same_seed_same_plan(self):
        kw = dict(horizon=2000.0, crash_rate=0.02, repair_rate=0.1, nodes=(1,))
        a = FaultPlan.generate(seed=7, **kw)
        b = FaultPlan.generate(seed=7, **kw)
        c = FaultPlan.generate(seed=8, **kw)
        assert a.events == b.events
        assert a.events != c.events

    def test_all_events_inside_horizon(self):
        plan = FaultPlan.generate(
            horizon=300.0, crash_rate=0.05, repair_rate=0.2, nodes=(1,), seed=1
        )
        assert all(0 <= ev.time < 300.0 for ev in plan)

    def test_long_run_availability_matches_target(self):
        """Empirical up-fraction of the alternating process converges on
        repair / (crash + repair)."""
        crash, repair = 0.01, 0.05
        plan = FaultPlan.generate(
            horizon=2e5, crash_rate=crash, repair_rate=repair, nodes=(0,), seed=2
        )
        down = 0.0
        t_down = None
        for ev in plan:
            if ev.kind == "node_crash":
                t_down = ev.time
            else:
                down += ev.time - t_down
                t_down = None
        if t_down is not None:
            down += 2e5 - t_down
        avail = 1.0 - down / 2e5
        assert avail == pytest.approx(repair / (crash + repair), rel=0.05)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(
                horizon=0.0, crash_rate=0.1, repair_rate=0.1, nodes=(0,)
            )
        with pytest.raises(ValueError):
            FaultPlan.generate(
                horizon=10.0, crash_rate=-1.0, repair_rate=0.1, nodes=(0,)
            )
        with pytest.raises(ValueError):
            FaultPlan.generate(
                horizon=10.0, crash_rate=0.1, repair_rate=0.0, nodes=(0,)
            )
        with pytest.raises(ValueError):
            FaultPlan.generate(
                horizon=10.0,
                crash_rate=float("nan"),
                repair_rate=0.1,
                nodes=(0,),
            )
