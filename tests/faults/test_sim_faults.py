"""Fault injection in the offline simulator.

Covers the crash semantics (requeue vs drop), the degraded-mode policy
(shed vs single_node), degrade/surge multipliers, exact job conservation
and the guarantee that ``faults=None`` leaves the simulator bit-for-bit
unchanged.
"""

import numpy as np
import pytest

from repro.dists import Exponential
from repro.faults import FaultInjector, FaultPlan
from repro.sim import (
    DeterministicTimeout,
    ErlangTimeout,
    PoissonArrivals,
    Simulation,
    TagsPolicy,
)


def run_tags(plan=None, *, on_crash="requeue", degraded="shed", t_end=2000.0,
             lam=5.0, mu=10.0, seed=42, **kw):
    faults = None
    if plan is not None:
        faults = FaultInjector(plan, on_crash=on_crash, degraded=degraded)
    sim = Simulation(
        PoissonArrivals(lam),
        Exponential(mu),
        TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
        (10, 10),
        seed=seed,
        faults=faults,
        **kw,
    )
    return sim.run(t_end=t_end)


class TestNoFaultPath:
    def test_faults_none_is_bitwise_identical(self):
        """Adding the faults machinery must not perturb a fault-free run."""
        base = run_tags(None, record_jobs=True)
        empty = run_tags(FaultPlan(), record_jobs=True)
        assert base.job_outcomes() == empty.job_outcomes()
        assert np.array_equal(base.response_times, empty.response_times)
        assert base.lost_to_failure == 0
        assert base.work_wasted == 0.0

    def test_result_conserves_without_faults(self):
        res = run_tags(None)
        assert res.accounted == res.offered


class TestCrashSemantics:
    PLAN = FaultPlan.script(
        (500.0, "node_crash", 1), (700.0, "node_recover", 1)
    )

    @pytest.mark.parametrize("on_crash", ["requeue", "drop"])
    @pytest.mark.parametrize("degraded", ["shed", "single_node"])
    def test_conservation_all_combos(self, on_crash, degraded):
        res = run_tags(self.PLAN, on_crash=on_crash, degraded=degraded)
        assert res.accounted == res.offered
        assert res.lost_to_failure >= 0

    def test_drop_loses_at_least_the_requeue_losses(self):
        lam = 8.0  # node 2 busy enough to hold a queue at crash time
        req = run_tags(self.PLAN, on_crash="requeue", lam=lam)
        drop = run_tags(self.PLAN, on_crash="drop", lam=lam)
        assert drop.lost_to_failure >= req.lost_to_failure
        assert drop.lost_to_failure > 0

    def test_shed_counts_kills_into_down_node(self):
        """With shed, timeouts keep firing while node 2 is down and every
        kill is lost; work_wasted records the destroyed attempt."""
        plan = FaultPlan.script((200.0, "node_crash", 1))  # down forever
        res = run_tags(plan, degraded="shed", t_end=3000.0)
        assert res.lost_to_failure > 0
        assert res.accounted == res.offered
        assert res.failure_loss_probability > 0

    def test_crash_mid_service_wastes_the_attempt(self):
        """work_wasted records the partial service the crash destroyed
        (node 1 is busy at the crash instants with this seed/load)."""
        plan = FaultPlan.script(
            *((t, "node_crash", 0) for t in (300.0, 600.0, 900.0)),
            *((t + 50.0, "node_recover", 0) for t in (300.0, 600.0, 900.0)),
        )
        res = run_tags(plan, lam=8.0, t_end=2000.0)
        assert res.work_wasted > 0.0
        assert res.accounted == res.offered

    def test_single_node_suppresses_kills_while_down(self):
        """With single_node, node 1 serves to exhaustion during the
        outage: far fewer jobs are lost than under shed."""
        plan = FaultPlan.script((200.0, "node_crash", 1))
        shed = run_tags(plan, degraded="shed", t_end=3000.0)
        single = run_tags(plan, degraded="single_node", t_end=3000.0)
        assert single.lost_to_failure < shed.lost_to_failure
        assert single.completed > shed.completed
        assert single.accounted == single.offered

    def test_arrivals_to_down_node_are_shed(self):
        """A crash of node 1 itself: arrivals routed there while it is
        down are lost_to_failure, and service resumes after recovery."""
        plan = FaultPlan.script(
            (300.0, "node_crash", 0), (400.0, "node_recover", 0)
        )
        res = run_tags(plan, record_jobs=True)
        lost = [
            o for o in res.job_outcomes().values() if o[0] == "lost_to_failure"
        ]
        assert lost
        assert res.completed > 0
        assert res.accounted == res.offered


class TestMultipliers:
    def test_degrade_slows_service(self):
        plan = FaultPlan.script((0.0, "degrade", 0, 0.25))
        base = run_tags(None, t_end=1500.0)
        slow = run_tags(plan, t_end=1500.0)
        assert slow.mean_response_time > base.mean_response_time

    def test_surge_scales_offered_load(self):
        plan = FaultPlan.script((0.0, "surge", -1, 2.0))
        base = run_tags(None, t_end=1500.0)
        surge = run_tags(plan, t_end=1500.0)
        assert surge.offered_rate == pytest.approx(
            2.0 * base.offered_rate, rel=0.1
        )


class TestRequeueRestoresAttemptWork:
    def test_resume_keeps_earlier_credit_only(self):
        """Under resume, a crash destroys only the in-flight attempt: the
        requeued head restarts from the attempt's starting remaining
        work, not from zero progress of the whole job."""
        plan = FaultPlan.script(
            (100.0, "node_crash", 0), (101.0, "node_recover", 0)
        )
        res = run_tags(
            None,
            record_jobs=True,
            seed=9,
        )
        res_f = Simulation(
            PoissonArrivals(5.0),
            Exponential(10.0),
            TagsPolicy(timeouts=(DeterministicTimeout(0.3),), resume=True),
            (10, 10),
            seed=9,
            faults=FaultInjector(plan),
            record_jobs=True,
        ).run(t_end=2000.0)
        assert res_f.accounted == res_f.offered
        assert res_f.work_wasted >= 0.0
