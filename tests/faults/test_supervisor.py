"""Supervised failover in the online runtime (virtual clock)."""

import pytest

from repro.dists import Exponential
from repro.faults import FaultInjector, FaultPlan, FaultReport
from repro.serve import (
    DispatchRuntime,
    PoissonLoad,
    Supervisor,
    Trace,
    TraceLoad,
)
from repro.sim import ErlangTimeout, PoissonArrivals, TagsPolicy


def make_runtime(plan, supervisor, **kw):
    inj = FaultInjector(plan, **kw.pop("inj_kw", {}))
    rt = DispatchRuntime(
        PoissonLoad(5.0, Exponential(10.0)),
        TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
        (10, 10),
        seed=42,
        faults=inj,
        supervisor=supervisor,
    )
    return rt, inj


class TestSupervisedRecovery:
    PLAN = FaultPlan.script(
        (500.0, "node_crash", 1), (600.0, "node_recover", 1)
    )

    def test_mttr_includes_detection_and_backoff(self):
        """The supervisor restarts only after the fault clears AND a
        probe fires, so measured MTTR strictly exceeds the 100s fault
        (check_interval=3 puts the poll grid off the t=600 clear)."""
        sup = Supervisor(check_interval=3.0, seed=1)
        rt, inj = make_runtime(self.PLAN, sup)
        res = rt.run(2000.0)
        assert inj.recoveries == 1
        assert inj.mttr() > 100.0
        assert res.accounted == res.offered
        # probes of the still-broken node failed before the one success
        assert any(not a.success for a in sup.history)
        assert sup.history[-1].success

    def test_report_collects_supervised_numbers(self):
        sup = Supervisor(check_interval=2.0, seed=1)
        rt, inj = make_runtime(self.PLAN, sup)
        res = rt.run(2000.0)
        rep = FaultReport.collect(res, inj, 2000.0)
        assert rep.crashes == 1 and rep.recoveries == 1
        assert rep.availability[1] < 1.0
        assert "MTTR" in rep.format()

    def test_unsupervised_recovers_at_the_plan_event(self):
        rt, inj = make_runtime(self.PLAN, None)
        rt.run(2000.0)
        assert inj.mttr() == pytest.approx(100.0)


class TestEventDrivenIdle:
    def test_healthy_supervisor_holds_no_timer(self):
        """With an empty plan the supervisor parks on the crash-wake
        event: a short trace drained to HORIZON=1e9 must finish without
        the supervisor ticking (a polling loop would spin ~5e8 times)."""
        trace = Trace.synthesise(PoissonArrivals(5.0), Exponential(10.0), 50)
        sup = Supervisor(check_interval=2.0)
        rt = DispatchRuntime(
            TraceLoad(trace),
            TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
            (10, 10),
            seed=0,
            faults=FaultInjector(FaultPlan()),
            supervisor=sup,
        )
        res = rt.run(1e9)
        assert res.completed + res.dropped_arrival + res.dropped_forward == 50
        assert sup.history == []


class TestWiring:
    def test_supervisor_requires_faults(self):
        with pytest.raises(ValueError, match="supervis"):
            DispatchRuntime(
                PoissonLoad(5.0, Exponential(10.0)),
                TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
                (10, 10),
                supervisor=Supervisor(),
            )

    def test_attaching_supervisor_sets_supervised_flag(self):
        sup = Supervisor()
        rt, inj = make_runtime(FaultPlan(), sup)
        assert inj.supervised is True

    def test_run_before_bind_raises(self):
        import asyncio

        with pytest.raises(RuntimeError, match="bind"):
            asyncio.run(Supervisor().run())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Supervisor(check_interval=0.0)
        with pytest.raises(ValueError):
            Supervisor(backoff_factor=0.5)
        with pytest.raises(ValueError):
            Supervisor(backoff_max=0.5, backoff_base=1.0)
        with pytest.raises(ValueError):
            Supervisor(jitter=1.5)
