"""FaultInjector: state machine, supervised mode, bookkeeping."""

import pytest

from repro.faults import FaultInjector, FaultPlan


def crash_recover_plan():
    return FaultPlan.script(
        (10.0, "node_crash", 1),
        (30.0, "node_recover", 1),
    )


class TestDirectives:
    def test_crash_then_recover(self):
        inj = FaultInjector(crash_recover_plan())
        inj.reset(2)
        evs = list(inj.events())
        assert inj.apply(evs[0], 10.0) == "crash"
        assert inj.up == [True, False]
        assert inj.apply(evs[1], 30.0) == "recover"
        assert inj.up == [True, True]
        assert inj.crashes == 1 and inj.recoveries == 1

    def test_redundant_crash_is_none(self):
        plan = FaultPlan.script((1.0, "node_crash", 0), (2.0, "node_crash", 0))
        inj = FaultInjector(plan)
        inj.reset(1)
        e1, e2 = inj.events()
        assert inj.apply(e1, 1.0) == "crash"
        assert inj.apply(e2, 2.0) is None
        assert inj.crashes == 1

    def test_degrade_and_surge_are_state_only(self):
        plan = FaultPlan.script(
            (1.0, "degrade", 0, 0.5), (2.0, "surge", -1, 3.0)
        )
        inj = FaultInjector(plan)
        inj.reset(1)
        e1, e2 = inj.events()
        assert inj.apply(e1, 1.0) is None
        assert inj.speed_factor[0] == 0.5
        assert inj.apply(e2, 2.0) is None
        assert inj.arrival_factor == 3.0


class TestSupervisedMode:
    def test_recover_only_clears_until_restart(self):
        inj = FaultInjector(crash_recover_plan())
        inj.supervised = True
        inj.reset(2)
        evs = list(inj.events())
        inj.apply(evs[0], 10.0)
        # before the fault clears, a restart probe fails
        assert inj.try_restart(1, 20.0) is False
        assert inj.apply(evs[1], 30.0) is None  # cleared, NOT up
        assert inj.up[1] is False
        assert inj.try_restart(1, 34.0) is True
        assert inj.up[1] is True
        # MTTR spans crash -> restart, not crash -> clear
        assert inj.mttr() == pytest.approx(24.0)

    def test_try_restart_on_up_node_is_trivially_true(self):
        inj = FaultInjector(FaultPlan())
        inj.reset(2)
        assert inj.try_restart(0, 5.0) is True
        assert inj.recoveries == 0


class TestDecisions:
    def test_suppress_timeout_single_node_only(self):
        inj = FaultInjector(crash_recover_plan(), degraded="single_node")
        inj.reset(2)
        assert inj.suppress_timeout(1) is False
        inj.apply(next(inj.events()), 10.0)
        assert inj.suppress_timeout(1) is True
        assert inj.suppress_timeout(None) is False  # last node: no target

    def test_shed_never_suppresses(self):
        inj = FaultInjector(crash_recover_plan(), degraded="shed")
        inj.reset(2)
        inj.apply(next(inj.events()), 10.0)
        assert inj.suppress_timeout(1) is False


class TestBookkeeping:
    def test_availability_and_mttr(self):
        inj = FaultInjector(crash_recover_plan())
        inj.reset(2)
        for ev in inj.events():
            inj.apply(ev, ev.time)
        assert inj.availability(1, 100.0) == pytest.approx(0.8)
        assert inj.availability(0, 100.0) == 1.0
        assert inj.mttr() == pytest.approx(20.0)

    def test_open_downtime_counts_through_t_end(self):
        plan = FaultPlan.script((10.0, "node_crash", 0))
        inj = FaultInjector(plan)
        inj.reset(1)
        inj.apply(next(inj.events()), 10.0)
        assert inj.availability(0, 50.0) == pytest.approx(0.2)
        assert inj.mttr() is None

    def test_reset_rearms_everything(self):
        inj = FaultInjector(crash_recover_plan())
        inj.reset(2)
        for ev in inj.events():
            inj.apply(ev, ev.time)
        inj.reset(2)
        assert inj.up == [True, True]
        assert inj.crashes == 0 and inj.recoveries == 0
        assert inj.downtimes == [[], []]


class TestValidation:
    def test_bad_on_crash_and_degraded(self):
        with pytest.raises(ValueError, match="on_crash"):
            FaultInjector(FaultPlan(), on_crash="explode")
        with pytest.raises(ValueError, match="degraded"):
            FaultInjector(FaultPlan(), degraded="panic")

    def test_reset_rejects_plan_beyond_host(self):
        inj = FaultInjector(crash_recover_plan())
        with pytest.raises(ValueError, match="node 1"):
            inj.reset(1)
