"""CircuitBreaker: closed -> open -> half-open -> {closed, open}."""

import pytest

from repro.faults import CircuitBreaker


class TestTrip:
    def test_trips_after_threshold_consecutive_failures(self):
        br = CircuitBreaker(failure_threshold=3, reset_timeout=10.0)
        for t in (1.0, 2.0):
            assert br.allow(t)
            br.record_failure(t)
            assert br.state == "closed"
        assert br.allow(3.0)
        br.record_failure(3.0)
        assert br.state == "open"
        assert br.allow(4.0) is False  # fail fast while open

    def test_success_resets_the_failure_count(self):
        br = CircuitBreaker(failure_threshold=2, reset_timeout=10.0)
        br.record_failure(1.0)
        br.record_success(2.0)
        br.record_failure(3.0)
        assert br.state == "closed"  # the streak was broken


class TestHalfOpen:
    def test_single_probe_after_reset_timeout(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        br.record_failure(0.0)
        assert br.state == "open"
        assert br.allow(5.0) is False
        assert br.allow(10.0) is True  # the probe
        assert br.state == "half_open"
        assert br.allow(10.5) is False  # only one probe at a time

    def test_probe_success_closes(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        br.record_failure(0.0)
        assert br.allow(11.0)
        br.record_success(11.0)
        assert br.state == "closed"
        assert br.allow(11.5)

    def test_probe_failure_reopens_for_a_full_timeout(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        br.record_failure(0.0)
        assert br.allow(11.0)
        br.record_failure(11.0)
        assert br.state == "open"
        assert br.allow(20.0) is False  # 10s from re-open, not from t=0
        assert br.allow(21.0) is True


class TestHistory:
    def test_transitions_record_model_time(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout=5.0)
        br.record_failure(1.0)
        br.allow(6.0)
        br.record_success(6.0)
        assert br.transitions == [
            (1.0, "open"),
            (6.0, "half_open"),
            (6.0, "closed"),
        ]


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0.0)
