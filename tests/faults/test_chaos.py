"""Chaos gate: random seeded fault storms must never break invariants.

The CI ``faults`` job runs this module across a crash-rate x policy
matrix via environment variables:

``REPRO_CHAOS_CRASH_RATE``   node-2 crash rate (default 0.01)
``REPRO_CHAOS_POLICY``       ``tags`` / ``random`` / ``jsq`` (default tags)

Whatever the storm does, three things must hold: the run terminates
(the CI job adds a hard per-test timeout), every offered job is
accounted for exactly once, and the failure bookkeeping is internally
consistent (availability in [0, 1], losses >= 0).
"""

import os

import pytest

from repro.dists import Exponential
from repro.faults import FaultInjector, FaultPlan, FaultReport
from repro.serve import DispatchRuntime, PoissonLoad, Supervisor
from repro.sim import (
    ErlangTimeout,
    JSQPolicy,
    PoissonArrivals,
    RandomPolicy,
    Simulation,
    TagsPolicy,
)

CRASH_RATE = float(os.environ.get("REPRO_CHAOS_CRASH_RATE", "0.01"))
POLICY = os.environ.get("REPRO_CHAOS_POLICY", "tags")
HORIZON = 2000.0


def make_policy():
    if POLICY == "tags":
        return TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),))
    if POLICY == "random":
        return RandomPolicy(weights=(0.5, 0.5))
    if POLICY == "jsq":
        return JSQPolicy()
    raise ValueError(f"unknown REPRO_CHAOS_POLICY {POLICY!r}")


def make_plan(seed, nodes=(0, 1)):
    return FaultPlan.generate(
        horizon=HORIZON,
        crash_rate=CRASH_RATE,
        repair_rate=0.05,
        nodes=nodes,
        seed=seed,
    )


def check_invariants(res, inj):
    assert res.accounted == res.offered
    assert res.lost_to_failure >= 0
    assert res.work_wasted >= 0.0
    for node in range(inj.n_nodes):
        assert 0.0 <= inj.availability(node, HORIZON) <= 1.0
    rep = FaultReport.collect(res, inj, HORIZON)
    assert rep.crashes >= rep.recoveries


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("on_crash", ["requeue", "drop"])
def test_sim_survives_fault_storm(seed, on_crash):
    inj = FaultInjector(make_plan(seed), on_crash=on_crash)
    sim = Simulation(
        PoissonArrivals(5.0),
        Exponential(10.0),
        make_policy(),
        (10, 10),
        seed=seed,
        faults=inj,
    )
    res = sim.run(t_end=HORIZON)
    check_invariants(res, inj)


@pytest.mark.parametrize("seed", range(3))
def test_serve_survives_fault_storm_supervised(seed):
    inj = FaultInjector(make_plan(seed), degraded="single_node")
    rt = DispatchRuntime(
        PoissonLoad(5.0, Exponential(10.0)),
        make_policy(),
        (10, 10),
        seed=seed,
        faults=inj,
        supervisor=Supervisor(check_interval=2.0, seed=seed),
        forward_retries=2,
    )
    res = rt.run(HORIZON)
    check_invariants(res, inj)


def test_serve_storm_with_warmup_still_consistent():
    """Warmup resets the loss counters mid-storm; the post-warmup window
    must still be internally consistent (losses, waste >= 0)."""
    inj = FaultInjector(make_plan(99))
    rt = DispatchRuntime(
        PoissonLoad(5.0, Exponential(10.0)),
        make_policy(),
        (10, 10),
        seed=99,
        faults=inj,
    )
    res = rt.run(HORIZON, warmup=200.0)
    assert res.lost_to_failure >= 0
    assert res.work_wasted >= 0.0
