"""TAGS model tests: PEPA-vs-direct cross-validation, the paper's 4331-state
count, structural invariants and limiting behaviours."""

import numpy as np
import pytest

from repro.models import (
    TagsExponential,
    TagsHyperExponential,
    build_tags_model,
    tags_pepa_metrics,
)
from repro.models.tags_pepa import TagsParameters
from repro.models.tags_hyper import TagsH2Parameters, tags_h2_pepa_metrics
from repro.pepa import check_model, explore


class TestStateSpace:
    def test_paper_state_count(self):
        """The headline check: n=6, K1=K2=10 must give 4331 states."""
        p = TagsParameters(lam=5, mu=10, t=51, n=6, K1=10, K2=10)
        space = explore(build_tags_model(p))
        assert space.n_states == 4331

    def test_state_count_formula(self):
        """Reachable count is (K1*n + 1) * (K2*(n+1) + 1) for the frozen-
        timer encoding."""
        for n, K1, K2 in [(3, 4, 5), (2, 3, 3), (6, 10, 10)]:
            p = TagsParameters(lam=5, mu=10, t=20, n=n, K1=K1, K2=K2)
            space = explore(build_tags_model(p))
            assert space.n_states == (K1 * n + 1) * (K2 * (n + 1) + 1)

    def test_direct_matches_pepa_count(self):
        p = TagsParameters(lam=5, mu=10, t=51, n=4, K1=6, K2=6)
        space = explore(build_tags_model(p))
        d = TagsExponential(lam=5, mu=10, t=51, n=4, K1=6, K2=6)
        assert d.n_states == space.n_states

    def test_well_formed(self):
        p = TagsParameters(n=3, K1=3, K2=3)
        assert check_model(build_tags_model(p)).warnings == []


class TestPepaDirectAgreement:
    """The PEPA derivation and the direct chain are the same CTMC."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(lam=5.0, mu=10.0, t=51.0, n=6, K1=10, K2=10),
            dict(lam=11.0, mu=10.0, t=42.0, n=6, K1=10, K2=10),
            dict(lam=5.0, mu=10.0, t=5.0, n=2, K1=4, K2=6),
            dict(
                lam=5.0, mu=10.0, t=20.0, n=3, K1=5, K2=5,
                tick_during_residual=True,
            ),
        ],
        ids=["fig6", "fig8-lam11", "small", "ticking-variant"],
    )
    def test_exponential(self, kwargs):
        mp = tags_pepa_metrics(TagsParameters(**kwargs))
        md = TagsExponential(**kwargs).metrics()
        assert md.mean_jobs == pytest.approx(mp.mean_jobs, rel=1e-9)
        assert md.throughput == pytest.approx(mp.throughput, rel=1e-9)
        assert md.loss_per_node[0] == pytest.approx(mp.loss_per_node[0], abs=1e-12)
        assert md.extra["n_states"] == mp.extra["n_states"]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(lam=11.0, alpha=0.99, mu1=19.9, mu2=0.199, t=40.0, n=3, K1=5, K2=5),
            dict(lam=11.0, alpha=0.9, mu1=19.0, mu2=1.9, t=20.0, n=2, K1=4, K2=4),
        ],
        ids=["fig9-small", "alpha09"],
    )
    def test_hyperexponential(self, kwargs):
        mp = tags_h2_pepa_metrics(TagsH2Parameters(**kwargs))
        md = TagsHyperExponential(**kwargs).metrics()
        assert md.mean_jobs == pytest.approx(mp.mean_jobs, rel=1e-9)
        assert md.throughput == pytest.approx(mp.throughput, rel=1e-9)
        assert md.extra["n_states"] == mp.extra["n_states"]


class TestH2Degeneracy:
    def test_h2_with_equal_rates_equals_exponential(self):
        """mu1 == mu2 == mu collapses Figure 5 to Figure 3."""
        exp = TagsExponential(lam=5, mu=10, t=30, n=3, K1=5, K2=5).metrics()
        h2 = TagsHyperExponential(
            lam=5, alpha=0.5, mu1=10.0, mu2=10.0, t=30.0, n=3, K1=5, K2=5
        ).metrics()
        assert h2.mean_jobs == pytest.approx(exp.mean_jobs, rel=1e-9)
        assert h2.throughput == pytest.approx(exp.throughput, rel=1e-9)
        assert h2.response_time == pytest.approx(exp.response_time, rel=1e-9)


class TestFlowBalance:
    def test_conservation(self):
        m = TagsExponential(lam=9, mu=10, t=45, n=6, K1=10, K2=10).metrics()
        # every admitted job leaves by service1 or service2
        assert m.throughput + m.loss_rate == pytest.approx(9.0, abs=1e-9)
        # node-2 flow balance: entries (timeout minus drops) = service2
        x2 = m.extra["service2_throughput"]
        assert m.extra["timeout_throughput"] - m.loss_per_node[1] == pytest.approx(
            x2, abs=1e-9
        )

    def test_losses_nonnegative(self):
        m = TagsExponential(lam=11, mu=10, t=5.0, n=6, K1=10, K2=10).metrics()
        assert m.loss_per_node[0] >= 0
        assert m.loss_per_node[1] >= -1e-12


class TestLimits:
    def test_huge_timeout_first_node_does_everything(self):
        """t -> 0 rate ... wait: huge MEAN timeout = tiny rate t is wrong
        way; a very SLOW clock (t small) means the timeout almost never
        fires, so node 1 behaves like M/M/1/K1 and node 2 idles."""
        m = TagsExponential(lam=5, mu=10, t=0.01, n=6, K1=10, K2=10).metrics()
        from repro.models import MM1K

        ana = MM1K(5, 10, 10)
        assert m.mean_jobs_per_node[0] == pytest.approx(ana.mean_jobs, rel=1e-2)
        assert m.mean_jobs_per_node[1] == pytest.approx(0.0, abs=1e-2)
        assert m.extra["timeout_throughput"] < 0.05

    def test_instant_timeout_everything_to_node2(self):
        """A very fast clock times every job out to node 2."""
        m = TagsExponential(lam=5, mu=10, t=5000.0, n=6, K1=10, K2=10).metrics()
        assert m.extra["service1_throughput"] < 0.1
        assert m.extra["service2_throughput"] > 4.5

    def test_monotone_loss_in_load(self):
        losses = [
            TagsExponential(lam=lam, mu=10, t=45, n=6, K1=10, K2=10)
            .metrics()
            .loss_rate
            for lam in (5.0, 9.0, 13.0, 18.0)
        ]
        assert all(a < b for a, b in zip(losses, losses[1:]))


class TestTickDuringResidualAblation:
    def test_variants_differ_but_slightly(self):
        base = dict(lam=5, mu=10, t=51.0, n=6, K1=10, K2=10)
        frozen = TagsExponential(**base).metrics()
        ticking = TagsExponential(**base, tick_during_residual=True).metrics()
        assert ticking.mean_jobs != pytest.approx(frozen.mean_jobs, rel=1e-12)
        # the encodings describe the same physical system to first order
        # (the ticking variant shortens the next job's repeat period, so it
        # holds ~17% fewer jobs at these parameters)
        assert ticking.mean_jobs == pytest.approx(frozen.mean_jobs, rel=0.3)
        assert ticking.mean_jobs < frozen.mean_jobs

    def test_ticking_variant_has_more_states(self):
        base = dict(lam=5, mu=10, t=51.0, n=6, K1=10, K2=10)
        frozen = TagsExponential(**base)
        ticking = TagsExponential(**base, tick_during_residual=True)
        assert ticking.n_states > frozen.n_states


class TestParameterValidation:
    def test_bad_rates(self):
        with pytest.raises(ValueError):
            TagsParameters(lam=-1.0)
        with pytest.raises(ValueError):
            TagsExponential(lam=5, mu=0.0)

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            TagsH2Parameters(alpha=1.0)
        with pytest.raises(ValueError):
            TagsHyperExponential(alpha=0.0)

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            TagsParameters(n=0)
        with pytest.raises(ValueError):
            TagsParameters(K1=0)
