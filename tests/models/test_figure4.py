"""Figure 4 (per-place) model tests: internal consistency and its
relationship to the Figure 3 encoding."""

import pytest

from repro.models import TagsExponential
from repro.models.tags_figure4 import Figure4Model


class TestCountedExact:
    @pytest.fixture(scope="class")
    def small(self):
        return Figure4Model(lam=5, mu=10, t=40, n=3, K1=4, K2=4)

    def test_flow_balance(self, small):
        m = small.metrics()
        # no drops at node 2 in this encoding (timeout blocks instead), so
        # successful throughput = accepted arrivals
        assert m.throughput == pytest.approx(m.extra["accepted_rate"], abs=1e-8)

    def test_queue_bounds(self, small):
        m = small.metrics()
        assert 0 <= m.mean_jobs_per_node[0] <= 4
        assert 0 <= m.mean_jobs_per_node[1] <= 4

    def test_close_to_figure3_at_low_loss(self):
        """Same physical system, different encoding: throughput within 1%
        (Figure 4 blocks instead of dropping at node 2, so it actually
        completes slightly *more* jobs) and population within ~15% (the
        pipelined repeat clock drains queue 2 faster)."""
        f4 = Figure4Model(lam=5, mu=10, t=51, n=3, K1=6, K2=6).metrics()
        f3 = TagsExponential(lam=5, mu=10, t=51, n=3, K1=6, K2=6).metrics()
        assert f4.throughput == pytest.approx(f3.throughput, rel=0.01)
        assert f4.throughput >= f3.throughput
        assert f4.mean_jobs == pytest.approx(f3.mean_jobs, rel=0.15)

    def test_closer_to_ticking_variant(self):
        """The per-place encoding keeps tick2 alive during residuals, so it
        should sit nearer the ticking variant of Figure 3 than the frozen
        one."""
        f4 = Figure4Model(lam=5, mu=10, t=51, n=3, K1=6, K2=6).metrics()
        frozen = TagsExponential(lam=5, mu=10, t=51, n=3, K1=6, K2=6).metrics()
        ticking = TagsExponential(
            lam=5, mu=10, t=51, n=3, K1=6, K2=6, tick_during_residual=True
        ).metrics()
        gap_frozen = abs(f4.mean_jobs - frozen.mean_jobs)
        gap_ticking = abs(f4.mean_jobs - ticking.mean_jobs)
        assert gap_ticking < gap_frozen

    def test_state_space_larger_than_figure3(self):
        """Counting distinguishes repeat/residual per place, so the
        quotient is bigger than Figure 3's head-only encoding (but far
        smaller than the identity-full product)."""
        f4 = Figure4Model(lam=5, mu=10, t=40, n=3, K1=4, K2=4)
        gen, _, _ = f4.counted().explore()
        f3 = TagsExponential(lam=5, mu=10, t=40, n=3, K1=4, K2=4)
        assert gen.n_states > f3.n_states
        # identity-full product would be ~2^4 * 3^4 * ... >> quotient
        assert gen.n_states < 2**4 * 3**4 * 4 * 4 * 2


class TestFluidView:
    def test_fluid_runs_and_conserves(self):
        f4 = Figure4Model(lam=5, mu=10, t=40, n=2, K1=5, K2=5)
        fm = f4.fluid()
        ts, traj = fm.solve(20.0, n_points=40)
        places1 = traj["q1_places.Q1_0"] + traj["q1_places.Q1_1"]
        assert abs(places1 - 5.0).max() < 1e-6

    def test_fluid_underestimates_stochastic_queue(self):
        """The fluid limit sees no variance: at rho=0.5 it predicts less
        queueing than the exact counted chain."""
        f4 = Figure4Model(lam=5, mu=10, t=40, n=2, K1=5, K2=5)
        eq = f4.fluid().equilibrium(t_end=300.0)
        fluid_q1 = eq["q1_places.Q1_1"]
        exact_q1 = f4.metrics().mean_jobs_per_node[0]
        assert fluid_q1 <= exact_q1 + 1e-6


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            Figure4Model(lam=0.0)
        with pytest.raises(ValueError):
            Figure4Model(n=0)
