"""Tests for the TAGS model extensions: heterogeneous nodes and the
Section 7 dynamic (queue-length-adaptive) timeout."""

import pytest

from repro.models import TagsExponential


class TestHeterogeneousNodes:
    def test_defaults_match_homogeneous(self):
        base = TagsExponential(lam=5, mu=10, t=40, n=3, K1=5, K2=5).metrics()
        het = TagsExponential(
            lam=5, mu=10, t=40, n=3, K1=5, K2=5, mu2_service=10.0, t2=40.0
        ).metrics()
        assert het.mean_jobs == pytest.approx(base.mean_jobs, rel=1e-12)

    def test_faster_node2_drains_queue2(self):
        slow = TagsExponential(lam=9, mu=10, t=40, n=3, K1=5, K2=5).metrics()
        fast = TagsExponential(
            lam=9, mu=10, t=40, n=3, K1=5, K2=5, mu2_service=25.0
        ).metrics()
        assert fast.mean_jobs_per_node[1] < slow.mean_jobs_per_node[1]
        assert fast.throughput >= slow.throughput

    def test_slow_repeat_clock_grows_queue2(self):
        base = TagsExponential(lam=9, mu=10, t=40, n=3, K1=5, K2=5).metrics()
        slow_repeat = TagsExponential(
            lam=9, mu=10, t=40, n=3, K1=5, K2=5, t2=10.0
        ).metrics()
        assert slow_repeat.mean_jobs_per_node[1] > base.mean_jobs_per_node[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            TagsExponential(mu2_service=0.0)
        with pytest.raises(ValueError):
            TagsExponential(t2=-1.0)


class TestDynamicTimeout:
    def test_constant_function_matches_static(self):
        """A constant t_of_q1 equal to t is exactly the static model (the
        base t still drives node 2's repeat clock)."""
        static = TagsExponential(lam=9, mu=10, t=42, n=3, K1=5, K2=5).metrics()
        dyn = TagsExponential(
            lam=9, mu=10, t=42.0, n=3, K1=5, K2=5, t_of_q1=lambda q: 42.0
        ).metrics()
        assert dyn.mean_jobs == pytest.approx(static.mean_jobs, rel=1e-12)
        assert dyn.throughput == pytest.approx(static.throughput, rel=1e-12)

    def test_adaptive_changes_behaviour(self):
        static = TagsExponential(lam=11, mu=10, t=42, n=3, K1=6, K2=6).metrics()
        adaptive = TagsExponential(
            lam=11, mu=10, t=42, n=3, K1=6, K2=6,
            t_of_q1=lambda q: 42.0 * (1.0 + 0.3 * (q - 1)),
        ).metrics()
        assert adaptive.mean_jobs != pytest.approx(static.mean_jobs, rel=1e-9)

    def test_pressure_adaptive_sheds_node1_backlog(self):
        """Timing out faster when the queue is long must shorten queue 1."""
        static = TagsExponential(lam=11, mu=10, t=30, n=3, K1=6, K2=6).metrics()
        adaptive = TagsExponential(
            lam=11, mu=10, t=30, n=3, K1=6, K2=6,
            t_of_q1=lambda q: 30.0 * (1.0 + 1.0 * max(q - 2, 0)),
        ).metrics()
        assert adaptive.mean_jobs_per_node[0] < static.mean_jobs_per_node[0]

    def test_validation_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="t_of_q1"):
            TagsExponential(K1=3, t_of_q1=lambda q: 0.0)

    def test_flow_balance_holds(self):
        m = TagsExponential(
            lam=11, mu=10, t=42, n=3, K1=5, K2=5,
            t_of_q1=lambda q: 20.0 + 5.0 * q,
        ).metrics()
        assert m.throughput + m.loss_rate == pytest.approx(11.0, abs=1e-8)
