"""Tagged-job analysis for the H2 (Figure 5) chain."""

import numpy as np
import pytest

from repro.models import TagsHyperExponential
from repro.models.tagged import TaggedJobAnalysisH2

PARAMS = dict(lam=8.0, alpha=0.95, mu1=19.0, mu2=1.0, t=25.0, n=3, K1=5, K2=5)


@pytest.fixture(scope="module")
def tagged():
    model = TagsHyperExponential(**PARAMS)
    return model, TaggedJobAnalysisH2(model)


class TestOutcomes:
    def test_probabilities_sum_to_one(self, tagged):
        _, tg = tagged
        assert sum(tg.outcome_probabilities().values()) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_match_flow_ratios(self, tagged):
        """Exchangeability holds in the Markovian H2 model (phases are
        drawn at head promotion), so outcome splits equal flow ratios."""
        model, tg = tagged
        m = model.metrics()
        accepted = m.offered_load - m.loss_per_node[0]
        probs = tg.outcome_probabilities()
        x1 = m.extra["service1_throughput"] if "service1_throughput" in m.extra else None
        # recompute from the generator's action throughputs
        from repro.ctmc import action_throughput

        x1 = action_throughput(model.generator, model.pi, "service1")
        x2 = action_throughput(model.generator, model.pi, "service2")
        assert probs["done1"] == pytest.approx(x1 / accepted, rel=1e-7)
        assert probs["done2"] == pytest.approx(x2 / accepted, rel=1e-7)


class TestLittleDecomposition:
    def test_exact(self, tagged):
        model, tg = tagged
        m = model.metrics()
        accepted = m.offered_load - m.loss_per_node[0]
        probs = tg.outcome_probabilities()
        means = tg.mean_response_by_outcome()
        L = accepted * sum(
            probs[k] * means[k] for k in probs if probs[k] > 0
        )
        assert L == pytest.approx(m.mean_jobs, rel=1e-7)

    def test_restarted_jobs_much_slower(self, tagged):
        _, tg = tagged
        means = tg.mean_response_by_outcome()
        assert means["done2"] > 2 * means["done1"]


class TestDistribution:
    def test_cdf_monotone(self, tagged):
        _, tg = tagged
        xs = np.array([0.05, 0.2, 0.8, 3.0, 10.0])
        cdf = tg.response_cdf(xs)
        assert np.all(np.diff(cdf) >= -1e-9)
        assert cdf[-1] > 0.99

    def test_heavier_tail_than_exponential_case(self, tagged):
        """The H2 workload's long jobs stretch the completed-job tail well
        beyond the exponential chain's at matched mean service."""
        from repro.models import TagsExponential
        from repro.models.tagged import TaggedJobAnalysis

        _, tg_h2 = tagged
        exp_model = TagsExponential(
            lam=8.0, mu=10.0, t=25.0, n=3, K1=5, K2=5
        )
        tg_exp = TaggedJobAnalysis(exp_model)
        x = 3.0
        assert tg_h2.response_cdf([x])[0] < tg_exp.response_cdf([x])[0]
