"""Round-robin allocation model tests."""

import pytest

from repro.dists import HyperExponential, h2_balanced_means
from repro.models import RandomAllocation, RoundRobin, ShortestQueue


class TestExponential:
    def test_flow_balance(self):
        m = RoundRobin(lam=5.0, service=10.0, K=10).metrics()
        assert m.throughput + m.loss_rate == pytest.approx(5.0, abs=1e-9)

    def test_between_random_and_jsq(self):
        """Round robin smooths arrivals (beats random) but ignores queue
        state (loses to JSQ) -- classic ordering for exponential
        service."""
        lam, mu, K = 9.0, 10.0, 10
        rr = RoundRobin(lam=lam, service=mu, K=K).metrics()
        rnd = RandomAllocation(lam=lam, service=mu, K=K).metrics()
        jsq = ShortestQueue(lam=lam, service=mu, K=K).metrics()
        assert jsq.response_time < rr.response_time < rnd.response_time

    def test_symmetric_nodes(self):
        m = RoundRobin(lam=6.0, service=10.0, K=8).metrics()
        a, b = m.mean_jobs_per_node
        assert a == pytest.approx(b, rel=1e-9)

    def test_state_space_size(self):
        m = RoundRobin(lam=1.0, service=2.0, K=3)
        # router bit x (K+1)^2 queue states, minus unreachable skew
        assert m.n_states <= 2 * 16
        assert m.n_states > 16


class TestH2:
    def test_collapses_to_exp(self):
        d = HyperExponential.h2(0.4, 10.0, 10.0)
        h2 = RoundRobin(lam=5.0, service=d, K=8).metrics()
        ex = RoundRobin(lam=5.0, service=10.0, K=8).metrics()
        assert h2.mean_jobs == pytest.approx(ex.mean_jobs, rel=1e-9)
        assert h2.throughput == pytest.approx(ex.throughput, rel=1e-9)

    def test_heavy_tail_hurts(self):
        d = h2_balanced_means(0.1, 0.99, 100.0)
        h2 = RoundRobin(lam=11.0, service=d, K=10).metrics()
        ex = RoundRobin(lam=11.0, service=10.0, K=10).metrics()
        assert h2.response_time > ex.response_time
        assert h2.loss_rate > ex.loss_rate

    def test_rejects_three_phase(self):
        d = HyperExponential([0.2, 0.3, 0.5], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="two-phase"):
            RoundRobin(lam=1.0, service=d, K=3)


class TestValidation:
    def test_bad_lam(self):
        with pytest.raises(ValueError):
            RoundRobin(lam=0.0, service=1.0, K=3)

    def test_bad_K(self):
        with pytest.raises(ValueError):
            RoundRobin(lam=1.0, service=1.0, K=0)

    def test_bad_service_rate(self):
        with pytest.raises(ValueError):
            RoundRobin(lam=1.0, service=-1.0, K=3)
