"""Tagged-job analysis tests: the strongest internal-consistency checks in
the suite (Little's-law decomposition must hold exactly)."""

import numpy as np
import pytest

from repro.models import TagsExponential
from repro.models.tagged import TaggedJobAnalysis


@pytest.fixture(scope="module")
def low_loss():
    # lam = 3 with K = 8 drives node-2 drops below 1e-8, so the paper's
    # W = L/X and E[T | completed] coincide to test precision
    m = TagsExponential(lam=3.0, mu=10.0, t=40.0, n=3, K1=8, K2=8)
    return m, TaggedJobAnalysis(m)


@pytest.fixture(scope="module")
def overloaded():
    m = TagsExponential(lam=13.0, mu=10.0, t=42.0, n=3, K1=5, K2=5)
    return m, TaggedJobAnalysis(m)


class TestOutcomeProbabilities:
    def test_sum_to_one(self, low_loss):
        _, tagged = low_loss
        probs = tagged.outcome_probabilities()
        assert sum(probs.values()) == pytest.approx(1.0, abs=1e-9)

    def test_match_flow_ratios(self, low_loss):
        """P[complete at node 1] must equal the node-1 service share of
        accepted jobs (every accepted job is exchangeable under FCFS +
        exponential demands)."""
        model, tagged = low_loss
        m = model.metrics()
        accepted = m.offered_load - m.loss_per_node[0]
        probs = tagged.outcome_probabilities()
        assert probs["done1"] == pytest.approx(
            m.extra["service1_throughput"] / accepted, rel=1e-8
        )
        assert probs["done2"] == pytest.approx(
            m.extra["service2_throughput"] / accepted, rel=1e-8
        )
        assert probs.get("dropped", 0.0) == pytest.approx(
            m.loss_per_node[1] / accepted, rel=1e-6, abs=1e-12
        )

    def test_overload_has_drops(self, overloaded):
        _, tagged = overloaded
        assert tagged.outcome_probabilities()["dropped"] > 0.001


class TestLittleDecomposition:
    @pytest.mark.parametrize("fixture", ["low_loss", "overloaded"])
    def test_exact_decomposition(self, fixture, request):
        """L = X_c * E[T | completed] + d * E[T | dropped], exactly."""
        model, tagged = request.getfixturevalue(fixture)
        m = model.metrics()
        accepted = m.offered_load - m.loss_per_node[0]
        probs = tagged.outcome_probabilities()
        means = tagged.mean_response_by_outcome()
        L_reconstructed = accepted * sum(
            probs[k] * means[k] for k in probs if probs[k] > 0
        )
        assert L_reconstructed == pytest.approx(m.mean_jobs, rel=1e-7)

    def test_low_loss_mean_matches_littles_law(self, low_loss):
        model, tagged = low_loss
        m = model.metrics()
        assert tagged.mean_response_completed() == pytest.approx(
            m.response_time, rel=1e-4
        )

    def test_overload_littles_W_between_conditional_means(self, overloaded):
        """With drops, the paper's W = L/X need not equal E[T|completed];
        dropped jobs spend only node-1 time, so E[T|dropped] < E[T|done2]."""
        _, tagged = overloaded
        means = tagged.mean_response_by_outcome()
        assert means["dropped"] < means["done2"]


class TestResponseDistribution:
    def test_cdf_monotone_to_one(self, low_loss):
        _, tagged = low_loss
        xs = np.array([0.05, 0.1, 0.2, 0.5, 1.0, 3.0])
        cdf = tagged.response_cdf(xs)
        assert np.all(np.diff(cdf) >= -1e-9)
        assert cdf[-1] > 0.999

    def test_cdf_mean_consistency(self, low_loss):
        """Integrate the complementary CDF and compare with the mean."""
        _, tagged = low_loss
        xs = np.linspace(0.0, 4.0, 160)
        cdf = tagged.response_cdf(xs)
        mean_from_cdf = float(np.trapezoid(1.0 - cdf, xs))
        # trapezoid discretisation + truncated tail: ~0.5% accuracy
        assert mean_from_cdf == pytest.approx(
            tagged.mean_response_completed(), rel=5e-3
        )

    def test_p99_exceeds_mean(self, low_loss):
        _, tagged = low_loss
        mean = tagged.mean_response_completed()
        assert tagged.response_cdf([mean])[0] > 0.5  # right-skewed
        # the 99th percentile is far above the mean for TAGS (restarts)
        assert tagged.response_cdf([3 * mean])[0] < 0.999


class TestValidation:
    def test_dynamic_timeout_unsupported(self):
        m = TagsExponential(
            lam=5, mu=10, t=40, n=2, K1=3, K2=3, t_of_q1=lambda q: 40.0
        )
        with pytest.raises(NotImplementedError):
            TaggedJobAnalysis(m)

    def test_heterogeneous_nodes_supported(self):
        m = TagsExponential(
            lam=5, mu=10, t=40, n=2, K1=3, K2=3, mu2_service=20.0
        )
        tagged = TaggedJobAnalysis(m)
        probs = tagged.outcome_probabilities()
        assert sum(probs.values()) == pytest.approx(1.0)
