"""M/PH/1/K tests: exponential degeneracy, Erlang and H2 service."""

import numpy as np
import pytest

from repro.dists import Erlang, Exponential, HyperExponential
from repro.models import MM1K, MPH1K


class TestValidation:
    def test_rejects_bad_lam(self):
        with pytest.raises(ValueError):
            MPH1K(0.0, Exponential(1.0), 3)

    def test_rejects_atom_at_zero(self):
        from repro.dists import PhaseType

        with pytest.raises(ValueError, match="atom"):
            MPH1K(1.0, PhaseType([0.5], [[-1.0]]), 3)


class TestExponentialDegeneracy:
    """M/PH/1/K with one-phase PH must equal M/M/1/K exactly."""

    @pytest.mark.parametrize("lam,mu,K", [(2.0, 5.0, 6), (9.0, 10.0, 10), (12.0, 10.0, 4)])
    def test_matches_mm1k(self, lam, mu, K):
        ph = MPH1K(lam, Exponential(mu), K)
        ana = MM1K(lam, mu, K)
        np.testing.assert_allclose(
            ph.queue_length_distribution(), ana.distribution(), atol=1e-9
        )
        assert ph.mean_jobs == pytest.approx(ana.mean_jobs)
        assert ph.throughput == pytest.approx(ana.throughput)
        assert ph.loss_rate == pytest.approx(ana.loss_rate)


class TestPhaseTypeService:
    def test_flow_balance_h2(self):
        d = HyperExponential.h2(0.99, 19.9, 0.199)
        q = MPH1K(5.0, d, 8)
        assert q.throughput + q.loss_rate == pytest.approx(5.0)

    def test_erlang_less_variable_than_exp(self):
        """Lower service variability -> smaller mean queue at equal load."""
        lam = 4.0
        exp_q = MPH1K(lam, Exponential(5.0), 12)
        erl_q = MPH1K(lam, Erlang(4, 20.0), 12)  # same mean 0.2
        assert erl_q.mean_jobs < exp_q.mean_jobs

    def test_h2_more_variable_than_exp(self):
        lam = 4.0
        exp_q = MPH1K(lam, Exponential(5.0), 12)
        h2 = HyperExponential.h2(0.9, 45.0, 0.9)  # mean 0.2 hmm: 0.9/45+0.1/0.9
        # build H2 with exact mean 0.2 via balanced helper
        from repro.dists import h2_from_mean_scv

        h2 = h2_from_mean_scv(0.2, 8.0)
        h2_q = MPH1K(lam, h2, 12)
        assert h2_q.mean_jobs > exp_q.mean_jobs

    def test_distribution_normalised(self):
        d = HyperExponential.h2(0.5, 2.0, 0.5)
        q = MPH1K(1.0, d, 5)
        assert q.queue_length_distribution().sum() == pytest.approx(1.0)

    def test_utilisation_bounds(self):
        d = HyperExponential.h2(0.5, 2.0, 0.5)
        q = MPH1K(1.0, d, 5)
        assert 0 < q.utilisation < 1

    def test_state_space_size(self):
        d = HyperExponential.h2(0.5, 2.0, 0.5)
        q = MPH1K(1.0, d, 5)
        assert q.generator.n_states == 1 + 5 * 2
