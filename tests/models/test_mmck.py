"""M/M/c/K and Erlang-formula tests."""

import numpy as np
import pytest

from repro.ctmc import Generator, steady_state
from repro.models import MM1K
from repro.models.mmck import MMcK, erlang_b, erlang_c


class TestValidation:
    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            MMcK(0.0, 1.0, 1, 2)
        with pytest.raises(ValueError):
            MMcK(1.0, 1.0, 0, 2)
        with pytest.raises(ValueError):
            MMcK(1.0, 1.0, 3, 2)  # K < c


class TestAgainstMM1K:
    def test_c1_equals_mm1k(self):
        q = MMcK(4.0, 5.0, 1, 8)
        ref = MM1K(4.0, 5.0, 8)
        np.testing.assert_allclose(q.distribution(), ref.distribution())
        assert q.mean_jobs == pytest.approx(ref.mean_jobs)
        assert q.throughput == pytest.approx(ref.throughput)


class TestAgainstCTMC:
    def test_distribution_matches_generator(self):
        lam, mu, c, K = 7.0, 2.0, 3, 8
        q = MMcK(lam, mu, c, K)
        src = list(range(K)) + list(range(1, K + 1))
        dst = list(range(1, K + 1)) + list(range(K))
        rate = [lam] * K + [mu * min(n, c) for n in range(1, K + 1)]
        pi = steady_state(Generator.from_triples(K + 1, src, dst, rate))
        np.testing.assert_allclose(q.distribution(), pi, atol=1e-9)

    def test_stiff_rates_stable(self):
        q = MMcK(1e-3, 1e3, 2, 6)
        p = q.distribution()
        assert p.sum() == pytest.approx(1.0)
        assert p[0] > 0.999


class TestPoolingQuestion:
    def test_one_fast_server_beats_two_slow_on_delay(self):
        """Classic result: at equal total capacity, the pooled fast server
        gives lower response time than two slow ones."""
        two_slow = MMcK(9.0, 10.0, 2, 20)  # 2 servers at rate 10
        one_fast = MMcK(9.0, 20.0, 1, 20)  # 1 server at rate 20
        assert one_fast.response_time < two_slow.response_time

    def test_utilisation_bounds(self):
        q = MMcK(9.0, 10.0, 2, 20)
        assert 0 < q.utilisation < 1
        # rho = 9/20
        assert q.utilisation == pytest.approx(0.45, abs=0.01)


class TestErlangFormulas:
    def test_erlang_b_one_server(self):
        # B(a, 1) = a / (1 + a)
        assert erlang_b(0.5, 1) == pytest.approx(0.5 / 1.5)

    def test_erlang_b_matches_mmcc(self):
        a, c = 3.0, 4
        q = MMcK(3.0, 1.0, c, c)
        assert erlang_b(a, c) == pytest.approx(q.blocking_probability)

    def test_erlang_c_exceeds_erlang_b(self):
        a, c = 2.0, 4
        assert erlang_c(a, c) > erlang_b(a, c)

    def test_erlang_c_stability_guard(self):
        with pytest.raises(ValueError):
            erlang_c(4.0, 4)

    def test_erlang_b_monotone_in_servers(self):
        vals = [erlang_b(5.0, c) for c in (1, 2, 4, 8)]
        assert all(a > b for a, b in zip(vals, vals[1:]))
