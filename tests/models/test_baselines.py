"""Random-allocation and shortest-queue baseline tests."""

import numpy as np
import pytest

from repro.ctmc import action_throughput, steady_state
from repro.dists import Exponential, HyperExponential, h2_balanced_means
from repro.models import MM1K, RandomAllocation, ShortestQueue, build_jsq_pepa_model
from repro.models.random_alloc import build_random_pepa_model
from repro.pepa import check_model, explore, to_generator


class TestRandomAllocation:
    def test_matches_two_mm1k(self):
        ra = RandomAllocation(lam=5.0, service=10.0, K=10)
        node = MM1K(2.5, 10.0, 10)
        m = ra.metrics()
        assert m.mean_jobs == pytest.approx(2 * node.mean_jobs)
        assert m.throughput == pytest.approx(2 * node.throughput)
        assert m.response_time == pytest.approx(node.response_time)

    def test_pepa_appendix_a_agreement(self):
        model = build_random_pepa_model(2.5, 2.5, 10.0, 10.0, 10)
        assert check_model(model).warnings == []
        space = explore(model)
        assert space.n_states == 11 * 11
        gen = to_generator(space)
        pi = steady_state(gen)

        def total(names):
            return sum(float(nm.split("_")[1]) for nm in names)

        L = float(pi @ space.state_reward(total))
        X = action_throughput(gen, pi, "service1") + action_throughput(
            gen, pi, "service2"
        )
        m = RandomAllocation(lam=5.0, service=10.0, K=10).metrics()
        assert L == pytest.approx(m.mean_jobs, rel=1e-9)
        assert X == pytest.approx(m.throughput, rel=1e-9)

    def test_h2_service(self):
        d = h2_balanced_means(0.1, 0.99, 100.0)
        m = RandomAllocation(lam=11.0, service=d, K=10).metrics()
        # H2 hurts: worse than exponential with the same mean
        m_exp = RandomAllocation(lam=11.0, service=10.0, K=10).metrics()
        assert m.response_time > 2 * m_exp.response_time

    def test_uneven_split(self):
        ra = RandomAllocation(lam=6.0, service=10.0, K=8, split=2 / 3)
        assert ra.nodes[0].lam == pytest.approx(4.0)
        assert ra.nodes[1].lam == pytest.approx(2.0)

    def test_bad_split(self):
        with pytest.raises(ValueError):
            RandomAllocation(lam=1.0, service=1.0, K=2, split=1.0)


class TestShortestQueueExp:
    def test_pepa_appendix_b_agreement(self):
        model = build_jsq_pepa_model(5.0, 10.0, 10)
        assert check_model(model).warnings == []
        space = explore(model)
        gen = to_generator(space)
        pi = steady_state(gen)

        def total(names):
            return sum(
                float(nm.split("_")[1])
                for nm in names
                if nm.startswith("Queue")
            )

        L = float(pi @ space.state_reward(total))
        X = action_throughput(gen, pi, "serv1") + action_throughput(
            gen, pi, "serv2"
        )
        m = ShortestQueue(lam=5.0, service=10.0, K=10).metrics()
        assert L == pytest.approx(m.mean_jobs, rel=1e-9)
        assert X == pytest.approx(m.throughput, rel=1e-9)

    def test_beats_random_exponential(self):
        """JSQ is the optimal policy for exponential demand (Section 3.2)."""
        jsq = ShortestQueue(lam=9.0, service=10.0, K=10).metrics()
        rnd = RandomAllocation(lam=9.0, service=10.0, K=10).metrics()
        assert jsq.response_time < rnd.response_time
        assert jsq.loss_rate < rnd.loss_rate

    def test_negligible_loss_at_low_load(self):
        """Paper: at lam=5 'the shortest queue strategy has almost
        negligible loss'."""
        m = ShortestQueue(lam=5.0, service=10.0, K=10).metrics()
        assert m.loss_probability < 1e-8

    def test_loss_only_when_both_full(self):
        m = ShortestQueue(lam=30.0, service=10.0, K=3).metrics()
        # heavy overload: loss approaches lam - 2 mu
        assert m.loss_rate == pytest.approx(30.0 - m.throughput)
        assert m.throughput < 2 * 10.0


class TestShortestQueueH2:
    def test_h2_collapses_to_exp(self):
        d = HyperExponential.h2(0.5, 10.0, 10.0)
        h2 = ShortestQueue(lam=5.0, service=d, K=8).metrics()
        ex = ShortestQueue(lam=5.0, service=10.0, K=8).metrics()
        assert h2.mean_jobs == pytest.approx(ex.mean_jobs, rel=1e-9)
        assert h2.throughput == pytest.approx(ex.throughput, rel=1e-9)

    def test_h2_worse_than_exp_same_mean(self):
        d = h2_balanced_means(0.1, 0.99, 100.0)
        h2 = ShortestQueue(lam=11.0, service=d, K=10).metrics()
        ex = ShortestQueue(lam=11.0, service=10.0, K=10).metrics()
        assert h2.response_time > ex.response_time

    def test_rejects_non_h2(self):
        d = HyperExponential([0.3, 0.3, 0.4], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="two-phase"):
            ShortestQueue(lam=1.0, service=d, K=3)

    def test_flow_balance(self):
        d = h2_balanced_means(0.1, 0.95, 10.0)
        m = ShortestQueue(lam=11.0, service=d, K=10).metrics()
        assert m.throughput + m.loss_rate == pytest.approx(11.0, abs=1e-8)
