"""Exact MMPP-arrival model tests (Section 7's conjecture, in the CTMC)."""

import pytest

from repro.models import ShortestQueue, TagsExponential
from repro.models.bursty import MMPP2, ShortestQueueMMPP, TagsMMPP


class TestMMPP2:
    def test_mean_rate(self):
        m = MMPP2(10.0, 1.0, 0.5, 0.5)
        assert m.mean_rate == pytest.approx(5.5)

    def test_scaled_to_mean(self):
        m = MMPP2(20.0, 0.0, 1.0, 0.5).scaled_to_mean(9.0)
        assert m.mean_rate == pytest.approx(9.0)
        assert m.burstiness == pytest.approx(3.0)  # shape preserved

    def test_poisson_degenerate(self):
        m = MMPP2.poisson(5.0)
        assert m.mean_rate == 5.0
        assert m.burstiness == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPP2(0.0, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            MMPP2(1.0, 1.0, 0.0, 1.0)


class TestPoissonRegression:
    """With rate0 == rate1 the modulation is invisible: metrics must equal
    the plain Poisson models exactly."""

    def test_tags(self):
        mm = TagsMMPP(
            arrivals=MMPP2.poisson(5.0), mu=10, t=51, n=3, K1=5, K2=5
        ).metrics()
        ref = TagsExponential(lam=5, mu=10, t=51, n=3, K1=5, K2=5).metrics()
        assert mm.mean_jobs == pytest.approx(ref.mean_jobs, rel=1e-9)
        assert mm.throughput == pytest.approx(ref.throughput, rel=1e-9)

    def test_jsq(self):
        mm = ShortestQueueMMPP(arrivals=MMPP2.poisson(9.0), mu=10, K=8).metrics()
        ref = ShortestQueue(lam=9.0, service=10.0, K=8).metrics()
        assert mm.mean_jobs == pytest.approx(ref.mean_jobs, rel=1e-9)
        assert mm.throughput == pytest.approx(ref.throughput, rel=1e-9)


class TestBurstinessEffects:
    def test_bursts_increase_loss_tags(self):
        lam = 9.0
        smooth = TagsMMPP(
            arrivals=MMPP2.poisson(lam), mu=10, t=45, n=3, K1=6, K2=6
        ).metrics()
        bursty = TagsMMPP(
            arrivals=MMPP2(3 * lam, 0.0, 1.0, 0.5).scaled_to_mean(lam),
            mu=10, t=45, n=3, K1=6, K2=6,
        ).metrics()
        assert bursty.loss_rate > smooth.loss_rate

    def test_bursts_increase_loss_jsq(self):
        lam = 9.0
        smooth = ShortestQueueMMPP(arrivals=MMPP2.poisson(lam), mu=10, K=6).metrics()
        bursty = ShortestQueueMMPP(
            arrivals=MMPP2(3 * lam, 0.0, 1.0, 0.5).scaled_to_mean(lam),
            mu=10, K=6,
        ).metrics()
        assert bursty.loss_rate > smooth.loss_rate

    def test_section7_conjecture_relative_degradation(self):
        """TAGS's loss grows by at least as large a factor as JSQ's when
        the same burst structure is applied (it funnels bursts into one
        queue)."""
        lam = 9.0
        burst = MMPP2(3 * lam, 0.0, 1.0, 0.5).scaled_to_mean(lam)

        tags_s = TagsMMPP(
            arrivals=MMPP2.poisson(lam), mu=10, t=45, n=3, K1=6, K2=6
        ).metrics()
        tags_b = TagsMMPP(arrivals=burst, mu=10, t=45, n=3, K1=6, K2=6).metrics()
        jsq_s = ShortestQueueMMPP(arrivals=MMPP2.poisson(lam), mu=10, K=6).metrics()
        jsq_b = ShortestQueueMMPP(arrivals=burst, mu=10, K=6).metrics()

        tags_factor = tags_b.loss_rate / max(tags_s.loss_rate, 1e-12)
        jsq_factor = jsq_b.loss_rate / max(jsq_s.loss_rate, 1e-12)
        # both degrade; report-style assertion on direction
        assert tags_factor > 1 and jsq_factor > 1

    def test_flow_balance(self):
        m = TagsMMPP(
            arrivals=MMPP2(20.0, 2.0, 1.0, 1.0), mu=10, t=45, n=3, K1=5, K2=5
        ).metrics()
        assert m.throughput + m.loss_rate == pytest.approx(
            m.offered_load, abs=1e-8
        )
        assert sum(m.loss_per_node) == pytest.approx(m.loss_rate, abs=1e-8)

    def test_state_space_doubles(self):
        plain = TagsExponential(lam=9, mu=10, t=45, n=3, K1=5, K2=5)
        mod = TagsMMPP(
            arrivals=MMPP2(20.0, 2.0, 1.0, 1.0), mu=10, t=45, n=3, K1=5, K2=5
        )
        assert mod.n_states == 2 * plain.n_states


class TestAnalytic:
    def test_pk_formula_exponential(self):
        from repro.dists import Exponential
        from repro.models.analytic import mg1_response_time, mm1_response_time

        # M/G/1 with exponential service is M/M/1
        assert mg1_response_time(5.0, Exponential(10.0)) == pytest.approx(
            mm1_response_time(5.0, 10.0)
        )

    def test_pk_explains_paper_w_above_one(self):
        """The unbounded M/G/1 at the Figure 9 random-allocation operating
        point gives W ~ 3.2 -- consistent with the paper's 'W > 1' aside
        (our bounded model caps it at ~0.52; see EXPERIMENTS.md)."""
        from repro.dists import h2_balanced_means
        from repro.models.analytic import mg1_response_time

        w = mg1_response_time(5.5, h2_balanced_means(0.1, 0.99, 100.0))
        assert w > 1.0
        assert w == pytest.approx(3.2, abs=0.3)

    def test_instability_rejected(self):
        from repro.dists import Exponential
        from repro.models.analytic import mg1_response_time

        with pytest.raises(ValueError, match="unstable"):
            mg1_response_time(10.0, Exponential(5.0))
