"""Analytic M/M/1/K tests."""

import numpy as np
import pytest

from repro.ctmc import Generator, steady_state
from repro.models import MM1K


class TestValidation:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            MM1K(0.0, 1.0, 5)

    def test_rejects_bad_K(self):
        with pytest.raises(ValueError):
            MM1K(1.0, 1.0, 0)


class TestClosedForms:
    def test_distribution_sums_to_one(self):
        q = MM1K(2.0, 5.0, 8)
        assert q.distribution().sum() == pytest.approx(1.0)

    def test_rho_one_uniform(self):
        q = MM1K(3.0, 3.0, 4)
        np.testing.assert_allclose(q.distribution(), 0.2)

    def test_against_ctmc(self):
        lam, mu, K = 4.0, 5.0, 7
        q = MM1K(lam, mu, K)
        src = list(range(K)) + list(range(1, K + 1))
        dst = list(range(1, K + 1)) + list(range(K))
        rate = [lam] * K + [mu] * K
        pi = steady_state(Generator.from_triples(K + 1, src, dst, rate))
        np.testing.assert_allclose(q.distribution(), pi, atol=1e-9)
        assert q.mean_jobs == pytest.approx(float(np.arange(K + 1) @ pi))

    def test_flow_balance(self):
        q = MM1K(4.0, 5.0, 7)
        assert q.throughput + q.loss_rate == pytest.approx(q.lam)

    def test_utilisation_equals_throughput_over_mu(self):
        q = MM1K(4.0, 5.0, 7)
        assert q.utilisation == pytest.approx(q.throughput / q.mu)

    def test_low_load_approaches_mm1(self):
        lam, mu = 1.0, 10.0
        q = MM1K(lam, mu, 40)
        assert q.response_time == pytest.approx(1.0 / (mu - lam), rel=1e-6)

    def test_heavy_load_saturates(self):
        q = MM1K(100.0, 1.0, 5)
        assert q.throughput == pytest.approx(1.0, rel=1e-3)
        assert q.mean_jobs == pytest.approx(5.0, rel=1e-2)

    def test_metrics_record(self):
        m = MM1K(2.0, 5.0, 6).metrics()
        assert m.offered_load == 2.0
        assert m.loss_probability == pytest.approx(
            MM1K(2.0, 5.0, 6).blocking_probability
        )
