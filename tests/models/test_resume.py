"""Restart-vs-resume tests (the paper's Section 6 open problem)."""

import pytest

from repro.dists import Exponential, h2_balanced_means
from repro.models import TagsExponential
from repro.sim import (
    DeterministicTimeout,
    ErlangTimeout,
    PoissonArrivals,
    Simulation,
    TagsPolicy,
)


class TestCtmcResume:
    def test_resume_never_worse_exponential(self):
        """With memoryless demands, resume removes the repeat service and
        can only help: fewer jobs, more throughput."""
        for t in (10.0, 42.0, 100.0):
            restart = TagsExponential(lam=9, mu=10, t=t, n=3, K1=6, K2=6).metrics()
            resume = TagsExponential(
                lam=9, mu=10, t=t, n=3, K1=6, K2=6, restart_work=False
            ).metrics()
            assert resume.mean_jobs <= restart.mean_jobs + 1e-12
            assert resume.throughput >= restart.throughput - 1e-12

    def test_resume_is_smaller_chain(self):
        restart = TagsExponential(lam=9, mu=10, t=42, n=3, K1=6, K2=6)
        resume = TagsExponential(
            lam=9, mu=10, t=42, n=3, K1=6, K2=6, restart_work=False
        )
        assert resume.n_states < restart.n_states

    def test_resume_node2_is_mm1k_fed_by_timeouts(self):
        """Under resume, node 2 sees a (state-dependent) stream of
        memoryless residuals at rate mu -- flow balance must still hold."""
        m = TagsExponential(
            lam=9, mu=10, t=42, n=3, K1=6, K2=6, restart_work=False
        ).metrics()
        assert m.throughput + m.loss_rate == pytest.approx(9.0, abs=1e-8)
        assert m.extra["timeout_throughput"] - m.loss_per_node[1] == pytest.approx(
            m.extra["service2_throughput"], abs=1e-9
        )


class TestSimResume:
    def run(self, resume, demand, tau=0.12, lam=8.0, seed=0):
        policy = TagsPolicy(
            timeouts=(DeterministicTimeout(tau),), resume=resume
        )
        sim = Simulation(
            PoissonArrivals(lam), demand, policy, (10, 10), seed=seed
        )
        return sim.run(t_end=30_000.0, warmup=2_000.0)

    def test_resume_helps_exponential(self):
        restart = self.run(False, Exponential(10.0))
        resume = self.run(True, Exponential(10.0))
        assert resume.mean_response_time < restart.mean_response_time

    def test_restart_penalty_small_under_heavy_tails(self):
        """The surprise that makes TAGS viable: with a well-chosen timeout
        and a heavy tail, only the rare huge jobs time out, so the work
        thrown away by restarting is *negligible relative to their demand*
        -- the restart-vs-resume gap is much smaller for H2 than for
        exponential demands (where timed-out jobs are ordinary and the
        lost work is comparable to their size)."""
        exp_restart = self.run(False, Exponential(10.0))
        exp_resume = self.run(True, Exponential(10.0))
        h2 = h2_balanced_means(0.1, 0.99, 100.0)
        h2_restart = self.run(False, h2, tau=0.5)
        h2_resume = self.run(True, h2, tau=0.5)
        gain_exp = exp_restart.mean_response_time / exp_resume.mean_response_time
        gain_h2 = h2_restart.mean_response_time / h2_resume.mean_response_time
        assert gain_exp >= 1.0 and gain_h2 >= 1.0
        assert gain_h2 < gain_exp

    def test_resume_sim_matches_resume_ctmc(self):
        """Erlang timeout + exponential demand + resume: simulator and
        CTMC describe the same system."""
        lam, mu, t, n = 5.0, 10.0, 51.0, 6
        policy = TagsPolicy(timeouts=(ErlangTimeout(n, t),), resume=True)
        sim = Simulation(
            PoissonArrivals(lam), Exponential(mu), policy, (10, 10), seed=4
        )
        res = sim.run(t_end=60_000.0, warmup=3_000.0)
        exact = TagsExponential(
            lam=lam, mu=mu, t=t, n=n, restart_work=False
        ).metrics()
        assert res.mean_jobs == pytest.approx(exact.mean_jobs, rel=0.06)
        assert res.throughput == pytest.approx(exact.throughput, rel=0.02)
