"""Breakdown-extended TAGS CTMC: the two exact reductions + sanity.

The model earns its keep through two analytically exact pins:

* the breaker is autonomous, so stationary availability equals
  ``repair / (fail + repair)`` regardless of the queueing dynamics;
* permanently down, node 1 is a plain M/M/1/K1 birth-death chain and
  its marginal must match ``models.mm1k`` to solver precision.

Plus a continuity check: a vanishing failure rate recovers the base
Figure 3 model.
"""

import numpy as np
import pytest

from repro.models import MM1K, TagsBreakdown, TagsExponential

# small state space keeps the whole module fast
SMALL = dict(lam=5.0, mu=10.0, t=51.0, n=3, K1=6, K2=6)


class TestExactReductions:
    def test_availability_is_autonomous(self):
        model = TagsBreakdown(fail=0.02, repair=0.1, **SMALL)
        m = model.metrics()
        assert m.extra["availability"] == pytest.approx(
            model.availability, abs=1e-10
        )
        assert model.availability == pytest.approx(0.1 / 0.12)

    def test_permanently_down_node1_is_mm1k(self):
        model = TagsBreakdown(permanently_down=True, **SMALL)
        marginal = model.node1_marginal()
        exact = MM1K(lam=SMALL["lam"], mu=SMALL["mu"], K=SMALL["K1"]).distribution()
        np.testing.assert_allclose(marginal, exact, atol=1e-10)

    def test_permanently_down_node2_never_serves(self):
        m = TagsBreakdown(permanently_down=True, **SMALL).metrics()
        assert m.extra["service2_throughput"] == pytest.approx(0.0, abs=1e-12)
        assert m.extra["timeout_throughput"] == pytest.approx(0.0, abs=1e-12)
        assert m.extra["availability"] == 0.0


class TestContinuity:
    def test_vanishing_failure_rate_recovers_base_tags(self):
        """fail -> 0 makes the breaker spend all its time Avail; every
        metric converges on the unmodified Figure 3 chain."""
        base = TagsExponential(**SMALL).metrics()
        degraded = TagsBreakdown(fail=1e-7, repair=1.0, **SMALL).metrics()
        assert degraded.throughput == pytest.approx(base.throughput, rel=1e-5)
        assert degraded.mean_jobs == pytest.approx(base.mean_jobs, rel=1e-4)
        assert degraded.extra["availability"] == pytest.approx(1.0, abs=1e-6)

    def test_failure_monotonically_hurts_throughput(self):
        ms = [
            TagsBreakdown(fail=f, repair=0.05, **SMALL).metrics().throughput
            for f in (0.001, 0.01, 0.1)
        ]
        assert ms[0] > ms[1] > ms[2]


class TestStructure:
    def test_state_space_is_base_times_breaker(self):
        """Attaching a 2-state breaker at most doubles the base space
        (reachability may trim the Down-side states)."""
        base = TagsExponential(**SMALL).metrics().extra["n_states"]
        down = TagsBreakdown(fail=0.01, repair=0.05, **SMALL).metrics()
        assert base < down.extra["n_states"] <= 2 * base

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError, match="rates"):
            TagsBreakdown(fail=0.0, repair=0.05, **SMALL).build()
        with pytest.raises(ValueError, match="rates"):
            TagsBreakdown(fail=0.01, repair=-1.0, **SMALL).build()
