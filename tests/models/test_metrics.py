"""QueueMetrics record tests: validation and derived quantities."""

import pytest

from repro.models.metrics import QueueMetrics, from_population_and_throughput


class TestAssembly:
    def test_derived_fields(self):
        m = from_population_and_throughput(
            mean_jobs_per_node=(1.0, 2.0),
            throughput=4.0,
            offered_load=5.0,
        )
        assert m.mean_jobs == 3.0
        assert m.response_time == pytest.approx(0.75)
        assert m.loss_rate == pytest.approx(1.0)
        assert m.loss_probability == pytest.approx(0.2)

    def test_zero_throughput_infinite_response(self):
        m = from_population_and_throughput(
            mean_jobs_per_node=(1.0,), throughput=0.0, offered_load=1.0
        )
        assert m.response_time == float("inf")

    def test_extra_dict_copied(self):
        extra = {"a": 1}
        m = from_population_and_throughput(
            mean_jobs_per_node=(0.0,), throughput=1.0, offered_load=1.0,
            extra=extra,
        )
        extra["b"] = 2
        assert "b" not in m.extra


class TestValidation:
    def test_negative_population_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            from_population_and_throughput(
                mean_jobs_per_node=(-1.0,), throughput=1.0, offered_load=1.0
            )

    def test_throughput_above_offered_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            from_population_and_throughput(
                mean_jobs_per_node=(1.0,), throughput=2.0, offered_load=1.0
            )

    def test_inconsistent_loss_split_rejected(self):
        with pytest.raises(ValueError, match="do not sum"):
            from_population_and_throughput(
                mean_jobs_per_node=(1.0,),
                throughput=0.5,
                offered_load=1.0,
                loss_per_node=(0.1,),  # should be 0.5
            )

    def test_zero_offered_load_loss_probability(self):
        m = QueueMetrics(
            mean_jobs=0.0,
            mean_jobs_per_node=(0.0,),
            throughput=0.0,
            offered_load=0.0,
            response_time=0.0,
            loss_rate=0.0,
        )
        assert m.loss_probability == 0.0

    def test_frozen(self):
        m = from_population_and_throughput(
            mean_jobs_per_node=(1.0,), throughput=1.0, offered_load=1.0
        )
        with pytest.raises(AttributeError):
            m.mean_jobs = 5.0
