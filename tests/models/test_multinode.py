"""N-node TAGS extension tests."""

import pytest

from repro.models import TagsExponential, TagsMultiNode


class TestTwoNodeEquivalence:
    def test_matches_two_node_model(self):
        """With N=2 the multinode chain must equal the Figure 3 chain."""
        mn = TagsMultiNode(
            lam=5.0, mu=10.0, timeouts=(51.0,), n=6, capacities=(10, 10)
        )
        te = TagsExponential(lam=5, mu=10, t=51, n=6, K1=10, K2=10)
        m1, m2 = mn.metrics(), te.metrics()
        assert mn.n_states == te.n_states
        assert m1.mean_jobs == pytest.approx(m2.mean_jobs, rel=1e-9)
        assert m1.throughput == pytest.approx(m2.throughput, rel=1e-9)


class TestThreeNodes:
    @pytest.fixture(scope="class")
    def metrics3(self):
        mn = TagsMultiNode(
            lam=5.0, mu=10.0, timeouts=(30.0, 15.0), n=2, capacities=(4, 4, 4)
        )
        return mn.metrics()

    def test_flow_balance(self, metrics3):
        assert metrics3.throughput + metrics3.loss_rate == pytest.approx(
            5.0, abs=1e-8
        )

    def test_population_positive_everywhere(self, metrics3):
        assert all(x > 0 for x in metrics3.mean_jobs_per_node)

    def test_rare_timeouts_concentrate_load_at_node1(self):
        """With generous timeouts almost nothing times out, so the
        population decreases down the chain."""
        mn = TagsMultiNode(
            lam=5.0, mu=10.0, timeouts=(4.0, 4.0), n=2, capacities=(4, 4, 4)
        )
        per = mn.metrics().mean_jobs_per_node
        assert per[0] > per[1] > per[2]


class TestValidation:
    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            TagsMultiNode(capacities=(5,), timeouts=())

    def test_timeout_count(self):
        with pytest.raises(ValueError):
            TagsMultiNode(capacities=(5, 5, 5), timeouts=(10.0,))

    def test_positive_rates(self):
        with pytest.raises(ValueError):
            TagsMultiNode(lam=-1.0, capacities=(5, 5), timeouts=(10.0,))
