"""Structural analysis tests (SCC, reachability, absorbing states)."""

import numpy as np

from repro.ctmc import (
    Generator,
    absorbing_states,
    is_irreducible,
    reachable_from,
    strongly_connected_components,
)


def gen(n, edges):
    src = [e[0] for e in edges]
    dst = [e[1] for e in edges]
    return Generator.from_triples(n, src, dst, [1.0] * len(edges))


class TestScc:
    def test_ring_is_single_scc(self):
        g = gen(5, [(i, (i + 1) % 5) for i in range(5)])
        comps = strongly_connected_components(g)
        assert len(comps) == 1
        assert sorted(comps[0]) == list(range(5))

    def test_two_components(self):
        # 0<->1 and 2<->3, plus a one-way bridge 1 -> 2
        g = gen(4, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)])
        comps = strongly_connected_components(g)
        assert len(comps) == 2
        sets = sorted(tuple(sorted(c)) for c in comps)
        assert sets == [(0, 1), (2, 3)]

    def test_isolated_states(self):
        g = Generator.from_dense(np.zeros((3, 3)))
        assert len(strongly_connected_components(g)) == 3

    def test_deep_chain_no_recursion_error(self):
        n = 5000
        edges = [(i, i + 1) for i in range(n - 1)] + [(n - 1, 0)]
        g = gen(n, edges)
        assert is_irreducible(g)


class TestIrreducible:
    def test_birth_death_irreducible(self):
        edges = [(i, i + 1) for i in range(4)] + [(i + 1, i) for i in range(4)]
        assert is_irreducible(gen(5, edges))

    def test_absorbing_not_irreducible(self):
        assert not is_irreducible(gen(2, [(0, 1)]))


class TestReachability:
    def test_reachable_chain(self):
        g = gen(4, [(0, 1), (1, 2)])
        np.testing.assert_array_equal(reachable_from(g, 0), [0, 1, 2])
        np.testing.assert_array_equal(reachable_from(g, 3), [3])

    def test_reachable_includes_start(self):
        g = Generator.from_dense(np.zeros((2, 2)))
        np.testing.assert_array_equal(reachable_from(g, 1), [1])


class TestAbsorbing:
    def test_detects_absorbing(self):
        g = gen(3, [(0, 1), (1, 2)])
        np.testing.assert_array_equal(absorbing_states(g), [2])

    def test_none_absorbing(self):
        g = gen(2, [(0, 1), (1, 0)])
        assert absorbing_states(g).size == 0
