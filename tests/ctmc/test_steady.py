"""Steady-state solver tests: all solvers must agree with closed forms."""

import numpy as np
import pytest

from repro.ctmc import Generator, SteadyStateError, steady_state
from repro.ctmc.steady import (
    steady_state_direct,
    steady_state_gauss_seidel,
    steady_state_gmres,
    steady_state_gth,
    steady_state_power,
)

ALL_SOLVERS = [
    steady_state_gth,
    steady_state_direct,
    steady_state_power,
    steady_state_gauss_seidel,
    steady_state_gmres,
]


def birth_death(lam, mu, K):
    """M/M/1/K generator; stationary dist is truncated geometric."""
    src, dst, rate = [], [], []
    for i in range(K):
        src.append(i), dst.append(i + 1), rate.append(lam)
        src.append(i + 1), dst.append(i), rate.append(mu)
    return Generator.from_triples(K + 1, src, dst, rate)


def mm1k_exact(lam, mu, K):
    rho = lam / mu
    p = rho ** np.arange(K + 1)
    return p / p.sum()


@pytest.mark.parametrize("solver", ALL_SOLVERS)
class TestAgainstClosedForm:
    def test_two_state(self, solver):
        g = Generator.from_triples(2, [0, 1], [1, 0], [2.0, 3.0])
        pi = solver(g)
        np.testing.assert_allclose(pi, [0.6, 0.4], atol=1e-8)

    def test_mm1k(self, solver):
        g = birth_death(2.0, 5.0, 10)
        np.testing.assert_allclose(solver(g), mm1k_exact(2.0, 5.0, 10), atol=1e-7)

    def test_mm1k_overloaded(self, solver):
        g = birth_death(8.0, 2.0, 8)
        np.testing.assert_allclose(solver(g), mm1k_exact(8.0, 2.0, 8), atol=1e-7)

    def test_stiff_rates(self, solver):
        # rates spanning 6 orders of magnitude
        g = birth_death(1e-3, 1e3, 4)
        pi = solver(g)
        np.testing.assert_allclose(pi, mm1k_exact(1e-3, 1e3, 4), atol=1e-9)


class TestDispatch:
    def test_auto_small_uses_gth(self):
        g = birth_death(1.0, 2.0, 5)
        np.testing.assert_allclose(
            steady_state(g, "auto"), mm1k_exact(1.0, 2.0, 5), atol=1e-8
        )

    def test_accepts_raw_matrix(self):
        Q = np.array([[-1.0, 1.0], [4.0, -4.0]])
        np.testing.assert_allclose(steady_state(Q), [0.8, 0.2], atol=1e-9)

    def test_unknown_method(self):
        g = birth_death(1.0, 2.0, 2)
        with pytest.raises(ValueError, match="unknown method"):
            steady_state(g, "does-not-exist")

    def test_single_state(self):
        np.testing.assert_allclose(steady_state(np.zeros((1, 1))), [1.0])

    def test_larger_chain_auto(self):
        g = birth_death(3.0, 4.0, 300)
        np.testing.assert_allclose(
            steady_state(g), mm1k_exact(3.0, 4.0, 300), atol=1e-7
        )


class TestFailureModes:
    def test_reducible_chain_gth_raises(self):
        # state 1 absorbing: not irreducible
        g = Generator.from_triples(2, [0], [1], [1.0])
        with pytest.raises(SteadyStateError):
            steady_state_gth(g)

    def test_gauss_seidel_absorbing_raises(self):
        g = Generator.from_triples(2, [0], [1], [1.0])
        with pytest.raises(SteadyStateError):
            steady_state_gauss_seidel(g)

    def test_empty_chain(self):
        with pytest.raises(SteadyStateError, match="empty"):
            steady_state(np.zeros((0, 0)))


class TestAutoFallback:
    """auto mode: try the preferred chain, record what failed, chain the
    original error when everything fails."""

    def _failing(self, exc_msg):
        def solver(Q, tol=1e-8, **kw):
            raise SteadyStateError(exc_msg)

        return solver

    def test_first_solver_failure_falls_through(self, monkeypatch):
        import repro.ctmc.steady as steady_mod

        monkeypatch.setattr(
            steady_mod, "steady_state_gth", self._failing("gth exploded")
        )
        g = birth_death(1.0, 2.0, 5)  # small: chain starts at gth
        info = {}
        pi = steady_state(g, "auto", info=info)
        np.testing.assert_allclose(pi, mm1k_exact(1.0, 2.0, 5), atol=1e-8)
        assert info["fallbacks"] == [
            {"method": "gth", "error": "gth exploded"}
        ]
        assert info["method"] == "direct"  # the solver that succeeded

    def test_clean_solve_records_empty_fallbacks(self):
        info = {}
        steady_state(birth_death(1.0, 2.0, 5), "auto", info=info)
        assert info["fallbacks"] == []

    def test_total_failure_chains_the_first_error(self, monkeypatch):
        import repro.ctmc.steady as steady_mod

        for name in (
            "steady_state_gth",
            "steady_state_direct",
            "steady_state_power",
        ):
            monkeypatch.setattr(
                steady_mod, name, self._failing(f"{name} failed")
            )
        info = {}
        with pytest.raises(SteadyStateError, match="all auto solvers") as ei:
            steady_state(birth_death(1.0, 2.0, 5), "auto", info=info)
        # the first solver's original exception rides along as __cause__
        assert isinstance(ei.value.__cause__, SteadyStateError)
        assert "steady_state_gth failed" in str(ei.value.__cause__)
        assert [f["method"] for f in info["fallbacks"]] == [
            "gth",
            "direct",
            "power",
        ]

    def test_explicit_method_never_falls_back(self, monkeypatch):
        import repro.ctmc.steady as steady_mod

        monkeypatch.setattr(
            steady_mod, "steady_state_gth", self._failing("gth exploded")
        )
        with pytest.raises(SteadyStateError, match="gth exploded"):
            steady_state(birth_death(1.0, 2.0, 5), "gth")

    def test_fallback_counted_by_obs(self, monkeypatch):
        from repro import obs

        import repro.ctmc.steady as steady_mod

        monkeypatch.setattr(
            steady_mod, "steady_state_gth", self._failing("boom")
        )
        with obs.use(obs.Recorder()) as rec:
            steady_state(birth_death(1.0, 2.0, 5), "auto")
        assert rec.counter("steady.fallback") == 1


class TestCrossSolverAgreement:
    def test_random_reversible_chain(self):
        rng = np.random.default_rng(42)
        n = 40
        # build an irreducible chain: ring + random extra edges
        src = list(range(n)) + list(range(n))
        dst = [(i + 1) % n for i in range(n)] + [(i - 1) % n for i in range(n)]
        rate = list(rng.uniform(0.5, 5.0, 2 * n))
        extra = rng.integers(0, n, size=(30, 2))
        for a, b in extra:
            if a != b:
                src.append(int(a)), dst.append(int(b))
                rate.append(float(rng.uniform(0.1, 2.0)))
        g = Generator.from_triples(n, src, dst, rate)
        ref = steady_state_gth(g)
        for solver in ALL_SOLVERS[1:]:
            np.testing.assert_allclose(solver(g), ref, atol=1e-6)
