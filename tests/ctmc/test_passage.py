"""First-passage and absorption tests against closed forms."""

import numpy as np
import pytest

from repro.ctmc import (
    Generator,
    absorbing_on_action,
    absorption_probabilities,
    mean_first_passage_times,
)
from repro.ctmc.generator import TransitionBatch


def birth_death(lam, mu, K):
    b = TransitionBatch()
    for i in range(K):
        b.add(i, i + 1, lam, action="up")
        b.add(i + 1, i, mu, action="down")
    b.add(K, K, lam, action="overflow")
    return b.to_generator(K + 1)


class TestMeanFirstPassage:
    def test_two_state(self):
        # 0 -(a)-> 1 at rate a; expected time from 0 to 1 is 1/a
        g = Generator.from_triples(2, [0, 1], [1, 0], [4.0, 1.0])
        m = mean_first_passage_times(g, [1])
        assert m[1] == 0.0
        assert m[0] == pytest.approx(0.25)

    def test_pure_birth_chain(self):
        # expected time 0 -> K is K / lam
        lam, K = 2.0, 5
        g = Generator.from_triples(
            K + 1, list(range(K)), list(range(1, K + 1)), [lam] * K
        )
        m = mean_first_passage_times(g, [K])
        assert m[0] == pytest.approx(K / lam)

    def test_birth_death_hitting_time(self):
        """E[time to reach K from 0] in a birth-death chain has the classic
        sum formula; check against it."""
        lam, mu, K = 2.0, 3.0, 6
        g = birth_death(lam, mu, K)
        m = mean_first_passage_times(g, [K])
        # h_i = expected time from i to i+1: h_i = 1/lam + (mu/lam) h_{i-1}
        h = [1.0 / lam]
        for i in range(1, K):
            h.append(1.0 / lam + (mu / lam) * h[i - 1])
        assert m[0] == pytest.approx(sum(h), rel=1e-9)

    def test_unreachable_target_inf(self):
        g = Generator.from_triples(3, [0, 1], [1, 0], [1.0, 1.0])
        m = mean_first_passage_times(g, [2])
        assert np.isinf(m[0]) and np.isinf(m[1])
        assert m[2] == 0.0

    def test_empty_targets_rejected(self):
        g = birth_death(1.0, 1.0, 2)
        with pytest.raises(ValueError):
            mean_first_passage_times(g, [])

    def test_out_of_range_rejected(self):
        g = birth_death(1.0, 1.0, 2)
        with pytest.raises(ValueError):
            mean_first_passage_times(g, [99])


class TestAbsorptionProbabilities:
    def test_gamblers_ruin(self):
        """Symmetric random walk on 0..4 with absorbing ends: ruin
        probability from i is 1 - i/4."""
        K = 4
        src, dst, rate = [], [], []
        for i in range(1, K):
            src += [i, i]
            dst += [i - 1, i + 1]
            rate += [1.0, 1.0]
        g = Generator.from_triples(K + 1, src, dst, rate)
        B = absorption_probabilities(g, [[0], [K]])
        for i in range(K + 1):
            assert B[i, 0] == pytest.approx(1 - i / K)
            assert B[i, 1] == pytest.approx(i / K)

    def test_biased_walk(self):
        # up rate 2, down rate 1 on 0..3: p_win(i) follows ((1/2)^i) form
        K = 3
        src, dst, rate = [], [], []
        for i in range(1, K):
            src += [i, i]
            dst += [i - 1, i + 1]
            rate += [1.0, 2.0]
        g = Generator.from_triples(K + 1, src, dst, rate)
        B = absorption_probabilities(g, [[0], [K]])
        # classic gambler's ruin with p=2/3: P[hit K first | start i]
        q_over_p = 0.5
        for i in range(K + 1):
            expect = (1 - q_over_p**i) / (1 - q_over_p**K)
            assert B[i, 1] == pytest.approx(expect)

    def test_rows_sum_to_one_when_absorption_certain(self):
        g = Generator.from_triples(3, [1, 1], [0, 2], [1.0, 3.0])
        B = absorption_probabilities(g, [[0], [2]])
        np.testing.assert_allclose(B.sum(axis=1), 1.0)
        assert B[1, 1] == pytest.approx(0.75)

    def test_overlapping_classes_rejected(self):
        g = birth_death(1.0, 1.0, 2)
        with pytest.raises(ValueError):
            absorption_probabilities(g, [[0], [0, 1]])


class TestAbsorbingOnAction:
    def test_time_to_first_overflow(self):
        """Mean time from empty to the first dropped arrival of an
        M/M/1/K."""
        lam, mu, K = 2.0, 3.0, 3
        g = birth_death(lam, mu, K)
        g2, sink = absorbing_on_action(g, "overflow")
        m = mean_first_passage_times(g2, [sink])
        # cross-check by simulation-free recursion: time to fire overflow =
        # time to reach K, then race: overflow (lam) vs down (mu), with
        # return on losing
        # Build it independently via the hitting-time of the sink in a
        # hand-built chain:
        src = [0, 1, 1, 2, 2, 3, 3]
        dst = [1, 2, 0, 3, 1, 4, 2]
        rate = [lam, lam, mu, lam, mu, lam, mu]
        ref = Generator.from_triples(5, src, dst, rate)
        m_ref = mean_first_passage_times(ref, [4])
        assert m[0] == pytest.approx(m_ref[0], rel=1e-9)

    def test_unknown_action_rejected(self):
        g = birth_death(1.0, 1.0, 2)
        with pytest.raises(KeyError):
            absorbing_on_action(g, "nope")

    def test_sink_is_absorbing(self):
        g = birth_death(1.0, 1.0, 2)
        g2, sink = absorbing_on_action(g, "overflow")
        assert g2.n_states == g.n_states + 1
        assert -g2.Q.diagonal()[sink] == 0.0

    def test_non_selfloop_action_redirected(self):
        """Redirecting a state-changing action preserves total exit rates
        but reroutes the flow."""
        g = birth_death(2.0, 3.0, 3)
        g2, sink = absorbing_on_action(g, "down")
        # from state 1, the down-rate now leads to the sink
        assert g2.Q[1, 0] == 0.0
        assert g2.Q[1, sink] == pytest.approx(3.0)
        np.testing.assert_allclose(
            -g2.Q.diagonal()[:3], -g.Q.diagonal()[:3] + [0, 0, 0], atol=1e-12
        )
