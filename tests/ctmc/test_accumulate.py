"""Accumulated-reward tests."""

import numpy as np
import pytest

from repro.ctmc import Generator, mean_first_passage_times
from repro.ctmc.accumulate import expected_accumulated_reward


def chain(edges, n):
    src = [e[0] for e in edges]
    dst = [e[1] for e in edges]
    rate = [e[2] for e in edges]
    return Generator.from_triples(n, src, dst, rate)


class TestAgainstFirstPassage:
    def test_unit_reward_is_passage_time(self):
        g = chain([(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0)], 3)
        ones = np.ones(3)
        a = expected_accumulated_reward(g, ones, [2])
        m = mean_first_passage_times(g, [2])
        np.testing.assert_allclose(a, m, atol=1e-12)

    def test_scaled_reward_scales(self):
        g = chain([(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0)], 3)
        a1 = expected_accumulated_reward(g, np.ones(3), [2])
        a5 = expected_accumulated_reward(g, 5 * np.ones(3), [2])
        np.testing.assert_allclose(a5, 5 * a1)


class TestClosedForms:
    def test_pure_birth_weighted(self):
        """0 -> 1 -> 2 at rate 1; reward r_i = i: E[acc from 0] =
        0*1 + 1*1 = 1 (one unit of time in each state)."""
        g = chain([(0, 1, 1.0), (1, 2, 1.0)], 3)
        a = expected_accumulated_reward(g, np.array([0.0, 1.0, 7.0]), [2])
        assert a[0] == pytest.approx(1.0)
        assert a[1] == pytest.approx(1.0)
        assert a[2] == 0.0

    def test_unreachable_positive_reward_inf(self):
        g = chain([(0, 1, 1.0), (1, 0, 1.0)], 3)
        a = expected_accumulated_reward(g, np.ones(3), [2])
        assert np.isinf(a[0]) and np.isinf(a[1])

    def test_unreachable_zero_reward_nan(self):
        g = chain([(0, 1, 1.0), (1, 0, 1.0)], 3)
        a = expected_accumulated_reward(g, np.zeros(3), [2])
        assert np.isnan(a[0])


class TestValidation:
    def test_shape_mismatch(self):
        g = chain([(0, 1, 1.0)], 2)
        with pytest.raises(ValueError, match="reward shape"):
            expected_accumulated_reward(g, np.ones(3), [1])

    def test_empty_targets(self):
        g = chain([(0, 1, 1.0)], 2)
        with pytest.raises(ValueError, match="empty"):
            expected_accumulated_reward(g, np.ones(2), [])


class TestTagsApplication:
    def test_wasted_work_before_first_loss(self):
        """Expected job-seconds in the system before the first arrival
        drop of an M/M/1/2 -- sanity: positive, finite, larger than the
        passage time times min occupancy."""
        from repro.ctmc import absorbing_on_action
        from repro.ctmc.generator import TransitionBatch

        lam, mu, K = 2.0, 3.0, 2
        b = TransitionBatch()
        for i in range(K):
            b.add(i, i + 1, lam, action="arr")
            b.add(i + 1, i, mu, action="srv")
        b.add(K, K, lam, action="loss")
        g = b.to_generator(K + 1)
        g2, sink = absorbing_on_action(g, "loss")
        reward = np.array([0.0, 1.0, 2.0, 0.0])  # jobs present per state
        acc = expected_accumulated_reward(g2, reward, [sink])
        t = mean_first_passage_times(g2, [sink])
        assert 0 < acc[0] < 2 * t[0]
