"""Ordinary-lumping tests: quotient correctness and coarsest partitions."""

import numpy as np
import pytest

from repro.ctmc import (
    Generator,
    lump_generator,
    ordinary_lumping_partition,
    steady_state,
)


def symmetric_pair():
    """Two identical independent 2-state components: 4 states, lumpable to
    3 by the count of 'up' components."""
    # states: (a,b) with a,b in {0,1}; up-rate 2, down-rate 3 each
    idx = {(a, b): 2 * a + b for a in (0, 1) for b in (0, 1)}
    src, dst, rate = [], [], []
    for (a, b), i in idx.items():
        for comp, val in (("a", a), ("b", b)):
            na, nb = (1 - a, b) if comp == "a" else (a, 1 - b)
            r = 2.0 if val == 0 else 3.0
            src.append(i)
            dst.append(idx[(na, nb)])
            rate.append(r)
    return Generator.from_triples(4, src, dst, rate), idx


class TestPartition:
    def test_symmetric_components_lump_to_counts(self):
        g, idx = symmetric_pair()
        counts = [0, 1, 1, 2]  # number of up components per state
        part = ordinary_lumping_partition(g, counts)
        # states (0,1) and (1,0) must share a block
        assert part[idx[(0, 1)]] == part[idx[(1, 0)]]
        assert len(set(part)) == 3

    def test_initial_labels_respected(self):
        g, idx = symmetric_pair()
        labels = [0, 1, 2, 3]  # all distinct: nothing may merge
        part = ordinary_lumping_partition(g, labels)
        assert len(set(part)) == 4

    def test_asymmetric_chain_does_not_lump(self):
        # birth-death with distinct rates everywhere: coarsest = singletons
        src = [0, 1, 1, 2]
        dst = [1, 0, 2, 1]
        rate = [1.0, 2.0, 3.0, 4.0]
        g = Generator.from_triples(3, src, dst, rate)
        part = ordinary_lumping_partition(g)
        assert len(set(part)) == 3

    def test_label_length_mismatch(self):
        g, _ = symmetric_pair()
        with pytest.raises(ValueError):
            ordinary_lumping_partition(g, [0, 1])


class TestQuotient:
    def test_quotient_steady_state_aggregates(self):
        g, idx = symmetric_pair()
        counts = [0, 1, 1, 2]
        part = ordinary_lumping_partition(g, counts)
        lumped = lump_generator(g, part)
        pi_full = steady_state(g)
        pi_lump = steady_state(lumped)
        for b in range(lumped.n_states):
            members = np.flatnonzero(part == b)
            assert pi_lump[b] == pytest.approx(pi_full[members].sum(), rel=1e-9)

    def test_quotient_is_binomial(self):
        """Two independent up/down components: lumped chain is the
        binomial birth-death on the up-count."""
        g, idx = symmetric_pair()
        part = ordinary_lumping_partition(g, [0, 1, 1, 2])
        lumped = lump_generator(g, part)
        pi = steady_state(lumped)
        p_up = 2.0 / 5.0
        # identify blocks by their stationary mass
        expected = sorted(
            [(1 - p_up) ** 2, 2 * p_up * (1 - p_up), p_up**2]
        )
        np.testing.assert_allclose(sorted(pi), expected, atol=1e-9)

    def test_non_lumpable_partition_rejected(self):
        src = [0, 1, 1, 2]
        dst = [1, 0, 2, 1]
        rate = [1.0, 2.0, 3.0, 4.0]
        g = Generator.from_triples(3, src, dst, rate)
        with pytest.raises(ValueError, match="not ordinarily lumpable"):
            lump_generator(g, [0, 0, 1])

    def test_tags_chain_lumps_trivially(self):
        """The Figure 3 chain has no hidden symmetry: the coarsest
        partition preserving (q1, q2) must keep the timer detail."""
        from repro.models import TagsExponential

        m = TagsExponential(lam=5, mu=10, t=30, n=2, K1=2, K2=2)
        labels = [(s[0], s[2]) for s in m.states]
        part = ordinary_lumping_partition(m.generator, labels)
        assert len(set(part)) > len(set(labels))
