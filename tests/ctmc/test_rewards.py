"""Reward / throughput / Little's-law tests."""

import numpy as np
import pytest

from repro.ctmc import (
    Generator,
    action_throughput,
    expected_reward,
    littles_law_response_time,
    steady_state,
)
from repro.ctmc.generator import TransitionBatch
from repro.ctmc.rewards import all_action_throughputs


def mm1k_generator(lam, mu, K):
    b = TransitionBatch()
    for i in range(K):
        b.add(i, i + 1, lam, action="arrival")
        b.add(i + 1, i, mu, action="service")
    # losses: arrivals in the full state are dropped (self-loop, labelled)
    b.add(K, K, lam, action="loss")
    return b.to_generator(K + 1)


class TestExpectedReward:
    def test_mean_queue_length_mm1k(self):
        lam, mu, K = 2.0, 5.0, 10
        g = mm1k_generator(lam, mu, K)
        pi = steady_state(g)
        rho = lam / mu
        p = rho ** np.arange(K + 1)
        p /= p.sum()
        L_exact = float(np.arange(K + 1) @ p)
        assert expected_reward(pi, np.arange(K + 1.0)) == pytest.approx(L_exact)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            expected_reward(np.array([0.5, 0.5]), np.array([1.0]))


class TestThroughput:
    def test_flow_balance(self):
        """In steady state, arrival throughput = service throughput."""
        g = mm1k_generator(3.0, 4.0, 6)
        pi = steady_state(g)
        arr = action_throughput(g, pi, "arrival")
        srv = action_throughput(g, pi, "service")
        assert arr == pytest.approx(srv, rel=1e-9)

    def test_loss_plus_throughput_equals_offered(self):
        lam = 3.0
        g = mm1k_generator(lam, 4.0, 6)
        pi = steady_state(g)
        srv = action_throughput(g, pi, "service")
        loss = action_throughput(g, pi, "loss")
        assert srv + loss == pytest.approx(lam, rel=1e-9)

    def test_loss_rate_matches_blocking_formula(self):
        lam, mu, K = 3.0, 4.0, 6
        g = mm1k_generator(lam, mu, K)
        pi = steady_state(g)
        rho = lam / mu
        p = rho ** np.arange(K + 1)
        p /= p.sum()
        assert action_throughput(g, pi, "loss") == pytest.approx(lam * p[K])

    def test_unknown_action(self):
        g = mm1k_generator(1.0, 2.0, 3)
        pi = steady_state(g)
        with pytest.raises(KeyError, match="known actions"):
            action_throughput(g, pi, "nope")

    def test_all_action_throughputs(self):
        g = mm1k_generator(1.0, 2.0, 3)
        pi = steady_state(g)
        d = all_action_throughputs(g, pi)
        assert set(d) == {"arrival", "service", "loss"}


class TestLittlesLaw:
    def test_mm1k_response_time(self):
        lam, mu, K = 2.0, 5.0, 10
        g = mm1k_generator(lam, mu, K)
        pi = steady_state(g)
        L = expected_reward(pi, np.arange(K + 1.0))
        X = action_throughput(g, pi, "service")
        W = littles_law_response_time(L, X)
        # sanity: response time at low load is near 1/(mu - lam) (M/M/1)
        assert 0.9 / (mu - lam) < W < 1.5 / (mu - lam)

    def test_rejects_zero_throughput(self):
        with pytest.raises(ValueError):
            littles_law_response_time(1.0, 0.0)

    def test_rejects_negative_population(self):
        with pytest.raises(ValueError):
            littles_law_response_time(-1.0, 1.0)
