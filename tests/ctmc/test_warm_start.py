"""Warm-start (``pi0``) correctness for the iterative solvers.

For a fixed chain, a warm-started solve must reach the same stationary
distribution as GTH regardless of the quality of the guess, and a
malformed guess must fail loudly with a clear error.
"""

import numpy as np
import pytest

from repro.ctmc import Generator, steady_state
from repro.ctmc.steady import (
    ITERATIVE_METHODS,
    steady_state_gauss_seidel,
    steady_state_gmres,
    steady_state_gth,
    steady_state_power,
)

ITERATIVE_SOLVERS = [
    steady_state_power,
    steady_state_gauss_seidel,
    steady_state_gmres,
]

TOL = 1e-8


def birth_death(lam, mu, K):
    src, dst, rate = [], [], []
    for i in range(K):
        src.append(i), dst.append(i + 1), rate.append(lam)
        src.append(i + 1), dst.append(i), rate.append(mu)
    return Generator.from_triples(K + 1, src, dst, rate)


@pytest.fixture(scope="module")
def chain():
    return birth_death(3.0, 5.0, 25)


@pytest.fixture(scope="module")
def reference(chain):
    return steady_state_gth(chain, tol=TOL)


@pytest.mark.parametrize("solver", ITERATIVE_SOLVERS)
class TestWarmStartMatchesGth:
    def test_exact_guess(self, solver, chain, reference):
        """Warm-starting at the answer converges to the answer."""
        pi = solver(chain, tol=TOL, pi0=reference)
        np.testing.assert_allclose(pi, reference, atol=TOL)

    def test_perturbed_guess(self, solver, chain, reference):
        rng = np.random.default_rng(7)
        pi0 = np.maximum(reference + rng.normal(0, 1e-3, reference.size), 0.0)
        pi = solver(chain, tol=TOL, pi0=pi0)
        np.testing.assert_allclose(pi, reference, atol=TOL)

    def test_unnormalised_guess_is_normalised(self, solver, chain, reference):
        pi = solver(chain, tol=TOL, pi0=reference * 37.5)
        np.testing.assert_allclose(pi, reference, atol=TOL)

    def test_uniform_guess_matches_cold(self, solver, chain, reference):
        """pi0=uniform must equal the cold-start result exactly for the
        solvers whose cold start *is* uniform (GMRES cold-starts at the
        zero vector, so it only agrees to tolerance)."""
        n = chain.Q.shape[0]
        cold = solver(chain, tol=TOL)
        warm = solver(chain, tol=TOL, pi0=np.full(n, 1.0 / n))
        if solver is steady_state_gmres:
            np.testing.assert_allclose(cold, warm, atol=TOL)
        else:
            np.testing.assert_array_equal(cold, warm)


@pytest.mark.parametrize("solver", ITERATIVE_SOLVERS)
class TestBadPi0:
    def test_wrong_length(self, solver, chain):
        with pytest.raises(ValueError, match="length"):
            solver(chain, pi0=np.ones(3))

    def test_negative_entries(self, solver, chain):
        pi0 = np.full(chain.Q.shape[0], 1.0)
        pi0[0] = -0.5
        with pytest.raises(ValueError, match="negative"):
            solver(chain, pi0=pi0)

    def test_non_finite(self, solver, chain):
        pi0 = np.full(chain.Q.shape[0], 1.0)
        pi0[0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            solver(chain, pi0=pi0)

    def test_zero_sum(self, solver, chain):
        with pytest.raises(ValueError, match="sums to zero"):
            solver(chain, pi0=np.zeros(chain.Q.shape[0]))

    def test_wrong_ndim(self, solver, chain):
        n = chain.Q.shape[0]
        with pytest.raises(ValueError, match="1-D"):
            solver(chain, pi0=np.ones((n, 1)))


class TestDispatchPlumbing:
    def test_pi0_forwarded_to_iterative(self, chain, reference):
        for method in sorted(ITERATIVE_METHODS):
            info = {}
            pi = steady_state(chain, method=method, pi0=reference, info=info)
            np.testing.assert_allclose(pi, reference, atol=TOL)
            assert info["warm_started"] is True
            assert info["method"] == method
            assert info["iterations"] >= 0

    def test_pi0_bad_via_dispatch(self, chain):
        with pytest.raises(ValueError, match="length"):
            steady_state(chain, method="power", pi0=np.ones(2))

    def test_direct_methods_ignore_pi0(self, chain, reference):
        """gth/direct do not iterate; a pi0 (even a bad one) is ignored."""
        for method in ("gth", "direct"):
            info = {}
            pi = steady_state(chain, method=method, pi0=np.ones(3), info=info)
            np.testing.assert_allclose(pi, reference, atol=1e-7)
            assert info["warm_started"] is False
            assert info["iterations"] is None

    def test_info_records_iteration_savings(self, chain, reference):
        """A warm start from the answer must not iterate longer than a
        cold start (the whole point of threading pi0 through sweeps)."""
        cold, warm = {}, {}
        steady_state(chain, method="power", info=cold)
        steady_state(chain, method="power", pi0=reference, info=warm)
        assert warm["iterations"] <= cold["iterations"]
