"""Tests for the tuple-state BFS generator builder."""

import numpy as np
import pytest

from repro.ctmc import steady_state
from repro.ctmc.bfs import bfs_generator


def ring(n, rate=1.0):
    def succ(s):
        (i,) = s
        return [("step", rate, ((i + 1) % n,))]

    return succ


class TestExploration:
    def test_ring(self):
        gen, states, index = bfs_generator((0,), ring(5))
        assert gen.n_states == 5
        assert states[0] == (0,)
        assert index[(3,)] == states.index((3,))
        np.testing.assert_allclose(steady_state(gen), 0.2)

    def test_initial_is_state_zero(self):
        gen, states, _ = bfs_generator((7,), ring(10))
        assert states[0] == (7,)

    def test_duplicate_transitions_sum(self):
        def succ(s):
            if s == (0,):
                return [("a", 1.0, (1,)), ("a", 2.0, (1,)), ("b", 1.0, (0,))]
            return [("back", 6.0, (0,))]

        gen, _, _ = bfs_generator((0,), succ)
        assert gen.Q[0, 1] == pytest.approx(3.0)
        # the self-loop 'b' does not enter the generator
        assert gen.Q[0, 0] == pytest.approx(-3.0)
        assert gen.action_rates["b"][0, 0] == 1.0

    def test_zero_rates_skipped(self):
        def succ(s):
            return [("a", 0.0, (1,)), ("b", 1.0, (0,))] if s == (0,) else []

        gen, states, _ = bfs_generator((0,), succ)
        assert gen.n_states == 1  # the zero-rate edge never explored (1,)

    def test_negative_rate_rejected(self):
        def succ(s):
            return [("a", -1.0, (1,))]

        with pytest.raises(ValueError, match="negative rate"):
            bfs_generator((0,), succ)

    def test_max_states_guard(self):
        def succ(s):
            (i,) = s
            return [("grow", 1.0, (i + 1,))]

        with pytest.raises(MemoryError):
            bfs_generator((0,), succ, max_states=100)

    def test_action_matrices_complete(self):
        gen, _, _ = bfs_generator((0,), ring(4, rate=2.5))
        assert set(gen.action_rates) == {"step"}
        assert gen.action_rates["step"].sum() == pytest.approx(4 * 2.5)

    def test_shim_import_still_works(self):
        from repro.models._bfs import bfs_generator as shim

        assert shim is bfs_generator
