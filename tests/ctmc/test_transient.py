"""Transient (uniformization) tests against matrix-exponential ground truth."""

import numpy as np
import pytest
import scipy.linalg

from repro.ctmc import Generator, steady_state, transient_distribution
from repro.ctmc.transient import transient_rewards, uniformized_dtmc


def random_generator(n, seed=0):
    rng = np.random.default_rng(seed)
    R = rng.uniform(0.0, 2.0, (n, n))
    np.fill_diagonal(R, 0.0)
    Q = R - np.diag(R.sum(axis=1))
    return Generator.from_dense(Q)


class TestUniformizedDtmc:
    def test_stochastic(self):
        g = random_generator(6)
        P, lam = uniformized_dtmc(g)
        assert lam >= g.uniformization_rate
        np.testing.assert_allclose(np.asarray(P.sum(axis=1)).ravel(), 1.0)
        assert P.toarray().min() >= 0

    def test_forced_rate_too_small_rejected(self):
        g = random_generator(4)
        with pytest.raises(ValueError, match="rate"):
            uniformized_dtmc(g, rate=g.uniformization_rate * 0.5)


class TestTransient:
    @pytest.mark.parametrize("t", [0.01, 0.3, 1.0, 5.0])
    def test_matches_expm(self, t):
        g = random_generator(8, seed=3)
        p0 = np.zeros(8)
        p0[0] = 1.0
        expected = p0 @ scipy.linalg.expm(g.dense() * t)
        got = transient_distribution(g, p0, t)
        np.testing.assert_allclose(got, expected, atol=1e-8)

    def test_t_zero_identity(self):
        g = random_generator(5)
        p0 = np.full(5, 0.2)
        np.testing.assert_allclose(transient_distribution(g, p0, 0.0), p0)

    def test_converges_to_steady_state(self):
        g = random_generator(6, seed=9)
        p0 = np.zeros(6)
        p0[2] = 1.0
        pi = steady_state(g)
        pt = transient_distribution(g, p0, 200.0)
        np.testing.assert_allclose(pt, pi, atol=1e-6)

    def test_negative_time_rejected(self):
        g = random_generator(3)
        with pytest.raises(ValueError, match="negative"):
            transient_distribution(g, np.array([1.0, 0, 0]), -1.0)

    def test_bad_p0_rejected(self):
        g = random_generator(3)
        with pytest.raises(ValueError, match="probability"):
            transient_distribution(g, np.array([0.5, 0.2, 0.2]), 1.0)

    def test_reward_trajectory_monotone_relaxation(self):
        # expected reward must approach the stationary value
        g = random_generator(5, seed=11)
        p0 = np.zeros(5)
        p0[0] = 1.0
        r = np.arange(5.0)
        times = np.array([0.0, 1.0, 50.0])
        vals = transient_rewards(g, p0, times, r)
        pi = steady_state(g)
        assert abs(vals[-1] - pi @ r) < 1e-6
        assert vals[0] == 0.0
