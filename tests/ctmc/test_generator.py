"""Unit tests for the Generator class and TransitionBatch accumulator."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ctmc import Generator
from repro.ctmc.generator import TransitionBatch


def two_state_Q(a=2.0, b=3.0):
    return np.array([[-a, a], [b, -b]])


class TestGeneratorValidation:
    def test_accepts_valid_generator(self):
        g = Generator.from_dense(two_state_Q())
        assert g.n_states == 2

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            Generator(sp.csr_matrix(np.zeros((2, 3))))

    def test_rejects_negative_offdiagonal(self):
        Q = np.array([[1.0, -1.0], [3.0, -3.0]])
        with pytest.raises(ValueError, match="negative off-diagonal"):
            Generator.from_dense(Q)

    def test_rejects_bad_rowsum(self):
        Q = np.array([[-2.0, 1.0], [3.0, -3.0]])
        with pytest.raises(ValueError, match="row sums"):
            Generator.from_dense(Q)

    def test_rowsum_tolerance_scales_with_diagonal(self):
        # row sums off by 1e-12 relative to rates of 1e6 must pass
        a = 1e6
        Q = np.array([[-a, a + 1e-8], [a, -a]])
        Q[1, 1] = -Q[1, 0]
        g = Generator.from_dense(Q)
        assert g.n_states == 2


class TestFromTriples:
    def test_diagonal_computed(self):
        g = Generator.from_triples(2, [0, 1], [1, 0], [2.0, 3.0])
        np.testing.assert_allclose(g.dense(), two_state_Q())

    def test_duplicate_triples_sum(self):
        g = Generator.from_triples(2, [0, 0, 1], [1, 1, 0], [1.0, 1.0, 3.0])
        np.testing.assert_allclose(g.dense(), two_state_Q())

    def test_self_loops_cancel(self):
        g = Generator.from_triples(2, [0, 0, 1], [0, 1, 0], [5.0, 2.0, 3.0])
        np.testing.assert_allclose(g.dense(), two_state_Q())

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Generator.from_triples(2, [0], [1], [-1.0])


class TestProperties:
    def test_exit_rates(self):
        g = Generator.from_dense(two_state_Q(2.0, 3.0))
        np.testing.assert_allclose(g.exit_rates, [2.0, 3.0])

    def test_uniformization_rate(self):
        g = Generator.from_dense(two_state_Q(2.0, 3.0))
        assert g.uniformization_rate == 3.0

    def test_off_diagonal(self):
        g = Generator.from_dense(two_state_Q())
        R = g.off_diagonal().toarray()
        np.testing.assert_allclose(R, [[0, 2.0], [3.0, 0]])

    def test_embedded_dtmc_rows_stochastic(self):
        g = Generator.from_triples(
            3, [0, 0, 1, 2], [1, 2, 2, 0], [1.0, 3.0, 2.0, 5.0]
        )
        P = g.embedded_dtmc().toarray()
        np.testing.assert_allclose(P.sum(axis=1), 1.0)
        np.testing.assert_allclose(P[0], [0, 0.25, 0.75])

    def test_embedded_dtmc_absorbing_row_identity(self):
        g = Generator.from_triples(2, [0], [1], [1.0])
        P = g.embedded_dtmc().toarray()
        np.testing.assert_allclose(P[1], [0.0, 1.0])


class TestTransitionBatch:
    def test_scalar_and_vector_adds(self):
        b = TransitionBatch()
        b.add(0, 1, 2.0, action="go")
        b.add([1], [0], [3.0], action="back")
        g = b.to_generator(2)
        np.testing.assert_allclose(g.dense(), two_state_Q())
        assert set(g.action_rates) == {"go", "back"}
        assert g.action_rates["go"][0, 1] == 2.0

    def test_shape_mismatch_rejected(self):
        b = TransitionBatch()
        with pytest.raises(ValueError, match="shapes differ"):
            b.add([0, 1], [1], [1.0])

    def test_state_count_inferred(self):
        b = TransitionBatch()
        b.add([0, 4], [4, 0], [1.0, 1.0])
        g = b.to_generator()
        assert g.n_states == 5

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            TransitionBatch().to_generator()

    def test_action_matrix_keeps_self_loops(self):
        # self-loop transitions don't enter Q but must count for throughput
        b = TransitionBatch()
        b.add(0, 0, 7.0, action="loop")
        b.add(0, 1, 1.0, action="move")
        b.add(1, 0, 1.0, action="move")
        g = b.to_generator(2)
        assert g.action_rates["loop"][0, 0] == 7.0
        assert g.dense()[0, 0] == -1.0
