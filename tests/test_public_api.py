"""Public-API surface tests: imports, facade completeness, docstrings."""

import importlib
import inspect

import pytest

SUBPACKAGES = [
    "repro",
    "repro.core",
    "repro.pepa",
    "repro.ctmc",
    "repro.dists",
    "repro.models",
    "repro.approx",
    "repro.sim",
    "repro.batch",
    "repro.experiments",
    "repro.sweep",
    "repro.serve",
    "repro.faults",
    "repro.obs",
]


class TestImports:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_importable(self, name):
        mod = importlib.import_module(name)
        assert mod.__doc__, f"{name} lacks a module docstring"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_resolves(self, name):
        mod = importlib.import_module(name)
        for sym in getattr(mod, "__all__", []):
            assert hasattr(mod, sym), f"{name}.__all__ lists missing {sym!r}"


class TestCoreFacade:
    def test_headline_workflow(self):
        from repro.core import TagsExponential, TagsParameters, build_tags_model

        m = TagsExponential(lam=5, mu=10, t=51, n=2, K1=2, K2=2)
        assert m.metrics().throughput > 0
        assert build_tags_model(TagsParameters(n=2, K1=2, K2=2))

    def test_version(self):
        import repro

        assert repro.__version__


class TestDocstrings:
    @pytest.mark.parametrize(
        "name",
        [
            "repro.pepa.semantics",
            "repro.pepa.statespace",
            "repro.ctmc.steady",
            "repro.ctmc.lumping",
            "repro.models.tags_direct",
            "repro.approx.balance",
            "repro.sim.runner",
            "repro.sweep.engine",
            "repro.sweep.cache",
            "repro.faults.plan",
            "repro.faults.injector",
            "repro.faults.breaker",
            "repro.serve.supervisor",
        ],
    )
    def test_public_callables_documented(self, name):
        mod = importlib.import_module(name)
        for sym in getattr(mod, "__all__", []):
            obj = getattr(mod, sym)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"{name}.{sym} lacks a docstring"
