"""Bounded-queue fixed-point approximation tests against the exact CTMC."""

import pytest

from repro.approx import TagsFixedPoint
from repro.models import TagsExponential


class TestStructure:
    def test_validation(self):
        with pytest.raises(ValueError):
            TagsFixedPoint(lam=-1.0)
        with pytest.raises(ValueError):
            TagsFixedPoint(n=0)

    def test_node2_arrival_rate_formula(self):
        """lam2 = (lam - l) p, the paper's expression."""
        fp = TagsFixedPoint(lam=5, mu=10, t=51, n=6)
        p = fp.timeout_probability
        n1 = fp.node1()
        assert fp.node2().lam == pytest.approx((5 - n1.loss_rate) * p)

    def test_node2_service_time(self):
        fp = TagsFixedPoint(lam=5, mu=10, t=51, n=6)
        assert 1.0 / fp.node2().mu == pytest.approx(6 / 51 + 1 / 10)


class TestAgainstExactCTMC:
    @pytest.mark.parametrize("lam", [5.0, 7.0, 9.0])
    def test_population_within_thirty_percent(self, lam):
        fp = TagsFixedPoint(lam=lam, mu=10, t=45, n=6).metrics()
        ex = TagsExponential(lam=lam, mu=10, t=45, n=6).metrics()
        assert fp.mean_jobs == pytest.approx(ex.mean_jobs, rel=0.3)

    def test_throughput_close(self):
        fp = TagsFixedPoint(lam=9, mu=10, t=45, n=6).metrics()
        ex = TagsExponential(lam=9, mu=10, t=45, n=6).metrics()
        assert fp.throughput == pytest.approx(ex.throughput, rel=0.02)

    def test_timeout_probability_matches_flow(self):
        """The decomposition's p matches the exact chain's timeout share of
        node-1 departures."""
        ex = TagsExponential(lam=5, mu=10, t=51, n=6).metrics()
        share = ex.extra["timeout_throughput"] / (
            ex.extra["timeout_throughput"] + ex.extra["service1_throughput"]
        )
        fp = TagsFixedPoint(lam=5, mu=10, t=51, n=6)
        assert fp.timeout_probability == pytest.approx(share, rel=1e-6)

    def test_approximation_tracks_shape_under_overload(self):
        """Where Section 4 matters (losses significant, lam=11 > mu=10) the
        fixed point must reproduce the hump shape of throughput in t."""
        def exact(t):
            return TagsExponential(lam=11, mu=10, t=t, n=6).metrics().throughput

        def approx(t):
            return TagsFixedPoint(lam=11, mu=10, t=t, n=6).metrics().throughput

        for a, b in [(5.0, 42.0), (500.0, 42.0)]:
            assert exact(a) < exact(b)
            assert approx(a) < approx(b)

    def test_throughput_accuracy_under_overload(self):
        for t in (5.0, 42.0, 500.0):
            fp = TagsFixedPoint(lam=11, mu=10, t=t, n=6).metrics()
            ex = TagsExponential(lam=11, mu=10, t=t, n=6).metrics()
            assert fp.throughput == pytest.approx(ex.throughput, rel=0.02)
