"""Sensitivity-analysis tests."""

import pytest

from repro.approx.sensitivity import (
    metric_derivative,
    metric_elasticity,
    tuning_tolerance,
)
from repro.models import MM1K, TagsExponential


class TestDerivative:
    def test_against_closed_form(self):
        """d(mean jobs)/d(lam) of an M/M/1/K has a closed form we can
        verify numerically via a much smaller step."""
        mu, K = 10.0, 8
        factory = lambda lam: MM1K(lam, mu, K)
        d = metric_derivative(factory, 5.0, "mean_jobs")
        h = 1e-7
        ref = (
            MM1K(5.0 + h, mu, K).mean_jobs - MM1K(5.0 - h, mu, K).mean_jobs
        ) / (2 * h)
        assert d == pytest.approx(ref, rel=1e-4)

    def test_zero_slope_at_optimum(self):
        """The derivative of mean jobs wrt t vanishes at the interior
        optimum (t ~ 51 at lam = 5)."""
        factory = lambda t: TagsExponential(lam=5, mu=10, t=t, n=6)
        d_at_opt = metric_derivative(factory, 51.0, "mean_jobs")
        d_away = metric_derivative(factory, 15.0, "mean_jobs")
        assert abs(d_at_opt) < abs(d_away) / 5

    def test_validation(self):
        with pytest.raises(ValueError):
            metric_derivative(lambda t: None, -1.0)


class TestElasticity:
    def test_sign_flips_across_optimum(self):
        """On the paper's own configuration the mean-jobs curve falls
        towards t=51 and rises beyond it (Figure 6's U-shape)."""
        factory = lambda t: TagsExponential(lam=5, mu=10, t=t, n=6, K1=10, K2=10)
        below = metric_elasticity(factory, 25.0, "mean_jobs")
        above = metric_elasticity(factory, 90.0, "mean_jobs")
        assert below < 0 < above

    def test_mm1k_throughput_elasticity_below_one(self):
        """Throughput grows sublinearly in lam once blocking matters."""
        factory = lambda lam: MM1K(lam, 10.0, 5)
        e = metric_elasticity(factory, 9.0, "throughput")
        assert 0 < e < 1


class TestTolerance:
    def test_band_contains_optimum(self):
        factory = lambda t: TagsExponential(lam=11, mu=10, t=t, n=4, K1=6, K2=6)
        band = tuning_tolerance(
            factory, 50.0, "throughput", maximise=True, degradation=0.05,
            x_min=1.0, x_max=2000.0,
        )
        assert band.lo < 50.0 < band.hi
        assert band.relative_width > 0

    def test_band_edges_hit_threshold(self):
        factory = lambda t: TagsExponential(lam=11, mu=10, t=t, n=4, K1=6, K2=6)
        band = tuning_tolerance(
            factory, 50.0, "throughput", maximise=True, degradation=0.05,
            x_min=1.0, x_max=2000.0,
        )
        threshold = band.value_opt * 0.95
        for edge in (band.lo, band.hi):
            v = factory(edge).metrics().throughput
            assert v == pytest.approx(threshold, rel=1e-3)

    def test_flat_metric_returns_range_limits(self):
        """A metric independent of the parameter never degrades."""
        factory = lambda x: MM1K(5.0, 10.0, 8)  # x unused
        band = tuning_tolerance(
            factory, 1.0, "mean_jobs", degradation=0.1, x_min=0.1, x_max=10.0
        )
        assert band.lo == 0.1 and band.hi == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            tuning_tolerance(lambda x: None, 1.0, degradation=1.5)
