"""Section 4 balance-equation tests against the paper's quoted numbers."""

import numpy as np
import pytest

from repro.approx import (
    erlang_balance_rate,
    exponential_balance_rate,
    expected_race_duration,
    timeout_win_probability,
)
from repro.approx.balance import erlang_balance_residual


class TestTimeoutWinProbability:
    def test_exponential_case(self):
        assert timeout_win_probability(3.0, 7.0, 1) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            timeout_win_probability(-1.0, 1.0, 1)


class TestExpectedRaceDuration:
    def test_closed_form_vs_quadrature(self):
        t, mu, n = 40.0, 10.0, 6
        us = np.linspace(0, 3, 300_000)
        # P[min > u] = P[Erlang > u] P[Exp > u]
        from scipy.stats import gamma

        surv = gamma.sf(us, n, scale=1 / t) * np.exp(-mu * us)
        assert expected_race_duration(t, mu, n) == pytest.approx(
            np.trapezoid(surv, us), rel=1e-4
        )

    def test_no_timeout_limit(self):
        # clock far slower than service: race duration -> mean service
        assert expected_race_duration(1e-6, 10.0, 3) == pytest.approx(0.1, rel=1e-4)

    def test_instant_timeout_limit(self):
        assert expected_race_duration(1e9, 10.0, 1) < 1e-6


class TestExponentialBalance:
    def test_paper_value(self):
        """mu = 10 -> T ~= 6.17 (paper); exact root is 10(sqrt5-1)/2."""
        T = exponential_balance_rate(10.0)
        assert T == pytest.approx(6.18, abs=0.01)

    def test_satisfies_equation(self):
        mu = 7.3
        T = exponential_balance_rate(mu)
        assert mu**2 == pytest.approx(T**2 + T * mu)

    def test_scales_linearly(self):
        assert exponential_balance_rate(20.0) == pytest.approx(
            2 * exponential_balance_rate(10.0)
        )


class TestErlangBalance:
    def test_n1_equals_exponential(self):
        mu = 10.0
        assert erlang_balance_rate(mu, 1) == pytest.approx(
            exponential_balance_rate(mu), rel=1e-9
        )

    def test_residual_zero_at_root(self):
        mu, n = 10.0, 6
        t = erlang_balance_rate(mu, n)
        assert erlang_balance_residual(t, mu, n) == pytest.approx(0.0, abs=1e-12)

    def test_total_rate_tends_to_nine(self):
        """Paper: 'the total timeout rate will increase, tending to a value
        of around 9 when mu = 10'."""
        rates = [erlang_balance_rate(10.0, n) / n for n in (1, 2, 6, 50, 400)]
        assert all(a < b for a, b in zip(rates, rates[1:]))
        assert rates[-1] == pytest.approx(8.72, abs=0.05)

    def test_n6_matches_paper_optimal_band(self):
        """The paper's numerically optimal integer t at n=6 lies in 42..51;
        the balance estimate must land in that band."""
        t = erlang_balance_rate(10.0, 6)
        assert 42.0 <= t <= 51.0

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_balance_rate(-1.0, 3)
