"""Timeout-optimiser tests, including the paper's Figure 8 optima."""

import pytest

from repro.approx import TagsFixedPoint, optimise_timeout
from repro.models import TagsExponential


class TestOnFixedPoint:
    def test_throughput_optimum_matches_exact(self):
        """Under overload (lam=11 > mu=10) the fixed point locates the
        throughput-optimal timeout within a couple of units of the exact
        CTMC optimum (~52.7)."""
        res = optimise_timeout(
            lambda t: TagsFixedPoint(lam=11, mu=10, t=t, n=6),
            "throughput",
            t_min=2.0,
            t_max=300.0,
        )
        assert 48.0 <= res.t_opt <= 58.0

    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metric"):
            optimise_timeout(lambda t: TagsFixedPoint(t=t), "nope")

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            optimise_timeout(lambda t: TagsFixedPoint(t=t), t_min=5.0, t_max=1.0)


class TestOnExactModel:
    @pytest.mark.parametrize(
        "lam,paper_t",
        [(5.0, 51), (7.0, 49), (9.0, 45), (11.0, 42)],
        ids=["lam5", "lam7", "lam9", "lam11"],
    )
    def test_figure8_integer_optima(self, lam, paper_t):
        """Paper Figure 8: 'the optimal (integer) values of t being 42, 45,
        49 and 51 (for lam = 11, 9, 7 and 5 respectively)', optimised for
        minimum queue length."""
        best_t = None
        best_v = float("inf")
        for t in range(30, 65):
            v = TagsExponential(lam=lam, mu=10, t=float(t), n=6).metrics().mean_jobs
            if v < best_v:
                best_t, best_v = t, v
        # our encoding reproduces 51 and 42 exactly and is within one unit
        # at the intermediate loads (we get 48 and 46 for the paper's 49
        # and 45) -- see EXPERIMENTS.md
        assert abs(best_t - paper_t) <= 1

    def test_throughput_metric_maximises(self):
        res = optimise_timeout(
            lambda t: TagsExponential(lam=11, mu=10, t=t, n=6, K1=6, K2=6),
            "throughput",
            t_min=5.0,
            t_max=200.0,
            grid_points=12,
        )
        # optimum beats both a badly short and a badly long timeout
        lo = TagsExponential(lam=11, mu=10, t=5.0, n=6, K1=6, K2=6).metrics()
        hi = TagsExponential(lam=11, mu=10, t=200.0, n=6, K1=6, K2=6).metrics()
        assert res.value >= lo.throughput
        assert res.value >= hi.throughput

    def test_grid_only_mode(self):
        res = optimise_timeout(
            lambda t: TagsFixedPoint(lam=5, mu=10, t=t, n=6),
            "mean_jobs",
            refine=False,
            grid_points=10,
        )
        assert res.t_opt in res.grid_t
