"""Section 1 worked-example tests -- every number the paper quotes."""

import numpy as np
import pytest

from repro.batch import (
    optimal_batch_timeout,
    tags_batch_completion_times,
    tags_batch_mean_response,
)

JOBS = [4.0, 5.0, 6.0, 7.0, 3.0, 2.0]
JOBS_HEAVY = [99.0, 5.0, 6.0, 7.0, 3.0, 2.0]


class TestPaperNumbers:
    def test_no_timeout_17(self):
        """'If there is no timeout set ... the average response time would
        be 17 seconds.'"""
        assert tags_batch_mean_response(JOBS, ()) == pytest.approx(17.0)

    def test_everything_times_out_18_5(self):
        """'If the timeout is increased to 1.5 seconds ... the average
        response time being 18.5 seconds.'"""
        assert tags_batch_mean_response(JOBS, (1.5,)) == pytest.approx(18.5)

    def test_timeout_3_5_gives_16_67(self):
        """'If the timeout is further increased to 3.5 seconds ... the
        average response time is 16.67 seconds.'"""
        assert tags_batch_mean_response(JOBS, (3.5,)) == pytest.approx(
            100.0 / 6.0
        )

    def test_optimal_3_plus_eps_gives_15_67(self):
        """'the minimum response time of 15.67 seconds would [be] attained
        with a timeout fractionally above 3 seconds.'"""
        assert tags_batch_mean_response(JOBS, (3.0 + 1e-9,)) == pytest.approx(
            94.0 / 6.0
        )

    def test_optimal_search_finds_3(self):
        timeouts, value = optimal_batch_timeout(JOBS, n_nodes=2)
        assert timeouts[0] == pytest.approx(3.0, abs=1e-3)
        assert value == pytest.approx(94.0 / 6.0)

    def test_heavy_job_36_5(self):
        """'the optimal timeout is (predictably) fractionally above 7
        seconds, where the average response time is 36.5 seconds'."""
        assert tags_batch_mean_response(JOBS_HEAVY, (7.0 + 1e-9,)) == pytest.approx(
            36.5
        )
        timeouts, value = optimal_batch_timeout(JOBS_HEAVY, n_nodes=2)
        assert timeouts[0] == pytest.approx(7.0, abs=1e-3)
        assert value == pytest.approx(36.5)

    def test_heavy_no_timeout_112(self):
        """'as opposed to the no timeout case of 112 seconds.'"""
        assert tags_batch_mean_response(JOBS_HEAVY, ()) == pytest.approx(112.0)

    def test_zero_timeout_equivalent(self):
        """'if the timeout was zero, all the jobs would be served at the
        second node and the average response time would be the same' (as no
        timeout).  A timeout below every demand adds exactly 6 tau / 6."""
        tau = 1e-9
        assert tags_batch_mean_response(JOBS, (tau,)) == pytest.approx(
            17.0, abs=1e-6
        )


class TestMechanics:
    def test_completion_order_single_queue(self):
        c = tags_batch_completion_times([2.0, 1.0], ())
        np.testing.assert_allclose(c, [2.0, 3.0])

    def test_forwarded_jobs_keep_kill_order(self):
        # both jobs time out; second killed later, served second at node 2
        c = tags_batch_completion_times([5.0, 4.0], (1.0,))
        # kills at 1, 2; node2: start 1 +5 = 6; start max(6,2) +4 = 10
        np.testing.assert_allclose(c, [6.0, 10.0])

    def test_three_nodes(self):
        # timeouts 1 and 2: job of size 4 killed at node1 (t=1), node2
        # (arrives 1, killed at 3), completes at node 3: 3 + 4 = 7
        c = tags_batch_completion_times([4.0], (1.0, 2.0))
        np.testing.assert_allclose(c, [7.0])

    def test_mixed_completion_nodes(self):
        # size-1 completes at node 1 behind the first kill
        c = tags_batch_completion_times([4.0, 1.0], (2.0,))
        # node1: job0 killed at 2, job1 served 2->3; node2: job0 4 -> 6
        np.testing.assert_allclose(c, [6.0, 3.0])


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tags_batch_completion_times([], ())

    def test_negative_demand(self):
        with pytest.raises(ValueError):
            tags_batch_completion_times([-1.0], ())

    def test_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            tags_batch_completion_times([1.0], (0.0,))

    def test_single_node_optimal(self):
        timeouts, value = optimal_batch_timeout(JOBS, n_nodes=1)
        assert timeouts == ()
        assert value == pytest.approx(17.0)
