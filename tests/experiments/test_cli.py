"""CLI (`python -m repro.experiments`) tests."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_s1(self, capsys):
        assert main(["s1"]) == 0
        out = capsys.readouterr().out
        assert "Section 1" in out and "17.0000" in out

    def test_t1(self, capsys):
        assert main(["t1"]) == 0
        out = capsys.readouterr().out
        assert "4331" in out

    def test_approximations(self, capsys):
        assert main(["a"]) == 0
        out = capsys.readouterr().out
        assert "6.18" in out

    def test_serve(self, capsys):
        assert main(["serve"]) == 0
        out = capsys.readouterr().out
        assert "online TAGS dispatcher" in out
        assert "applied" in out  # the controller actually re-tuned
        assert "final timeout rate" in out
        assert "=> agreement" in out

    def test_unknown_id(self, capsys):
        assert main(["zzz"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_figure_six(self, capsys):
        assert main(["6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out and "TAG total" in out

    def test_csv_export(self, capsys, tmp_path):
        assert main(["6", "--csv", str(tmp_path)]) == 0
        csv = tmp_path / "figure6.csv"
        assert csv.exists()
        header = csv.read_text().splitlines()[0]
        assert header.startswith("timeout rate t,")

    def test_csv_missing_dir_argument(self, capsys):
        assert main(["6", "--csv"]) == 2
