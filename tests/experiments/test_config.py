"""Experiment-configuration invariants (the paper's pinned parameters)."""

import numpy as np
import pytest

from repro.experiments.config import (
    FIG6_PARAMS,
    FIG8_LAMBDAS,
    FIG8_PAPER_OPTIMAL_T,
    FIG9_PARAMS,
    FIG11_ALPHAS,
    MEAN_SERVICE,
    h2_service_fig9,
    h2_service_fig11,
)


class TestFig6:
    def test_paper_parameters(self):
        assert FIG6_PARAMS == dict(lam=5.0, mu=10.0, n=6, K1=10, K2=10)


class TestFig8:
    def test_lambdas_and_optima(self):
        assert FIG8_LAMBDAS == (5.0, 7.0, 9.0, 11.0)
        assert [FIG8_PAPER_OPTIMAL_T[l] for l in FIG8_LAMBDAS] == [51, 49, 45, 42]


class TestFig9Service:
    def test_mean_and_ratio(self):
        d = h2_service_fig9()
        assert d.mean == pytest.approx(MEAN_SERVICE)
        assert d.rates[0] == pytest.approx(100 * d.rates[1])
        assert d.probs[0] == pytest.approx(0.99)

    def test_rates_match_hand_calculation(self):
        # 0.99/mu1 + 0.01/mu2 = 0.1 with mu1 = 100 mu2 -> mu2 = 0.199
        d = h2_service_fig9()
        assert d.rates[1] == pytest.approx(0.199)
        assert d.rates[0] == pytest.approx(19.9)

    def test_heavy_tail(self):
        assert h2_service_fig9().scv == pytest.approx(50.0, abs=1.0)


class TestFig11Service:
    def test_alpha_grid_covers_paper_range(self):
        assert FIG11_ALPHAS.min() == pytest.approx(0.89)
        assert FIG11_ALPHAS.max() == pytest.approx(0.99)

    @pytest.mark.parametrize("alpha", [0.89, 0.93, 0.99])
    def test_mean_invariant(self, alpha):
        d = h2_service_fig11(alpha)
        assert d.mean == pytest.approx(MEAN_SERVICE)
        assert d.rates[0] == pytest.approx(10 * d.rates[1])

    def test_milder_tail_than_fig9(self):
        assert h2_service_fig11(0.99).scv < h2_service_fig9().scv / 4
