"""Every quantitative statement the paper's Section 5 makes about its
figures, asserted against our regenerated series.

The figures themselves are not tabulated in the paper, so these tests pin
the *claims in the text*: optimal parameter values, orderings between
strategies, trend directions and crossovers.  Reduced grids keep the suite
fast; the full grids run in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    section1_example,
    section4_approximations,
    state_space_table,
)

T_GRID_EXP = np.arange(10.0, 111.0, 10.0)
T_GRID_H2 = np.arange(4.0, 81.0, 4.0)
ALPHAS = np.array([0.89, 0.94, 0.99])


@pytest.fixture(scope="module")
def fig6():
    return figure6(T_GRID_EXP)


@pytest.fixture(scope="module")
def fig7():
    return figure7(T_GRID_EXP)


@pytest.fixture(scope="module")
def fig9():
    return figure9(T_GRID_H2)


@pytest.fixture(scope="module")
def fig10():
    return figure10(T_GRID_H2)


@pytest.fixture(scope="module")
def fig11():
    return figure11(ALPHAS)


@pytest.fixture(scope="module")
def fig12():
    return figure12(ALPHAS)


class TestFigure6:
    def test_series_present(self, fig6):
        assert set(fig6.series) == {
            "TAG total", "TAG queue 1", "TAG queue 2", "random",
            "shortest queue",
        }

    def test_queues_sum(self, fig6):
        np.testing.assert_allclose(
            fig6.series["TAG queue 1"] + fig6.series["TAG queue 2"],
            fig6.series["TAG total"],
            atol=1e-9,
        )

    def test_tag_has_interior_minimum(self, fig6):
        y = fig6.series["TAG total"]
        k = int(np.argmin(y))
        assert 0 < k < len(y) - 1
        # optimum near t = 51 (the paper's quoted optimal integer value)
        assert 40.0 <= fig6.x[k] <= 60.0

    def test_shortest_queue_best_exponential(self, fig6):
        """Exponential demand: JSQ is optimal, TAG is never better."""
        assert np.all(
            fig6.series["shortest queue"] <= fig6.series["TAG total"] + 1e-9
        )

    def test_queue1_decreases_queue2_increases_with_t(self, fig6):
        """Faster clock (bigger t) -> shorter timeout -> more jobs pushed
        to queue 2."""
        q1, q2 = fig6.series["TAG queue 1"], fig6.series["TAG queue 2"]
        assert q1[-1] < q1[0]
        assert q2[-1] > q2[0]


class TestFigure7:
    def test_same_shape_as_fig6(self, fig6, fig7):
        """Paper: loss is so low at lam=5 that queue-length and response
        curves have the same shape -- same argmin."""
        k6 = int(np.argmin(fig6.series["TAG total"]))
        k7 = int(np.argmin(fig7.series["TAG"]))
        assert abs(k6 - k7) <= 1

    def test_loss_negligible(self):
        """Paper: random and TAG loss 'still less than 1e-4' at lam=5."""
        from repro.models import RandomAllocation, TagsExponential

        tag = TagsExponential(lam=5, mu=10, t=51, n=6).metrics()
        rnd = RandomAllocation(lam=5, service=10.0, K=10).metrics()
        assert tag.loss_probability < 1e-4
        assert rnd.loss_probability < 1e-4

    def test_ordering_at_optimum(self, fig7):
        """Exponential case: shortest queue < random < TAG."""
        w_tag = fig7.series["TAG"].min()
        w_rnd = fig7.series["random"][0]
        w_jsq = fig7.series["shortest queue"][0]
        assert w_jsq < w_rnd < w_tag


class TestFigure8:
    @pytest.fixture(scope="class")
    def fig8(self):
        return figure8()

    def test_optimal_t_close_to_paper(self, fig8):
        """Paper: optimal t = 51, 49, 45, 42 for lam = 5, 7, 9, 11."""
        paper = np.array([51, 49, 45, 42], dtype=float)
        np.testing.assert_allclose(fig8.series["optimal t"], paper, atol=1.0)

    def test_response_time_increases_with_load(self, fig8):
        for label in ("TAG (optimal t)", "random", "shortest queue"):
            y = fig8.series[label]
            assert np.all(np.diff(y) > 0), label

    def test_tag_worst_and_gap_grows(self, fig8):
        """Paper: 'TAG isn't very good compared with the random and
        shortest queue strategies. This is particularly the case as the
        load increases'."""
        gap_rnd = fig8.series["TAG (optimal t)"] - fig8.series["random"]
        assert np.all(gap_rnd > 0)
        assert gap_rnd[-1] > gap_rnd[0]


class TestFigure9:
    def test_tag_beats_jsq_over_wide_range(self, fig9):
        """Paper: 'TAG is shown to outperform the shortest queue strategy
        for a wide range of values of t'."""
        wins = fig9.series["TAG"] < fig9.series["shortest queue"]
        assert wins.mean() > 0.4
        # and the winning region is contiguous from small-ish t
        assert wins[np.argmin(fig9.series["TAG"])]

    def test_optimal_timeout_longer_than_exponential_case(self, fig9, fig6):
        """Paper: the optimal H2 timeout duration (n/t) is much longer than
        the exponential one -- process as many short jobs as possible at
        node 1."""
        t_h2 = fig9.x[np.argmin(fig9.series["TAG"])]
        t_exp = fig6.x[np.argmin(fig6.series["TAG total"])]
        assert 6 / t_h2 > 2 * (6 / t_exp)

    def test_random_poor(self, fig9):
        """Paper drops random from Fig 9 as 'works poorly'.  Bounded queues
        cap W below the paper's 'W > 1' claim, but random must still lose
        badly to TAG's optimum and drop far more jobs."""
        from repro.experiments.config import h2_service_fig9
        from repro.models import RandomAllocation, ShortestQueue

        rnd = RandomAllocation(lam=11.0, service=h2_service_fig9(), K=10).metrics()
        assert rnd.response_time > 1.8 * fig9.series["TAG"].min()
        jsq = ShortestQueue(lam=11.0, service=h2_service_fig9(), K=10).metrics()
        assert rnd.loss_rate > 2 * jsq.loss_rate


class TestFigure10:
    def test_tag_peak_beats_jsq(self, fig10):
        """Paper: 'TAG clearly out performs the shortest queue strategy
        when reasonably close to optimal t'."""
        assert fig10.series["TAG"].max() > fig10.series["shortest queue"][0]

    def test_poorly_tuned_tag_loses(self, fig10):
        """Paper: 'when poorly tuned (e.g. t = 4) the throughput falls
        significantly and the shortest queue strategy will be better'."""
        k = int(np.argmin(np.abs(fig10.x - 4.0)))
        assert fig10.series["TAG"][k] < fig10.series["shortest queue"][k]

    def test_throughput_and_response_optima_differ(self, fig9, fig10):
        """Paper: utilisation, response time and throughput are optimised
        at slightly different t."""
        t_w = fig9.x[np.argmin(fig9.series["TAG"])]
        t_x = fig10.x[np.argmax(fig10.series["TAG"])]
        assert t_w != t_x


class TestFigures11And12:
    def test_tag_response_increases_with_alpha(self, fig11):
        """Paper: 'the response time increases ... under TAG as alpha
        increases'."""
        y = fig11.series["TAG (optimal t)"]
        assert y[0] < y[-1]

    def test_tag_throughput_decreases_with_alpha(self, fig12):
        y = fig12.series["TAG (optimal t)"]
        assert y[0] > y[-1]

    def test_baselines_show_reverse_trend(self, fig11, fig12):
        """Paper: 'Both random allocation and the shortest queue strategy
        show the reverse trend for each metric'."""
        for fig, better in ((fig11, np.less), (fig12, np.greater)):
            for label in ("random", "shortest queue"):
                y = fig.series[label]
                assert better(y[-1], y[0]), (fig.name, label)

    def test_random_improves_markedly(self, fig11):
        """Paper: 'the effect of decreasing the proportion of longer jobs
        to alpha = 0.99 dramatically increases the performance' of random.
        In our reproduction the improvement is ~1.4x in response time (the
        bounded queues damp the effect; see EXPERIMENTS.md)."""
        y = fig11.series["random"]
        assert y[0] > 1.2 * y[-1]

    def test_tag_relatively_more_efficient_at_low_alpha(self, fig11, fig12):
        """Paper: 'As alpha decreases ... TAG becomes more efficient as the
        balance of jobs between the nodes becomes optimal.'  TAG's gap to
        the shortest queue closes monotonically as alpha decreases, and
        TAG out-throughputs random at the balanced end."""
        w_gap = fig11.series["TAG (optimal t)"] / fig11.series["shortest queue"]
        assert w_gap[0] < w_gap[-1]
        x_gap = (
            fig12.series["shortest queue"] - fig12.series["TAG (optimal t)"]
        )
        assert x_gap[0] < x_gap[-1]
        assert fig12.series["TAG (optimal t)"][0] >= fig12.series["random"][0]


class TestScalarClaims:
    def test_state_space(self):
        tbl = state_space_table()
        assert tbl["measured_states"] == tbl["paper_states"] == 4331

    def test_section1(self):
        for label, (paper, ours) in section1_example().items():
            assert ours == pytest.approx(paper, abs=0.01), label

    def test_section4(self):
        vals = section4_approximations()
        assert vals["exponential balance T (paper ~6.17)"] == pytest.approx(
            6.18, abs=0.01
        )
        assert vals["total rate t/n at n=400 (paper ~9)"] == pytest.approx(
            8.7, abs=0.2
        )
