"""Report rendering tests."""

import numpy as np
import pytest

from repro.experiments import render_figure, render_table
from repro.experiments.figures import FigureData


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "long_header"], [[1.0, 2.0], [3.25, 4.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # all same width

    def test_mixed_types(self):
        out = render_table(["x", "label"], [[1.5, "foo"]])
        assert "foo" in out and "1.5000" in out


class TestRenderFigure:
    def make(self):
        fig = FigureData("Figure X", "t", "W", np.array([1.0, 2.0, 3.0]))
        fig.add("TAG", [0.1, 0.2, 0.3])
        return fig

    def test_contains_title_and_series(self):
        out = render_figure(self.make())
        assert "Figure X" in out
        assert "TAG" in out
        assert out.count("\n") == 2 + 3  # title + header + rule + 3 rows

    def test_max_rows_subsamples(self):
        fig = FigureData("F", "t", "y", np.arange(100.0))
        fig.add("s", np.arange(100.0))
        out = render_figure(fig, max_rows=5)
        # title + header + rule + <=5 rows
        assert out.count("\n") <= 7

    def test_shape_mismatch_rejected(self):
        fig = FigureData("F", "t", "y", np.arange(3.0))
        with pytest.raises(ValueError):
            fig.add("bad", [1.0, 2.0])


class TestCsvExport:
    def test_roundtrip(self, tmp_path):
        import csv

        from repro.experiments.report import figure_to_csv

        fig = FigureData("F", "t", "y", np.array([1.0, 2.5]))
        fig.add("a", [0.125, 0.25])
        fig.add("b", [3.0, 4.0])
        path = tmp_path / "fig.csv"
        figure_to_csv(fig, path)
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["t", "a", "b"]
        assert [float(v) for v in rows[1]] == [1.0, 0.125, 3.0]
        assert [float(v) for v in rows[2]] == [2.5, 0.25, 4.0]
