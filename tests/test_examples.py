"""Smoke tests: every example script must run cleanly.

The slow simulation-heavy examples run with reduced effort via env-free
subprocess execution; they are still end-to-end (import, compute, print).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
FAST = ["quickstart.py", "pepa_playground.py"]
SLOW = [
    "tags_vs_shortest_queue_hyperexp.py",
    "timeout_tuning.py",
    "bursty_arrivals.py",
    "simulation_validation.py",
    "tagged_job_percentiles.py",
    "tracing_a_solve.py",
    "online_tags.py",
]


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=1800,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestFastExamples:
    @pytest.mark.parametrize("name", FAST)
    def test_runs(self, name):
        out = run_example(name)
        assert out.strip()

    def test_quickstart_reports_4331(self):
        assert "4331" in run_example("quickstart.py")


@pytest.mark.slow
class TestSlowExamples:
    @pytest.mark.parametrize("name", SLOW)
    def test_runs(self, name):
        out = run_example(name)
        assert out.strip()
