"""Routing-policy unit tests; JSQ tie-breaking is pinned explicitly."""

import numpy as np
import pytest

from repro.dists import Exponential
from repro.sim import JSQPolicy, PoissonArrivals, Simulation


class TestJsqTieBreak:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="tie_break"):
            JSQPolicy(tie_break="argmin")

    def test_no_tie_ignores_mode(self):
        rng = np.random.default_rng(0)
        for mode in ("random", "lowest"):
            assert JSQPolicy(tie_break=mode).route([3, 1], rng) == 1
            assert JSQPolicy(tie_break=mode).route([0, 4], rng) == 0

    def test_lowest_always_picks_first_tied(self):
        rng = np.random.default_rng(0)
        policy = JSQPolicy(nodes=3, tie_break="lowest")
        assert all(policy.route([2, 2, 2], rng) == 0 for _ in range(50))
        assert all(policy.route([5, 1, 1], rng) == 1 for _ in range(50))

    def test_random_is_uniform_over_ties(self):
        rng = np.random.default_rng(7)
        policy = JSQPolicy(nodes=3)
        picks = [policy.route([1, 1, 1], rng) for _ in range(3000)]
        counts = np.bincount(picks, minlength=3)
        assert counts.min() > 0.25 * len(picks)  # ~1/3 each

    def test_random_is_seeded(self):
        policy = JSQPolicy()
        a = [policy.route([0, 0], np.random.default_rng(5)) for _ in range(20)]
        b = [policy.route([0, 0], np.random.default_rng(5)) for _ in range(20)]
        assert a == b

    def test_lowest_biases_node0_under_low_load(self):
        """The documented argmin artefact: at low load most arrivals see
        an empty system, so 'lowest' funnels them to node 0 while
        'random' splits evenly."""

        def run(mode):
            sim = Simulation(
                PoissonArrivals(1.0),
                Exponential(10.0),
                JSQPolicy(tie_break=mode),
                (10, 10),
                seed=3,
            )
            return sim.run(t_end=5000.0, warmup=500.0).mean_queue_lengths

        low_a, low_b = run("lowest")
        rnd_a, rnd_b = run("random")
        assert low_a > 5 * low_b  # node 0 hoards the work
        assert rnd_a == pytest.approx(rnd_b, rel=0.25)  # symmetric
