"""Precision-driven replication tests."""

import pytest

from repro.dists import Exponential
from repro.models import MM1K
from repro.sim import PoissonArrivals, RandomPolicy, Simulation, replicate_until


def make(seed):
    return Simulation(
        PoissonArrivals(4.0),
        Exponential(5.0),
        RandomPolicy(weights=(1.0,)),
        (8,),
        seed=seed,
    )


class TestReplicateUntil:
    def test_hits_target_and_covers_truth(self):
        mean, half, n = replicate_until(
            make,
            "mean_response_time",
            rel_half_width=0.05,
            t_end=2_000.0,
            warmup=200.0,
        )
        assert half / mean <= 0.05
        assert n >= 4
        truth = MM1K(4.0, 5.0, 8).response_time
        # 95% CI: allow a generous 2x half-width margin for this one draw
        assert abs(mean - truth) < 2 * half + 0.05 * truth

    def test_tighter_target_needs_more_reps(self):
        _, _, n_loose = replicate_until(
            make, "mean_jobs", rel_half_width=0.2, t_end=800.0, warmup=100.0
        )
        _, _, n_tight = replicate_until(
            make, "mean_jobs", rel_half_width=0.03, t_end=800.0, warmup=100.0
        )
        assert n_tight >= n_loose

    def test_max_reps_cap(self):
        mean, half, n = replicate_until(
            make,
            "mean_jobs",
            rel_half_width=1e-6,  # unreachable
            max_reps=5,
            t_end=300.0,
            warmup=50.0,
        )
        assert n == 5
        assert half > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            replicate_until(make, rel_half_width=0.0)
        with pytest.raises(ValueError):
            replicate_until(make, min_reps=1)
