"""Simulator validation against closed forms and the CTMC models."""

import numpy as np
import pytest

from repro.dists import Exponential, h2_balanced_means
from repro.models import MM1K, ShortestQueue, TagsExponential
from repro.sim import (
    ErlangTimeout,
    JSQPolicy,
    PoissonArrivals,
    RandomPolicy,
    RoundRobinPolicy,
    Simulation,
    TagsPolicy,
    replicate,
)


def run_sim(policy, lam, demand, capacities, seed=0, t_end=4000.0):
    sim = Simulation(
        PoissonArrivals(lam), demand, policy, capacities, seed=seed
    )
    return sim.run(t_end=t_end, warmup=400.0)


class TestAgainstMM1K:
    def test_single_node_random_policy(self):
        """RandomPolicy with weight 1 on one node is an M/M/1/K."""
        lam, mu, K = 4.0, 5.0, 8
        res = run_sim(
            RandomPolicy(weights=(1.0,)), lam, Exponential(mu), (K,), t_end=30_000.0
        )
        ana = MM1K(lam, mu, K)
        assert res.mean_jobs == pytest.approx(ana.mean_jobs, rel=0.05)
        assert res.throughput == pytest.approx(ana.throughput, rel=0.03)
        assert res.loss_probability == pytest.approx(
            ana.blocking_probability, abs=0.01
        )

    def test_two_node_random_split(self):
        lam, mu, K = 5.0, 10.0, 10
        res = run_sim(
            RandomPolicy(), lam, Exponential(mu), (K, K), t_end=30_000.0
        )
        node = MM1K(lam / 2, mu, K)
        assert res.mean_jobs == pytest.approx(2 * node.mean_jobs, rel=0.06)


class TestAgainstTagsCTMC:
    def test_erlang_timeout_exponential_service(self):
        """With the Erlang timeout the simulator and the Figure 3 CTMC
        describe the same system."""
        lam, mu, t, n = 5.0, 10.0, 51.0, 6
        policy = TagsPolicy(timeouts=(ErlangTimeout(n, t),))
        res = run_sim(policy, lam, Exponential(mu), (10, 10), t_end=60_000.0)
        exact = TagsExponential(lam=lam, mu=mu, t=t, n=n).metrics()
        assert res.mean_jobs == pytest.approx(exact.mean_jobs, rel=0.06)
        assert res.throughput == pytest.approx(exact.throughput, rel=0.02)
        assert res.mean_response_time == pytest.approx(
            exact.response_time, rel=0.06
        )

    def test_overload_loss_agrees(self):
        lam, mu, t, n = 13.0, 10.0, 42.0, 6
        policy = TagsPolicy(timeouts=(ErlangTimeout(n, t),))
        res = run_sim(policy, lam, Exponential(mu), (10, 10), t_end=30_000.0)
        exact = TagsExponential(lam=lam, mu=mu, t=t, n=n).metrics()
        assert res.loss_probability == pytest.approx(
            exact.loss_probability, abs=0.02
        )


class TestAgainstJsqCTMC:
    def test_exponential(self):
        lam, mu, K = 9.0, 10.0, 10
        res = run_sim(JSQPolicy(), lam, Exponential(mu), (K, K), t_end=30_000.0)
        exact = ShortestQueue(lam=lam, service=mu, K=K).metrics()
        assert res.mean_jobs == pytest.approx(exact.mean_jobs, rel=0.06)
        assert res.throughput == pytest.approx(exact.throughput, rel=0.02)


class TestTagsSemantics:
    def test_kill_and_restart_conserves_demand(self):
        """A job that needs D > timeout tau occupies node 1 for exactly tau
        and node 2 for exactly D (deterministic timeout): check via mean
        slowdown of an almost-deterministic workload."""
        from repro.sim import DeterministicTimeout
        from repro.dists import Erlang

        # demand ~ Erlang(50, 500) ~= 0.1 nearly deterministic, tau = 0.05
        policy = TagsPolicy(timeouts=(DeterministicTimeout(0.05),))
        res = run_sim(
            policy, 1.0, Erlang(50, 500.0), (10, 10), t_end=20_000.0
        )
        # every job times out (demand ~0.1 > 0.05) and completes at node 2:
        # response >= tau + demand
        assert res.dropped_forward == 0
        assert res.mean_response_time > 0.14

    def test_short_jobs_protected_from_long(self):
        """The TAGS promise: short jobs overtake long ones via the kill
        mechanism, so short-job response beats the no-timeout system."""
        from repro.sim import DeterministicTimeout

        d = h2_balanced_means(0.1, 0.99, 100.0)
        lam = 8.0
        tags = TagsPolicy(timeouts=(DeterministicTimeout(0.12),))
        rr = RandomPolicy(weights=(1.0, 0.0))  # everything to one node, K big
        res_tags = run_sim(tags, lam, d, (10, 10), t_end=30_000.0)
        res_one = run_sim(rr, lam, d, (20, 1), t_end=30_000.0)
        assert res_tags.mean_response_time < res_one.mean_response_time

    def test_round_robin_alternates(self):
        res = run_sim(
            RoundRobinPolicy(nodes=2), 5.0, Exponential(10.0), (10, 10)
        )
        # both nodes see load: queue averages within 20% of each other
        a, b = res.mean_queue_lengths
        assert a == pytest.approx(b, rel=0.2)


class TestReplicate:
    def test_replication_shapes(self):
        out = replicate(
            lambda seed: Simulation(
                PoissonArrivals(5.0),
                Exponential(10.0),
                RandomPolicy(),
                (10, 10),
                seed=seed,
            ),
            n_reps=3,
            t_end=500.0,
            warmup=50.0,
        )
        assert out["throughput"].shape == (3,)
        assert 0 < out["means"]["throughput"] <= 5.5

    def test_seeds_differ(self):
        out = replicate(
            lambda seed: Simulation(
                PoissonArrivals(5.0),
                Exponential(10.0),
                RandomPolicy(),
                (10, 10),
                seed=seed,
            ),
            n_reps=3,
            t_end=300.0,
            warmup=30.0,
        )
        assert len(set(out["throughput"])) == 3


class TestRngParameter:
    """``rng=`` accepts a prepared generator (shared-stream workflows,
    e.g. the serve runtime handing its generator over for equivalence
    runs) and must be draw-for-draw identical to the ``seed=`` path."""

    @staticmethod
    def make(**kw):
        from repro.sim import ErlangTimeout

        return Simulation(
            PoissonArrivals(5.0),
            Exponential(10.0),
            TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
            (10, 10),
            **kw,
        )

    def test_rng_equals_seed(self):
        a = self.make(seed=42).run(t_end=500.0)
        b = self.make(rng=np.random.default_rng(42)).run(t_end=500.0)
        assert a.completed == b.completed
        assert np.array_equal(a.response_times, b.response_times)
        assert a.mean_queue_lengths == b.mean_queue_lengths

    def test_rng_wins_over_seed(self):
        a = self.make(seed=0, rng=np.random.default_rng(42)).run(t_end=500.0)
        b = self.make(seed=42).run(t_end=500.0)
        assert np.array_equal(a.response_times, b.response_times)

    def test_seed_regression(self):
        """Pinned draw sequence: a refactor that reorders or adds RNG
        draws shows up here before it silently shifts every figure."""
        res = self.make(seed=42).run(t_end=500.0)
        assert res.offered == 2526
        assert res.completed == 2523
        assert float(res.response_times.sum()) == pytest.approx(
            455.9446550662724, rel=1e-12
        )


class TestJobRecords:
    @staticmethod
    def make(**kw):
        from repro.sim import ErlangTimeout

        return Simulation(
            PoissonArrivals(12.0),
            Exponential(10.0),
            TagsPolicy(timeouts=(ErlangTimeout(6, 42.0),)),
            (6, 3),
            **kw,
        )

    def test_outcomes_account_for_counters(self):
        res = self.make(seed=1, record_jobs=True).run(t_end=500.0)
        outcomes = res.job_outcomes()
        by_kind = {}
        for outcome, _, _ in outcomes.values():
            by_kind[outcome] = by_kind.get(outcome, 0) + 1
        assert by_kind["completed"] == res.completed
        assert by_kind["dropped_arrival"] == res.dropped_arrival
        assert by_kind["dropped_forward"] == res.dropped_forward
        # kill counts only on jobs that reached a timeout
        assert any(k > 0 for _, _, k in outcomes.values())
        assert all(
            k == 0 for o, _, k in outcomes.values() if o == "dropped_arrival"
        )

    def test_off_by_default(self):
        res = self.make(seed=1).run(t_end=100.0)
        assert res.jobs is None
        with pytest.raises(ValueError, match="record_jobs"):
            res.job_outcomes()


class TestValidation:
    def test_capacity_policy_mismatch(self):
        with pytest.raises(ValueError, match="nodes"):
            Simulation(
                PoissonArrivals(1.0), Exponential(1.0), JSQPolicy(), (5,)
            )

    def test_warmup_bounds(self):
        sim = Simulation(
            PoissonArrivals(1.0), Exponential(1.0), RandomPolicy(), (5, 5)
        )
        with pytest.raises(ValueError, match="exceed"):
            sim.run(t_end=10.0, warmup=10.0)

    def test_bad_capacity(self):
        with pytest.raises(ValueError, match="capacities"):
            Simulation(
                PoissonArrivals(1.0), Exponential(1.0), RandomPolicy(), (5, 0)
            )
