"""Per-size-class simulation metrics (slowdown fairness)."""

import numpy as np
import pytest

from repro.dists import h2_balanced_means
from repro.sim import (
    DeterministicTimeout,
    JSQPolicy,
    PoissonArrivals,
    Simulation,
    TagsPolicy,
)

SERVICE = h2_balanced_means(0.1, 0.99, 100.0)


def run(policy, seed=0, t_end=20_000.0):
    sim = Simulation(PoissonArrivals(8.0), SERVICE, policy, (10, 10), seed=seed)
    return sim.run(t_end=t_end, warmup=1_000.0)


class TestClassViews:
    @pytest.fixture(scope="class")
    def tags_result(self):
        return run(TagsPolicy(timeouts=(DeterministicTimeout(0.6),)))

    def test_demands_aligned(self, tags_result):
        r = tags_result
        assert r.demands.shape == r.response_times.shape == r.slowdowns.shape

    def test_class_masks_partition(self, tags_result):
        short = tags_result.class_mask(0.5)
        assert short.sum() + (~short).sum() == tags_result.completed

    def test_short_jobs_dominate_h2(self, tags_result):
        # 99% of jobs are short (mean 0.05) so most completions are short
        assert tags_result.class_mask(0.5).mean() > 0.95

    def test_long_jobs_slower(self, tags_result):
        w_short, w_long = tags_result.mean_response_by_class(0.5)
        assert w_long > w_short

    def test_slowdown_by_class_finite(self, tags_result):
        s_short, s_long = tags_result.mean_slowdown_by_class(0.5)
        assert s_short >= 1.0  # slowdown can never beat 1
        assert s_long >= 1.0

    def test_percentiles_monotone(self, tags_result):
        assert tags_result.slowdown_percentile(50) <= tags_result.slowdown_percentile(95)

    def test_tags_long_jobs_pay_repeat_penalty(self, tags_result):
        """Under TAGS every long job repeats its timed-out work, so its
        slowdown must exceed 1 + (lost work / demand) on average; JSQ has
        no such floor."""
        jsq = run(JSQPolicy(), seed=5)
        _, tags_long = tags_result.mean_slowdown_by_class(0.5)
        _, jsq_long = jsq.mean_slowdown_by_class(0.5)
        assert tags_long > jsq_long


class TestEdgeCases:
    def test_missing_demands_rejected(self):
        from repro.sim.runner import SimulationResult

        r = SimulationResult(
            duration=1.0,
            offered=1,
            completed=1,
            dropped_arrival=0,
            dropped_forward=0,
            mean_queue_lengths=(0.0,),
            response_times=np.array([1.0]),
            slowdowns=np.array([1.0]),
        )
        with pytest.raises(ValueError, match="demands"):
            r.class_mask(0.5)

    def test_empty_percentile_nan(self):
        from repro.sim.runner import SimulationResult

        r = SimulationResult(
            duration=1.0,
            offered=0,
            completed=0,
            dropped_arrival=0,
            dropped_forward=0,
            mean_queue_lengths=(0.0,),
            response_times=np.empty(0),
            slowdowns=np.empty(0),
            demands=np.empty(0),
        )
        assert np.isnan(r.slowdown_percentile(95))
