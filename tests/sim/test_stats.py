"""Statistics helper tests."""

import numpy as np
import pytest

from repro.sim import TimeAverage, batch_means_ci


class TestTimeAverage:
    def test_piecewise_constant(self):
        ta = TimeAverage()
        ta.update(0.0, 2.0)  # value 0 on [0, 0): nothing
        ta.update(1.0, 4.0)  # value 2 on [0, 1)
        ta.update(3.0, 0.0)  # value 4 on [1, 3)
        assert ta.mean(4.0) == pytest.approx((0 * 0 + 2 * 1 + 4 * 2 + 0 * 1) / 4.0)

    def test_reset_discards_history(self):
        ta = TimeAverage()
        ta.update(0.0, 100.0)
        ta.update(5.0, 1.0)
        ta.reset(5.0)
        ta.update(7.0, 3.0)
        assert ta.mean(9.0) == pytest.approx((1 * 2 + 3 * 2) / 4.0)

    def test_time_backwards_rejected(self):
        ta = TimeAverage()
        ta.update(2.0, 1.0)
        with pytest.raises(ValueError):
            ta.update(1.0, 1.0)

    def test_empty_mean_zero(self):
        assert TimeAverage().mean(0.0) == 0.0


class TestBatchMeans:
    def test_iid_normal_coverage(self):
        rng = np.random.default_rng(0)
        hits = 0
        for rep in range(200):
            xs = rng.normal(10.0, 2.0, 400)
            mean, half = batch_means_ci(xs, n_batches=20)
            if abs(mean - 10.0) <= half:
                hits += 1
        # 95% CI: expect ~190/200 coverage
        assert hits >= 180

    def test_needs_enough_samples(self):
        with pytest.raises(ValueError):
            batch_means_ci(np.ones(10), n_batches=20)

    def test_mean_value(self):
        xs = np.arange(100.0)
        mean, _ = batch_means_ci(xs, n_batches=10)
        assert mean == pytest.approx(xs.mean())
